// Byte-size literals and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>

namespace car::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// "4.00 MiB", "1.50 GiB", "512 B" style formatting.
std::string format_bytes(std::uint64_t bytes);

/// "125.0 MB/s" style formatting for rates expressed in bytes/second.
std::string format_rate(double bytes_per_second);

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

}  // namespace car::util
