// CAR_ACQUIRE violation: a function declaring that it acquires a capability
// returns without actually locking it.  -Wthread-safety must reject this
// translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Gate {
 public:
  // BAD: annotated as acquiring mu_, but the body never locks it.
  void enter() CAR_ACQUIRE(mu_) {}
  void leave() CAR_RELEASE(mu_) { mu_.unlock(); }

 private:
  car::util::Mutex mu_;
};

[[maybe_unused]] void use() {
  Gate g;
  g.enter();
  g.leave();
}

}  // namespace
