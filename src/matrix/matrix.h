// Dense matrices over GF(2^8) with the linear algebra needed by
// Reed–Solomon coding: multiplication, Gauss–Jordan inversion, rank.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace car::matrix {

/// Row-major dense matrix over GF(2^8).
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Build from row-major data; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<std::uint8_t> data);

  /// Build from a braced list of rows (for tests/examples). All rows must
  /// have equal length.
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<std::uint8_t>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] std::uint8_t operator()(std::size_t r,
                                        std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::uint8_t& operator()(std::size_t r,
                                         std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access; throws std::out_of_range.
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const std::uint8_t> row(std::size_t r) const;
  [[nodiscard]] std::span<std::uint8_t> row(std::size_t r);

  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
    return data_;
  }

  /// Matrix product over GF(2^8); cols() must equal rhs.rows().
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product; vec.size() must equal cols().
  [[nodiscard]] std::vector<std::uint8_t> apply(
      std::span<const std::uint8_t> vec) const;

  /// Entry-wise addition (XOR); shapes must match.
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;

  [[nodiscard]] bool operator==(const Matrix& rhs) const noexcept = default;

  [[nodiscard]] Matrix transposed() const;

  /// New matrix consisting of the given rows of this one (in order).
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> idx) const;

  /// Gauss–Jordan inverse; requires a square matrix.
  /// Throws std::domain_error when singular.
  [[nodiscard]] Matrix inverted() const;

  /// True when square and invertible (no throw).
  [[nodiscard]] bool invertible() const;

  /// Rank via Gaussian elimination (on a copy).
  [[nodiscard]] std::size_t rank() const;

  /// Multi-line human-readable dump (hex entries), for logs and tests.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace car::matrix
