// car-tidy: the repo's project-specific clang-tidy checks, built as an
// out-of-tree plugin and loaded with `clang-tidy --load=libcar_tidy_checks.so
// --checks=...,car-*` (the lint preset wires this up; see the root
// CMakeLists and docs/architecture.md).
#include "BufferLeaseDisciplineCheck.h"
#include "CheckOnBoundaryCheck.h"
#include "NoAllocInHotPathCheck.h"
#include "NoRawVirtualTimeArithmeticCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {

namespace car {

class CarTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NoAllocInHotPathCheck>("car-no-alloc-in-hot-path");
    Factories.registerCheck<BufferLeaseDisciplineCheck>(
        "car-buffer-lease-discipline");
    Factories.registerCheck<CheckOnBoundaryCheck>("car-check-on-boundary");
    Factories.registerCheck<NoRawVirtualTimeArithmeticCheck>(
        "car-no-raw-virtual-time-arithmetic");
  }
};

}  // namespace car

static ClangTidyModuleRegistry::Add<car::CarTidyModule> X(
    "car-module", "CAR repo invariants: hot-path allocation, lease escape, "
                  "boundary contracts, timeline arithmetic.");

// Anchor so the registration above survives linking.
volatile int CarTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
