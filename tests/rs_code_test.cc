#include "rs/code.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace car::rs {
namespace {

using Params = std::tuple<std::size_t, std::size_t, Code::Construction>;

std::vector<Chunk> random_data(std::size_t k, std::size_t size,
                               util::Rng& rng) {
  std::vector<Chunk> data(k, Chunk(size));
  for (auto& chunk : data) rng.fill_bytes(chunk);
  return data;
}

std::vector<ChunkView> views_of(const std::vector<Chunk>& chunks) {
  return {chunks.begin(), chunks.end()};
}

class RsCodeSweep : public ::testing::TestWithParam<Params> {
 protected:
  std::size_t k_ = std::get<0>(GetParam());
  std::size_t m_ = std::get<1>(GetParam());
  Code code_{k_, m_, std::get<2>(GetParam())};
  util::Rng rng_{k_ * 1000 + m_ * 10 +
                 (std::get<2>(GetParam()) == Code::Construction::kCauchy)};
};

TEST_P(RsCodeSweep, EncodeProducesSystematicStripe) {
  const auto data = random_data(k_, 128, rng_);
  const auto stripe = code_.encode_stripe(views_of(data));
  ASSERT_EQ(stripe.size(), k_ + m_);
  for (std::size_t i = 0; i < k_; ++i) {
    EXPECT_EQ(stripe[i], data[i]) << "systematic data chunk " << i;
  }
}

TEST_P(RsCodeSweep, AnySingleChunkIsReconstructibleFromRandomSurvivors) {
  const auto data = random_data(k_, 64, rng_);
  const auto stripe = code_.encode_stripe(views_of(data));
  const std::size_t n = k_ + m_;

  for (std::size_t lost = 0; lost < n; ++lost) {
    // Three random survivor subsets per lost chunk.
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < n; ++i) {
        if (i != lost) candidates.push_back(i);
      }
      rng_.shuffle(candidates);
      candidates.resize(k_);

      std::vector<ChunkView> chunks;
      for (std::size_t id : candidates) chunks.push_back(stripe[id]);
      const auto rebuilt = code_.reconstruct(lost, candidates, chunks);
      EXPECT_EQ(rebuilt, stripe[lost]) << "lost=" << lost;
    }
  }
}

TEST_P(RsCodeSweep, DecodeDataRecoversAllOriginals) {
  const auto data = random_data(k_, 96, rng_);
  const auto stripe = code_.encode_stripe(views_of(data));
  // Prefer parity-heavy survivor sets to actually exercise decoding.
  std::vector<std::size_t> ids;
  for (std::size_t i = k_ + m_; i-- > 0 && ids.size() < k_;) ids.push_back(i);
  std::vector<ChunkView> chunks;
  for (std::size_t id : ids) chunks.push_back(stripe[id]);
  const auto decoded = code_.decode_data(ids, chunks);
  ASSERT_EQ(decoded.size(), k_);
  for (std::size_t i = 0; i < k_; ++i) EXPECT_EQ(decoded[i], data[i]);
}

TEST_P(RsCodeSweep, RepairVectorForSurvivingDataChunkIsTrivial) {
  // If the "lost" chunk is itself among plausible survivors' span and the
  // survivor set contains all data chunks, reconstructing data chunk i uses
  // y = e_i when survivors are exactly the data chunks.
  if (m_ == 0) GTEST_SKIP();
  std::vector<std::size_t> survivors(k_);
  for (std::size_t i = 0; i < k_; ++i) survivors[i] = i;
  const std::size_t target = k_;  // first parity chunk
  const auto y = code_.repair_vector(target, survivors);
  // y must equal the parity row of the generator.
  const auto row = code_.generator_row(target);
  for (std::size_t i = 0; i < k_; ++i) EXPECT_EQ(y[i], row[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Codes, RsCodeSweep,
    ::testing::Values(
        Params{1, 1, Code::Construction::kVandermonde},
        Params{2, 1, Code::Construction::kVandermonde},
        Params{4, 2, Code::Construction::kVandermonde},
        Params{4, 3, Code::Construction::kVandermonde},
        Params{6, 3, Code::Construction::kVandermonde},
        Params{10, 4, Code::Construction::kVandermonde},
        Params{4, 3, Code::Construction::kCauchy},
        Params{6, 3, Code::Construction::kCauchy},
        Params{10, 4, Code::Construction::kCauchy}));

TEST(RsCode, ConstructionValidation) {
  EXPECT_THROW(Code(0, 3), std::invalid_argument);
  EXPECT_THROW(Code(255, 2), std::invalid_argument);
  EXPECT_NO_THROW(Code(12, 4));
}

TEST(RsCode, EncodeValidation) {
  Code code(4, 2);
  util::Rng rng(1);
  auto data = random_data(3, 16, rng);  // wrong arity
  EXPECT_THROW(code.encode(views_of(data)), std::invalid_argument);
  data = random_data(4, 16, rng);
  data[2].resize(8);  // ragged sizes
  EXPECT_THROW(code.encode(views_of(data)), std::invalid_argument);
}

TEST(RsCode, RepairVectorValidation) {
  Code code(4, 2);
  const std::vector<std::size_t> too_few = {0, 1, 2};
  EXPECT_THROW(code.repair_vector(5, too_few), std::invalid_argument);
  const std::vector<std::size_t> dup = {0, 1, 2, 2};
  EXPECT_THROW(code.repair_vector(5, dup), std::invalid_argument);
  const std::vector<std::size_t> contains_lost = {0, 1, 2, 5};
  EXPECT_THROW(code.repair_vector(5, contains_lost), std::invalid_argument);
  const std::vector<std::size_t> out_of_range = {0, 1, 2, 6};
  EXPECT_THROW(code.repair_vector(5, out_of_range), std::invalid_argument);
  EXPECT_THROW(code.repair_vector(6, {std::vector<std::size_t>{0, 1, 2, 3}}),
               std::invalid_argument);
}

TEST(RsCode, ZeroLengthChunksAreHandled) {
  Code code(3, 2);
  std::vector<Chunk> data(3);
  const auto parity = code.encode(views_of(data));
  ASSERT_EQ(parity.size(), 2u);
  EXPECT_TRUE(parity[0].empty());
}

TEST(RsCode, VandermondeAndCauchyAgreeOnData) {
  // Different generators, same contract: decode returns original data.
  util::Rng rng(2);
  const auto data = random_data(5, 32, rng);
  for (auto construction :
       {Code::Construction::kVandermonde, Code::Construction::kCauchy}) {
    Code code(5, 3, construction);
    const auto stripe = code.encode_stripe(views_of(data));
    const std::vector<std::size_t> ids = {7, 6, 5, 4, 3};
    std::vector<ChunkView> chunks;
    for (auto id : ids) chunks.push_back(stripe[id]);
    const auto decoded = code.decode_data(ids, chunks);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(decoded[i], data[i]);
  }
}

}  // namespace
}  // namespace car::rs
