#include "recovery/plan.h"

#include "util/check.h"

namespace car::recovery {

std::size_t RecoveryPlan::num_transfers() const noexcept {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.kind == StepKind::kTransfer;
  return n;
}

std::size_t RecoveryPlan::num_computes() const noexcept {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.kind == StepKind::kCompute;
  return n;
}

std::uint64_t cross_rack_bytes(std::span<const PlanStep> steps) noexcept {
  std::uint64_t total = 0;
  for (const auto& s : steps) {
    if (s.kind == StepKind::kTransfer && s.cross_rack) total += s.bytes;
  }
  return total;
}

std::uint64_t intra_rack_bytes(std::span<const PlanStep> steps) noexcept {
  std::uint64_t total = 0;
  for (const auto& s : steps) {
    // Loopback moves (src == dst) never leave the node, so they are not
    // network traffic — mirrored by the emulator, which reserves no link
    // capacity for them.
    if (s.kind == StepKind::kTransfer && !s.cross_rack && s.src != s.dst) {
      total += s.bytes;
    }
  }
  return total;
}

std::vector<std::uint64_t> per_rack_cross_bytes(
    std::span<const PlanStep> steps, const cluster::Topology& topology) {
  std::vector<std::uint64_t> per_rack(topology.num_racks(), 0);
  for (const auto& s : steps) {
    if (s.kind == StepKind::kTransfer && s.cross_rack) {
      per_rack[topology.rack_of(s.src)] += s.bytes;
    }
  }
  return per_rack;
}

std::uint64_t compute_bytes(std::span<const PlanStep> steps) noexcept {
  std::uint64_t total = 0;
  for (const auto& s : steps) {
    if (s.kind == StepKind::kCompute) total += s.bytes;
  }
  return total;
}

std::uint64_t RecoveryPlan::cross_rack_bytes() const noexcept {
  return recovery::cross_rack_bytes(std::span<const PlanStep>(steps));
}

std::uint64_t RecoveryPlan::intra_rack_bytes() const noexcept {
  return recovery::intra_rack_bytes(std::span<const PlanStep>(steps));
}

std::vector<std::uint64_t> RecoveryPlan::per_rack_cross_bytes(
    const cluster::Topology& topology) const {
  return recovery::per_rack_cross_bytes(std::span<const PlanStep>(steps),
                                        topology);
}

std::uint64_t RecoveryPlan::compute_bytes() const noexcept {
  return recovery::compute_bytes(std::span<const PlanStep>(steps));
}

namespace {

struct PlanBuilder {
  RecoveryPlan plan;
  const cluster::Topology& topology;

  // Plan-DAG well-formedness: every appended step may only depend on steps
  // that already exist, which keeps the DAG acyclic by construction.
  void check_deps(std::size_t id, const std::vector<std::size_t>& deps) const {
    for (const std::size_t dep : deps) {
      CAR_CHECK_LT(dep, id, "PlanBuilder: dependency on a future step");
    }
  }

  std::size_t add_transfer(cluster::StripeId stripe, cluster::NodeId src,
                           cluster::NodeId dst, BufferRef payload,
                           std::vector<std::size_t> deps) {
    CAR_CHECK_LT(src, topology.num_nodes(), "PlanBuilder: bad src node");
    CAR_CHECK_LT(dst, topology.num_nodes(), "PlanBuilder: bad dst node");
    PlanStep step;
    step.id = plan.steps.size();
    check_deps(step.id, deps);
    step.kind = StepKind::kTransfer;
    step.stripe = stripe;
    step.src = src;
    step.dst = dst;
    step.payload = payload;
    step.cross_rack = topology.rack_of(src) != topology.rack_of(dst);
    step.bytes = plan.chunk_size;
    step.deps = std::move(deps);
    plan.steps.push_back(std::move(step));
    return plan.steps.back().id;
  }

  std::size_t add_compute(cluster::StripeId stripe, cluster::NodeId node,
                          std::vector<ComputeInput> inputs,
                          std::vector<std::size_t> deps) {
    CAR_CHECK_LT(node, topology.num_nodes(), "PlanBuilder: bad compute node");
    CAR_CHECK(!inputs.empty(), "PlanBuilder: compute without inputs");
    PlanStep step;
    step.id = plan.steps.size();
    check_deps(step.id, deps);
    step.kind = StepKind::kCompute;
    step.stripe = stripe;
    step.node = node;
    step.bytes = plan.chunk_size * inputs.size();
    step.inputs = std::move(inputs);
    step.deps = std::move(deps);
    plan.steps.push_back(std::move(step));
    return plan.steps.back().id;
  }
};

}  // namespace

RecoveryPlan build_car_plan(const cluster::Placement& placement,
                            const rs::Code& code,
                            std::span<const PerStripeSolution> solutions,
                            std::uint64_t chunk_size,
                            cluster::NodeId replacement) {
  CAR_CHECK(chunk_size > 0, "build_car_plan: chunk_size must be > 0");
  const auto& topology = placement.topology();
  PlanBuilder b{{}, topology};
  b.plan.replacement = replacement;
  b.plan.replacement_rack = topology.rack_of(replacement);
  b.plan.chunk_size = chunk_size;

  for (const auto& solution : solutions) {
    const auto survivors = solution.all_chunk_indices();
    const auto y = code.repair_vector(solution.lost_chunk, survivors);
    CAR_CHECK_EQ(y.size(), survivors.size(),
                 "build_car_plan: repair vector arity");

    std::size_t position = 0;  // index into survivors / y, follows pick order
    std::vector<std::size_t> partial_transfer_ids;
    std::vector<ComputeInput> final_inputs;

    for (const auto& pick : solution.picks) {
      // The host of the first picked chunk aggregates for this rack.
      const cluster::NodeId aggregator =
          placement.node_of(solution.stripe, pick.chunk_indices.front());

      std::vector<ComputeInput> inputs;
      std::vector<std::size_t> deps;
      for (std::size_t chunk : pick.chunk_indices) {
        const cluster::NodeId host = placement.node_of(solution.stripe, chunk);
        const auto buf = BufferRef::chunk(solution.stripe, chunk);
        if (host != aggregator) {
          deps.push_back(b.add_transfer(solution.stripe, host, aggregator,
                                        buf, {}));
        }
        inputs.push_back({buf, y[position]});
        ++position;
      }
      const std::size_t partial = b.add_compute(
          solution.stripe, aggregator, std::move(inputs), std::move(deps));
      const std::size_t ship =
          b.add_transfer(solution.stripe, aggregator, replacement,
                         BufferRef::step(partial), {partial});
      partial_transfer_ids.push_back(ship);
      final_inputs.push_back({BufferRef::step(partial), 1});
    }

    // Partial-decoding sum: the per-rack partials must cover every survivor
    // term exactly once to reconstruct H_i.
    CAR_CHECK_EQ(position, survivors.size(),
                 "build_car_plan: picks do not cover the survivor set");

    const std::size_t final_step =
        b.add_compute(solution.stripe, replacement, std::move(final_inputs),
                      std::move(partial_transfer_ids));
    b.plan.outputs.push_back(
        {solution.stripe, solution.lost_chunk, final_step});
  }
  return std::move(b.plan);
}

RecoveryPlan build_rr_plan(const cluster::Placement& placement,
                           const rs::Code& code,
                           std::span<const RrSolution> solutions,
                           std::uint64_t chunk_size,
                           cluster::NodeId replacement) {
  CAR_CHECK(chunk_size > 0, "build_rr_plan: chunk_size must be > 0");
  const auto& topology = placement.topology();
  PlanBuilder b{{}, topology};
  b.plan.replacement = replacement;
  b.plan.replacement_rack = topology.rack_of(replacement);
  b.plan.chunk_size = chunk_size;

  for (const auto& solution : solutions) {
    const auto y =
        code.repair_vector(solution.lost_chunk, solution.chunk_indices);

    std::vector<std::size_t> deps;
    std::vector<ComputeInput> inputs;
    for (std::size_t pos = 0; pos < solution.chunk_indices.size(); ++pos) {
      const std::size_t chunk = solution.chunk_indices[pos];
      const cluster::NodeId host = placement.node_of(solution.stripe, chunk);
      const auto buf = BufferRef::chunk(solution.stripe, chunk);
      if (host != replacement) {
        deps.push_back(
            b.add_transfer(solution.stripe, host, replacement, buf, {}));
      }
      inputs.push_back({buf, y[pos]});
    }
    const std::size_t final_step = b.add_compute(
        solution.stripe, replacement, std::move(inputs), std::move(deps));
    b.plan.outputs.push_back(
        {solution.stripe, solution.lost_chunk, final_step});
  }
  return std::move(b.plan);
}

}  // namespace car::recovery
