// Randomised end-to-end property checks over *arbitrary* small clusters —
// random rack shapes, random (k, m), random placements and failures — so the
// pipeline's invariants are exercised far outside the paper's three
// configurations.
#include <gtest/gtest.h>

#include <numeric>

#include "recovery/balancer.h"
#include "recovery/scheduler.h"
#include "simnet/flowsim.h"

namespace car {
namespace {

struct RandomCluster {
  cluster::Topology topology;
  std::size_t k;
  std::size_t m;
  cluster::Placement placement;
};

/// Draw a random feasible cluster: 2-6 racks of 1-6 nodes, k in [2, 10],
/// m in [1, 4], subject to the rack-quota feasibility condition.
RandomCluster draw_cluster(util::Rng& rng, std::size_t stripes) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    const std::size_t racks = 2 + rng.next_below(5);
    std::vector<std::size_t> nodes_per_rack(racks);
    for (auto& n : nodes_per_rack) n = 1 + rng.next_below(6);
    const std::size_t k = 2 + rng.next_below(9);
    const std::size_t m = 1 + rng.next_below(4);

    cluster::Topology topology(nodes_per_rack);
    std::size_t capacity = 0;
    for (std::size_t r = 0; r < racks; ++r) {
      capacity += std::min(topology.nodes_in_rack_count(r), m);
    }
    if (capacity < k + m) continue;

    auto placement = cluster::Placement::random(topology, k, m, stripes, rng);
    return {std::move(topology), k, m, std::move(placement)};
  }
  throw std::logic_error("draw_cluster: no feasible cluster in 100 draws");
}

/// Brute-force minimum rack count for one census (reference for Theorem 1).
std::size_t brute_force_min_racks(const recovery::StripeCensus& census) {
  std::vector<cluster::RackId> intact;
  for (cluster::RackId i = 0; i < census.num_racks(); ++i) {
    if (i != census.failed_rack) intact.push_back(i);
  }
  std::size_t best = intact.size() + 1;
  for (std::size_t mask = 0; mask < (1u << intact.size()); ++mask) {
    std::size_t sum = census.surviving_in_failed_rack();
    std::size_t bits = 0;
    for (std::size_t b = 0; b < intact.size(); ++b) {
      if (mask & (1u << b)) {
        sum += census.surviving[intact[b]];
        ++bits;
      }
    }
    if (sum >= census.k) best = std::min(best, bits);
  }
  return best;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomClusters) {
  util::Rng rng(GetParam() * 0x9E3779B9ULL + 17);
  for (int round = 0; round < 12; ++round) {
    const auto rc = draw_cluster(rng, 8 + rng.next_below(25));
    const auto scenario = cluster::inject_random_failure(rc.placement, rng);
    const auto censuses = recovery::build_censuses(rc.placement, scenario);
    ASSERT_FALSE(censuses.empty());

    // Theorem 1 equals brute force on every stripe.
    for (const auto& census : censuses) {
      ASSERT_EQ(recovery::min_intact_racks(census),
                brute_force_min_racks(census));
    }

    // Balancing: valid minimal solutions, monotone lambda, invariant total.
    const auto initial = recovery::plan_car_initial(rc.placement, censuses);
    const auto balanced =
        recovery::balance_greedy(rc.placement, censuses, {60});
    const auto racks = rc.topology.num_racks();
    const auto t0 =
        recovery::car_traffic(initial, racks, scenario.failed_rack);
    const auto t1 = recovery::car_traffic(balanced.solutions, racks,
                                          scenario.failed_rack);
    ASSERT_EQ(t0.total_chunks(), t1.total_chunks());
    ASSERT_LE(t1.lambda(), t0.lambda() + 1e-12);
    for (std::size_t j = 0; j < censuses.size(); ++j) {
      ASSERT_TRUE(recovery::is_valid_minimal(censuses[j],
                                             balanced.solutions[j].rack_set));
      // Exactly k distinct chunks read.
      const auto all = balanced.solutions[j].all_chunk_indices();
      ASSERT_EQ(all.size(), censuses[j].k);
    }

    // CAR cross-rack traffic never exceeds RR's.
    const auto rr = recovery::plan_rr(rc.placement, censuses, rng);
    const auto rr_sum =
        recovery::rr_traffic(rc.placement, rr, scenario.failed_rack);
    ASSERT_LE(t1.total_chunks(), rr_sum.total_chunks());

    // Plans agree with counting; the simulator completes both and CAR's
    // makespan never exceeds RR's beyond numerical noise... CAR can in
    // principle tie, so assert <=.
    const rs::Code code(rc.k, rc.m);
    constexpr std::uint64_t kChunk = 1ull << 20;
    const auto car_plan = recovery::build_car_plan(
        rc.placement, code, balanced.solutions, kChunk,
        scenario.failed_node);
    ASSERT_EQ(car_plan.cross_rack_bytes(), t1.total_bytes(kChunk));
    const auto rr_plan = recovery::build_rr_plan(rc.placement, code, rr,
                                                 kChunk, scenario.failed_node);
    ASSERT_EQ(rr_plan.cross_rack_bytes(), rr_sum.total_bytes(kChunk));

    const simnet::NetConfig net;
    const auto car_sim =
        simnet::simulate_plan(rc.topology, car_plan, net);
    const auto rr_sim = simnet::simulate_plan(rc.topology, rr_plan, net);
    ASSERT_GT(car_sim.makespan_s, 0.0);
    ASSERT_LE(car_sim.makespan_s, rr_sim.makespan_s * 1.25)
        << "CAR grossly slower than RR on " << rc.topology.to_string()
        << " k=" << rc.k << " m=" << rc.m;

    // Windowed scheduling preserves work and completes.  A tight window is
    // usually slower but max-min fair sharing is not makespan-optimal, so
    // tiny inversions (~1%) are legitimate — assert with slack.
    const auto windowed = recovery::schedule_windowed(car_plan, 2);
    ASSERT_EQ(windowed.cross_rack_bytes(), car_plan.cross_rack_bytes());
    const auto windowed_sim =
        simnet::simulate_plan(rc.topology, windowed, net);
    ASSERT_GE(windowed_sim.makespan_s, car_sim.makespan_s * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(PipelineFuzz, ExhaustiveSmallClusterEveryFailure) {
  // One tiny cluster, every possible node failure, every stripe checked.
  util::Rng rng(99);
  cluster::Topology topology({3, 2, 3, 2});
  auto placement = cluster::Placement::random(topology, 4, 2, 15, rng);
  const rs::Code code(4, 2);
  for (cluster::NodeId node = 0; node < topology.num_nodes(); ++node) {
    const auto scenario = cluster::inject_node_failure(placement, node);
    if (scenario.lost.empty()) continue;
    const auto censuses = recovery::build_censuses(placement, scenario);
    const auto balanced = recovery::balance_greedy(placement, censuses, {60});
    const auto plan = recovery::build_car_plan(
        placement, code, balanced.solutions, 4096, node);
    EXPECT_EQ(plan.outputs.size(), scenario.lost.size());
    const auto sim =
        simnet::simulate_plan(topology, plan, simnet::NetConfig{});
    EXPECT_GT(sim.makespan_s, 0.0);
  }
}

}  // namespace
}  // namespace car
