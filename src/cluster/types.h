// Shared identifier types for the clustered-file-system model.
//
// Nodes are numbered globally 0..N-1 across all racks (rack A1 first, then
// A2, ...).  Chunks of a stripe are numbered 0..k+m-1 (data first, then
// parity), matching the RS codec's convention.
#pragma once

#include <cstddef>

namespace car::cluster {

using NodeId = std::size_t;
using RackId = std::size_t;
using StripeId = std::size_t;

/// Reference to one chunk: which stripe and which index within the stripe.
struct ChunkRef {
  StripeId stripe = 0;
  std::size_t chunk_index = 0;

  friend bool operator==(const ChunkRef&, const ChunkRef&) = default;
};

}  // namespace car::cluster
