#include "gf/gf256.h"

#include <stdexcept>

#include "gf/tables.h"

namespace car::gf {

const Gf256& Gf256::instance() {
  static const Gf256 field;
  return field;
}

Gf256::Gf256() {
  const LogExpTables t = build_log_exp(kWidth);
  for (std::uint32_t i = 0; i < 2 * kOrder; ++i) {
    exp_[i] = static_cast<std::uint8_t>(t.exp[i]);
  }
  for (std::uint32_t x = 0; x < kFieldSize; ++x) {
    log_[x] = static_cast<std::uint8_t>(t.log[x]);
  }
  for (std::uint32_t a = 0; a < kFieldSize; ++a) {
    mul_[a][0] = 0;
    mul_[0][a] = 0;
  }
  for (std::uint32_t a = 1; a < kFieldSize; ++a) {
    for (std::uint32_t b = 1; b < kFieldSize; ++b) {
      mul_[a][b] = exp_[log_[a] + log_[b]];
    }
  }
  inv_[0] = 0;  // sentinel; inv() throws before reading it
  for (std::uint32_t a = 1; a < kFieldSize; ++a) {
    inv_[a] = exp_[kOrder - log_[a]];
  }
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  if (b == 0) throw std::domain_error("Gf256::div: division by zero");
  return mul_[a][inv_[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  if (a == 0) throw std::domain_error("Gf256::inv: zero has no inverse");
  return inv_[a];
}

std::uint8_t Gf256::pow(std::uint8_t a, std::uint64_t e) const noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le =
      (static_cast<std::uint64_t>(log_[a]) * e) % static_cast<std::uint64_t>(kOrder);
  return exp_[le];
}

std::uint8_t Gf256::log(std::uint8_t a) const {
  if (a == 0) throw std::domain_error("Gf256::log: log of zero");
  return log_[a];
}

}  // namespace car::gf
