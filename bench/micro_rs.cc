// Microbenchmarks for the Reed–Solomon codec: encode, single-chunk repair,
// partial decoding, and full decode, at the paper's code parameters.
#include <benchmark/benchmark.h>

#include <vector>

#include "rs/code.h"
#include "rs/partial.h"
#include "util/rng.h"

namespace {

using namespace car;

struct StripeFixture {
  rs::Code code;
  std::vector<rs::Chunk> data;
  std::vector<rs::Chunk> stripe;

  StripeFixture(std::size_t k, std::size_t m, std::size_t chunk_size)
      : code(k, m) {
    util::Rng rng(k * 7 + m);
    data.assign(k, rs::Chunk(chunk_size));
    for (auto& c : data) rng.fill_bytes(c);
    std::vector<rs::ChunkView> views(data.begin(), data.end());
    stripe = code.encode_stripe(views);
  }
};

void BM_Encode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kChunk = 1 << 20;
  StripeFixture f(k, m, kChunk);
  std::vector<rs::ChunkView> views(f.data.begin(), f.data.end());
  for (auto _ : state) {
    auto parity = f.code.encode(views);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * kChunk));
}
BENCHMARK(BM_Encode)->Args({4, 3})->Args({6, 3})->Args({10, 4});

void BM_ReconstructOneChunk(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kChunk = 1 << 20;
  StripeFixture f(k, m, kChunk);
  std::vector<std::size_t> survivors;
  for (std::size_t i = 1; i <= k; ++i) survivors.push_back(i);
  std::vector<rs::ChunkView> chunks;
  for (auto id : survivors) chunks.push_back(f.stripe[id]);
  for (auto _ : state) {
    auto rebuilt = f.code.reconstruct(0, survivors, chunks);
    benchmark::DoNotOptimize(rebuilt.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * kChunk));
}
BENCHMARK(BM_ReconstructOneChunk)->Args({4, 3})->Args({6, 3})->Args({10, 4});

void BM_RepairVector(benchmark::State& state) {
  // Plan-time cost only: inverting the survivor matrix, no data touched.
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const rs::Code code(k, m);
  std::vector<std::size_t> survivors;
  for (std::size_t i = 1; i <= k; ++i) survivors.push_back(i);
  for (auto _ : state) {
    auto y = code.repair_vector(0, survivors);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_RepairVector)->Args({4, 3})->Args({6, 3})->Args({10, 4});

void BM_PartialDecodeRack(benchmark::State& state) {
  // One aggregator combining `group` chunks — the per-rack work of CAR.
  const auto group = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 1 << 20;
  StripeFixture f(10, 4, kChunk);
  std::vector<std::size_t> survivors;
  for (std::size_t i = 1; i <= 10; ++i) survivors.push_back(i);
  std::vector<rs::ChunkView> chunks;
  for (auto id : survivors) chunks.push_back(f.stripe[id]);
  const auto y = f.code.repair_vector(0, survivors);
  rs::PartialGroup g;
  for (std::size_t i = 0; i < group; ++i) g.positions.push_back(i);
  for (auto _ : state) {
    auto partial = rs::partial_decode(y, g, chunks);
    benchmark::DoNotOptimize(partial.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(group * kChunk));
}
BENCHMARK(BM_PartialDecodeRack)->Arg(1)->Arg(2)->Arg(4);

void BM_DecodeAllData(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kChunk = 1 << 18;
  StripeFixture f(k, m, kChunk);
  std::vector<std::size_t> survivors;
  for (std::size_t i = k + m; i-- > 0 && survivors.size() < k;) {
    survivors.push_back(i);
  }
  std::vector<rs::ChunkView> chunks;
  for (auto id : survivors) chunks.push_back(f.stripe[id]);
  for (auto _ : state) {
    auto data = f.code.decode_data(survivors, chunks);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * kChunk));
}
BENCHMARK(BM_DecodeAllData)->Args({4, 3})->Args({10, 4});

}  // namespace

BENCHMARK_MAIN();
