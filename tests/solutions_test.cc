#include "recovery/solutions.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::recovery {
namespace {

StripeCensus make_census(std::vector<std::size_t> chunks,
                         cluster::RackId failed_rack, std::size_t k) {
  StripeCensus census;
  census.stripe = 0;
  census.lost_chunk = 0;
  census.failed_rack = failed_rack;
  census.k = k;
  census.chunks = std::move(chunks);
  census.surviving = census.chunks;
  --census.surviving[failed_rack];
  return census;
}

TEST(Theorem1, PaperFigure4ExampleGivesDTwo) {
  // Censuses (4,1,3,2,4), failure in rack 0, k=8: survivors in A1 = 3,
  // ranked intact counts (4,3,2,1): 4+3+3 = 10 >= 8 -> d = 2.
  const auto census = make_census({4, 1, 3, 2, 4}, 0, 8);
  EXPECT_EQ(min_intact_racks(census), 2u);
}

TEST(Theorem1, ZeroIntactRacksWhenLocalSurvivorsSuffice) {
  // k=2, failed rack still has 3 survivors.
  const auto census = make_census({4, 1, 1}, 0, 2);
  EXPECT_EQ(min_intact_racks(census), 0u);
}

TEST(Theorem1, NeedsAllRacksWhenCountsAreSparse) {
  const auto census = make_census({1, 1, 1, 1, 1}, 0, 4);
  // Local survivors: 0; every intact rack holds exactly 1 -> d = 4.
  EXPECT_EQ(min_intact_racks(census), 4u);
}

TEST(Theorem1, UnrecoverableCensusThrows) {
  const auto census = make_census({1, 1}, 0, 4);  // only 1 survivor total
  EXPECT_THROW(min_intact_racks(census), std::invalid_argument);
}

TEST(Theorem1, MatchesBruteForceOnRandomCensuses) {
  util::Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t r = 2 + rng.next_below(5);
    const std::size_t m = 1 + rng.next_below(5);
    std::vector<std::size_t> chunks(r);
    std::size_t total = 0;
    for (auto& c : chunks) {
      c = rng.next_below(m + 1);
      total += c;
    }
    // Pick a failed rack that holds at least one chunk.
    std::vector<cluster::RackId> occupied;
    for (cluster::RackId i = 0; i < r; ++i) {
      if (chunks[i] > 0) occupied.push_back(i);
    }
    if (occupied.empty()) continue;
    const auto f = occupied[rng.next_below(occupied.size())];
    if (total - 1 == 0) continue;
    const std::size_t k = 1 + rng.next_below(total - 1 + 1);
    if (total - 1 < k) continue;  // unrecoverable; covered elsewhere
    const auto census = make_census(chunks, f, k);

    // Brute force: try every subset of intact racks, find the smallest
    // cardinality that reaches k together with local survivors.
    std::size_t best = r;
    std::vector<cluster::RackId> intact;
    for (cluster::RackId i = 0; i < r; ++i) {
      if (i != f) intact.push_back(i);
    }
    for (std::size_t mask = 0; mask < (1u << intact.size()); ++mask) {
      std::size_t sum = census.surviving_in_failed_rack();
      std::size_t bits = 0;
      for (std::size_t b = 0; b < intact.size(); ++b) {
        if (mask & (1u << b)) {
          sum += chunks[intact[b]];
          ++bits;
        }
      }
      if (sum >= k) best = std::min(best, bits);
    }
    EXPECT_EQ(min_intact_racks(census), best)
        << "trial " << trial << " k=" << k;
  }
}

TEST(EnumerateMinimalSolutions, Figure4HasExactlyTheTwoPaperSolutions) {
  const auto census = make_census({4, 1, 3, 2, 4}, 0, 8);
  const auto solutions = enumerate_minimal_solutions(census);
  // d=2 subsets reaching 8-3=5 chunks: {A3,A5}=7, {A4,A5}=6, {A2,A5}=5,
  // {A3,A4}=5.  (Racks are 0-indexed: A2=1, A3=2, A4=3, A5=4.)
  ASSERT_EQ(solutions.size(), 4u);
  auto has = [&](std::vector<cluster::RackId> racks) {
    return std::find(solutions.begin(), solutions.end(), RackSet{racks}) !=
           solutions.end();
  };
  EXPECT_TRUE(has({2, 4}));
  EXPECT_TRUE(has({3, 4}));
  EXPECT_TRUE(has({1, 4}));
  EXPECT_TRUE(has({2, 3}));
  // The paper's §IV-B explicitly calls out {A3,A5} and {A3,A4} as valid.
}

TEST(EnumerateMinimalSolutions, AllReportedSolutionsAreValid) {
  util::Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t r = 3 + rng.next_below(4);
    std::vector<std::size_t> chunks(r);
    std::size_t total = 0;
    for (auto& c : chunks) {
      c = rng.next_below(5);
      total += c;
    }
    if (chunks[0] == 0 || total < 3) continue;
    const std::size_t k = 2 + rng.next_below(total - 2);
    if (total - 1 < k) continue;
    const auto census = make_census(chunks, 0, k);
    const auto solutions = enumerate_minimal_solutions(census);
    ASSERT_FALSE(solutions.empty());
    for (const auto& set : solutions) {
      EXPECT_TRUE(is_valid_minimal(census, set));
    }
  }
}

TEST(EnumerateMinimalSolutions, DZeroReturnsSingleEmptySet) {
  const auto census = make_census({5, 2, 2}, 0, 3);
  const auto solutions = enumerate_minimal_solutions(census);
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_TRUE(solutions[0].racks.empty());
  EXPECT_TRUE(is_valid_minimal(census, solutions[0]));
}

TEST(DefaultSolution, PicksTheLargestRacks) {
  const auto census = make_census({4, 1, 3, 2, 4}, 0, 8);
  const auto set = default_solution(census);
  // Largest intact censuses: A5 (4) and A3 (3) -> racks {2, 4} sorted.
  EXPECT_EQ(set.racks, (std::vector<cluster::RackId>{2, 4}));
  EXPECT_TRUE(is_valid_minimal(census, set));
}

TEST(IsValidMinimal, RejectsBadSets) {
  const auto census = make_census({4, 1, 3, 2, 4}, 0, 8);
  EXPECT_FALSE(is_valid_minimal(census, RackSet{{1, 3}}));   // 1+2+3 < 8
  EXPECT_FALSE(is_valid_minimal(census, RackSet{{2, 3, 4}})); // not minimal
  EXPECT_FALSE(is_valid_minimal(census, RackSet{{0, 4}}));   // failed rack
  EXPECT_FALSE(is_valid_minimal(census, RackSet{{4, 4}}));   // duplicate
  EXPECT_FALSE(is_valid_minimal(census, RackSet{{4, 9}}));   // out of range
}

TEST(RackSet, ContainsWorks) {
  const RackSet set{{1, 3}};
  EXPECT_TRUE(set.contains(1));
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(2));
}

}  // namespace
}  // namespace car::recovery
