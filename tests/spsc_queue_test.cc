// SpscQueue contract tests: FIFO order across threads, close/drain
// semantics, bounded-capacity backpressure, and the runtime half of the
// single-producer/single-consumer role enforcement (the compile-time half
// lives in tests/negative_compile/).
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/spsc_queue.h"

namespace car {
namespace {

using util::SpscConsumerToken;
using util::SpscProducerToken;
using util::SpscQueue;

TEST(SpscQueue, FifoOrderAcrossThreads) {
  constexpr int kItems = 20000;
  SpscQueue<int> queue(8);
  std::thread producer([&queue] {
    const SpscProducerToken<int> token(queue);
    for (int i = 0; i < kItems; ++i) queue.push(int{i});
    queue.close();
  });
  std::vector<int> seen;
  {
    const SpscConsumerToken<int> token(queue);
    while (auto item = queue.pop()) seen.push_back(*item);
  }
  producer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i) << "position " << i;
  }
}

TEST(SpscQueue, TryPushBackpressuresWhenFull) {
  SpscQueue<int> queue(4);  // capacity rounds to exactly 4
  const SpscProducerToken<int> producer(queue);
  const SpscConsumerToken<int> consumer(queue);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_push(int{i})) << "slot " << i;
  }
  EXPECT_FALSE(queue.try_push(4));  // full: producer must backpressure
  int out = -1;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.try_push(4));  // one slot freed
}

TEST(SpscQueue, PopDrainsItemsPushedBeforeClose) {
  SpscQueue<int> queue(8);
  {
    const SpscProducerToken<int> token(queue);
    queue.push(10);
    queue.push(11);
    queue.push(12);
    queue.close();
  }
  const SpscConsumerToken<int> token(queue);
  EXPECT_EQ(queue.pop(), std::optional<int>(10));
  EXPECT_EQ(queue.pop(), std::optional<int>(11));
  EXPECT_EQ(queue.pop(), std::optional<int>(12));
  EXPECT_EQ(queue.pop(), std::nullopt);  // closed and drained
  EXPECT_EQ(queue.pop(), std::nullopt);  // stays drained
}

TEST(SpscQueue, CloseWithoutItemsEndsStreamImmediately) {
  SpscQueue<int> queue(2);
  {
    const SpscProducerToken<int> token(queue);
    queue.close();
  }
  const SpscConsumerToken<int> token(queue);
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(SpscQueue, MoveOnlyPayloadsMoveThrough) {
  SpscQueue<std::vector<int>> queue(4);
  const SpscProducerToken<std::vector<int>> producer(queue);
  const SpscConsumerToken<std::vector<int>> consumer(queue);
  queue.push(std::vector<int>{1, 2, 3});
  queue.close();
  const auto batch = queue.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(*batch, (std::vector<int>{1, 2, 3}));
}

// A second live token for the same queue end violates the SPSC contract;
// the debug occupancy flag rejects it at runtime (the compile-time
// rejection is proved in tests/negative_compile/).
TEST(SpscQueue, SecondLiveProducerTokenThrows) {
  SpscQueue<int> queue(4);
  const SpscProducerToken<int> first(queue);
  EXPECT_THROW((SpscProducerToken<int>(queue)), util::StateError);
  // Releasing the first token makes the role claimable again.
}

TEST(SpscQueue, SecondLiveConsumerTokenThrows) {
  SpscQueue<int> queue(4);
  {
    const SpscConsumerToken<int> first(queue);
    EXPECT_THROW((SpscConsumerToken<int>(queue)), util::StateError);
  }
  const SpscConsumerToken<int> again(queue);  // fine after release
}

}  // namespace
}  // namespace car
