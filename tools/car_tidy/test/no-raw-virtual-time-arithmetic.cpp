// Fixture for car-no-raw-virtual-time-arithmetic.  Mock plan/clock types
// stand in for recovery/slice.h and emul/clock.h.  This fixture lives
// outside any src/emul/ path, so the now()-arithmetic exemption for the
// emulator layer does not apply here (see the check header).
using uint64 = unsigned long long;

namespace car::emul {
class EmulClock {
 public:
  double now() const;
  void advance_to(double t);
};
}  // namespace car::emul

namespace car::recovery {
uint64 sliced_id(uint64 base_step, uint64 num_slices, uint64 slice);

struct SlicePlan {
  uint64 num_slices = 1;
  uint64 sliced_id(uint64 base_step, uint64 slice) const;
};
}  // namespace car::recovery

// ---- violations -----------------------------------------------------------

uint64 raw_grid_variable(uint64 base, uint64 num_slices, uint64 slice) {
  return base * num_slices + slice;  // EXPECT: raw sliced-id arithmetic
}

uint64 raw_grid_member(const car::recovery::SlicePlan &plan, uint64 base,
                       uint64 slice) {
  return base * plan.num_slices + slice;  // EXPECT: raw sliced-id arithmetic
}

double raw_time_math(const car::emul::EmulClock &clock, double t_start) {
  return clock.now() - t_start;  // EXPECT: raw arithmetic on EmulClock::now()
}

// ---- non-findings ---------------------------------------------------------

// The overflow-checked helpers are the approved spelling.
uint64 grid_via_helper(const car::recovery::SlicePlan &plan, uint64 base,
                       uint64 slice) {
  return plan.sliced_id(base, slice);
}

uint64 grid_via_free_helper(uint64 base, uint64 num_slices, uint64 slice) {
  return car::recovery::sliced_id(base, num_slices, slice);
}

// Multiplying by num_slices without the +slice tail is capacity math, not
// id construction (reserve(steps * num_slices) and friends).
uint64 capacity_math(uint64 steps, uint64 num_slices) {
  return steps * num_slices;
}

// Reading the clock without arithmetic, or advancing through the helper,
// is the approved use.
void time_via_helper(car::emul::EmulClock &clock, double deadline) {
  const double t = clock.now();
  if (t < deadline) clock.advance_to(deadline);
}
