#include "rs/partial.h"

#include <stdexcept>
#include <vector>

#include "gf/region.h"

namespace car::rs {

Chunk partial_decode(std::span<const std::uint8_t> repair_vector,
                     const PartialGroup& group,
                     std::span<const ChunkView> survivor_chunks) {
  if (survivor_chunks.empty()) {
    throw std::invalid_argument("partial_decode: no survivor chunks");
  }
  const std::size_t size = survivor_chunks.front().size();
  Chunk out(size, 0);
  for (std::size_t pos : group.positions) {
    if (pos >= survivor_chunks.size() || pos >= repair_vector.size()) {
      throw std::invalid_argument("partial_decode: position out of range");
    }
    if (survivor_chunks[pos].size() != size) {
      throw std::invalid_argument("partial_decode: chunk size mismatch");
    }
    gf::mul_region_acc(repair_vector[pos], survivor_chunks[pos], out);
  }
  return out;
}

Chunk combine_partials(std::span<const ChunkView> partials) {
  if (partials.empty()) {
    throw std::invalid_argument("combine_partials: empty input");
  }
  Chunk out(partials.front().begin(), partials.front().end());
  for (std::size_t i = 1; i < partials.size(); ++i) {
    if (partials[i].size() != out.size()) {
      throw std::invalid_argument("combine_partials: size mismatch");
    }
    gf::xor_region(partials[i], out);
  }
  return out;
}

Chunk reconstruct_grouped(const Code& code, std::size_t target,
                          std::span<const std::size_t> survivor_ids,
                          std::span<const ChunkView> survivor_chunks,
                          std::span<const PartialGroup> groups) {
  if (survivor_chunks.size() != survivor_ids.size()) {
    throw std::invalid_argument("reconstruct_grouped: ids/chunks mismatch");
  }
  // Check the groups partition the survivor positions exactly.
  std::vector<bool> covered(survivor_ids.size(), false);
  for (const auto& g : groups) {
    for (std::size_t pos : g.positions) {
      if (pos >= covered.size() || covered[pos]) {
        throw std::invalid_argument(
            "reconstruct_grouped: groups must partition survivor positions");
      }
      covered[pos] = true;
    }
  }
  for (bool c : covered) {
    if (!c) {
      throw std::invalid_argument(
          "reconstruct_grouped: some survivor position is unassigned");
    }
  }

  const auto y = code.repair_vector(target, survivor_ids);
  std::vector<Chunk> partials;
  partials.reserve(groups.size());
  for (const auto& g : groups) {
    partials.push_back(partial_decode(y, g, survivor_chunks));
  }
  std::vector<ChunkView> views(partials.begin(), partials.end());
  return combine_partials(views);
}

}  // namespace car::rs
