#include "recovery/census.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::recovery {
namespace {

using cluster::Placement;
using cluster::Topology;

/// Reproduces the paper's Figure 4 layout: five racks of four nodes, the
/// (k=8, m=6) code, first stripe with census (4, 1, 3, 2, 4), failure of the
/// first node in A1.
Placement figure4_placement() {
  Placement p(Topology({4, 4, 4, 4, 4}), 8, 6);
  // Rack A1 -> nodes 0..3, A2 -> 4..7, A3 -> 8..11, A4 -> 12..15,
  // A5 -> 16..19.  Chunk-to-node assignment: 4 chunks in A1, 1 in A2,
  // 3 in A3, 2 in A4, 4 in A5 = 14 chunks.
  p.add_stripe({0, 1, 2, 3,       // A1: 4 chunks (chunk 0 on failing node 0)
                4,                // A2: 1 chunk
                8, 9, 10,         // A3: 3 chunks
                12, 13,           // A4: 2 chunks
                16, 17, 18, 19}); // A5: 4 chunks
  return p;
}

TEST(Census, Figure4CountsMatchThePaper) {
  const auto p = figure4_placement();
  const auto scenario = cluster::inject_node_failure(p, 0);
  ASSERT_EQ(scenario.lost.size(), 1u);

  const auto census = build_census(p, scenario, scenario.lost[0]);
  EXPECT_EQ(census.k, 8u);
  EXPECT_EQ(census.failed_rack, 0u);
  EXPECT_EQ(census.chunks, (std::vector<std::size_t>{4, 1, 3, 2, 4}));
  EXPECT_EQ(census.surviving, (std::vector<std::size_t>{3, 1, 3, 2, 4}));
  EXPECT_EQ(census.surviving_in_failed_rack(), 3u);
  EXPECT_EQ(census.total_surviving(), 13u);
}

TEST(Census, BuildCensusesCoversEveryLostChunk) {
  util::Rng rng(21);
  const auto cfg = cluster::cfs2();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 30, rng);
  const auto scenario = cluster::inject_random_failure(p, rng);
  const auto censuses = build_censuses(p, scenario);
  ASSERT_EQ(censuses.size(), scenario.lost.size());
  for (std::size_t i = 0; i < censuses.size(); ++i) {
    EXPECT_EQ(censuses[i].stripe, scenario.lost[i].stripe);
    EXPECT_EQ(censuses[i].lost_chunk, scenario.lost[i].chunk_index);
    EXPECT_EQ(censuses[i].failed_rack, scenario.failed_rack);
    // Sum of census equals stripe width; surviving = chunks - 1 overall.
    std::size_t total = 0;
    for (auto c : censuses[i].chunks) total += c;
    EXPECT_EQ(total, cfg.k + cfg.m);
    EXPECT_EQ(censuses[i].total_surviving(), total - 1);
  }
}

TEST(Census, SurvivingDecrementsOnlyTheFailedRack) {
  util::Rng rng(22);
  const auto cfg = cluster::cfs3();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 50, rng);
  const auto scenario = cluster::inject_random_failure(p, rng);
  for (const auto& census : build_censuses(p, scenario)) {
    for (cluster::RackId r = 0; r < census.num_racks(); ++r) {
      if (r == census.failed_rack) {
        EXPECT_EQ(census.surviving[r] + 1, census.chunks[r]);
      } else {
        EXPECT_EQ(census.surviving[r], census.chunks[r]);
      }
    }
  }
}

TEST(Census, ScenarioClaimingALossInAnEmptyRackThrows) {
  // Rack 7 (nodes 14, 15) hosts no chunk of the stripe, so a scenario that
  // claims a chunk was lost there is inconsistent.
  Placement wide(Topology({2, 2, 2, 2, 2, 2, 2, 2}), 8, 6);
  wide.add_stripe({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13});
  cluster::FailureScenario lie;
  lie.failed_node = 14;
  lie.failed_rack = 7;
  cluster::LostChunk lost{0, 0};
  EXPECT_THROW(build_census(wide, lie, lost), std::logic_error);
}

}  // namespace
}  // namespace car::recovery
