// CAR_GUARDED_BY violation: writing a guarded member after the RAII lock
// has been released.  -Wthread-safety must reject this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Stats {
 public:
  void bump() {
    car::util::MutexLock lock(mu_);
    ++events_;
    lock.unlock();
    ++events_;  // BAD: the lock was released two lines up.
  }

 private:
  car::util::Mutex mu_;
  int events_ CAR_GUARDED_BY(mu_) = 0;
};

[[maybe_unused]] void use() { Stats{}.bump(); }

}  // namespace
