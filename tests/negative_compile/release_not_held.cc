// CAR_RELEASE violation: releasing a capability that is not held.
// -Wthread-safety must reject this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

car::util::Mutex mu;

[[maybe_unused]] void use() {
  mu.unlock();  // BAD: mu was never locked on this path.
}

}  // namespace
