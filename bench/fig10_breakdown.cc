// Figure 10 reproduction: transmission vs computation time breakdown.
//
// The paper serialises recovery per stripe and measures the decode
// (finite-field) time against the data-movement time at a fixed 8 MiB chunk
// size.  This harness runs the real-byte cluster emulator with stripes
// recovered one at a time (mirroring the paper's measurement procedure),
// using a scaled chunk size so the run completes in seconds; only the
// ratios matter and they are scale-free as long as network/compute scale
// together.
//
//   Fig. 10(a): transmission vs computation share of recovery time.
//   Fig. 10(b): CAR computation time normalised to RR's.
#include <cstdio>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "util/bytes.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 16;
constexpr int kRuns = 2;
constexpr std::uint64_t kChunkSize = 1024 * 1024;  // scaled stand-in for 8 MiB

struct Breakdown {
  double wall_s = 0.0;
  double compute_s = 0.0;
};

car::emul::EmulConfig emul_config() {
  car::emul::EmulConfig cfg;
  // Scaled fabric: the node link is ~1/8 of what the GF kernels sustain, so
  // transmission dominates like on a Gigabit testbed.
  cfg.node_bps = 250e6;
  cfg.oversubscription = 5.0;
  cfg.page_bytes = 32 * 1024;
  // Fully serialised execution: on a single machine, concurrent emulated
  // nodes contend for memory bandwidth and skew the compute measurements —
  // the paper's 20 physical machines have no such coupling.  One step at a
  // time gives contention-free timings; only ratios are reported.
  cfg.max_parallel_steps = 1;
  // This harness deliberately stays on the real clock: its whole point is
  // *measured* GF decode time against data movement.  Virtual-clock mode
  // (used by the large fig7/fig9 sweeps) would model compute instead.
  cfg.clock_mode = car::emul::ClockMode::kReal;
  return cfg;
}

/// Recover the scenario stripe-by-stripe (serialised, like the paper's
/// measurement) and accumulate wall/compute time.
template <typename PlanOneStripe>
Breakdown run_serialised(const car::cluster::CfsConfig& cfg,
                         std::uint64_t seed, PlanOneStripe&& plan_stripe) {
  using namespace car;
  util::Rng rng(seed);
  const auto placement = cluster::Placement::random(cfg.topology(), cfg.k,
                                                    cfg.m, kStripes, rng);
  const rs::Code code(cfg.k, cfg.m);
  emul::Cluster cluster(cfg.topology(), emul_config());
  util::Rng data_rng(seed + 1);
  cluster.populate(placement, code, kChunkSize, data_rng);
  const auto scenario = cluster::inject_random_failure(placement, rng);
  cluster.erase_node(scenario.failed_node);
  const auto censuses = recovery::build_censuses(placement, scenario);

  Breakdown total;
  for (const auto& census : censuses) {
    const auto plan = plan_stripe(placement, code, census, scenario, rng);
    const auto report = cluster.execute(plan);
    total.wall_s += report.wall_s;
    total.compute_s += report.compute_s;
  }
  return total;
}

}  // namespace

int main() {
  using namespace car;
  std::printf("== Figure 10: transmission vs computation breakdown ==\n");
  std::printf("real-byte emulator, serialised per-stripe recovery, %zu "
              "stripes, %s chunks,\n%d runs per configuration\n\n",
              kStripes, util::format_bytes(kChunkSize).c_str(), kRuns);

  util::TextTable table_a({"config", "algorithm", "computation share",
                           "transmission share"});
  util::TextTable table_b({"config", "CAR compute / RR compute"});

  for (const auto& cfg : cluster::paper_configs()) {
    util::RunningStats rr_ratio, car_ratio, normalised;
    for (int run = 0; run < kRuns; ++run) {
      const std::uint64_t seed = 0xF1A00000ULL + run * 739;

      const auto rr = run_serialised(
          cfg, seed,
          [](const auto& placement, const auto& code, const auto& census,
             const auto& scenario, util::Rng& rng) {
            const auto solution =
                recovery::random_recovery(placement, census, rng);
            return recovery::build_rr_plan(placement, code, {&solution, 1},
                                           kChunkSize, scenario.failed_node);
          });

      const auto car = run_serialised(
          cfg, seed,
          [](const auto& placement, const auto& code, const auto& census,
             const auto& scenario, util::Rng&) {
            const auto solution = recovery::materialize(
                placement, census, recovery::default_solution(census));
            return recovery::build_car_plan(placement, code, {&solution, 1},
                                            kChunkSize, scenario.failed_node);
          });

      rr_ratio.add(rr.compute_s / rr.wall_s);
      car_ratio.add(car.compute_s / car.wall_s);
      normalised.add(car.compute_s / rr.compute_s);
    }

    table_a.add_row({cfg.name, "RR",
                     util::fmt_percent(rr_ratio.mean()),
                     util::fmt_percent(1.0 - rr_ratio.mean())});
    table_a.add_row({cfg.name, "CAR",
                     util::fmt_percent(car_ratio.mean()),
                     util::fmt_percent(1.0 - car_ratio.mean())});
    table_b.add_row({cfg.name, util::fmt_double(normalised.mean(), 2)});
  }

  std::printf("-- Fig. 10(a): time shares --\n%s\n",
              table_a.to_string().c_str());
  std::printf("-- Fig. 10(b): computation time, CAR normalised to RR --\n%s\n",
              table_b.to_string().c_str());
  std::printf(
      "Paper reference: transmission dominates everywhere; CAR's compute "
      "share falls\nfrom 11.3%% (CFS1, k=4) to 7.1%% (CFS3, k=10), and "
      "CAR's total decode cost stays\nwithin ~10%% of RR's because partial "
      "decoding only splits the same linear\ncombination across racks.\n");
  return 0;
}
