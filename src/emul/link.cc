#include "emul/link.h"

#include <stdexcept>
#include <thread>

namespace car::emul {

SerialLink::SerialLink(double bytes_per_second)
    : rate_(bytes_per_second), next_free_(Clock::now()) {
  if (bytes_per_second <= 0) {
    throw std::invalid_argument("SerialLink: rate must be positive");
  }
}

SerialLink::Clock::time_point SerialLink::reserve(std::uint64_t bytes) {
  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) / rate_));
  std::scoped_lock lock(mu_);
  const auto now = Clock::now();
  const auto start = next_free_ > now ? next_free_ : now;
  next_free_ = start + duration;
  total_bytes_ += bytes;
  return next_free_;
}

void SerialLink::transmit(std::uint64_t bytes) {
  std::this_thread::sleep_until(reserve(bytes));
}

std::uint64_t SerialLink::bytes_transmitted() const noexcept {
  std::scoped_lock lock(mu_);
  return total_bytes_;
}

}  // namespace car::emul
