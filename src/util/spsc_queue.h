// Bounded single-producer / single-consumer work queue for the streaming
// scan -> plan -> replay pipeline (emul/pipeline.cc).
//
// A classic lock-free ring: the producer owns tail_, the consumer owns
// head_, and each side publishes its index with a release store the other
// side acquire-loads — no mutex anywhere on the hot path.  Capacity is
// rounded up to a power of two; try_push fails when the ring is full
// (bounded queue: the producer backpressures instead of growing), try_pop
// fails when it is empty.
//
// The single-producer / single-consumer contract is what makes the
// index protocol sound, so it is enforced the same way the repo enforces
// mutex discipline: compile-time role capabilities.  push/close require the
// producer role, pop requires the consumer role, and each role is acquired
// through an RAII token (ProducerToken / ConsumerToken) exactly like
// util::MutexLock.  The roles are zero-cost phantom capabilities — they
// exist so Clang's -Wthread-safety analysis rejects a second producer (or a
// pop from the producer thread) at compile time; tests/negative_compile/
// holds the proofs.  A debug CAR_CHECK additionally rejects two live tokens
// of the same role at runtime.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace car::util {

/// A phantom capability tagging one end (producer or consumer) of an SPSC
/// queue.  Nothing is locked — acquire/release only flip a debug-only
/// occupancy flag — but the annotation lets the thread-safety analysis
/// prove each end is driven from exactly one scope at a time.
class CAR_CAPABILITY("spsc role") SpscRole {
 public:
  SpscRole() = default;
  SpscRole(const SpscRole&) = delete;
  SpscRole& operator=(const SpscRole&) = delete;

  void acquire() CAR_ACQUIRE() {
    CAR_CHECK_STATE(!taken_.exchange(true, std::memory_order_acq_rel),
                    "SpscRole: a second token for this queue end — the "
                    "queue is single-producer / single-consumer");
  }
  void release() CAR_RELEASE() {
    taken_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> taken_{false};
};

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (>= 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  [[nodiscard]] SpscRole& producer_role() CAR_RETURN_CAPABILITY(producer_) {
    return producer_;
  }
  [[nodiscard]] SpscRole& consumer_role() CAR_RETURN_CAPABILITY(consumer_) {
    return consumer_;
  }

  /// Producer side.  False when the ring is full.
  [[nodiscard]] bool try_push(T&& value) CAR_REQUIRES(producer_) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: spin (with yields) until the ring has room.
  void push(T value) CAR_REQUIRES(producer_) {
    while (!try_push(std::move(value))) std::this_thread::yield();
  }

  /// Producer side: no more items will be pushed.
  void close() CAR_REQUIRES(producer_) {
    closed_.store(true, std::memory_order_release);
  }

  /// Consumer side.  False when the ring is empty (which does not mean the
  /// stream ended — check closed()).
  [[nodiscard]] bool try_pop(T& out) CAR_REQUIRES(consumer_) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: spin (with yields) until an item arrives or the stream
  /// is closed and drained; nullopt means end-of-stream.
  [[nodiscard]] std::optional<T> pop() CAR_REQUIRES(consumer_) {
    T out;
    for (;;) {
      if (try_pop(out)) return out;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: items pushed before close() may have landed between
        // the failed pop and the closed read.
        if (try_pop(out)) return out;
        return std::nullopt;
      }
      std::this_thread::yield();
    }
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer-owned (head_cache_ mirrors the consumer's index to avoid
  // loading it on every push); consumer-owned tail_cache_ likewise.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ CAR_GUARDED_BY(producer_) = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ CAR_GUARDED_BY(consumer_) = 0;
  std::atomic<bool> closed_{false};
  SpscRole producer_;
  SpscRole consumer_;
};

/// RAII producer role on an SpscQueue — the only sanctioned way to reach
/// push()/close().  Scoped-capability semantics mirror util::MutexLock.
template <typename T>
class CAR_SCOPED_CAPABILITY SpscProducerToken {
 public:
  explicit SpscProducerToken(SpscQueue<T>& queue)
      CAR_ACQUIRE(queue.producer_role())
      : role_(queue.producer_role()) {
    role_.acquire();
  }
  ~SpscProducerToken() CAR_RELEASE() { role_.release(); }

  SpscProducerToken(const SpscProducerToken&) = delete;
  SpscProducerToken& operator=(const SpscProducerToken&) = delete;

 private:
  SpscRole& role_;
};

/// RAII consumer role on an SpscQueue — the only sanctioned way to reach
/// pop().
template <typename T>
class CAR_SCOPED_CAPABILITY SpscConsumerToken {
 public:
  explicit SpscConsumerToken(SpscQueue<T>& queue)
      CAR_ACQUIRE(queue.consumer_role())
      : role_(queue.consumer_role()) {
    role_.acquire();
  }
  ~SpscConsumerToken() CAR_RELEASE() { role_.release(); }

  SpscConsumerToken(const SpscConsumerToken&) = delete;
  SpscConsumerToken& operator=(const SpscConsumerToken&) = delete;

 private:
  SpscRole& role_;
};

}  // namespace car::util
