// Differential tests for slice-pipelined execution: a sliced run must be
// observationally identical to the chunk-granular run — same recovered
// bytes, same traffic accounting, same per-link byte totals — for every
// slice size, including sizes that do not divide the chunk, and under
// injected faults.  Only *timing* may differ (pipelining shrinks the
// makespan); bytes never do.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "inject/scenario.h"
#include "recovery/balancer.h"
#include "recovery/scheduler.h"
#include "recovery/slice.h"
#include "util/buffer_pool.h"

namespace car {
namespace {

using emul::ClockMode;
using emul::Cluster;
using emul::EmulConfig;
using emul::ExecutionReport;

constexpr std::uint64_t kOddChunk = 96 * 1024 + 7;  // no slice size divides it

EmulConfig virtual_config() {
  EmulConfig cfg;
  cfg.node_bps = 200e6;
  cfg.oversubscription = 4.0;
  cfg.page_bytes = 16 * 1024;
  cfg.clock_mode = ClockMode::kVirtual;
  return cfg;
}

/// Everything one emulated recovery produced that slicing must not change.
struct Observed {
  ExecutionReport report;
  std::vector<rs::Chunk> recovered;           // lost chunks, in census order
  std::vector<std::uint64_t> per_link_bytes;  // every link's transmit total
  util::BufferPool::Stats pool;
};

/// Build a cluster from (cfg_index, seed), fail a node, run the CAR plan —
/// sliced onto `slice_size` when > 0, chunk-granular otherwise — and return
/// every observable output.
Observed run_emul(int cfg_index, std::uint64_t seed, std::uint64_t chunk,
                  std::uint64_t slice_size, std::size_t window = 0,
                  std::size_t stripes = 6) {
  const auto cfg = cluster::paper_configs()[cfg_index];
  util::Rng rng(seed);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  const rs::Code code(cfg.k, cfg.m);
  Cluster cluster(cfg.topology(), virtual_config());
  util::Rng data_rng(seed + 1);
  const auto originals = cluster.populate(placement, code, chunk, data_rng);
  const auto scenario = cluster::inject_random_failure(placement, data_rng);
  cluster.erase_node(scenario.failed_node);

  const auto censuses = recovery::build_censuses(placement, scenario);
  const auto balanced = recovery::balance_greedy(placement, censuses, {50});
  auto plan = recovery::build_car_plan(placement, code, balanced.solutions,
                                       chunk, scenario.failed_node);
  if (window > 0) plan = recovery::schedule_windowed(plan, window);

  Observed out;
  out.report = slice_size > 0
                   ? cluster.execute(recovery::slice_plan(plan, slice_size))
                   : cluster.execute(plan);

  for (const auto& lost : scenario.lost) {
    const auto* rec = cluster.find_chunk(scenario.failed_node, lost.stripe,
                                         lost.chunk_index);
    EXPECT_NE(rec, nullptr);
    EXPECT_EQ(*rec, originals[lost.stripe][lost.chunk_index])
        << "stripe " << lost.stripe << " chunk " << lost.chunk_index
        << " slice_size " << slice_size;
    out.recovered.push_back(rec != nullptr ? *rec : rs::Chunk{});
  }
  const auto& topo = cfg.topology();
  for (cluster::NodeId n = 0; n < topo.num_nodes(); ++n) {
    out.per_link_bytes.push_back(cluster.node_up_link(n).bytes_transmitted());
    out.per_link_bytes.push_back(
        cluster.node_down_link(n).bytes_transmitted());
  }
  for (cluster::RackId r = 0; r < topo.num_racks(); ++r) {
    out.per_link_bytes.push_back(cluster.rack_up_link(r).bytes_transmitted());
    out.per_link_bytes.push_back(
        cluster.rack_down_link(r).bytes_transmitted());
  }
  out.pool = cluster.buffer_pool().stats();
  return out;
}

void expect_same_bytes(const Observed& sliced, const Observed& base,
                       std::uint64_t slice_size) {
  ASSERT_EQ(sliced.recovered.size(), base.recovered.size());
  for (std::size_t i = 0; i < base.recovered.size(); ++i) {
    EXPECT_EQ(sliced.recovered[i], base.recovered[i])
        << "recovered chunk " << i << " differs at slice_size " << slice_size;
  }
  EXPECT_EQ(sliced.report.cross_rack_bytes, base.report.cross_rack_bytes);
  EXPECT_EQ(sliced.report.intra_rack_bytes, base.report.intra_rack_bytes);
  EXPECT_EQ(sliced.report.per_rack_cross_bytes,
            base.report.per_rack_cross_bytes);
  EXPECT_EQ(sliced.per_link_bytes, base.per_link_bytes)
      << "per-link byte totals differ at slice_size " << slice_size;
}

// --- randomized differential: sliced == unsliced, byte for byte ----------

class SliceDifferential
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SliceDifferential, EverySliceSizeMatchesChunkGranularExecution) {
  const auto [cfg_index, seed] = GetParam();
  const auto base = run_emul(cfg_index, seed, kOddChunk, 0);
  // The ISSUE's grid: 1 KiB, 64 KiB, chunk_size, chunk_size + 1 — the last
  // two are degenerate single-slice lowerings.
  for (const std::uint64_t slice :
       {std::uint64_t{1024}, std::uint64_t{64 * 1024}, kOddChunk,
        kOddChunk + 1}) {
    const auto sliced = run_emul(cfg_index, seed, kOddChunk, slice);
    expect_same_bytes(sliced, base, slice);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigsAndSeeds, SliceDifferential,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(101u, 202u)));

TEST(SliceDifferential, WindowedSchedulesStayByteIdenticalToo) {
  for (const std::size_t window : {std::size_t{1}, std::size_t{2}}) {
    const auto base = run_emul(0, 77, kOddChunk, 0, window);
    for (const std::uint64_t slice : {std::uint64_t{8 * 1024}, kOddChunk}) {
      const auto sliced = run_emul(0, 77, kOddChunk, slice, window);
      expect_same_bytes(sliced, base, slice);
    }
  }
}

TEST(SliceDifferential, DegenerateSliceReproducesTimingExactly) {
  // slice_size >= chunk_size is the *same computation*: even the virtual
  // makespan must match bit for bit.
  const auto base = run_emul(1, 404, 64 * 1024, 0);
  const auto degenerate = run_emul(1, 404, 64 * 1024, 64 * 1024);
  EXPECT_EQ(degenerate.report.wall_s, base.report.wall_s);
  EXPECT_EQ(degenerate.report.compute_s, base.report.compute_s);
}

TEST(SlicePipelining, SlicedMakespanNeverExceedsUnslicedOnAWindowedPlan) {
  // With one stripe in flight, chunk-granular execution serialises
  // transfer -> aggregate -> ship -> combine; slicing overlaps the stages.
  const auto base = run_emul(1, 515, 1 << 20, 0, 1, 4);
  const auto sliced = run_emul(1, 515, 1 << 20, 64 * 1024, 1, 4);
  EXPECT_LE(sliced.report.wall_s, base.report.wall_s * (1.0 + 1e-9));
  expect_same_bytes(sliced, base, 64 * 1024);
}

// --- scheduler interaction: the pool's high-water bound ------------------

TEST(BufferPoolInteraction, StagingHighWaterStaysUnderWindowTimesStripe) {
  // Staging leases live only while a slice executes; with `window` stripes
  // in flight the peak staging footprint must stay under
  // window * k * chunk_size (it is far smaller — one slice per in-flight
  // step — but the scheduler-level bound is the contract).
  const std::size_t window = 2;
  const std::uint64_t chunk = 256 * 1024;
  const auto cfg = cluster::paper_configs()[0];
  const auto sliced = run_emul(0, 909, chunk, 16 * 1024, window);
  EXPECT_GT(sliced.pool.staging_high_water_bytes, 0u);
  EXPECT_LE(sliced.pool.staging_high_water_bytes,
            static_cast<std::uint64_t>(window) * cfg.k * chunk);
  // The unified mark additionally folds in the long-lived store buffers
  // (take()/recycle() regime), so it dominates the staging mark.
  EXPECT_GE(sliced.pool.high_water_bytes, sliced.pool.staging_high_water_bytes);
}

TEST(BufferPoolInteraction, SteadyStateExecutionHitsTheFreelist) {
  // Across many slices the pool must serve almost every checkout from the
  // freelists — the zero-allocation-per-slice property.
  const auto sliced = run_emul(0, 303, 256 * 1024, 8 * 1024);
  ASSERT_GT(sliced.pool.acquires, 100u);
  EXPECT_GT(sliced.pool.freelist_hits,
            (sliced.pool.acquires + sliced.pool.takes) * 8 / 10);
}

// --- fault scenarios: slicing under drops/corruption/crashes -------------

class CannedScenarioSliced : public ::testing::TestWithParam<std::string> {};

TEST_P(CannedScenarioSliced, RecoversBitExactlyAtEverySliceSize) {
  for (const std::uint64_t slice_bytes :
       {std::uint64_t{1024}, std::uint64_t{16 * 1024}}) {
    auto scenario = inject::canned_scenario(GetParam());
    scenario.slice_bytes = slice_bytes;
    const auto outcome = inject::run_scenario(scenario);
    EXPECT_TRUE(outcome.bit_exact)
        << GetParam() << " slice_bytes=" << slice_bytes << ": "
        << outcome.chunks_verified << "/" << outcome.chunks_expected;
    EXPECT_GT(outcome.chunks_expected, 0u);
  }
}

TEST_P(CannedScenarioSliced, TrafficTotalsMatchChunkGranularRun) {
  auto base = inject::canned_scenario(GetParam());
  if (!base.faults.node_crashes.empty()) {
    // A crash cancels different in-flight work at different granularities,
    // so delivered-byte totals legitimately differ; bit-exactness (above)
    // is the invariant there.
    GTEST_SKIP() << "crash scenarios compare recovered bytes only";
  }
  const auto unsliced = inject::run_scenario(base);
  for (const std::uint64_t slice_bytes :
       {std::uint64_t{1024}, std::uint64_t{16 * 1024}}) {
    auto scenario = inject::canned_scenario(GetParam());
    scenario.slice_bytes = slice_bytes;
    const auto sliced = inject::run_scenario(scenario);
    EXPECT_EQ(sliced.run.report.cross_rack_bytes,
              unsliced.run.report.cross_rack_bytes)
        << GetParam() << " slice_bytes=" << slice_bytes;
    EXPECT_EQ(sliced.run.report.intra_rack_bytes,
              unsliced.run.report.intra_rack_bytes);
    EXPECT_EQ(sliced.run.report.per_rack_cross_bytes,
              unsliced.run.report.per_rack_cross_bytes);
  }
}

TEST_P(CannedScenarioSliced, SameSeedSlicedLogsAreByteIdentical) {
  auto scenario = inject::canned_scenario(GetParam());
  scenario.slice_bytes = 16 * 1024;
  const auto a = inject::run_scenario(scenario);
  const auto b = inject::run_scenario(scenario);
  EXPECT_EQ(a.run.log.to_json(), b.run.log.to_json());
  EXPECT_EQ(a.run.report.wall_s, b.run.report.wall_s);
}

INSTANTIATE_TEST_SUITE_P(AllCanned, CannedScenarioSliced,
                         ::testing::ValuesIn(inject::canned_scenario_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(InjectSliced, DegenerateSliceReproducesTheChunkGranularLog) {
  // slice_bytes >= chunk_bytes must yield the byte-identical EventLog the
  // chunk-granular engine writes — the two paths are one code path.
  auto base = inject::canned_scenario("link-flap");
  const auto unsliced = inject::run_scenario(base);
  auto degenerate = base;
  degenerate.slice_bytes = base.chunk_bytes;
  const auto sliced = inject::run_scenario(degenerate);
  EXPECT_EQ(sliced.run.log.to_json(), unsliced.run.log.to_json());
}

}  // namespace
}  // namespace car
