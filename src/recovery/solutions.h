// Theorem 1 (minimum number of intact racks) and enumeration of all valid
// minimal rack-level recovery solutions for a stripe.
//
// A rack-level solution is the set of intact racks contacted; with partial
// decoding each contacted intact rack contributes exactly one cross-rack
// chunk, so minimising |set| minimises cross-rack repair traffic for the
// stripe, and enumerating the sets of minimum size gives the substitution
// candidates Algorithm 2 needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/types.h"
#include "recovery/census.h"

namespace car::recovery {

/// A valid minimal rack-level recovery solution: the intact racks to contact
/// (sorted ascending).  The failed rack's surviving chunks are always used
/// in addition (intra-rack, free at the rack level).
struct RackSet {
  std::vector<cluster::RackId> racks;

  [[nodiscard]] bool contains(cluster::RackId rack) const noexcept;
  friend bool operator==(const RackSet&, const RackSet&) = default;
};

/// Theorem 1: minimum number of intact racks d_j that must be contacted to
/// gather k chunks for stripe j.  Throws std::invalid_argument when even all
/// racks together cannot provide k chunks (placement bug).
std::size_t min_intact_racks(const StripeCensus& census);

/// All valid minimal solutions: every subset S of intact racks with
/// |S| == min_intact_racks and sum_{i in S} c_{i,j} + c'_{f,j} >= k.
/// Racks with zero chunks never appear in a solution.
std::vector<RackSet> enumerate_minimal_solutions(const StripeCensus& census);

/// The paper's initial pick (Algorithm 2 step 2): the minimal solution using
/// the intact racks with the most chunks (ties by lower rack id).
RackSet default_solution(const StripeCensus& census);

/// Check a rack set is a valid minimal solution for this census.
bool is_valid_minimal(const StripeCensus& census, const RackSet& set);

// ---------------------------------------------------------------------------
// Generalised core (shared with multi-failure recovery, recovery/multi.h).
// `available[i]` is how many chunks rack i can contribute; `home` is the
// rack hosting the replacement node, whose chunks are free at the rack level.
// ---------------------------------------------------------------------------

/// Minimum number of non-home racks whose available chunks, together with
/// the home rack's, reach `needed`.  Throws std::invalid_argument when the
/// total available is below `needed`.
std::size_t min_racks_for(std::size_t needed, cluster::RackId home,
                          std::span<const std::size_t> available);

/// All minimal rack sets for the generalised problem (see min_racks_for).
std::vector<RackSet> enumerate_rack_sets(
    std::size_t needed, cluster::RackId home,
    std::span<const std::size_t> available);

/// The default (largest racks first) minimal rack set.
RackSet default_rack_set(std::size_t needed, cluster::RackId home,
                         std::span<const std::size_t> available);

/// Validity check for the generalised problem.
bool is_valid_minimal_for(std::size_t needed, cluster::RackId home,
                          std::span<const std::size_t> available,
                          const RackSet& set);

}  // namespace car::recovery
