// CAR_REQUIRES violation: calling a function that requires a capability
// without holding it.  -Wthread-safety must reject this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  // BAD: apply() requires mu, which deposit() never takes.
  void deposit(int amount) { apply(amount); }

  car::util::Mutex mu;

 private:
  void apply(int amount) CAR_REQUIRES(mu) { balance_ += amount; }

  int balance_ CAR_GUARDED_BY(mu) = 0;
};

[[maybe_unused]] void use() { Account{}.deposit(1); }

}  // namespace
