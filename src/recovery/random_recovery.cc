#include "recovery/random_recovery.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace car::recovery {

RrSolution random_recovery(const cluster::Placement& placement,
                           const StripeCensus& census, util::Rng& rng) {
  const std::size_t n = placement.chunks_per_stripe();
  std::vector<std::size_t> survivors;
  survivors.reserve(n - 1);
  for (std::size_t c = 0; c < n; ++c) {
    if (c != census.lost_chunk) survivors.push_back(c);
  }
  CAR_CHECK_GE(survivors.size(), census.k,
               "random_recovery: fewer than k survivors");
  rng.shuffle(survivors);
  survivors.resize(census.k);
  std::sort(survivors.begin(), survivors.end());

  RrSolution solution;
  solution.stripe = census.stripe;
  solution.lost_chunk = census.lost_chunk;
  solution.chunk_indices = std::move(survivors);
  return solution;
}

std::vector<RrSolution> plan_rr(const cluster::Placement& placement,
                                const std::vector<StripeCensus>& censuses,
                                util::Rng& rng) {
  std::vector<RrSolution> out;
  out.reserve(censuses.size());
  for (const auto& census : censuses) {
    out.push_back(random_recovery(placement, census, rng));
  }
  return out;
}

}  // namespace car::recovery
