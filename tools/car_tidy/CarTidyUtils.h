// Shared helpers for the car-tidy checks.
#pragma once

#include "clang/Basic/SourceManager.h"
#include "clang/Lex/Lexer.h"

namespace clang::tidy::car {

/// True when `Loc` lies inside the expansion of a CAR_CHECK* / CAR_DCHECK*
/// contract macro (util/check.h).  The message arguments of those macros are
/// only evaluated on the failure path, so allocation inside them is not hot
/// — every check exempts these expansions.
inline bool isInCarCheckMacro(SourceLocation Loc, const SourceManager &SM,
                              const LangOptions &LangOpts) {
  while (Loc.isMacroID()) {
    const StringRef Name =
        Lexer::getImmediateMacroNameForDiagnostics(Loc, SM, LangOpts);
    if (Name.starts_with("CAR_CHECK") || Name.starts_with("CAR_DCHECK"))
      return true;
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  return false;
}

}  // namespace clang::tidy::car
