// Shared execution of a compute PlanStep's linear combination.
//
// The emulator (emul/cluster.cc) and the resilient runtime
// (inject/runtime.cc) both execute compute steps over real chunk buffers;
// this helper is the single implementation of the step contract they used to
// duplicate: every gathered input has the same size, the step's declared
// compute volume equals |inputs| * chunk size, and the output is the fused
// GF(2^8) combination sum_i coeff_i * input_i.
#pragma once

#include <span>
#include <string>

#include "recovery/plan.h"
#include "rs/code.h"
#include "util/attributes.h"

namespace car::recovery {

/// Widest linear combination a GF(2^8) code can express: a step combining
/// more than 256 inputs would need more distinct coefficients than the
/// field has non-zero elements.  Bounds the scratch arrays in
/// execute_compute_slice so the per-slice hot path never allocates.
inline constexpr std::size_t kMaxComputeInputs = 256;

/// Evaluates compute step `step` over `inputs` (one non-null buffer per
/// step.inputs entry, in the same order) and returns the combined chunk.
/// Throws util::StateError on any contract violation; `context` prefixes the
/// failure messages so callers keep their own error voice ("Cluster::execute",
/// "inject", ...).
[[nodiscard]] rs::Chunk execute_compute_step(
    const PlanStep& step, std::span<const rs::Chunk* const> inputs,
    const std::string& context);

/// Slice-granular variant (recovery/slice.h): evaluates `step`'s linear
/// combination over bytes [offset, offset + out.size()) of each full-chunk
/// input, writing the result into `out`.  `step` is the *sliced* step, so
/// its declared bytes must equal out.size() * |inputs|; every input buffer
/// must hold a full chunk of `chunk_size` bytes.  `out` must not alias any
/// input (the kernels' linear_combine contract) — executors stage it
/// through a pool lease.  Throws util::StateError on contract violations.
CAR_HOT void execute_compute_slice(const PlanStep& step,
                                   std::span<const rs::Chunk* const> inputs,
                                   std::uint64_t chunk_size,
                                   std::uint64_t offset,
                                   std::span<std::uint8_t> out,
                                   const std::string& context);

}  // namespace car::recovery
