#include "NoRawVirtualTimeArithmeticCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::car {

void NoRawVirtualTimeArithmeticCheck::registerMatchers(MatchFinder *Finder) {
  // Anything whose spelled name contains "num_slices": a variable, a data
  // member (num_slices_), or an accessor call (plan.num_slices()).
  const auto NumSlices = expr(ignoringParenImpCasts(
      anyOf(declRefExpr(to(namedDecl(matchesName("num_slices")))),
            memberExpr(member(matchesName("num_slices"))),
            cxxMemberCallExpr(
                callee(cxxMethodDecl(matchesName("num_slices")))))));

  const auto GridMul = binaryOperator(hasOperatorName("*"),
                                      hasEitherOperand(NumSlices));
  Finder->addMatcher(
      binaryOperator(hasOperatorName("+"),
                     hasEitherOperand(ignoringParenImpCasts(GridMul)),
                     unless(hasAncestor(functionDecl(hasName("sliced_id")))))
          .bind("grid"),
      this);

  const auto NowCall = cxxMemberCallExpr(callee(
      cxxMethodDecl(hasName("now"), ofClass(hasName("EmulClock")))));
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("+", "-", "*", "/"),
                     hasEitherOperand(ignoringParenImpCasts(NowCall)))
          .bind("time"),
      this);
}

void NoRawVirtualTimeArithmeticCheck::check(
    const MatchFinder::MatchResult &Result) {
  if (const auto *Grid = Result.Nodes.getNodeAs<BinaryOperator>("grid")) {
    diag(Grid->getOperatorLoc(),
         "raw sliced-id arithmetic ('base * num_slices + slice'); use the "
         "overflow-checked recovery::sliced_id / SlicePlan::sliced_id / "
         "PlanArena::sliced_id helpers instead");
    return;
  }
  const auto *Time = Result.Nodes.getNodeAs<BinaryOperator>("time");
  if (Time == nullptr) return;
  // The emulator layer implements the timeline helpers; arithmetic on the
  // clock is its job.  Everyone else must go through those helpers.
  const SourceManager &SM = *Result.SourceManager;
  const StringRef File =
      SM.getFilename(SM.getExpansionLoc(Time->getOperatorLoc()));
  if (File.contains("/emul/")) return;
  diag(Time->getOperatorLoc(),
       "raw arithmetic on EmulClock::now(); virtual-time math outside "
       "src/emul must go through the clock/link helpers (sleep_until, "
       "advance_to, SerialLink::reserve/preview)");
}

}  // namespace clang::tidy::car
