#include "gf/galois.h"

#include <stdexcept>

namespace car::gf {

std::uint32_t Field::inv(std::uint32_t a) const {
  if (a == 0) throw std::domain_error("Field::inv: zero has no inverse");
  return tables_.exp[order() - tables_.log[a]];
}

std::uint32_t Field::div(std::uint32_t a, std::uint32_t b) const {
  if (b == 0) throw std::domain_error("Field::div: division by zero");
  if (a == 0) return 0;
  return tables_.exp[tables_.log[a] + order() - tables_.log[b]];
}

std::uint32_t Field::pow(std::uint32_t a, std::uint64_t e) const noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(tables_.log[a]) * e) %
                           static_cast<std::uint64_t>(order());
  return tables_.exp[le];
}

std::uint32_t Field::log(std::uint32_t a) const {
  if (a == 0) throw std::domain_error("Field::log: log of zero");
  return tables_.log[a];
}

}  // namespace car::gf
