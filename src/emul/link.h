// Serial link emulation for the in-process cluster emulator.
//
// A SerialLink models a store-and-forward network link of a fixed rate.
// Each transmission *reserves* link occupancy of bytes/rate seconds on an
// abstract timeline (seconds since the owning cluster's epoch), so
// concurrent transfers through a shared (e.g. oversubscribed rack) link
// really contend with each other.  Reservations are non-blocking and
// clock-agnostic: the caller supplies the earliest start time and decides
// what the returned finish time means — the real-time executor sleeps until
// it on the wall clock, the virtual-clock timing pass simply advances the
// simulated clock (see emul/clock.h).  Either way a multi-hop transfer
// pipelines across its links: it completes when the slowest hop drains, not
// after the sum of hops.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace car::emul {

class SerialLink {
 public:
  /// rate in bytes/second; must be positive.
  explicit SerialLink(double bytes_per_second);

  /// Reserve link occupancy for `bytes`, starting no earlier than timeline
  /// second `start` and no earlier than the link is free.  Returns the
  /// timeline second at which the last byte leaves the link.  Does not
  /// block; thread-safe.
  double reserve(double start, std::uint64_t bytes);

  /// Wall-clock convenience for standalone use (tests, demos): reserve
  /// against real elapsed time since construction and block until the bytes
  /// have traversed.
  void transmit(std::uint64_t bytes);

  [[nodiscard]] double rate() const noexcept { return rate_; }

  /// Total bytes ever reserved on this link (for accounting/tests).
  [[nodiscard]] std::uint64_t bytes_transmitted() const noexcept;

 private:
  double rate_;
  std::chrono::steady_clock::time_point epoch_;  // transmit() only
  mutable std::mutex mu_;
  double next_free_ = 0.0;  // timeline seconds
  std::uint64_t total_bytes_ = 0;
};

}  // namespace car::emul
