#include "recovery/planner.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace car::recovery {

std::vector<std::size_t> PerStripeSolution::all_chunk_indices() const {
  std::vector<std::size_t> out;
  for (const auto& pick : picks) {
    out.insert(out.end(), pick.chunk_indices.begin(),
               pick.chunk_indices.end());
  }
  return out;
}

PerStripeSolution materialize(const cluster::Placement& placement,
                              const StripeCensus& census, const RackSet& set) {
  CAR_CHECK(is_valid_minimal(census, set),
            "materialize: rack set is not a valid minimal solution");

  PerStripeSolution solution;
  solution.stripe = census.stripe;
  solution.lost_chunk = census.lost_chunk;
  solution.rack_set = set;
  std::sort(solution.rack_set.racks.begin(), solution.rack_set.racks.end());

  std::size_t needed = census.k;

  // 1) All survivors in the failed rack — intra-rack reads are cheap and
  //    maximise what the chosen intact racks can be trimmed by.
  {
    auto local = placement.chunk_indices_in_rack(census.stripe,
                                                 census.failed_rack);
    std::erase(local, census.lost_chunk);
    if (!local.empty()) {
      const std::size_t take = std::min(local.size(), needed);
      local.resize(take);
      needed -= take;
      solution.picks.push_back({census.failed_rack, std::move(local)});
    }
  }

  // 2) Chosen intact racks, largest census first, trimming the last.
  std::vector<cluster::RackId> order = set.racks;
  std::stable_sort(order.begin(), order.end(),
                   [&](cluster::RackId a, cluster::RackId b) {
                     return census.chunks[a] > census.chunks[b];
                   });
  for (cluster::RackId rack : order) {
    if (needed == 0) {
      // Would leave a chosen rack contributing nothing — the set was not
      // minimal after all; is_valid_minimal should have rejected it.
      throw std::logic_error("materialize: chosen rack contributes no chunk");
    }
    auto indices = placement.chunk_indices_in_rack(census.stripe, rack);
    const std::size_t take = std::min(indices.size(), needed);
    indices.resize(take);
    needed -= take;
    solution.picks.push_back({rack, std::move(indices)});
  }

  if (needed != 0) {
    throw std::logic_error("materialize: could not gather k chunks");
  }
  return solution;
}

std::vector<PerStripeSolution> plan_car_initial(
    const cluster::Placement& placement,
    const std::vector<StripeCensus>& censuses) {
  std::vector<PerStripeSolution> out;
  out.reserve(censuses.size());
  for (const auto& census : censuses) {
    out.push_back(materialize(placement, census, default_solution(census)));
  }
  return out;
}

}  // namespace car::recovery
