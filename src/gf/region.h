// Bulk (region) operations over GF(2^8) buffers.
//
// These are the kernels the Reed–Solomon codec spends its time in: multiply a
// whole chunk by a coefficient and accumulate into a destination chunk.
// All functions require dst.size() == src.size(); they throw
// std::invalid_argument otherwise.  Buffers may not alias unless stated.
#pragma once

#include <cstdint>
#include <span>

namespace car::gf {

/// dst ^= src (characteristic-2 addition of two regions). dst may equal src
/// (result is then all zeros) but partial overlap is undefined.
void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

/// dst = c * src.  c == 0 zeroes dst; c == 1 copies.
void mul_region(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);

/// dst ^= c * src — the fused multiply-accumulate used by encode/decode.
void mul_region_acc(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst);

/// In-place dst *= c.
void scale_region(std::uint8_t c, std::span<std::uint8_t> dst);

/// Zero a region.
void zero_region(std::span<std::uint8_t> dst) noexcept;

/// Dot product of coefficient vector and chunk rows:
/// out = sum_i coeffs[i] * rows[i]; rows.size() == coeffs.size() required.
/// `rows` are equally sized chunks; `out` must match their size.
void linear_combine(std::span<const std::uint8_t> coeffs,
                    std::span<const std::span<const std::uint8_t>> rows,
                    std::span<std::uint8_t> out);

}  // namespace car::gf
