// SPSC role violation: pushing into the queue without holding the producer
// role token.  try_push is CAR_REQUIRES(producer_), so -Wthread-safety must
// reject this translation unit.
#include "util/spsc_queue.h"

namespace {

[[maybe_unused]] void use() {
  car::util::SpscQueue<int> queue(8);
  // BAD: no SpscProducerToken in scope — a second thread could be the
  // producer, and two producers break the lock-free index protocol.
  (void)queue.try_push(1);
}

}  // namespace
