// CAR_GUARDED_BY violation: reading a guarded member without holding its
// mutex.  -Wthread-safety must reject this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  // BAD: value_ is guarded by mu_, which is not held here.
  [[nodiscard]] int read_unlocked() const { return value_; }

 private:
  mutable car::util::Mutex mu_;
  int value_ CAR_GUARDED_BY(mu_) = 0;
};

[[maybe_unused]] int use() {
  const Counter c;
  return c.read_unlocked();
}

}  // namespace
