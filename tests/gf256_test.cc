#include "gf/gf256.h"

#include <gtest/gtest.h>

#include "gf/galois.h"
#include "gf/tables.h"

namespace car::gf {
namespace {

TEST(Gf256, MatchesGenericFieldExhaustively) {
  const auto& fast = Gf256::instance();
  const Field slow(8);
  for (std::uint32_t a = 0; a < 256; ++a) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      ASSERT_EQ(fast.mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)),
                slow.mul(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256, MulRowIsTheMultiplicationTableRow) {
  const auto& f = Gf256::instance();
  for (std::uint32_t c : {0u, 1u, 2u, 3u, 0x53u, 0xFFu}) {
    const std::uint8_t* row = f.mul_row(static_cast<std::uint8_t>(c));
    for (std::uint32_t x = 0; x < 256; ++x) {
      ASSERT_EQ(row[x], f.mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(x)));
    }
  }
}

TEST(Gf256, InverseRoundTripsForAllNonzero) {
  const auto& f = Gf256::instance();
  for (std::uint32_t a = 1; a < 256; ++a) {
    EXPECT_EQ(f.mul(static_cast<std::uint8_t>(a),
                    f.inv(static_cast<std::uint8_t>(a))),
              1u);
  }
}

TEST(Gf256, DivisionInvertsMultiplicationForAllPairs) {
  const auto& f = Gf256::instance();
  for (std::uint32_t a = 0; a < 256; a += 3) {
    for (std::uint32_t b = 1; b < 256; b += 5) {
      const auto product = f.mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b));
      EXPECT_EQ(f.div(product, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(Gf256, ExpLogAreConsistent) {
  const auto& f = Gf256::instance();
  for (std::uint32_t i = 0; i < Gf256::kOrder; ++i) {
    EXPECT_EQ(f.log(f.exp(i)), i);
  }
  // exp wraps modulo the group order.
  EXPECT_EQ(f.exp(Gf256::kOrder), f.exp(0));
  EXPECT_EQ(f.exp(Gf256::kOrder + 7), f.exp(7));
}

TEST(Gf256, PowMatchesRepeatedMul) {
  const auto& f = Gf256::instance();
  for (std::uint32_t a : {0u, 1u, 2u, 29u, 255u}) {
    std::uint8_t expected = 1;
    for (std::uint64_t e = 0; e < 20; ++e) {
      EXPECT_EQ(f.pow(static_cast<std::uint8_t>(a), e), expected);
      expected = f.mul(expected, static_cast<std::uint8_t>(a));
    }
  }
  // Large exponents reduce mod 255.
  EXPECT_EQ(f.pow(2, 255), 1u);
  EXPECT_EQ(f.pow(2, 256), 2u);
}

TEST(Gf256, ZeroOperandsThrow) {
  const auto& f = Gf256::instance();
  EXPECT_THROW((void)f.inv(0), std::domain_error);
  EXPECT_THROW((void)f.div(7, 0), std::domain_error);
  EXPECT_THROW((void)f.log(0), std::domain_error);
  EXPECT_EQ(f.div(0, 7), 0u);
}

}  // namespace
}  // namespace car::gf
