// Incremental parity updates (delta encoding).
//
// When data chunk D_i of an encoded stripe is overwritten, the parities need
// not be re-encoded from all k data chunks: each parity P_j changes by
//   P_j ^= g_{k+j, i} * (D_i_old ^ D_i_new)
// so an update ships one delta chunk to each parity host instead of reading
// the whole stripe (the parity-logging insight of CodFS [Chan et al.,
// FAST'14], which the paper cites as the update-path complement to CAR's
// recovery path).
#pragma once

#include <cstddef>
#include <vector>

#include "rs/code.h"

namespace car::rs {

/// delta = old_data ^ new_data for a data chunk (what the writer ships).
/// Throws std::invalid_argument on size mismatch.
[[nodiscard]] Chunk data_delta(ChunkView old_data, ChunkView new_data);

/// The parity-side update for parity j in [0, m): returns
/// g_{k+j, data_index} * delta, ready to be XORed into the stored parity.
/// Throws std::invalid_argument on bad indices.
[[nodiscard]] Chunk parity_delta(const Code& code, std::size_t data_index,
                                 std::size_t parity_index, ChunkView delta);

/// All m parity deltas for one data-chunk update.
[[nodiscard]] std::vector<Chunk> parity_deltas(const Code& code,
                                               std::size_t data_index,
                                               ChunkView delta);

/// In-place application: parity ^= update.  (Alias of gf::xor_region with
/// validation, named for call-site clarity.)
void apply_parity_delta(ChunkView update, std::span<std::uint8_t> parity);

}  // namespace car::rs
