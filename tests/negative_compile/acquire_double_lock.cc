// CAR_ACQUIRE violation: acquiring a capability that is already held
// (self-deadlock on a non-recursive mutex).  -Wthread-safety must reject
// this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

car::util::Mutex mu;

[[maybe_unused]] void use() {
  car::util::MutexLock outer(mu);
  car::util::MutexLock inner(mu);  // BAD: mu is already held.
}

}  // namespace
