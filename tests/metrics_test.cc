#include "recovery/metrics.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "recovery/balancer.h"

namespace car::recovery {
namespace {

using cluster::Placement;
using cluster::Topology;

TEST(TrafficSummary, TotalsAndLambda) {
  TrafficSummary summary;
  summary.failed_rack = 0;
  summary.per_rack_chunks = {0, 4, 2, 2, 1};
  EXPECT_EQ(summary.total_chunks(), 9u);
  EXPECT_EQ(summary.total_bytes(1024), 9u * 1024u);
  // λ = 4 / (9/4) = 16/9 — the paper's Figure 6(a) value.
  EXPECT_NEAR(summary.lambda(), 16.0 / 9.0, 1e-12);
}

TEST(TrafficSummary, Figure6AfterSubstitution) {
  TrafficSummary summary;
  summary.failed_rack = 0;
  summary.per_rack_chunks = {0, 3, 3, 2, 1};
  // λ = 3 / (9/4) = 12/9 — Figure 6(b).
  EXPECT_NEAR(summary.lambda(), 12.0 / 9.0, 1e-12);
}

TEST(TrafficSummary, NoTrafficGivesLambdaOne) {
  TrafficSummary summary;
  summary.failed_rack = 0;
  summary.per_rack_chunks = {0, 0, 0};
  EXPECT_EQ(summary.total_chunks(), 0u);
  EXPECT_EQ(summary.lambda(), 1.0);
}

TEST(CarTraffic, CountsOnePartialChunkPerAccessedRack) {
  PerStripeSolution s1;
  s1.rack_set.racks = {1, 2};
  PerStripeSolution s2;
  s2.rack_set.racks = {1};
  PerStripeSolution s3;
  s3.rack_set.racks = {};  // local-only recovery
  const auto summary = car_traffic({s1, s2, s3}, 4, 0);
  EXPECT_EQ(summary.per_rack_chunks,
            (std::vector<std::size_t>{0, 2, 1, 0}));
  EXPECT_EQ(summary.total_chunks(), 3u);
}

TEST(RrTraffic, CountsEveryChunkOutsideTheFailedRack) {
  // Layout: rack0 = nodes {0,1}, rack1 = {2,3}, rack2 = {4,5}.
  Placement p(Topology({2, 2, 2}), 3, 2);
  p.add_stripe({0, 1, 2, 3, 4});  // chunks 0-4
  RrSolution solution;
  solution.stripe = 0;
  solution.lost_chunk = 0;
  solution.chunk_indices = {1, 2, 4};  // hosts: node1(r0), node2(r1), node4(r2)
  const auto summary = rr_traffic(p, {solution}, 0);
  EXPECT_EQ(summary.per_rack_chunks, (std::vector<std::size_t>{0, 1, 1}));
  EXPECT_EQ(summary.total_chunks(), 2u);
}

TEST(CarVsRr, CarNeverExceedsRrCrossRackTraffic) {
  // Property over the paper's three configurations and several seeds: with
  // aggregation, CAR's per-stripe cross-rack chunks (= racks accessed) can
  // never exceed RR's (= fetched chunks outside the failed rack).
  for (const auto& cfg : cluster::paper_configs()) {
    for (std::uint64_t seed : {10u, 20u, 30u}) {
      util::Rng rng(seed);
      const auto p =
          Placement::random(cfg.topology(), cfg.k, cfg.m, 100, rng);
      const auto scenario = cluster::inject_random_failure(p, rng);
      const auto censuses = build_censuses(p, scenario);

      const auto car = balance_greedy(p, censuses, {50});
      const auto rr = plan_rr(p, censuses, rng);

      const auto racks = p.topology().num_racks();
      const auto car_sum =
          car_traffic(car.solutions, racks, scenario.failed_rack);
      const auto rr_sum = rr_traffic(p, rr, scenario.failed_rack);
      EXPECT_LE(car_sum.total_chunks(), rr_sum.total_chunks())
          << cfg.name << " seed " << seed;

      // Per-stripe lower bound: CAR uses exactly d_j racks, the minimum.
      std::size_t expected = 0;
      for (const auto& census : censuses) {
        expected += min_intact_racks(census);
      }
      EXPECT_EQ(car_sum.total_chunks(), expected);
    }
  }
}

}  // namespace
}  // namespace car::recovery
