// Failure traces and long-horizon recovery studies.
//
// The paper evaluates one failure at a time; operators care about the
// integral: over weeks of operation, how much core-network traffic and how
// many node-hours of reduced redundancy does each recovery strategy cost?
// This module generates Poisson failure traces and replays them against a
// placement, recovering each failure with CAR or RR on the flow-level
// simulator and accumulating fleet-level metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "cluster/types.h"
#include "simnet/config.h"
#include "util/rng.h"

namespace car::workload {

struct TraceConfig {
  std::size_t num_failures = 20;
  /// Mean inter-arrival time between node failures (exponential), seconds.
  double mean_interarrival_s = 24.0 * 3600.0;
};

struct FailureEvent {
  double time_s = 0.0;
  cluster::NodeId node = 0;
};

/// Poisson arrivals, uniformly random victim nodes.  Events are returned in
/// increasing time order.
std::vector<FailureEvent> generate_failure_trace(
    const cluster::Topology& topology, const TraceConfig& config,
    util::Rng& rng);

enum class Strategy { kCar, kRr };

struct TraceReport {
  std::size_t failures_processed = 0;  // events that actually lost chunks
  std::size_t chunks_rebuilt = 0;
  std::uint64_t cross_rack_bytes = 0;
  /// Sum of simulated recovery makespans — the total time the cluster spent
  /// with reduced redundancy ("exposure").
  double total_recovery_s = 0.0;
  double max_recovery_s = 0.0;
  /// Load-balancing rate aggregated over the whole trace (per-rack traffic
  /// summed across events).
  double aggregate_lambda = 1.0;
};

/// Replay `events` against the placement: each failed node's chunks are
/// recovered (onto the same node, per the paper's methodology) with the
/// chosen strategy, timed on the flow simulator.  Events hitting nodes that
/// store nothing are skipped.  The placement is not mutated.
TraceReport run_failure_trace(const cluster::Placement& placement,
                              const std::vector<FailureEvent>& events,
                              Strategy strategy, std::uint64_t chunk_size,
                              const simnet::NetConfig& net, util::Rng& rng);

}  // namespace car::workload
