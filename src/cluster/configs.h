// The paper's evaluation configurations (Table II) and helpers to build them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/topology.h"

namespace car::cluster {

/// One row of the paper's Table II: a named CFS with its rack layout and
/// Reed–Solomon parameters.
struct CfsConfig {
  std::string name;
  std::vector<std::size_t> nodes_per_rack;
  std::size_t k = 0;
  std::size_t m = 0;

  [[nodiscard]] Topology topology() const { return Topology(nodes_per_rack); }
  [[nodiscard]] std::size_t stripe_width() const noexcept { return k + m; }
};

/// CFS1: 3 racks {4,3,3}, RS(4,3).
CfsConfig cfs1();
/// CFS2: 4 racks {4,3,3,3}, RS(6,3) — Google Colossus parameters.
CfsConfig cfs2();
/// CFS3: 5 racks {6,4,5,3,2}, RS(10,4) — Facebook HDFS-RAID parameters.
CfsConfig cfs3();

/// All three paper configurations, in order.
std::vector<CfsConfig> paper_configs();

}  // namespace car::cluster
