#include "rebuild/driver.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <span>
#include <utility>

#include "recovery/compute.h"
#include "recovery/scheduler.h"
#include "util/buffer_pool.h"
#include "util/check.h"

namespace car::rebuild {

namespace {

using inject::EventKind;
using recovery::BufferRef;
using recovery::PlanStep;
using recovery::SliceInfo;
using recovery::StepKind;

std::string fmt_s(double t) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9f", t);
  return {buf.data()};
}

std::string fmt_hex(std::uint64_t v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx",
                static_cast<unsigned long long>(v));
  return {buf.data()};
}

/// FNV-1a over a (slice of a) payload — same emulated transfer checksum as
/// the inject engine, so corrupt-fault diagnostics read identically.
std::uint64_t fnv64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string describe(const BufferRef& ref) {
  if (ref.kind == BufferRef::Kind::kChunk) {
    return "chunk s" + std::to_string(ref.stripe) + "#" +
           std::to_string(ref.chunk_index);
  }
  return "step-output #" + std::to_string(ref.step_id);
}

std::string slice_suffix(const recovery::SlicePlan& sp, const SliceInfo& sl) {
  if (sp.num_slices <= 1) return {};
  return ", slice " + std::to_string(sl.slice + 1) + "/" +
         std::to_string(sp.num_slices) + " @" + std::to_string(sl.offset);
}

std::string batch_suffix(std::size_t batch_id) {
  return ", batch " + std::to_string(batch_id);
}

/// Per-batch bias for step-output buffer ids: batch slot k owns the id
/// range [k << 32, (k+1) << 32), so concurrent batches with dense plan ids
/// never collide in the cluster's step-output namespace (keys are
/// kStepBit | id with id < 2^63 — see emul/cluster.cc).
constexpr std::uint64_t kBatchIdStride = std::uint64_t{1} << 32;

}  // namespace

BatchDriver::BatchDriver(emul::Cluster& cluster,
                         const inject::FaultPlan& faults,
                         const inject::RetryPolicy& policy, std::uint64_t seed,
                         std::uint64_t slice_bytes, inject::DataPolicy data,
                         inject::EventLog& log)
    : cluster_(cluster),
      faults_(faults),
      policy_(policy),
      seed_(seed),
      slice_bytes_(slice_bytes),
      data_(std::move(data)),
      log_(log),
      backoff_rng_(seed ^ 0x8badf00ddeadbeefULL),
      t0_(cluster.clock().now()),
      now_(t0_) {
  cluster_.clock().require_virtual("rebuild::BatchDriver");
  CAR_CHECK(faults_.node_crashes.empty(),
            "rebuild::BatchDriver: node crashes are membership events owned "
            "by the coordinator, not transfer faults — strip them from the "
            "driver's FaultPlan");
  faults_.validate(cluster_.topology());
  std::sort(data_.sampled_stripes.begin(), data_.sampled_stripes.end());
  report_.per_rack_cross_bytes.assign(cluster_.topology().num_racks(), 0);
  inject::arm_link_faults(cluster_, faults_, t0_);
  for (const auto& fault : faults_.link_faults) {
    log_.record(now_, EventKind::kLinkFaultArmed, -1, -1,
                static_cast<std::int64_t>(fault.id), 0,
                std::string(to_string(fault.side)) + " #" +
                    std::to_string(fault.id) + " x" + fmt_s(fault.factor) +
                    " [" + fmt_s(fault.start_s) + ", " + fmt_s(fault.end_s) +
                    ")");
  }
}

std::uint64_t BatchDriver::pack_event(std::size_t slot, std::size_t id,
                                      std::size_t attempt) {
  CAR_CHECK_LT(slot, std::size_t{1} << 16,
               "rebuild::BatchDriver: batch slot exceeds the 16-bit event "
               "key field");
  CAR_CHECK_LT(id, std::size_t{1} << 32,
               "rebuild::BatchDriver: slice step id exceeds the 32-bit "
               "event key field");
  CAR_CHECK_LT(attempt, std::size_t{1} << 16,
               "rebuild::BatchDriver: attempt exceeds the 16-bit event key "
               "field");
  return (static_cast<std::uint64_t>(slot) << 48) |
         (static_cast<std::uint64_t>(id) << 16) |
         static_cast<std::uint64_t>(attempt);
}

void BatchDriver::admit(std::size_t batch_id,
                        const recovery::RecoveryPlan& plan) {
  CAR_CHECK(!plan.steps.empty(), "rebuild::BatchDriver: empty plan admitted");
  CAR_CHECK_LT(plan.steps.size(), kBatchIdStride,
               "rebuild::BatchDriver: plan exceeds the per-batch step-id "
               "range");
  Batch batch;
  batch.id = batch_id;
  batch.plan = plan;
  batch.sliced = recovery::slice_plan(
      plan, slice_bytes_ > 0 ? slice_bytes_
                             : std::max<std::uint64_t>(plan.chunk_size, 1));
  batch.indegrees = recovery::step_indegrees(
      std::span<const PlanStep>(batch.sliced.steps));
  batch.dependents = recovery::step_dependents(
      std::span<const PlanStep>(batch.sliced.steps));
  batch.done.assign(batch.sliced.steps.size(), 0);
  batch.buffer_base = static_cast<std::uint64_t>(admitted_) * kBatchIdStride;
  ++admitted_;

  const std::size_t slot = batches_.size();
  for (std::size_t id = 0; id < batch.sliced.steps.size(); ++id) {
    if (batch.indegrees[id] == 0) queue_.push(now_, pack_event(slot, id, 1));
  }
  std::string detail = std::to_string(plan.steps.size()) + " steps, " +
                       std::to_string(plan.outputs.size()) + " outputs";
  if (batch.sliced.num_slices > 1) {
    detail += ", sliced " + std::to_string(batch.sliced.slice_size) + " B x" +
              std::to_string(batch.sliced.num_slices) + " (" +
              std::to_string(batch.sliced.steps.size()) + " slice steps)";
  }
  log_.record(now_, EventKind::kRunStart, -1, -1, plan.replacement, 0,
              detail + batch_suffix(batch_id));
  batches_.push_back(std::move(batch));
  ++inflight_;
}

RunOutcome BatchDriver::run_until(std::optional<double> deadline) {
  RunOutcome outcome;
  while (!queue_.empty()) {
    if (deadline && queue_.top().time >= *deadline) {
      outcome.stop = StopReason::kDeadline;
      return outcome;
    }
    const emul::CalendarQueue::Entry event = queue_.pop();
    const double t = event.time;
    const auto slot = static_cast<std::size_t>(event.key >> 48);
    const auto id =
        static_cast<std::size_t>((event.key >> 16) & 0xFFFFFFFFull);
    const auto attempt = static_cast<std::size_t>(event.key & 0xFFFFull);
    Batch& batch = batches_[slot];

    advance(t);
    const PlanStep& step = batch.sliced.steps[id];
    const SliceInfo& slice = batch.sliced.info[id];
    double finish = 0.0;
    if (step.kind == StepKind::kCompute) {
      finish = run_compute(batch, step, slice, t);
    } else {
      const auto attempt_finish =
          run_transfer_attempt(slot, step, slice, t, attempt);
      if (!attempt_finish) continue;  // failed; retry already queued
      finish = *attempt_finish;
    }

    batch.done[id] = 1;
    ++batch.completed;
    advance(finish);
    for (const std::size_t dep : batch.dependents[id]) {
      if (--batch.indegrees[dep] == 0) {
        queue_.push(finish, pack_event(slot, dep, 1));
      }
    }
    if (batch.completed == batch.sliced.steps.size()) {
      publish_outputs(batch, /*whole_batch=*/true);
      batch.finished = true;
      --inflight_;
      outcome.finished.push_back(batch.id);
      outcome.stop = StopReason::kBatchDone;
      return outcome;
    }
  }
  CAR_CHECK_STATE(inflight_ == 0,
                  "rebuild::BatchDriver: event queue drained with " +
                      std::to_string(inflight_) +
                      " batches unfinished — dependency deadlock");
  outcome.stop = StopReason::kIdle;
  return outcome;
}

std::vector<CancelledBatch> BatchDriver::cancel_all() {
  std::vector<CancelledBatch> out;
  for (Batch& batch : batches_) {
    if (batch.finished) continue;
    CancelledBatch cancelled;
    cancelled.batch = batch.id;
    cancelled.cancelled_steps = batch.sliced.steps.size() - batch.completed;
    stats_.cancelled_steps += cancelled.cancelled_steps;
    log_.record(now_, EventKind::kStepsCancelled, -1, -1, -1, 0,
                std::to_string(cancelled.cancelled_steps) + " of " +
                    std::to_string(batch.sliced.steps.size()) + " steps" +
                    batch_suffix(batch.id));
    // Durability first: recovered chunks whose final step delivered every
    // slice are already correct — promote them to regular replicas before
    // the step outputs are wiped (same protocol as the inject engine's
    // crash escalation).
    cancelled.published = publish_outputs(batch, /*whole_batch=*/false);
    for (const auto& out_ref : batch.plan.outputs) {
      const bool published = std::any_of(
          cancelled.published.begin(), cancelled.published.end(),
          [&](const PublishedChunk& p) {
            return p.stripe == out_ref.stripe &&
                   p.chunk_index == out_ref.chunk_index;
          });
      if (!published &&
          std::find(cancelled.unfinished_stripes.begin(),
                    cancelled.unfinished_stripes.end(),
                    out_ref.stripe) == cancelled.unfinished_stripes.end()) {
        cancelled.unfinished_stripes.push_back(out_ref.stripe);
      }
    }
    batch.finished = true;
    --inflight_;
    out.push_back(std::move(cancelled));
  }
  queue_ = emul::CalendarQueue{};
  batches_.clear();  // slots are spent; buffer bases never recycle
  cluster_.clear_step_outputs();
  return out;
}

void BatchDriver::advance_to(double t) { advance(t); }

bool BatchDriver::is_real(cluster::StripeId stripe) const {
  return !data_.metadata_only ||
         std::binary_search(data_.sampled_stripes.begin(),
                            data_.sampled_stripes.end(), stripe);
}

BufferRef BatchDriver::biased(const BufferRef& ref,
                              const Batch& batch) const {
  if (ref.kind != BufferRef::Kind::kStepOutput) return ref;
  return BufferRef::step(ref.step_id + batch.buffer_base);
}

double BatchDriver::run_compute(const Batch& batch, const PlanStep& step,
                                const SliceInfo& slice, double t) {
  if (is_real(step.stripe)) {
    std::vector<const rs::Chunk*> inputs;
    inputs.reserve(step.inputs.size());
    for (const auto& in : step.inputs) {
      const rs::Chunk* buf =
          cluster_.find_buffer(step.node, biased(in.buffer, batch));
      CAR_CHECK_STATE(buf != nullptr,
                      "rebuild: compute input " + describe(in.buffer) +
                          " missing on node " + std::to_string(step.node) +
                          batch_suffix(batch.id));
      inputs.push_back(buf);
    }
    util::BufferLease out = cluster_.buffer_pool().acquire(
        static_cast<std::size_t>(slice.length));
    recovery::execute_compute_slice(step, inputs, batch.sliced.chunk_size,
                                    slice.offset, {out.data(), out.size()},
                                    "rebuild");
    cluster_.write_buffer_range(
        step.node, BufferRef::step(slice.base_step + batch.buffer_base),
        batch.sliced.chunk_size, slice.offset, {out.data(), out.size()});
  }

  const double dt =
      static_cast<double>(step.bytes) / cluster_.config().virtual_gf_bps;
  const double finish = t + dt;
  report_.compute_s += dt;
  if (step.node == batch.sliced.replacement) {
    report_.replacement_compute_s += dt;
  }
  log_.record(finish, EventKind::kComputeComplete,
              static_cast<std::int64_t>(step.id), -1,
              static_cast<std::int64_t>(step.node), step.bytes,
              std::to_string(step.inputs.size()) + " inputs" +
                  slice_suffix(batch.sliced, slice) + batch_suffix(batch.id));
  return finish;
}

std::optional<double> BatchDriver::run_transfer_attempt(
    std::size_t slot, const PlanStep& step, const SliceInfo& slice, double t,
    std::size_t attempt) {
  const Batch& batch = batches_[slot];
  ++stats_.attempts;
  if (attempt > 1) ++stats_.retries;

  const bool real = is_real(step.stripe);
  std::span<const std::uint8_t> wire;
  if (real) {
    const rs::Chunk* payload =
        cluster_.find_buffer(step.src, biased(step.payload, batch));
    CAR_CHECK_STATE(payload != nullptr,
                    "rebuild: transfer payload " + describe(step.payload) +
                        " missing on node " + std::to_string(step.src) +
                        batch_suffix(batch.id));
    CAR_CHECK_STATE(payload->size() == batch.sliced.chunk_size,
                    "rebuild: transfer bytes do not match stored payload");
    wire = {payload->data() + slice.offset,
            static_cast<std::size_t>(slice.length)};
  }

  log_.record(t, EventKind::kTransferAttempt,
              static_cast<std::int64_t>(step.id),
              static_cast<std::int64_t>(attempt),
              static_cast<std::int64_t>(step.src), step.bytes,
              "-> " + std::to_string(step.dst) + ", " +
                  describe(step.payload) + slice_suffix(batch.sliced, slice) +
                  batch_suffix(batch.id));

  if (step.src == step.dst) {
    if (real) {
      util::BufferLease staged = cluster_.buffer_pool().acquire(wire.size());
      std::memcpy(staged.data(), wire.data(), wire.size());
      cluster_.write_buffer_range(step.dst, biased(step.payload, batch),
                                  batch.sliced.chunk_size, slice.offset,
                                  {staged.data(), staged.size()});
    }
    log_.record(t, EventKind::kTransferComplete,
                static_cast<std::int64_t>(step.id),
                static_cast<std::int64_t>(attempt),
                static_cast<std::int64_t>(step.dst), 0,
                "loopback" + slice_suffix(batch.sliced, slice) +
                    batch_suffix(batch.id));
    return t;
  }

  const inject::TransferFault* fault = nullptr;
  std::size_t fault_index = 0;
  for (std::size_t i = 0; i < faults_.transfer_faults.size(); ++i) {
    if (inject::transfer_fault_applies(faults_.transfer_faults[i], i,
                                       step.id, attempt, seed_)) {
      fault = &faults_.transfer_faults[i];
      fault_index = i;
      break;
    }
  }

  const std::uint64_t page = cluster_.config().page_bytes;
  emul::LinkPath path = cluster_.path(step.src, step.dst);
  const double deadline = t + policy_.transfer_timeout_s;
  const double projected = path.preview(t, step.bytes, page);

  double failed_at = 0.0;
  if (projected > deadline) {
    ++stats_.timeouts;
    failed_at = deadline;
    log_.record(deadline, EventKind::kTransferTimeout,
                static_cast<std::int64_t>(step.id),
                static_cast<std::int64_t>(attempt),
                static_cast<std::int64_t>(step.src), step.bytes,
                "projected finish " + fmt_s(projected) + " past deadline " +
                    fmt_s(deadline) + batch_suffix(batch.id));
  } else if (fault != nullptr &&
             fault->kind == inject::TransferFault::Kind::kDrop) {
    const double finish = path.reserve(t, step.bytes, page);
    ++stats_.drops;
    stats_.wasted_wire_bytes += step.bytes;
    failed_at = deadline;
    log_.record(finish, EventKind::kTransferDrop,
                static_cast<std::int64_t>(step.id),
                static_cast<std::int64_t>(attempt),
                static_cast<std::int64_t>(step.src), step.bytes,
                "fault #" + std::to_string(fault_index) + ", ack deadline " +
                    fmt_s(deadline) + batch_suffix(batch.id));
  } else if (fault != nullptr) {  // kCorrupt
    const double finish = path.reserve(t, step.bytes, page);
    std::string checksums;
    if (real) {
      util::BufferLease staged = cluster_.buffer_pool().acquire(wire.size());
      std::memcpy(staged.data(), wire.data(), wire.size());
      staged.data()[(step.id * 1315423911ULL + attempt) % staged.size()] ^=
          0xA5;
      checksums = ", checksum sent=" + fmt_hex(fnv64(wire)) + " got=" +
                  fmt_hex(fnv64({staged.data(), staged.size()}));
    } else {
      checksums = ", checksum unavailable (metadata-only stripe)";
    }
    ++stats_.corruptions;
    stats_.wasted_wire_bytes += step.bytes;
    failed_at = finish;
    log_.record(finish, EventKind::kTransferCorrupt,
                static_cast<std::int64_t>(step.id),
                static_cast<std::int64_t>(attempt),
                static_cast<std::int64_t>(step.dst), step.bytes,
                "fault #" + std::to_string(fault_index) + checksums +
                    slice_suffix(batch.sliced, slice) +
                    batch_suffix(batch.id));
  } else {
    const double finish = path.reserve(t, step.bytes, page);
    if (real) {
      cluster_.write_buffer_range(step.dst, biased(step.payload, batch),
                                  batch.sliced.chunk_size, slice.offset,
                                  wire);
    }
    if (step.cross_rack) {
      report_.cross_rack_bytes += step.bytes;
      report_.per_rack_cross_bytes[cluster_.topology().rack_of(step.src)] +=
          step.bytes;
    } else {
      report_.intra_rack_bytes += step.bytes;
    }
    log_.record(finish, EventKind::kTransferComplete,
                static_cast<std::int64_t>(step.id),
                static_cast<std::int64_t>(attempt),
                static_cast<std::int64_t>(step.dst), step.bytes,
                (step.cross_rack ? std::string("cross-rack")
                                 : std::string("intra-rack")) +
                    slice_suffix(batch.sliced, slice) +
                    batch_suffix(batch.id));
    return finish;
  }

  CAR_CHECK_STATE(attempt < policy_.max_attempts,
                  "rebuild: transfer step " + std::to_string(step.id) +
                      " of batch " + std::to_string(batch.id) +
                      " permanently failed after " + std::to_string(attempt) +
                      " attempts");
  const double delay = policy_.backoff.delay(attempt, backoff_rng_);
  const double retry_at = failed_at + delay;
  log_.record(failed_at, EventKind::kRetryScheduled,
              static_cast<std::int64_t>(step.id),
              static_cast<std::int64_t>(attempt + 1),
              static_cast<std::int64_t>(step.src), 0,
              "backoff " + fmt_s(delay) + "s, retry at " + fmt_s(retry_at) +
                  batch_suffix(batch.id));
  queue_.push(retry_at, pack_event(slot, step.id, attempt + 1));
  return std::nullopt;
}

std::vector<PublishedChunk> BatchDriver::publish_outputs(const Batch& batch,
                                                         bool whole_batch) {
  std::vector<PublishedChunk> published;
  for (const auto& out : batch.plan.outputs) {
    if (!whole_batch) {
      bool whole = true;
      for (std::uint64_t s = 0; s < batch.sliced.num_slices; ++s) {
        if (batch.done[recovery::sliced_id(out.step_id,
                                           batch.sliced.num_slices, s)] ==
            0) {
          whole = false;
          break;
        }
      }
      if (!whole) continue;
    }
    if (is_real(out.stripe)) {
      const rs::Chunk* buf = cluster_.find_step_output(
          batch.plan.replacement, out.step_id + batch.buffer_base);
      CAR_CHECK_STATE(buf != nullptr,
                      "rebuild: completed output of step " +
                          std::to_string(out.step_id) +
                          " missing on the replacement" +
                          batch_suffix(batch.id));
      cluster_.store_chunk(batch.plan.replacement, out.stripe,
                           out.chunk_index, *buf);
    }
    published.push_back({out.stripe, out.chunk_index});
  }
  if (!published.empty() || whole_batch) {
    log_.record(now_, EventKind::kOutputsPublished, -1, -1,
                static_cast<std::int64_t>(batch.plan.replacement),
                static_cast<std::uint64_t>(published.size()) *
                    batch.plan.chunk_size,
                std::to_string(published.size()) + " of " +
                    std::to_string(batch.plan.outputs.size()) +
                    " recovered chunks" + batch_suffix(batch.id));
  }
  return published;
}

void BatchDriver::advance(double t) {
  now_ = std::max(now_, t);
  cluster_.clock().advance_to(now_);
}

}  // namespace car::rebuild
