// Figure 7 reproduction: cross-rack repair traffic of CAR vs RR.
//
// Methodology (paper §V): for each CFS configuration, place 100 stripes
// randomly with single-rack fault tolerance, erase a random node, and
// measure the total cross-rack repair traffic for chunk sizes 4/8/16 MiB.
// Each point is the mean over 50 runs (± sample stddev).
#include <cstdio>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "util/bytes.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr int kRuns = 50;
constexpr std::uint64_t kChunkSizesMiB[] = {4, 8, 16};

}  // namespace

int main() {
  using namespace car;
  std::printf("== Figure 7: cross-rack repair traffic (CAR vs RR) ==\n");
  std::printf("100 stripes, random placement, random single-node failure, "
              "%d runs per point\n\n", kRuns);

  for (const auto& cfg : cluster::paper_configs()) {
    util::TextTable table({"chunk size", "RR traffic (MiB)",
                           "CAR traffic (MiB)", "saving"});
    for (const std::uint64_t mib : kChunkSizesMiB) {
      const std::uint64_t chunk_size = mib * util::kMiB;
      util::RunningStats rr_mib, car_mib;
      for (int run = 0; run < kRuns; ++run) {
        util::Rng rng(0xF1600000ULL + run * 131 + mib);
        const auto placement = cluster::Placement::random(
            cfg.topology(), cfg.k, cfg.m, kStripes, rng);
        const auto scenario = cluster::inject_random_failure(placement, rng);
        const auto censuses = recovery::build_censuses(placement, scenario);

        const auto rr = recovery::plan_rr(placement, censuses, rng);
        const auto rr_sum =
            recovery::rr_traffic(placement, rr, scenario.failed_rack);
        rr_mib.add(static_cast<double>(rr_sum.total_bytes(chunk_size)) /
                   static_cast<double>(util::kMiB));

        const auto car = recovery::balance_greedy(placement, censuses, {50});
        const auto car_sum = recovery::car_traffic(
            car.solutions, placement.topology().num_racks(),
            scenario.failed_rack);
        car_mib.add(static_cast<double>(car_sum.total_bytes(chunk_size)) /
                    static_cast<double>(util::kMiB));
      }
      const double saving = 1.0 - car_mib.mean() / rr_mib.mean();
      table.add_row({std::to_string(mib) + " MiB",
                     util::fmt_double(rr_mib.mean(), 1) + " +- " +
                         util::fmt_double(rr_mib.sample_stddev(), 1),
                     util::fmt_double(car_mib.mean(), 1) + " +- " +
                         util::fmt_double(car_mib.sample_stddev(), 1),
                     util::fmt_percent(saving)});
    }
    std::printf("-- %s %s, RS(%zu,%zu) --\n", cfg.name.c_str(),
                cfg.topology().to_string().c_str(), cfg.k, cfg.m);
    std::printf("%s\n", table.to_string().c_str());

    // Tie the analytic counting to bytes that actually move: replay one
    // CAR plan on the real-byte emulator under the virtual clock (finishes
    // in host-milliseconds) and compare cross-rack totals.
    {
      constexpr std::uint64_t kVerifyChunk = 64 * 1024;
      util::Rng rng(0xF1610000ULL);
      const auto placement = cluster::Placement::random(
          cfg.topology(), cfg.k, cfg.m, kStripes, rng);
      const auto scenario = cluster::inject_random_failure(placement, rng);
      const auto censuses = recovery::build_censuses(placement, scenario);
      const rs::Code code(cfg.k, cfg.m);
      const auto car = recovery::balance_greedy(placement, censuses, {50});
      const auto plan = recovery::build_car_plan(
          placement, code, car.solutions, kVerifyChunk, scenario.failed_node);

      emul::EmulConfig emul_cfg;
      emul_cfg.clock_mode = emul::ClockMode::kVirtual;
      emul::Cluster cluster(cfg.topology(), emul_cfg);
      util::Rng data_rng(0xF1610001ULL);
      cluster.populate(placement, code, kVerifyChunk, data_rng);
      cluster.erase_node(scenario.failed_node);
      const auto report = cluster.execute(plan);
      std::printf("emulator check: counted %s cross-rack, moved %s — %s\n\n",
                  util::format_bytes(plan.cross_rack_bytes()).c_str(),
                  util::format_bytes(report.cross_rack_bytes).c_str(),
                  report.cross_rack_bytes == plan.cross_rack_bytes()
                      ? "match"
                      : "MISMATCH");
    }
  }
  std::printf("Paper reference points: 52.4%% saving in CFS1 @4MiB, "
              "66.9%% in CFS3 @16MiB;\nthe saving grows with k because RR "
              "fetches k chunks while CAR ships one\npartially decoded chunk "
              "per accessed rack.\n");
  return 0;
}
