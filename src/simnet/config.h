// Network and compute model parameters for the flow-level simulator.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/check.h"

namespace car::simnet {

/// Bandwidth-diverse CFS fabric (paper §I–II): every node hangs off its
/// top-of-rack switch with a dedicated link; the ToR's core uplink is
/// oversubscribed, making cross-rack bandwidth the scarce resource.
struct NetConfig {
  /// Node <-> ToR link rate, bytes/second, full duplex (default ~1 GbE).
  double node_bps = 125e6;

  /// Core oversubscription factor: rack uplink/downlink capacity is
  /// (nodes-in-rack * node_bps) / oversubscription unless overridden.
  double oversubscription = 5.0;

  /// Optional absolute rack uplink/downlink rate override (bytes/second).
  std::optional<double> rack_link_bps;

  /// Fixed propagation/forwarding latency added per traversed link before a
  /// transfer's bytes start flowing (0 = ideal fabric).  Cross-rack paths
  /// traverse four links, intra-rack paths two.
  double per_hop_latency_s = 0.0;

  /// Fraction of every link's capacity consumed by competing foreground
  /// traffic (0 = idle cluster, 0.5 = half the fabric is busy).  Must be in
  /// [0, 1).
  double background_load = 0.0;

  /// Per-node compute throughput for GF multiply-accumulate, bytes/second.
  /// Calibrated against the dispatched SIMD kernels (BENCH_gf.json:
  /// mul_region_acc on the active kernel at 1 MiB measured ~1.92e10 B/s on
  /// an AVX2 host; forced-scalar measures ~2.6e9).  Re-derive with
  /// `bench/micro_gf --json` when hardware or kernels change.
  double gf_compute_bps = 1.9e10;

  /// Per-node compute throughput for pure XOR combining, bytes/second
  /// (BENCH_gf.json: xor_region at 1 MiB, ~2.4e10 B/s on an AVX2 host).
  double xor_compute_bps = 2.4e10;

  /// Per-rack compute speed multipliers (heterogeneous hardware, paper
  /// Table III).  Empty means 1.0 everywhere; otherwise must have one entry
  /// per rack.
  std::vector<double> rack_compute_multiplier;

  void validate(std::size_t num_racks) const {
    CAR_CHECK(node_bps > 0 && oversubscription > 0 && gf_compute_bps > 0 &&
                  xor_compute_bps > 0,
              "NetConfig: rates must be positive");
    CAR_CHECK(!rack_link_bps || *rack_link_bps > 0,
              "NetConfig: rack_link_bps must be positive");
    CAR_CHECK(per_hop_latency_s >= 0,
              "NetConfig: per_hop_latency_s must be non-negative");
    CAR_CHECK(background_load >= 0 && background_load < 1.0,
              "NetConfig: background_load must be in [0, 1)");
    CAR_CHECK(rack_compute_multiplier.empty() ||
                  rack_compute_multiplier.size() == num_racks,
              "NetConfig: rack_compute_multiplier arity mismatch");
    for (double m : rack_compute_multiplier) {
      CAR_CHECK(m > 0, "NetConfig: compute multipliers must be positive");
    }
  }

  [[nodiscard]] double compute_multiplier(std::size_t rack) const noexcept {
    return rack_compute_multiplier.empty() ? 1.0
                                           : rack_compute_multiplier[rack];
  }
};

}  // namespace car::simnet
