#include "recovery/compute.h"

#include <cstdint>
#include <vector>

#include "gf/region.h"
#include "util/check.h"

namespace car::recovery {

rs::Chunk execute_compute_step(const PlanStep& step,
                               std::span<const rs::Chunk* const> inputs,
                               const std::string& context) {
  CAR_CHECK_STATE(inputs.size() == step.inputs.size(),
                  context + ": gathered inputs do not match step arity");
  CAR_CHECK_STATE(!inputs.empty(), context + ": compute with no inputs");
  for (const rs::Chunk* buf : inputs) {
    CAR_CHECK_STATE(buf != nullptr, context + ": compute input missing");
  }
  const std::size_t chunk_bytes = inputs.front()->size();
  // Buffer-size contract: every input of a linear combination must be the
  // same length, and the plan's declared compute volume must equal
  // |inputs| * chunk bytes.
  for (const rs::Chunk* buf : inputs) {
    CAR_CHECK_STATE(buf->size() == chunk_bytes,
                    context + ": compute input size mismatch");
  }
  CAR_CHECK_STATE(
      step.bytes == static_cast<std::uint64_t>(chunk_bytes) * inputs.size(),
      context + ": compute bytes do not equal inputs * chunk size");

  std::vector<std::uint8_t> coeffs;
  std::vector<rs::ChunkView> views;
  coeffs.reserve(inputs.size());
  views.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    coeffs.push_back(step.inputs[i].coeff);
    views.emplace_back(*inputs[i]);
  }
  rs::Chunk out(chunk_bytes, 0);
  gf::linear_combine_acc(coeffs, views, out);
  return out;
}

}  // namespace car::recovery
