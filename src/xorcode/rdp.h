// RDP (Row-Diagonal Parity) — the XOR-based RAID-6 code the paper contrasts
// CAR against (§II-B/C; Corbett et al., FAST'04).
//
// RDP(p), p prime, stores a stripe as a (p-1) x (p+1) array of equal-sized
// symbols: columns 0..p-2 are data disks, column p-1 is row parity, column
// p is diagonal parity.  Row parity r is the XOR of the data symbols in row
// r; diagonal parity d (0 <= d <= p-2) is the XOR of the symbols (row i,
// column j) with (i + j) mod p == d over columns 0..p-1 (data + row
// parity); the diagonal d == p-1 is the "missing" diagonal and carries no
// parity.
//
// Included here because the paper's related work centres on single-failure
// recovery for XOR codes: Xiang et al. (SIGMETRICS'10) showed a failed disk
// can be rebuilt reading ~25% fewer symbols by mixing row and diagonal
// parity groups.  rdp::plan_hybrid_recovery implements that optimisation
// (exact minimisation over row/diagonal assignments), letting the repo
// reproduce the intra-stripe I/O-minimisation line of work that CAR's
// cross-rack view generalises away from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rs/code.h"  // reuse Chunk/ChunkView aliases

namespace car::xorcode {

using rs::Chunk;
using rs::ChunkView;

/// A stripe is symbols[column][row]: p+1 columns, p-1 rows each.
using Stripe = std::vector<std::vector<Chunk>>;

class Rdp {
 public:
  /// Requires p prime and >= 3.  Throws std::invalid_argument otherwise.
  explicit Rdp(std::size_t p);

  [[nodiscard]] std::size_t p() const noexcept { return p_; }
  [[nodiscard]] std::size_t data_disks() const noexcept { return p_ - 1; }
  [[nodiscard]] std::size_t total_disks() const noexcept { return p_ + 1; }
  [[nodiscard]] std::size_t rows() const noexcept { return p_ - 1; }
  static constexpr std::size_t kRowParity(std::size_t p) { return p - 1; }
  static constexpr std::size_t kDiagParity(std::size_t p) { return p; }

  /// Encode: data[d][r] for d in [0, p-1), r in [0, p-1) -> full stripe
  /// including the two parity columns.  All symbols must share one size.
  [[nodiscard]] Stripe encode(
      const std::vector<std::vector<Chunk>>& data) const;

  /// Verify both parity columns of a stripe.
  [[nodiscard]] bool verify(const Stripe& stripe) const;

  /// Rebuild a single failed column conventionally:
  ///  * a data or row-parity column via row parity (reads (p-1)^2 symbols),
  ///  * the diagonal-parity column by re-encoding diagonals.
  [[nodiscard]] std::vector<Chunk> recover_conventional(
      const Stripe& stripe, std::size_t failed_disk) const;

  /// A hybrid single-disk recovery plan for a *data* column: each lost
  /// symbol is assigned to its row group or its diagonal group; the plan
  /// lists exactly which surviving symbols must be read.
  struct RecoveryPlan {
    std::size_t failed_disk = 0;
    /// use_diagonal[r]: rebuild the symbol in row r from its diagonal
    /// (true) or its row (false).
    std::vector<bool> use_diagonal;
    /// Distinct surviving symbols read, as (disk, row) pairs.
    std::vector<std::pair<std::size_t, std::size_t>> reads;
  };

  /// Build the plan for a given row/diagonal assignment (Xu/Xiang hybrid
  /// recovery).  Throws std::invalid_argument for non-data disks or arity
  /// mismatch.
  [[nodiscard]] RecoveryPlan plan_recovery(
      std::size_t failed_disk, const std::vector<bool>& use_diagonal) const;

  /// Exhaustively minimise the number of symbols read over all 2^(p-1)
  /// assignments (feasible for the small p used in disk arrays).  Ties are
  /// broken toward balanced row/diagonal mixes, matching the optimal
  /// solutions of Xiang et al.
  [[nodiscard]] RecoveryPlan plan_hybrid_recovery(
      std::size_t failed_disk) const;

  /// Execute a recovery plan on a stripe; returns the rebuilt column.
  [[nodiscard]] std::vector<Chunk> recover_with_plan(
      const Stripe& stripe, const RecoveryPlan& plan) const;

 private:
  void check_stripe(const Stripe& stripe) const;

  std::size_t p_;
};

}  // namespace car::xorcode
