// Degraded-read study: serving reads for chunks whose host is unavailable.
//
// Not a paper figure (the paper's Li et al. citation covers degraded
// MapReduce scheduling), but the same machinery: a reader reconstructs a
// chunk on the fly from k survivors.  We compare the direct fetch (k chunks
// to the reader) with the CAR-style read (minimum racks + partial decoding)
// on cross-rack traffic and simulated read latency.
#include <cstdio>

#include "cluster/configs.h"
#include "recovery/degraded.h"
#include "simnet/flowsim.h"
#include "util/bytes.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 50;
constexpr int kReadsPerConfig = 200;
constexpr std::uint64_t kChunkSize = 4ull << 20;

}  // namespace

int main() {
  using namespace car;
  std::printf("== Degraded reads: direct fetch vs CAR partial decoding ==\n");
  std::printf("%d random degraded reads per config, %s chunks, flow-level "
              "latency\n\n", kReadsPerConfig,
              util::format_bytes(kChunkSize).c_str());

  util::TextTable table({"CFS", "strategy", "x-rack chunks/read",
                         "read latency (s)", "p99 latency (s)"});
  for (const auto& cfg : cluster::paper_configs()) {
    util::Rng rng(0xDE6DEAD5ULL + cfg.k);
    const auto placement = cluster::Placement::random(
        cfg.topology(), cfg.k, cfg.m, kStripes, rng);
    const rs::Code code(cfg.k, cfg.m);
    const simnet::NetConfig net;

    util::RunningStats direct_cross, car_cross;
    std::vector<double> direct_lat, car_lat;
    for (int i = 0; i < kReadsPerConfig; ++i) {
      const cluster::StripeId stripe = rng.next_below(kStripes);
      const std::size_t chunk = rng.next_below(cfg.k + cfg.m);
      cluster::NodeId reader =
          rng.next_below(placement.topology().num_nodes());
      if (reader == placement.node_of(stripe, chunk)) {
        reader = (reader + 1) % placement.topology().num_nodes();
      }
      const recovery::DegradedReadRequest request{stripe, chunk, reader};

      const auto direct = recovery::plan_degraded_read_direct(
          placement, code, request, kChunkSize, rng);
      direct_cross.add(static_cast<double>(direct.cross_rack_bytes()) /
                       static_cast<double>(kChunkSize));
      direct_lat.push_back(
          simnet::simulate_plan(placement.topology(), direct, net)
              .makespan_s);

      const auto car = recovery::plan_degraded_read_car(placement, code,
                                                        request, kChunkSize);
      car_cross.add(static_cast<double>(car.cross_rack_bytes()) /
                    static_cast<double>(kChunkSize));
      car_lat.push_back(
          simnet::simulate_plan(placement.topology(), car, net).makespan_s);
    }

    table.add_row({cfg.name, "direct", util::fmt_double(direct_cross.mean(), 2),
                   util::fmt_double(util::mean_of(direct_lat), 3),
                   util::fmt_double(util::percentile(direct_lat, 0.99), 3)});
    table.add_row({cfg.name, "CAR", util::fmt_double(car_cross.mean(), 2),
                   util::fmt_double(util::mean_of(car_lat), 3),
                   util::fmt_double(util::percentile(car_lat, 0.99), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("CAR-style degraded reads pull most bytes inside racks, so "
              "both the mean and\nthe tail of read latency drop — the same "
              "bandwidth-diversity argument as for\nfull recovery, applied "
              "to the read path.\n");
  return 0;
}
