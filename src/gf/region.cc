#include "gf/region.h"

#include <cstring>
#include <string>

#include "gf/gf256.h"
#include "util/check.h"

namespace car::gf {

namespace {
void require_same_size(std::size_t a, std::size_t b, const char* what) {
  if (a != b) CAR_CHECK_FAIL(std::string(what) + ": size mismatch");
}
}  // namespace

void xor_region(std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  require_same_size(src.size(), dst.size(), "xor_region");
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Word-at-a-time XOR; memcpy keeps it strict-aliasing clean and compiles to
  // plain loads/stores.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_region(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst) {
  require_same_size(src.size(), dst.size(), "mul_region");
  if (c == 0) {
    zero_region(dst);
    return;
  }
  if (c == 1) {
    // Empty spans may carry a null data(), which memcpy must never see.
    if (!src.empty() && dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), src.size());
    }
    return;
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  const std::size_t n = src.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = row[src[i]];
    dst[i + 1] = row[src[i + 1]];
    dst[i + 2] = row[src[i + 2]];
    dst[i + 3] = row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] = row[src[i]];
}

void mul_region_acc(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst) {
  require_same_size(src.size(), dst.size(), "mul_region_acc");
  if (c == 0) return;
  if (c == 1) {
    xor_region(src, dst);
    return;
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  const std::size_t n = src.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void scale_region(std::uint8_t c, std::span<std::uint8_t> dst) {
  mul_region(c, dst, dst);
}

void zero_region(std::span<std::uint8_t> dst) noexcept {
  if (dst.empty()) return;  // empty spans may carry a null data()
  std::memset(dst.data(), 0, dst.size());
}

void linear_combine(std::span<const std::uint8_t> coeffs,
                    std::span<const std::span<const std::uint8_t>> rows,
                    std::span<std::uint8_t> out) {
  CAR_CHECK_EQ(coeffs.size(), rows.size(),
               "linear_combine: coeffs/rows arity mismatch");
  zero_region(out);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    require_same_size(rows[i].size(), out.size(), "linear_combine");
    mul_region_acc(coeffs[i], rows[i], out);
  }
}

}  // namespace car::gf
