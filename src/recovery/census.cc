#include "recovery/census.h"

#include <stdexcept>

namespace car::recovery {

std::size_t StripeCensus::total_surviving() const noexcept {
  std::size_t total = 0;
  for (std::size_t c : surviving) total += c;
  return total;
}

StripeCensus build_census(const cluster::Placement& placement,
                          const cluster::FailureScenario& scenario,
                          const cluster::LostChunk& lost) {
  StripeCensus census;
  census.stripe = lost.stripe;
  census.lost_chunk = lost.chunk_index;
  census.failed_rack = scenario.failed_rack;
  census.k = placement.k();
  census.chunks = placement.rack_census(lost.stripe);
  census.surviving = census.chunks;
  if (census.surviving[census.failed_rack] == 0) {
    throw std::logic_error(
        "build_census: failed rack holds no chunk of an affected stripe");
  }
  --census.surviving[census.failed_rack];
  return census;
}

std::vector<StripeCensus> build_censuses(
    const cluster::Placement& placement,
    const cluster::FailureScenario& scenario) {
  std::vector<StripeCensus> out;
  out.reserve(scenario.lost.size());
  for (const auto& lost : scenario.lost) {
    out.push_back(build_census(placement, scenario, lost));
  }
  return out;
}

}  // namespace car::recovery
