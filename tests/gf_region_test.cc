#include "gf/region.h"

#include <gtest/gtest.h>

#include <vector>

#include "gf/gf256.h"
#include "util/rng.h"

namespace car::gf {
namespace {

std::vector<std::uint8_t> random_buffer(std::size_t n, util::Rng& rng) {
  std::vector<std::uint8_t> buf(n);
  rng.fill_bytes(buf);
  return buf;
}

class RegionOps : public ::testing::TestWithParam<std::size_t> {
 protected:
  util::Rng rng_{GetParam() * 77 + 5};
};

TEST_P(RegionOps, XorRegionMatchesScalar) {
  const std::size_t n = GetParam();
  const auto src = random_buffer(n, rng_);
  auto dst = random_buffer(n, rng_);
  const auto dst0 = dst;
  xor_region(src, dst);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(dst0[i] ^ src[i]));
  }
  // XOR-ing again restores the original.
  xor_region(src, dst);
  EXPECT_EQ(dst, dst0);
}

TEST_P(RegionOps, MulRegionMatchesScalar) {
  const std::size_t n = GetParam();
  const auto& f = Gf256::instance();
  const auto src = random_buffer(n, rng_);
  std::vector<std::uint8_t> dst(n);
  for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2},
                         std::uint8_t{0x8E}, std::uint8_t{0xFF}}) {
    mul_region(c, src, dst);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], f.mul(c, src[i])) << "c=" << int(c) << " i=" << i;
    }
  }
}

TEST_P(RegionOps, MulRegionAccMatchesScalar) {
  const std::size_t n = GetParam();
  const auto& f = Gf256::instance();
  const auto src = random_buffer(n, rng_);
  for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{37},
                         std::uint8_t{0xFE}}) {
    auto dst = random_buffer(n, rng_);
    const auto dst0 = dst;
    mul_region_acc(c, src, dst);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], static_cast<std::uint8_t>(dst0[i] ^ f.mul(c, src[i])));
    }
  }
}

TEST_P(RegionOps, ScaleRegionIsInPlaceMul) {
  const std::size_t n = GetParam();
  auto buf = random_buffer(n, rng_);
  auto expected = buf;
  std::vector<std::uint8_t> tmp(n);
  mul_region(0x1D, expected, tmp);
  scale_region(0x1D, buf);
  EXPECT_EQ(buf, tmp);
}

// The aliasing contract: passing the same span as src and dst must match the
// out-of-place result for every region op (this is what scale_region relies
// on; SIMD kernels load each block before storing it).
TEST_P(RegionOps, ExactAliasingMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  const auto original = random_buffer(n, rng_);
  for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2},
                         std::uint8_t{0x8E}, std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> expected(n, 0);
    mul_region(c, original, expected);
    auto buf = original;
    mul_region(c, buf, buf);
    ASSERT_EQ(buf, expected) << "mul c=" << int(c);

    auto acc_expected = original;
    mul_region_acc(c, original, acc_expected);
    buf = original;
    mul_region_acc(c, buf, buf);
    ASSERT_EQ(buf, acc_expected) << "acc c=" << int(c);
  }
  auto buf = original;
  xor_region(buf, buf);
  EXPECT_EQ(buf, std::vector<std::uint8_t>(n, 0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionOps,
                         ::testing::Values(0u, 1u, 3u, 7u, 8u, 9u, 64u, 1000u,
                                           4096u));

TEST(RegionOps, SizeMismatchThrows) {
  std::vector<std::uint8_t> a(4), b(5);
  EXPECT_THROW(xor_region(a, b), std::invalid_argument);
  EXPECT_THROW(mul_region(3, a, b), std::invalid_argument);
  EXPECT_THROW(mul_region_acc(3, a, b), std::invalid_argument);
}

TEST(RegionOps, LinearCombineMatchesScalarEvaluation) {
  util::Rng rng(99);
  const auto& f = Gf256::instance();
  constexpr std::size_t kN = 257;
  std::vector<std::vector<std::uint8_t>> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(random_buffer(kN, rng));
  const std::vector<std::uint8_t> coeffs = {1, 0, 0x35, 0xFF, 2};
  std::vector<std::span<const std::uint8_t>> views(rows.begin(), rows.end());
  std::vector<std::uint8_t> out(kN);
  linear_combine(coeffs, views, out);
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint8_t expected = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      expected ^= f.mul(coeffs[r], rows[r][i]);
    }
    ASSERT_EQ(out[i], expected);
  }
}

TEST(RegionOps, LinearCombineValidatesArity) {
  std::vector<std::uint8_t> row(8), out(8);
  std::vector<std::span<const std::uint8_t>> views = {row};
  const std::vector<std::uint8_t> coeffs = {1, 2};
  EXPECT_THROW(linear_combine(coeffs, views, out), std::invalid_argument);
  EXPECT_THROW(linear_combine_acc(coeffs, views, out),
               std::invalid_argument);
}

TEST(RegionOps, LinearCombineAccAccumulatesIntoExistingContents) {
  util::Rng rng(123);
  const auto& f = Gf256::instance();
  constexpr std::size_t kN = 1000;
  std::vector<std::vector<std::uint8_t>> rows;
  for (int i = 0; i < 3; ++i) rows.push_back(random_buffer(kN, rng));
  const std::vector<std::uint8_t> coeffs = {7, 1, 0xC3};
  std::vector<std::span<const std::uint8_t>> views(rows.begin(), rows.end());
  const auto out0 = random_buffer(kN, rng);
  auto out = out0;
  linear_combine_acc(coeffs, views, out);
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint8_t expected = out0[i];
    for (std::size_t r = 0; r < rows.size(); ++r) {
      expected ^= f.mul(coeffs[r], rows[r][i]);
    }
    ASSERT_EQ(out[i], expected);
  }
}

}  // namespace
}  // namespace car::gf
