#include "NoAllocInHotPathCheck.h"

#include "CarTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::car {

namespace {

AST_MATCHER(FunctionDecl, isCarHot) {
  for (const auto *A : Node.specific_attrs<AnnotateAttr>()) {
    if (A->getAnnotation() == "car_hot") return true;
  }
  return false;
}

constexpr char kAllocatingContainers[] =
    "^::std::(vector|basic_string|deque|map|unordered_map|set|unordered_set|"
    "list)$";

}  // namespace

void NoAllocInHotPathCheck::registerMatchers(MatchFinder *Finder) {
  const auto InHotFunction = hasAncestor(functionDecl(isCarHot()));
  const auto AllocatingContainer = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(matchesName(kAllocatingContainers)))));

  Finder->addMatcher(cxxNewExpr(InHotFunction).bind("alloc"), this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::malloc", "::calloc", "::realloc", "::aligned_alloc",
                   "::strdup", "::posix_memalign"))),
               InHotFunction)
          .bind("alloc"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("push_back", "emplace_back",
                                          "resize", "reserve", "insert",
                                          "append", "assign", "emplace",
                                          "operator+="))),
          on(expr(hasType(AllocatingContainer))), InHotFunction)
          .bind("grow"),
      this);
  Finder->addMatcher(varDecl(hasAutomaticStorageDuration(),
                             hasType(AllocatingContainer), InHotFunction,
                             unless(parmVarDecl()))
                         .bind("container"),
                     this);
}

void NoAllocInHotPathCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  StringRef What;
  if (const auto *E = Result.Nodes.getNodeAs<Expr>("alloc")) {
    Loc = E->getBeginLoc();
    What = "heap allocation";
  } else if (const auto *E = Result.Nodes.getNodeAs<Expr>("grow")) {
    Loc = E->getBeginLoc();
    What = "container growth";
  } else if (const auto *D = Result.Nodes.getNodeAs<VarDecl>("container")) {
    Loc = D->getBeginLoc();
    What = "allocating container";
  } else {
    return;
  }
  if (isInCarCheckMacro(Loc, *Result.SourceManager, getLangOpts())) return;
  diag(Loc,
       "%0 in a CAR_HOT function; hot-path code must use pooled buffers "
       "(util::BufferPool) or fixed-capacity storage")
      << What;
}

}  // namespace clang::tidy::car
