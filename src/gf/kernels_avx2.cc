// AVX2 kernel variant: GF(2^8) multiply via VPSHUFB over split nibble
// tables broadcast to both 128-bit lanes, 64 bytes per unrolled iteration.
//
// This translation unit is compiled with -mavx2 and must contain nothing
// that runs before the CPUID check in select_kernels() — only the three
// kernel functions and their vtable.  All loads/stores are unaligned;
// loading every block before storing it makes exact aliasing (src == dst)
// well-defined, as the contract in kernels.h promises.
#include <immintrin.h>

#include "gf/kernels.h"

namespace car::gf {
namespace {

void xor_region_avx2(const std::uint8_t* src, std::uint8_t* dst,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(a1, b1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// c * x for one 32-byte vector via two lane-local shuffles.
inline __m256i mul_bytes_avx2(__m256i x, __m256i lo, __m256i hi,
                              __m256i mask) {
  const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(x, mask));
  const __m256i ph = _mm256_shuffle_epi8(
      hi, _mm256_and_si256(_mm256_srli_epi64(x, 4), mask));
  return _mm256_xor_si256(pl, ph);
}

void mul_region_avx2(std::uint8_t c, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(static_cast<char>(0x0F));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_bytes_avx2(x0, lo, hi, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        mul_bytes_avx2(x1, lo, hi, mask));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_bytes_avx2(x, lo, hi, mask));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(t.lo[c][src[i] & 0x0F] ^
                                       t.hi[c][src[i] >> 4]);
  }
}

void mul_region_acc_avx2(std::uint8_t c, const std::uint8_t* src,
                         std::uint8_t* dst, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(static_cast<char>(0x0F));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d0, mul_bytes_avx2(x0, lo, hi, mask)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i + 32),
        _mm256_xor_si256(d1, mul_bytes_avx2(x1, lo, hi, mask)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul_bytes_avx2(x, lo, hi, mask)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(t.lo[c][src[i] & 0x0F] ^
                                        t.hi[c][src[i] >> 4]);
  }
}

}  // namespace

namespace detail {
const Kernels kAvx2Kernels = {KernelKind::kAvx2, "avx2", &xor_region_avx2,
                              &mul_region_avx2, &mul_region_acc_avx2};
}  // namespace detail

}  // namespace car::gf
