// Differential tests for the bucketed calendar queue: under the replay
// engines' monotone-insertion discipline (every push strictly greater than
// the last popped (time, key)), CalendarQueue must pop in EXACTLY the order
// of std::priority_queue<(time, key), greater<>> — same times bit for bit,
// same keys, across random streams, equal-timestamp bursts, far-future
// overflow re-bucketing, and quantization-boundary times.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "emul/calendar_queue.h"
#include "util/rng.h"

namespace car {
namespace {

using emul::CalendarQueue;

using RefEntry = std::pair<double, std::uint64_t>;
using RefHeap =
    std::priority_queue<RefEntry, std::vector<RefEntry>, std::greater<>>;

/// Pop one entry from both queues and require bit-identical (time, key).
void pop_both(CalendarQueue& queue, RefHeap& ref, std::size_t step) {
  ASSERT_FALSE(queue.empty()) << "pop " << step;
  ASSERT_FALSE(ref.empty()) << "pop " << step;
  const auto& top = queue.top();
  EXPECT_EQ(top.time, ref.top().first) << "pop " << step;
  EXPECT_EQ(top.key, ref.top().second) << "pop " << step;
  const CalendarQueue::Entry entry = queue.pop();
  EXPECT_EQ(entry.time, ref.top().first) << "pop " << step;
  EXPECT_EQ(entry.key, ref.top().second) << "pop " << step;
  ref.pop();
}

/// Drain both queues to empty, comparing every pop.
void drain_both(CalendarQueue& queue, RefHeap& ref) {
  std::size_t step = 0;
  while (!ref.empty()) {
    pop_both(queue, ref, step++);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

// --- random monotone streams --------------------------------------------

// Event-driven workload shaped like the replay engines: pop an event, then
// push a few dependents at a quantized later time with larger keys.  The
// quantized deltas make heavy time collisions (the grid the link timelines
// produce), so tie-breaking on key is constantly exercised.
TEST(CalendarQueue, RandomMonotoneStreamsMatchHeap) {
  for (const std::uint64_t seed : {1u, 7u, 23u, 101u}) {
    util::Rng rng(seed);
    CalendarQueue queue(512);
    RefHeap ref;
    std::uint64_t next_key = 0;
    // Seed a burst of roots at quantized times.
    for (int i = 0; i < 64; ++i) {
      const double t = 1e-4 * static_cast<double>(rng.next_below(32));
      const std::uint64_t key = next_key++;
      queue.push(t, key);
      ref.emplace(t, key);
    }
    std::size_t pops = 0;
    while (!ref.empty() && pops < 20000) {
      const double now = ref.top().first;
      pop_both(queue, ref, pops++);
      ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "seed " << seed;
      // Dependents: later quantized time, fresh (strictly larger) key.
      const std::uint64_t fanout =
          pops < 4000 ? rng.next_below(3) : 0;  // stop growing, then drain
      for (std::uint64_t d = 0; d < fanout; ++d) {
        const double t =
            now + 1e-4 * static_cast<double>(1 + rng.next_below(64));
        const std::uint64_t key = next_key++;
        queue.push(t, key);
        ref.emplace(t, key);
      }
    }
    drain_both(queue, ref);
  }
}

// --- equal-timestamp bursts ---------------------------------------------

TEST(CalendarQueue, EqualTimeBurstPopsInKeyOrder) {
  util::Rng rng(42);
  CalendarQueue queue(256);
  RefHeap ref;
  // Three bursts at the same instant each, keys shuffled at push time.
  for (const double t : {0.0, 0.5, 0.5000001}) {
    std::vector<std::uint64_t> keys(257);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<std::uint64_t>(t * 1e9) + i;
    }
    std::shuffle(keys.begin(), keys.end(), rng);
    for (const auto key : keys) {
      queue.push(t, key);
      ref.emplace(t, key);
    }
  }
  drain_both(queue, ref);
}

// --- far-future overflow rung -------------------------------------------

// Events far beyond the active rung land in the overflow and are
// re-bucketed by rewindow() once the rung drains; pushes that arrive while
// the near events drain must still merge in exact order.
TEST(CalendarQueue, FarFutureOverflowRebucketsInOrder) {
  util::Rng rng(99);
  CalendarQueue queue(128);
  RefHeap ref;
  std::uint64_t next_key = 0;
  for (int i = 0; i < 500; ++i) {
    const double t = 1e-3 * static_cast<double>(rng.next_below(1000));
    queue.push(t, next_key);
    ref.emplace(t, next_key);
    ++next_key;
  }
  for (int i = 0; i < 200; ++i) {
    const double t = 1e6 + 1e-3 * static_cast<double>(rng.next_below(500));
    queue.push(t, next_key);
    ref.emplace(t, next_key);
    ++next_key;
  }
  // Drain the near half, feeding more far-future events as we go.
  for (int i = 0; i < 500; ++i) {
    pop_both(queue, ref, static_cast<std::size_t>(i));
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    if (i % 7 == 0) {
      const double t = 2e6 + static_cast<double>(i);
      queue.push(t, next_key);
      ref.emplace(t, next_key);
      ++next_key;
    }
  }
  drain_both(queue, ref);
}

// Degenerate overflow where every deferred event has the same timestamp:
// rewindow()'s width derivation collapses to the unit-width fallback, which
// must still pop in key order.
TEST(CalendarQueue, AllEqualOverflowFallsBackToUnitWidth) {
  util::Rng rng(7);
  CalendarQueue queue(64);
  RefHeap ref;
  queue.push(0.0, 0);
  ref.emplace(0.0, 0);
  std::vector<std::uint64_t> keys(2000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i + 1;
  std::shuffle(keys.begin(), keys.end(), rng);
  for (const auto key : keys) {
    queue.push(1e9, key);
    ref.emplace(1e9, key);
  }
  drain_both(queue, ref);
}

// Regression: a rewindow driven by a lone far-future event (a scheduled
// retry) raises rung_start past the drain frontier; later pushes that are
// monotone w.r.t. the last pop but BELOW the new rung start must still pop
// before the rung.  This is exactly the rebuild control plane's shape: a
// dense batch drains, a deadline check peeks top() (rewindowing onto the
// lone retry), and admit() then seeds a fresh batch at the paused `now`.
// Before the fix these pushes hit a negative-offset size_t cast (UB) and
// were misrouted to the overflow, popping AFTER the retry.
TEST(CalendarQueue, PushBelowRewindowedRungStillPopsInOrder) {
  CalendarQueue queue(64);
  RefHeap ref;
  std::uint64_t next_key = 0;
  // Dense batch near t=0 plus one retry far beyond any rung it could span.
  for (int i = 0; i < 200; ++i) {
    const double t = 1e-3 * static_cast<double>(i);
    queue.push(t, next_key);
    ref.emplace(t, next_key);
    ++next_key;
  }
  const double retry_t = 5e5;
  queue.push(retry_t, next_key);
  ref.emplace(retry_t, next_key);
  ++next_key;
  // Drain the dense batch completely; only the retry remains.
  for (int i = 0; i < 200; ++i) {
    pop_both(queue, ref, static_cast<std::size_t>(i));
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  // The deadline check: top() rewindows, so rung_start_ jumps to retry_t —
  // far past the drain frontier (~0.2).
  EXPECT_EQ(queue.top().time, retry_t);
  // Admit new work in the gap (monotone: above the last pop, below the
  // rung), interleaving pops so the live drain heap is exercised too.
  for (int i = 0; i < 64; ++i) {
    const double t = 1.0 + 0.5 * static_cast<double>(i);
    queue.push(t, next_key);
    ref.emplace(t, next_key);
    ++next_key;
    if (i % 4 == 3) {
      pop_both(queue, ref, static_cast<std::size_t>(200 + i));
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
  }
  drain_both(queue, ref);
}

// Same gap, repeated: every rewindow onto a sparse far-future tail is
// followed by another burst of sub-rung pushes, so the clamp-to-bucket-0
// path and the overflow path keep alternating.
TEST(CalendarQueue, RepeatedRewindowGapCyclesMatchHeap) {
  util::Rng rng(271);
  CalendarQueue queue(128);
  RefHeap ref;
  std::uint64_t next_key = 0;
  double base = 0.0;
  queue.push(base, next_key);
  ref.emplace(base, next_key);
  ++next_key;
  for (int cycle = 0; cycle < 6; ++cycle) {
    // One lone event an epoch ahead of everything pushed so far.
    const double far = base + 1e6;
    queue.push(far, next_key);
    ref.emplace(far, next_key);
    ++next_key;
    // Drain to the lone event (forcing the rewindow onto it)...
    while (ref.size() > 1) {
      pop_both(queue, ref, ref.size());
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
    EXPECT_EQ(queue.top().time, far);
    // ...then admit a dense burst in the gap below the rewindowed rung.
    const double now = base;
    for (int i = 0; i < 100; ++i) {
      const double t =
          now + 1.0 + 0.25 * static_cast<double>(rng.next_below(1000));
      queue.push(t, next_key);
      ref.emplace(t, next_key);
      ++next_key;
    }
    base = far;
  }
  drain_both(queue, ref);
}

// --- quantization boundaries --------------------------------------------

// Times sitting exactly on bucket-boundary multiples stress the floor
// routing: an event must never land "behind" an equal-time event in a
// later bucket.  Every time here is an exact power-of-two multiple so the
// floor arithmetic has no rounding slack.
TEST(CalendarQueue, BoundaryTimesRouteConsistently) {
  util::Rng rng(1234);
  CalendarQueue queue(256);
  RefHeap ref;
  std::uint64_t next_key = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 1024; ++i) {
      const double t = 0.0078125 * static_cast<double>(i);  // 1/128 grid
      queue.push(t, next_key);
      ref.emplace(t, next_key);
      ++next_key;
    }
  }
  // Interleave pops and boundary-time pushes (strictly after last pop).
  for (int i = 0; i < 2048; ++i) {
    const double now = ref.top().first;
    pop_both(queue, ref, static_cast<std::size_t>(i));
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    if (i % 3 == 0) {
      const double t =
          now + 0.0078125 * static_cast<double>(1 + rng.next_below(512));
      queue.push(t, next_key);
      ref.emplace(t, next_key);
      ++next_key;
    }
  }
  drain_both(queue, ref);
}

// --- reset via move assignment ------------------------------------------

// cancel_all() in the batch driver resets with `queue_ = CalendarQueue{}`;
// the moved-to queue must be empty and fully reusable.
TEST(CalendarQueue, MoveAssignResetsAndStaysUsable) {
  CalendarQueue queue(128);
  queue.push(1.0, 1);
  queue.push(2.0, 2);
  EXPECT_EQ(queue.size(), 2u);
  queue = CalendarQueue{};
  EXPECT_TRUE(queue.empty());
  queue.push(0.5, 9);
  ASSERT_EQ(queue.size(), 1u);
  const auto entry = queue.pop();
  EXPECT_EQ(entry.time, 0.5);
  EXPECT_EQ(entry.key, 9u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace car
