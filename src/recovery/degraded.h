// Degraded reads — serving a read for a chunk whose host is unavailable.
//
// In erasure-coded CFSes the single-failure machinery also serves *degraded
// reads*: a client (the "reader" node) needs chunk X while X's host is down,
// so the chunk is reconstructed on the fly from k survivors.  CAR's rack
// selection and partial decoding apply unchanged, with the reader's rack
// taking the role of the failed rack: survivors in the reader's own rack are
// free, and each other contributing rack ships one partially decoded chunk.
#pragma once

#include <cstdint>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/plan.h"
#include "recovery/solutions.h"
#include "rs/code.h"
#include "util/rng.h"

namespace car::recovery {

struct DegradedReadRequest {
  cluster::StripeId stripe = 0;
  std::size_t chunk_index = 0;   // the unavailable chunk being read
  cluster::NodeId reader = 0;    // node that must end up with the bytes
};

/// Rack-level view of a degraded read: how many survivors each rack offers,
/// anchored at the reader's rack.
struct DegradedReadCensus {
  cluster::StripeId stripe = 0;
  std::size_t chunk_index = 0;
  cluster::RackId reader_rack = 0;
  std::size_t k = 0;
  std::vector<std::size_t> surviving;  // per rack, excluding the read chunk
};

DegradedReadCensus build_degraded_census(const cluster::Placement& placement,
                                         const DegradedReadRequest& request);

/// CAR-style degraded read: minimum racks + partial decoding, reconstructing
/// at the reader.  Cross-rack traffic = number of non-reader racks accessed.
RecoveryPlan plan_degraded_read_car(const cluster::Placement& placement,
                                    const rs::Code& code,
                                    const DegradedReadRequest& request,
                                    std::uint64_t chunk_size);

/// Baseline degraded read: fetch k random survivors straight to the reader.
RecoveryPlan plan_degraded_read_direct(const cluster::Placement& placement,
                                       const rs::Code& code,
                                       const DegradedReadRequest& request,
                                       std::uint64_t chunk_size,
                                       util::Rng& rng);

}  // namespace car::recovery
