// Microbenchmarks for the CAR planning path itself, verifying the paper's
// §IV-D complexity claim: Algorithm 2 runs in O(e * r * s), i.e. planning is
// cheap relative to the recovery it optimises — plus the slice-pipelining
// makespan study on the fig9 fabric.
//
// Usage:
//   micro_recovery [--json <path>] [google-benchmark flags]
//
// --json writes the machine-readable baseline (schema car-recovery-bench/1,
// documented in docs/architecture.md); the repo's committed
// BENCH_recovery.json is produced this way.  The fig9 makespan points are
// measured on the virtual clock and are therefore bit-deterministic — CI
// diffs their structure and speedup direction, not host timing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "rebuild/scenario.h"
#include "recovery/balancer.h"
#include "recovery/multi.h"
#include "recovery/plan_arena.h"
#include "recovery/plan_template.h"
#include "recovery/scheduler.h"
#include "recovery/slice.h"
#include "simnet/flowsim.h"
#include "util/bytes.h"

namespace {

using namespace car;

struct Scenario {
  cluster::Placement placement;
  cluster::FailureScenario failure;
  std::vector<recovery::StripeCensus> censuses;
};

Scenario make_scenario(const cluster::CfsConfig& cfg, std::size_t stripes,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  auto failure = cluster::inject_random_failure(placement, rng);
  auto censuses = recovery::build_censuses(placement, failure);
  return {std::move(placement), std::move(failure), std::move(censuses)};
}

// ---------------------------------------------------------------------------
// JSON collection (mirrors bench/micro_gf.cc).

struct BenchMeta {
  std::string op;                  // "plan" | "execute" | "slice_lowering"
  std::uint64_t chunk_bytes = 0;
  std::uint64_t slice_bytes = 0;   // 0 = unsliced
};

std::map<std::string, BenchMeta>& meta_registry() {
  static std::map<std::string, BenchMeta> registry;
  return registry;
}

struct CollectedRun {
  std::string name;
  BenchMeta meta;
  std::int64_t iterations = 0;
  double real_seconds = 0.0;  // accumulated over all iterations
};

/// Console output as usual, plus collection for the --json reporter.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const auto it = meta_registry().find(run.benchmark_name());
      if (it == meta_registry().end()) continue;
      CollectedRun c;
      c.name = run.benchmark_name();
      c.meta = it->second;
      c.iterations = run.iterations;
      c.real_seconds = run.real_accumulated_time;
      collected_.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<CollectedRun>& collected() const noexcept {
    return collected_;
  }

 private:
  std::vector<CollectedRun> collected_;
};

// ---------------------------------------------------------------------------
// Fig9-fabric makespan study: sliced vs. unsliced execution of the same CAR
// plan on the virtual-clock emulator, paper-era hardware balance (1 GbE node
// links, 5x-oversubscribed core, 1.5 GB/s GF compute — see
// bench/fig9_recovery_time.cc).  The virtual clock makes every number here
// bit-deterministic; speedups are structural, not measurement noise.

constexpr std::uint64_t kFig9Chunk = util::kMiB;
constexpr std::uint64_t kFig9Slice = 64 * util::kKiB;  // kDefaultSliceBytes
constexpr std::size_t kFig9Window = 1;
constexpr std::size_t kFig9Stripes = 12;

struct Fig9Point {
  std::string config;      // "cfs1" | "cfs2" | "cfs3"
  std::size_t k = 0;
  std::size_t m = 0;
  std::size_t racks = 0;
  double core_scale = 1.0;  // 0.5 = 50%-degraded core spec
  double unsliced_makespan_s = 0.0;
  double sliced_makespan_s = 0.0;

  [[nodiscard]] double speedup() const {
    return sliced_makespan_s > 0.0 ? unsliced_makespan_s / sliced_makespan_s
                                   : 0.0;
  }
};

emul::EmulConfig fig9_emul(double core_scale) {
  emul::EmulConfig cfg;
  cfg.clock_mode = emul::ClockMode::kVirtual;
  cfg.node_bps = 125e6;        // 1 GbE
  // Scaling oversubscription scales every rack uplink proportionally, which
  // keeps cfs3's heterogeneous racks {6,4,5,3,2} heterogeneous.
  cfg.oversubscription = 5.0 / core_scale;
  cfg.virtual_gf_bps = 1.5e9;  // paper-era testbed CPUs, not this host
  return cfg;
}

Fig9Point measure_fig9_point(std::size_t cfg_index, double core_scale) {
  const auto cfg = cluster::paper_configs()[cfg_index];
  const auto s = make_scenario(cfg, kFig9Stripes, 0xF19 + cfg_index);
  const rs::Code code(cfg.k, cfg.m);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  const auto plan = recovery::schedule_windowed(
      recovery::build_car_plan(s.placement, code, balanced.solutions,
                               kFig9Chunk, s.failure.failed_node),
      kFig9Window);

  emul::Cluster cluster(s.placement.topology(), fig9_emul(core_scale));
  util::Rng data_rng(0xDA7A + cfg_index);
  cluster.populate(s.placement, code, kFig9Chunk, data_rng);
  cluster.erase_node(s.failure.failed_node);

  Fig9Point point;
  point.config = cfg.name;
  point.k = cfg.k;
  point.m = cfg.m;
  point.racks = cfg.topology().num_racks();
  point.core_scale = core_scale;
  point.unsliced_makespan_s = cluster.execute(plan).wall_s;
  point.sliced_makespan_s =
      cluster.execute(recovery::slice_plan(plan, kFig9Slice)).wall_s;
  return point;
}

std::vector<Fig9Point> measure_fig9_points() {
  std::vector<Fig9Point> points;
  for (const double core_scale : {1.0, 0.5}) {
    for (std::size_t i = 0; i < cluster::paper_configs().size(); ++i) {
      points.push_back(measure_fig9_point(i, core_scale));
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// Scale sweep: metadata-only sharded arena execution on uniform datacenter
// topologies (stripes x nodes x failure domain).  Mirrors
// `carctl emulate --metadata-only --shards N [--fail-rack]`.  Everything in
// a row except the sample verification is virtual-clock-deterministic, so
// CI diffs the numbers structurally (tools/bench_schema_diff.py).

struct ScaleSweepRow {
  // Sweep coordinates.
  std::size_t stripes = 0;
  std::size_t num_racks = 0;
  std::size_t rack_size = 0;
  std::string failure;  // "single-node" | "full-rack"
  std::size_t shards = 1;
  bool metadata_only = true;
  std::size_t sample = 4;
  // Measured (deterministic on the virtual clock).
  std::size_t affected_stripes = 0;
  std::size_t plan_steps = 0;
  double makespan_s = 0.0;
  std::uint64_t cross_rack_bytes = 0;
  std::size_t verified_outputs = 0;
  std::size_t expected_outputs = 0;
  // Host-time phase breakdown (noisy; CI checks only the plan_speedup
  // ratio, which divides out the machine).  classic_* is the chunk-granular
  // RecoveryPlan build + PlanArena lowering the scale path used to run;
  // arena_s is the template-cached instantiation that replaces both.
  double scan_s = 0.0;
  double solve_s = 0.0;  // rack selection + balancing (shared by both paths)
  double classic_plan_s = 0.0;
  double classic_lower_s = 0.0;
  double arena_s = 0.0;
  // Replay phase, new default configuration: calendar-queue engine with a
  // serial drain (replay_shards 1).
  double replay_s = 0.0;
  // Replay phase, predecessor configuration: binary-heap engine with the
  // replay sharded `shards` ways (what this sweep ran before the calendar
  // engine landed), on an identically prepared cluster in the same
  // process.
  double replay_heap_s = 0.0;
  double end_to_end_s = 0.0;  // scan + solve + cached build + replay
  std::size_t template_cache_misses = 0;

  [[nodiscard]] double plan_speedup() const {
    return arena_s > 0.0 ? (classic_plan_s + classic_lower_s) / arena_s : 0.0;
  }
  /// Predecessor replay over current replay — the whole replay-path win,
  /// engine and drain configuration together.  A within-run host-time
  /// ratio, so machine speed divides out (like plan_speedup).
  [[nodiscard]] double replay_speedup() const {
    return replay_s > 0.0 ? replay_heap_s / replay_s : 0.0;
  }
};

ScaleSweepRow measure_scale_point(ScaleSweepRow row) {
  constexpr std::uint64_t kChunk = util::kMiB;
  constexpr std::uint64_t kSeed = 0x5CA1E;
  cluster::CfsConfig cfg;
  cfg.name = "uniform";
  cfg.nodes_per_rack.assign(row.num_racks, row.rack_size);
  // The paper-scale code (CFS-2's RS(6,3)): realistic pick sizes make the
  // per-stripe plan rich enough that the template-cache ratio reflects
  // production stripes, not toy two-step plans.
  cfg.k = 6;
  cfg.m = 3;
  const rs::Code code(cfg.k, cfg.m);

  const auto tick = [] { return std::chrono::steady_clock::now(); };
  const auto secs = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };

  emul::Cluster cluster(cfg.topology(), fig9_emul(1.0));
  util::Rng place_rng(kSeed);
  const auto placement = cluster::Placement::random(
      cfg.topology(), cfg.k, cfg.m, row.stripes, place_rng);
  const auto& topology = placement.topology();

  util::Rng fail_rng(kSeed + 1);
  const auto first_failed =
      cluster::inject_random_failure(placement, fail_rng).failed_node;
  std::vector<cluster::NodeId> failed_nodes{first_failed};
  if (row.failure == "full-rack") {
    for (const auto node :
         topology.nodes_in_rack(topology.rack_of(first_failed))) {
      if (node != first_failed) failed_nodes.push_back(node);
    }
  }
  const auto mf = recovery::make_multi_failure(placement, failed_nodes);
  auto t = tick();
  const auto censuses =
      recovery::build_multi_censuses(placement, mf, row.shards);
  row.scan_s = secs(t, tick());
  t = tick();
  const auto balanced = recovery::balance_multi(placement, censuses, 0);
  row.solve_s = secs(t, tick());

  // Both planning paths are timed as the min over two builds.  The first
  // build of a few-hundred-MB plan pays first-touch page faults on every
  // fresh column, which is an allocator artifact rather than planning
  // cost — the rebuild control plane reuses its pools (and its template
  // cache) across batches, so steady-state cost is what the speedup
  // ratio should compare.
  std::optional<recovery::RecoveryPlan> classic_plan;
  row.classic_plan_s = std::numeric_limits<double>::infinity();
  row.classic_lower_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    t = tick();
    auto built = recovery::build_multi_car_plan(
        placement, code, balanced.solutions, kChunk, mf.replacement);
    row.classic_plan_s = std::min(row.classic_plan_s, secs(t, tick()));
    classic_plan.emplace(std::move(built));
    t = tick();
    const auto classic_arena =
        recovery::PlanArena::build(*classic_plan, kChunk);
    row.classic_lower_s = std::min(row.classic_lower_s, secs(t, tick()));
  }

  // Template-cached path: signatures planned once, every stripe
  // instantiated by id remapping straight into the columns.  The second
  // build runs entirely on cache hits, exactly like a coordinator batch
  // after the first.
  recovery::PlanTemplateCache cache;
  std::optional<recovery::PlanArena> arena_opt;
  row.arena_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    t = tick();
    auto built = recovery::build_multi_car_arena(
        placement, code, balanced.solutions, kChunk, kChunk, mf.replacement,
        cache);
    row.arena_s = std::min(row.arena_s, secs(t, tick()));
    arena_opt.emplace(std::move(built));
  }
  const recovery::PlanArena& arena = *arena_opt;
  row.template_cache_misses = cache.stats().misses;

  const auto outputs = arena.outputs();
  std::vector<cluster::StripeId> sampled;
  for (const auto& out : outputs) {
    if (sampled.size() >= row.sample) break;
    if (std::find(sampled.begin(), sampled.end(), out.stripe) ==
        sampled.end()) {
      sampled.push_back(out.stripe);
    }
  }
  const auto originals = cluster.populate_sampled(placement, code, kChunk,
                                                  kSeed, sampled);
  for (const auto node : mf.failed_nodes) cluster.erase_node(node);

  emul::ArenaExecOptions options;
  options.shards = row.shards;
  // Serial replay drain: the safe window admits one drainer at a time, so
  // replay_shards == 1 is the fast configuration.  Sharded replay is the
  // bit-identity verification mode (tests/replay_engine_test.cc and the CI
  // scale smoke cover it).
  options.replay_shards = 1;
  options.metadata_only = true;
  options.sampled_stripes = sampled;

  // Predecessor-configuration reference replay (binary heap, replay
  // sharded `shards` ways) on an identically prepared cluster; the in-run
  // ratio over the calendar run below is what replay_speedup() reports.
  {
    emul::Cluster heap_cluster(cfg.topology(), fig9_emul(1.0));
    (void)heap_cluster.populate_sampled(placement, code, kChunk, kSeed,
                                        sampled);
    for (const auto node : mf.failed_nodes) heap_cluster.erase_node(node);
    auto heap_options = options;
    heap_options.replay_engine = emul::ReplayEngine::kHeap;
    heap_options.replay_shards = row.shards;
    t = tick();
    (void)heap_cluster.execute_arena(arena, heap_options);
    row.replay_heap_s = secs(t, tick());
  }

  options.replay_engine = emul::ReplayEngine::kCalendar;
  t = tick();
  const auto report = cluster.execute_arena(arena, options);
  row.replay_s = secs(t, tick());
  row.end_to_end_s = row.scan_s + row.solve_s + row.arena_s + row.replay_s;

  row.affected_stripes = censuses.size();
  row.plan_steps = static_cast<std::size_t>(arena.num_base_steps());
  row.makespan_s = report.wall_s;
  row.cross_rack_bytes = report.cross_rack_bytes;
  for (const auto& out : outputs) {
    const auto it = originals.find(out.stripe);
    if (it == originals.end()) continue;
    ++row.expected_outputs;
    const auto* rec =
        cluster.find_chunk(mf.replacement, out.stripe, out.chunk_index);
    row.verified_outputs +=
        rec != nullptr && *rec == it->second[out.chunk_index];
  }
  return row;
}

std::vector<ScaleSweepRow> measure_scale_sweep() {
  std::vector<ScaleSweepRow> rows;
  ScaleSweepRow a;
  a.stripes = 10000;
  a.num_racks = 20;
  a.rack_size = 20;
  a.failure = "single-node";
  a.shards = 4;
  rows.push_back(measure_scale_point(a));
  ScaleSweepRow b = a;
  b.failure = "full-rack";
  rows.push_back(measure_scale_point(b));
  ScaleSweepRow c;
  c.stripes = 100000;
  c.num_racks = 50;
  c.rack_size = 50;
  c.failure = "full-rack";
  c.shards = 8;
  rows.push_back(measure_scale_point(c));
  // The headline row: a 10k-node cluster losing a whole rack across one
  // million stripes, metadata-only — single-digit host seconds end to end.
  ScaleSweepRow d;
  d.stripes = 1000000;
  d.num_racks = 100;
  d.rack_size = 100;
  d.failure = "full-rack";
  d.shards = 8;
  rows.push_back(measure_scale_point(d));
  return rows;
}

// ---------------------------------------------------------------------------
// Rebuild control plane: the canned rolling-two-rack scenario (two failures,
// the second landing mid-rebuild) swept over strategy x dispatch concurrency.
// Everything runs on the virtual clock, so makespan and the exposure-time
// metrics are bit-deterministic; CI checks them structurally and
// directionally (tools/bench_schema_diff.py).

struct RebuildRow {
  // Sweep coordinates.
  std::string scenario;
  std::string strategy;      // "car" | "rr"
  std::size_t concurrency = 0;
  std::size_t batch_stripes = 0;
  // Measured (deterministic on the virtual clock).
  std::size_t scans = 0;
  std::size_t batches_dispatched = 0;
  std::size_t batches_cancelled = 0;
  std::size_t stripes_requeued = 0;
  double makespan_s = 0.0;
  double max_exposure_s = 0.0;
  double total_exposure_s = 0.0;
  double total_at_risk_s = 0.0;
  std::size_t chunks_recovered = 0;
  bool bit_exact = false;
};

std::vector<RebuildRow> measure_rebuild() {
  std::vector<RebuildRow> rows;
  for (const char* strategy : {"car", "rr"}) {
    for (const std::size_t concurrency :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      auto scenario = rebuild::canned_rebuild_scenario("rolling-two-rack");
      scenario.strategy = strategy;
      scenario.rebuild_concurrency = concurrency;
      const auto outcome = rebuild::run_rebuild_scenario(scenario);
      const auto& metrics = outcome.result.metrics;
      RebuildRow row;
      row.scenario = scenario.name;
      row.strategy = strategy;
      row.concurrency = concurrency;
      row.batch_stripes = scenario.rebuild_batch_stripes;
      row.scans = metrics.scans;
      row.batches_dispatched = metrics.batches_dispatched;
      row.batches_cancelled = metrics.batches_cancelled;
      row.stripes_requeued = metrics.stripes_requeued;
      row.makespan_s = metrics.makespan_s;
      row.max_exposure_s = metrics.max_exposure_s;
      row.total_exposure_s = metrics.total_exposure_s;
      row.total_at_risk_s = metrics.total_at_risk_s;
      row.chunks_recovered = outcome.result.recovered.size();
      row.bit_exact = outcome.bit_exact;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Planning-path benchmarks (paper §IV-D).

void BM_BalanceGreedy_Stripes(benchmark::State& state) {
  // Runtime should scale ~linearly with s (stripes).
  const auto stripes = static_cast<std::size_t>(state.range(0));
  const auto s = make_scenario(cluster::cfs3(), stripes, 17);
  for (auto _ : state) {
    auto result = recovery::balance_greedy(s.placement, s.censuses, {50});
    benchmark::DoNotOptimize(result.solutions.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(stripes));
}
BENCHMARK(BM_BalanceGreedy_Stripes)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

void BM_BalanceGreedy_Iterations(benchmark::State& state) {
  // Runtime should scale ~linearly with e (iterations), until convergence.
  const auto iterations = static_cast<std::size_t>(state.range(0));
  const auto s = make_scenario(cluster::cfs3(), 400, 23);
  for (auto _ : state) {
    auto result =
        recovery::balance_greedy(s.placement, s.censuses, {iterations});
    benchmark::DoNotOptimize(result.solutions.data());
  }
}
BENCHMARK(BM_BalanceGreedy_Iterations)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_EnumerateMinimalSolutions(benchmark::State& state) {
  const auto s = make_scenario(cluster::cfs3(), 100, 29);
  std::size_t i = 0;
  for (auto _ : state) {
    auto sets =
        recovery::enumerate_minimal_solutions(s.censuses[i % s.censuses.size()]);
    benchmark::DoNotOptimize(sets.data());
    ++i;
  }
}
BENCHMARK(BM_EnumerateMinimalSolutions);

void BM_BuildCarPlan(benchmark::State& state) {
  const auto s = make_scenario(cluster::cfs3(), 100, 31);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  for (auto _ : state) {
    auto plan = recovery::build_car_plan(s.placement, code, balanced.solutions,
                                         1 << 22, s.failure.failed_node);
    benchmark::DoNotOptimize(plan.steps.data());
  }
}
BENCHMARK(BM_BuildCarPlan);

void BM_SliceCarPlan(benchmark::State& state) {
  // The slice lowering is pure index arithmetic; it must stay negligible
  // next to the execution it pipelines.
  const auto s = make_scenario(cluster::cfs3(), 100, 31);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  const auto plan = recovery::build_car_plan(
      s.placement, code, balanced.solutions, 1 << 22, s.failure.failed_node);
  for (auto _ : state) {
    auto sliced = recovery::slice_plan(plan, 64 * util::kKiB);
    benchmark::DoNotOptimize(sliced.steps.data());
  }
}
BENCHMARK(BM_SliceCarPlan);

void BM_SimulateCarPlan(benchmark::State& state) {
  const auto s = make_scenario(cluster::cfs3(), 100, 37);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  const auto plan = recovery::build_car_plan(
      s.placement, code, balanced.solutions, 1 << 22, s.failure.failed_node);
  const simnet::NetConfig net;
  for (auto _ : state) {
    auto result = simnet::simulate_plan(s.placement.topology(), plan, net);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_SimulateCarPlan);

void BM_EmulateCarPlan_VirtualClock(benchmark::State& state) {
  // Full emulated recovery — real bytes through the link reservations, real
  // GF(2^8) decoding — under the virtual clock: no step sleeps, so even a
  // 1024-stripe plan (tens of thousands of steps) executes in
  // host-milliseconds on the bounded worker pool, deterministically.
  const auto stripes = static_cast<std::size_t>(state.range(0));
  const auto s = make_scenario(cluster::cfs3(), stripes, 47);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  const auto plan = recovery::build_car_plan(
      s.placement, code, balanced.solutions, 4096, s.failure.failed_node);

  emul::EmulConfig cfg;
  cfg.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(s.placement.topology(), cfg);
  util::Rng data_rng(48);
  cluster.populate(s.placement, code, 4096, data_rng);
  cluster.erase_node(s.failure.failed_node);
  for (auto _ : state) {
    auto report = cluster.execute(plan);
    benchmark::DoNotOptimize(report.wall_s);
  }
  state.SetComplexityN(static_cast<std::int64_t>(stripes));
}
BENCHMARK(BM_EmulateCarPlan_VirtualClock)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

void BM_SimulateRrPlan(benchmark::State& state) {
  auto s = make_scenario(cluster::cfs3(), 100, 41);
  const rs::Code code(10, 4);
  util::Rng rng(43);
  const auto rr = recovery::plan_rr(s.placement, s.censuses, rng);
  const auto plan = recovery::build_rr_plan(s.placement, code, rr, 1 << 22,
                                            s.failure.failed_node);
  const simnet::NetConfig net;
  for (auto _ : state) {
    auto result = simnet::simulate_plan(s.placement.topology(), plan, net);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_SimulateRrPlan);

// ---------------------------------------------------------------------------
// Host-latency benchmarks for the sliced execution path itself: the same
// fig9 plan, unsliced vs. sliced, real bytes + pooled staging.  These feed
// the host_results section of the JSON baseline (timings are host-specific;
// CI diffs structure only).

void register_fig9_exec_benches() {
  for (const std::uint64_t slice : {std::uint64_t{0}, kFig9Slice}) {
    const std::string name = slice == 0
                                 ? std::string("fig9_execute/unsliced")
                                 : "fig9_execute/sliced/" +
                                       std::to_string(slice / util::kKiB) +
                                       "KiB";
    meta_registry()[name] = {"execute", kFig9Chunk, slice};
    benchmark::RegisterBenchmark(name.c_str(), [slice](
                                                   benchmark::State& state) {
      const auto cfg = cluster::cfs2();
      const auto s = make_scenario(cfg, kFig9Stripes, 0xF19 + 1);
      const rs::Code code(cfg.k, cfg.m);
      const auto balanced =
          recovery::balance_greedy(s.placement, s.censuses, {50});
      const auto plan = recovery::schedule_windowed(
          recovery::build_car_plan(s.placement, code, balanced.solutions,
                                   kFig9Chunk, s.failure.failed_node),
          kFig9Window);
      emul::Cluster cluster(s.placement.topology(), fig9_emul(1.0));
      util::Rng data_rng(0xDA7A + 1);
      cluster.populate(s.placement, code, kFig9Chunk, data_rng);
      cluster.erase_node(s.failure.failed_node);
      double makespan = 0.0;
      if (slice == 0) {
        for (auto _ : state) {
          makespan = cluster.execute(plan).wall_s;
          benchmark::DoNotOptimize(makespan);
        }
      } else {
        const auto sliced = recovery::slice_plan(plan, slice);
        for (auto _ : state) {
          makespan = cluster.execute(sliced).wall_s;
          benchmark::DoNotOptimize(makespan);
        }
      }
      state.counters["virtual_makespan_s"] = makespan;
    });
  }
}

// ---------------------------------------------------------------------------
// JSON baseline writer (schema car-recovery-bench/1).

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void write_json(const std::string& path, const std::vector<Fig9Point>& points,
                const std::vector<ScaleSweepRow>& sweep,
                const std::vector<RebuildRow>& rebuild_rows,
                const std::vector<CollectedRun>& runs) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "micro_recovery: cannot open --json path %s\n",
                 path.c_str());
    std::exit(1);
  }
  os << std::setprecision(10);
  os << "{\n";
  os << "  \"schema\": \"car-recovery-bench/1\",\n";
  os << "  \"fabric\": {\"node_bps\": 125e6, \"oversubscription\": 5.0, "
        "\"virtual_gf_bps\": 1.5e9},\n";
  os << "  \"workload\": {\"chunk_bytes\": " << kFig9Chunk
     << ", \"slice_bytes\": " << kFig9Slice << ", \"window\": " << kFig9Window
     << ", \"stripes\": " << kFig9Stripes << "},\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Fig9Point& p = points[i];
    os << "    {\"config\": \"" << json_escape(p.config) << "\", \"k\": "
       << p.k << ", \"m\": " << p.m << ", \"racks\": " << p.racks
       << ", \"core_scale\": " << p.core_scale
       << ", \"unsliced_makespan_s\": " << p.unsliced_makespan_s
       << ", \"sliced_makespan_s\": " << p.sliced_makespan_s
       << ", \"speedup\": " << p.speedup() << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"scale_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ScaleSweepRow& r = sweep[i];
    os << "    {\"stripes\": " << r.stripes << ", \"nodes\": "
       << r.num_racks * r.rack_size << ", \"failure\": \""
       << json_escape(r.failure) << "\", \"racks\": " << r.num_racks
       << ", \"shards\": " << r.shards << ", \"metadata_only\": "
       << (r.metadata_only ? "true" : "false") << ", \"sample\": " << r.sample
       << ", \"affected_stripes\": " << r.affected_stripes
       << ", \"plan_steps\": " << r.plan_steps << ", \"makespan_s\": "
       << r.makespan_s << ", \"cross_rack_bytes\": " << r.cross_rack_bytes
       << ", \"verified_outputs\": " << r.verified_outputs
       << ", \"expected_outputs\": " << r.expected_outputs
       << ", \"scan_s\": " << r.scan_s << ", \"solve_s\": " << r.solve_s
       << ", \"classic_plan_s\": " << r.classic_plan_s
       << ", \"classic_lower_s\": " << r.classic_lower_s
       << ", \"arena_s\": " << r.arena_s << ", \"replay_s\": " << r.replay_s
       << ", \"replay_heap_s\": " << r.replay_heap_s
       << ", \"replay_speedup\": " << r.replay_speedup()
       << ", \"end_to_end_s\": " << r.end_to_end_s
       << ", \"plan_speedup\": " << r.plan_speedup()
       << ", \"template_cache_misses\": " << r.template_cache_misses << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"rebuild\": [\n";
  for (std::size_t i = 0; i < rebuild_rows.size(); ++i) {
    const RebuildRow& r = rebuild_rows[i];
    os << "    {\"scenario\": \"" << json_escape(r.scenario)
       << "\", \"strategy\": \"" << json_escape(r.strategy)
       << "\", \"concurrency\": " << r.concurrency
       << ", \"batch_stripes\": " << r.batch_stripes
       << ", \"scans\": " << r.scans
       << ", \"batches_dispatched\": " << r.batches_dispatched
       << ", \"batches_cancelled\": " << r.batches_cancelled
       << ", \"stripes_requeued\": " << r.stripes_requeued
       << ", \"makespan_s\": " << r.makespan_s
       << ", \"max_exposure_s\": " << r.max_exposure_s
       << ", \"total_exposure_s\": " << r.total_exposure_s
       << ", \"total_at_risk_s\": " << r.total_at_risk_s
       << ", \"chunks_recovered\": " << r.chunks_recovered
       << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
       << (i + 1 < rebuild_rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"host_results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CollectedRun& run = runs[i];
    os << "    {\"name\": \"" << json_escape(run.name) << "\", \"op\": \""
       << json_escape(run.meta.op) << "\", \"chunk_bytes\": "
       << run.meta.chunk_bytes << ", \"slice_bytes\": " << run.meta.slice_bytes
       << ", \"iterations\": " << run.iterations << ", \"real_time_s\": "
       << run.real_seconds << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void print_fig9_table(const std::vector<Fig9Point>& points) {
  std::printf("\n== fig9 fabric: sliced (%llu KiB) vs unsliced makespan, "
              "window %zu ==\n",
              static_cast<unsigned long long>(kFig9Slice / util::kKiB),
              kFig9Window);
  for (const Fig9Point& p : points) {
    std::printf("  %-5s k=%-2zu m=%zu core=%.0f%%  unsliced %8.3f s  "
                "sliced %8.3f s  speedup %.2fx\n",
                p.config.c_str(), p.k, p.m, 100.0 * p.core_scale,
                p.unsliced_makespan_s, p.sliced_makespan_s, p.speedup());
  }
}

void print_scale_table(const std::vector<ScaleSweepRow>& sweep) {
  std::printf("\n== scale sweep: metadata-only sharded arena execution ==\n");
  for (const ScaleSweepRow& r : sweep) {
    std::printf("  %7zu stripes  %4zu nodes  %-11s  shards %zu  affected "
                "%6zu  steps %7zu  makespan %9.3f s  end-to-end %6.3f s  "
                "replay %.2fx  verified %zu/%zu\n",
                r.stripes, r.num_racks * r.rack_size, r.failure.c_str(),
                r.shards, r.affected_stripes, r.plan_steps, r.makespan_s,
                r.end_to_end_s, r.replay_speedup(), r.verified_outputs,
                r.expected_outputs);
  }
}

void print_rebuild_table(const std::vector<RebuildRow>& rows) {
  std::printf("\n== rebuild control plane: rolling-two-rack, "
              "strategy x concurrency ==\n");
  for (const RebuildRow& r : rows) {
    std::printf("  %-3s conc %zu  batches %2zu (%zu cancelled, %2zu "
                "re-queued)  makespan %8.5f s  max-exposure %8.5f s  "
                "at-risk %8.5f s  %zu chunks %s\n",
                r.strategy.c_str(), r.concurrency, r.batches_dispatched,
                r.batches_cancelled, r.stripes_requeued, r.makespan_s,
                r.max_exposure_s, r.total_at_risk_s, r.chunks_recovered,
                r.bit_exact ? "bit-exact" : "MISMATCH");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --json <path> / --json=<path> before google-benchmark parses the
  // rest of the command line.
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  register_fig9_exec_benches();

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    const auto points = measure_fig9_points();
    print_fig9_table(points);
    const auto sweep = measure_scale_sweep();
    print_scale_table(sweep);
    const auto rebuild_rows = measure_rebuild();
    print_rebuild_table(rebuild_rows);
    write_json(json_path, points, sweep, rebuild_rows, reporter.collected());
  }
  return 0;
}
