// Microbenchmarks for the CAR planning path itself, verifying the paper's
// §IV-D complexity claim: Algorithm 2 runs in O(e * r * s), i.e. planning is
// cheap relative to the recovery it optimises.
#include <benchmark/benchmark.h>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "simnet/flowsim.h"

namespace {

using namespace car;

struct Scenario {
  cluster::Placement placement;
  cluster::FailureScenario failure;
  std::vector<recovery::StripeCensus> censuses;
};

Scenario make_scenario(const cluster::CfsConfig& cfg, std::size_t stripes,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  auto failure = cluster::inject_random_failure(placement, rng);
  auto censuses = recovery::build_censuses(placement, failure);
  return {std::move(placement), std::move(failure), std::move(censuses)};
}

void BM_BalanceGreedy_Stripes(benchmark::State& state) {
  // Runtime should scale ~linearly with s (stripes).
  const auto stripes = static_cast<std::size_t>(state.range(0));
  const auto s = make_scenario(cluster::cfs3(), stripes, 17);
  for (auto _ : state) {
    auto result = recovery::balance_greedy(s.placement, s.censuses, {50});
    benchmark::DoNotOptimize(result.solutions.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(stripes));
}
BENCHMARK(BM_BalanceGreedy_Stripes)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

void BM_BalanceGreedy_Iterations(benchmark::State& state) {
  // Runtime should scale ~linearly with e (iterations), until convergence.
  const auto iterations = static_cast<std::size_t>(state.range(0));
  const auto s = make_scenario(cluster::cfs3(), 400, 23);
  for (auto _ : state) {
    auto result =
        recovery::balance_greedy(s.placement, s.censuses, {iterations});
    benchmark::DoNotOptimize(result.solutions.data());
  }
}
BENCHMARK(BM_BalanceGreedy_Iterations)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_EnumerateMinimalSolutions(benchmark::State& state) {
  const auto s = make_scenario(cluster::cfs3(), 100, 29);
  std::size_t i = 0;
  for (auto _ : state) {
    auto sets =
        recovery::enumerate_minimal_solutions(s.censuses[i % s.censuses.size()]);
    benchmark::DoNotOptimize(sets.data());
    ++i;
  }
}
BENCHMARK(BM_EnumerateMinimalSolutions);

void BM_BuildCarPlan(benchmark::State& state) {
  const auto s = make_scenario(cluster::cfs3(), 100, 31);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  for (auto _ : state) {
    auto plan = recovery::build_car_plan(s.placement, code, balanced.solutions,
                                         1 << 22, s.failure.failed_node);
    benchmark::DoNotOptimize(plan.steps.data());
  }
}
BENCHMARK(BM_BuildCarPlan);

void BM_SimulateCarPlan(benchmark::State& state) {
  const auto s = make_scenario(cluster::cfs3(), 100, 37);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  const auto plan = recovery::build_car_plan(
      s.placement, code, balanced.solutions, 1 << 22, s.failure.failed_node);
  const simnet::NetConfig net;
  for (auto _ : state) {
    auto result = simnet::simulate_plan(s.placement.topology(), plan, net);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_SimulateCarPlan);

void BM_EmulateCarPlan_VirtualClock(benchmark::State& state) {
  // Full emulated recovery — real bytes through the link reservations, real
  // GF(2^8) decoding — under the virtual clock: no step sleeps, so even a
  // 1024-stripe plan (tens of thousands of steps) executes in
  // host-milliseconds on the bounded worker pool, deterministically.
  const auto stripes = static_cast<std::size_t>(state.range(0));
  const auto s = make_scenario(cluster::cfs3(), stripes, 47);
  const rs::Code code(10, 4);
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses, {50});
  const auto plan = recovery::build_car_plan(
      s.placement, code, balanced.solutions, 4096, s.failure.failed_node);

  emul::EmulConfig cfg;
  cfg.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(s.placement.topology(), cfg);
  util::Rng data_rng(48);
  cluster.populate(s.placement, code, 4096, data_rng);
  cluster.erase_node(s.failure.failed_node);
  for (auto _ : state) {
    auto report = cluster.execute(plan);
    benchmark::DoNotOptimize(report.wall_s);
  }
  state.SetComplexityN(static_cast<std::int64_t>(stripes));
}
BENCHMARK(BM_EmulateCarPlan_VirtualClock)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

void BM_SimulateRrPlan(benchmark::State& state) {
  auto s = make_scenario(cluster::cfs3(), 100, 41);
  const rs::Code code(10, 4);
  util::Rng rng(43);
  const auto rr = recovery::plan_rr(s.placement, s.censuses, rng);
  const auto plan = recovery::build_rr_plan(s.placement, code, rr, 1 << 22,
                                            s.failure.failed_node);
  const simnet::NetConfig net;
  for (auto _ : state) {
    auto result = simnet::simulate_plan(s.placement.topology(), plan, net);
    benchmark::DoNotOptimize(result.makespan_s);
  }
}
BENCHMARK(BM_SimulateRrPlan);

}  // namespace

BENCHMARK_MAIN();
