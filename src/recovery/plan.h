// Executable recovery plans.
//
// A RecoveryPlan is a DAG of transfer and compute steps that fully describes
// a multi-stripe single-failure recovery — which node sends which buffer to
// whom, and which linear combinations are evaluated where.  The same plan is
// consumed by three back-ends:
//   * recovery/metrics.h-style counting (traffic accounting, tested against
//     the analytic summaries),
//   * simnet::simulate_plan (flow-level timing model),
//   * emul::Cluster::execute (real bytes through rate-limited links).
// Keeping one artifact guarantees the back-ends agree on *what* happens.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/failure.h"
#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/planner.h"
#include "recovery/random_recovery.h"
#include "rs/code.h"

namespace car::recovery {

/// Identifies a byte buffer: either an original chunk or the output of a
/// compute step (e.g. a partially decoded chunk).
struct BufferRef {
  enum class Kind { kChunk, kStepOutput };
  Kind kind = Kind::kChunk;
  cluster::StripeId stripe = 0;  // kChunk
  std::size_t chunk_index = 0;   // kChunk
  std::size_t step_id = 0;       // kStepOutput

  static BufferRef chunk(cluster::StripeId s, std::size_t c) {
    return {Kind::kChunk, s, c, 0};
  }
  static BufferRef step(std::size_t id) {
    return {Kind::kStepOutput, 0, 0, id};
  }
  friend bool operator==(const BufferRef&, const BufferRef&) = default;
};

/// One term of a linear combination: coeff * buffer.
struct ComputeInput {
  BufferRef buffer;
  std::uint8_t coeff = 1;
};

enum class StepKind { kTransfer, kCompute };

struct PlanStep {
  std::size_t id = 0;
  StepKind kind = StepKind::kTransfer;
  cluster::StripeId stripe = 0;
  std::vector<std::size_t> deps;  // step ids that must complete first

  // --- transfer fields ---
  cluster::NodeId src = 0;
  cluster::NodeId dst = 0;
  BufferRef payload;
  bool cross_rack = false;

  // --- compute fields ---
  cluster::NodeId node = 0;           // where the combination is evaluated
  std::vector<ComputeInput> inputs;   // output = sum coeff_i * buffer_i

  std::uint64_t bytes = 0;  // transfer: payload size; compute: bytes touched
};

struct RecoveryPlan {
  cluster::NodeId replacement = 0;
  cluster::RackId replacement_rack = 0;
  std::uint64_t chunk_size = 0;
  std::vector<PlanStep> steps;

  /// Final reconstruction outputs: the compute step whose result is the
  /// recovered chunk, one per lost chunk.
  struct Output {
    cluster::StripeId stripe = 0;
    std::size_t chunk_index = 0;
    std::size_t step_id = 0;
  };
  std::vector<Output> outputs;

  [[nodiscard]] std::size_t num_transfers() const noexcept;
  [[nodiscard]] std::size_t num_computes() const noexcept;
  [[nodiscard]] std::uint64_t cross_rack_bytes() const noexcept;
  [[nodiscard]] std::uint64_t intra_rack_bytes() const noexcept;
  /// Bytes sent across the core by each rack (indexed by rack id).
  [[nodiscard]] std::vector<std::uint64_t> per_rack_cross_bytes(
      const cluster::Topology& topology) const;
  /// Total bytes processed by GF/XOR compute steps.
  [[nodiscard]] std::uint64_t compute_bytes() const noexcept;
};

/// Byte-total accounting over any step sequence — shared by RecoveryPlan
/// and the slice-level lowering (recovery/slice.h), so sliced and unsliced
/// plans are summed by the same code and can be compared bit-for-bit.
[[nodiscard]] std::uint64_t cross_rack_bytes(
    std::span<const PlanStep> steps) noexcept;
[[nodiscard]] std::uint64_t intra_rack_bytes(
    std::span<const PlanStep> steps) noexcept;
[[nodiscard]] std::uint64_t compute_bytes(
    std::span<const PlanStep> steps) noexcept;
[[nodiscard]] std::vector<std::uint64_t> per_rack_cross_bytes(
    std::span<const PlanStep> steps, const cluster::Topology& topology);

/// Compile a CAR multi-stripe solution into an executable plan.  Each
/// contributing rack designates the host of its first picked chunk as
/// aggregator; aggregators partially decode and forward one chunk to the
/// replacement, which XOR-combines the partials (paper Algorithm 1).
RecoveryPlan build_car_plan(const cluster::Placement& placement,
                            const rs::Code& code,
                            std::span<const PerStripeSolution> solutions,
                            std::uint64_t chunk_size,
                            cluster::NodeId replacement);

/// Compile an RR multi-stripe solution: every fetched survivor is shipped
/// directly to the replacement, which runs the full decode.
RecoveryPlan build_rr_plan(const cluster::Placement& placement,
                           const rs::Code& code,
                           std::span<const RrSolution> solutions,
                           std::uint64_t chunk_size,
                           cluster::NodeId replacement);

}  // namespace car::recovery
