// car-no-raw-virtual-time-arithmetic
//
// The emulator's timeline (virtual seconds, and the sliced-step id grid the
// timing replay walks) has two arithmetic traps that were both hit before
// this check existed:
//
//   * sliced-id grid math: `base * num_slices + slice` overflows uint64_t on
//     adversarial plans, silently aliasing two slices onto one id.  The
//     overflow-checked helpers — recovery::sliced_id, SlicePlan::sliced_id,
//     PlanArena::sliced_id — exist for exactly this; writing the raw
//     mul-plus-add by hand bypasses the check (the PR-6 bug class).
//
//   * raw virtual-time arithmetic on EmulClock::now() outside the emulator
//     layer: consumers must go through the clock/link helpers (sleep_until,
//     advance_to, SerialLink::reserve/preview) so the timeline stays
//     monotonic and reproducible; src/emul/ itself — the layer that
//     implements those helpers — is exempt.
//
// Flagged shapes:
//   <x> * <...num_slices...> + <y>   (outside a function named sliced_id)
//   clock.now() <op> <expr>          (outside src/emul/)
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::car {

class NoRawVirtualTimeArithmeticCheck : public ClangTidyCheck {
 public:
  NoRawVirtualTimeArithmeticCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::car
