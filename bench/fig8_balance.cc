// Figure 8 reproduction: load-balancing rate lambda vs greedy iterations.
//
// Methodology (paper §V-B): s = 100 stripes, e = 50 iterations, 50 runs.
// For each CFS we report lambda after e = 0 (i.e. without load balancing,
// but still with minimum-rack selection + partial decoding) and after
// 10..50 iterations of Algorithm 2, as mean ± sample stddev.
#include <cstdio>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr int kRuns = 50;
constexpr std::size_t kMaxIterations = 50;

}  // namespace

int main() {
  using namespace car;
  std::printf("== Figure 8: load-balancing rate vs iteration steps ==\n");
  std::printf("s = %zu stripes, e = %zu iterations, %d runs per config\n\n",
              kStripes, kMaxIterations, kRuns);

  for (const auto& cfg : cluster::paper_configs()) {
    // lambda after exactly e iterations, for e = 0, 10, 20, 30, 40, 50.
    const std::size_t checkpoints[] = {0, 10, 20, 30, 40, 50};
    util::RunningStats stats[6];

    for (int run = 0; run < kRuns; ++run) {
      util::Rng rng(0xF1800000ULL + run * 977);
      const auto placement = cluster::Placement::random(
          cfg.topology(), cfg.k, cfg.m, kStripes, rng);
      const auto scenario = cluster::inject_random_failure(placement, rng);
      const auto censuses = recovery::build_censuses(placement, scenario);
      const auto result =
          recovery::balance_greedy(placement, censuses, {kMaxIterations});

      for (std::size_t i = 0; i < 6; ++i) {
        // Once converged, lambda stays at its final value.
        const std::size_t idx =
            std::min(checkpoints[i], result.lambda_trace.size() - 1);
        stats[i].add(result.lambda_trace[idx]);
      }
    }

    util::TextTable table({"iterations", "lambda (mean)", "stddev"});
    for (std::size_t i = 0; i < 6; ++i) {
      table.add_row({checkpoints[i] == 0
                         ? std::string("0 (no balancing)")
                         : std::to_string(checkpoints[i]),
                     util::fmt_double(stats[i].mean(), 3),
                     util::fmt_double(stats[i].sample_stddev(), 3)});
    }
    std::printf("-- %s %s, RS(%zu,%zu) --\n", cfg.name.c_str(),
                cfg.topology().to_string().c_str(), cfg.k, cfg.m);
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("Paper reference: in CFS1 lambda drops from 1.22 without "
              "balancing to 1.02\nwith balancing; the curve falls steeply "
              "first, then plateaus near the optimum.\n");
  return 0;
}
