#!/usr/bin/env python3
"""Structural diff between two recovery-bench JSON baselines.

CI runs `micro_recovery --json` on the PR build and compares the result
against the committed BENCH_recovery.json with this tool.  Host timing is
noisy and machine-specific, so absolute times are deliberately ignored —
what must match is the *structure*:

  - the schema string (car-recovery-bench/1);
  - the fabric and workload constants (these define the experiment; a drift
    here silently changes what the baseline means);
  - the set of measured points, keyed by (config, core_scale), and each
    point's integer/config fields (k, m, racks);
  - the set of scale_sweep rows, keyed by (stripes, nodes, failure), and
    each row's config fields (racks, shards, metadata_only);
  - the set of rebuild rows (the rolling-two-rack control-plane sweep),
    keyed by (scenario, strategy, concurrency), each row's batch_stripes,
    and its bit_exact flag (a non-bit-exact rebuild is a correctness
    regression, not timing noise);
  - the set of host_results benchmark names and their non-timing fields
    (op, chunk_bytes, slice_bytes).

Makespans on the virtual clock are deterministic per build, but they may
legitimately move when the planner or emulator changes; the only value
checks are directional: every default-fabric (core_scale == 1) point must
keep speedup >= --min-speedup (default 1.3, the acceptance bar), every
scale_sweep row must report a positive makespan and step count (and a
positive end_to_end_s when it carries one), every full-rack scale_sweep
row that carries the template-cache timing columns must keep plan_speedup
(classic plan+lowering over template-cached arena build, a within-run
host-time ratio that divides out the machine) >= --min-plan-speedup
(default 5, the acceptance bar), and every full-rack row that carries the
replay-engine timing columns must keep replay_speedup (binary-heap replay
over calendar-queue replay, the same kind of within-run ratio) >=
--min-replay-speedup (default 2, the acceptance bar).

Malformed input is a diagnostic, not a traceback: a missing section, a row
without its key fields, or a zero makespan in a speedup ratio all produce a
clear message and a nonzero exit instead of KeyError/ZeroDivisionError.

Usage:
  bench_schema_diff.py BASELINE CANDIDATE [--min-speedup 1.3]
      [--min-plan-speedup 5.0] [--min-replay-speedup 2.0]

Exits 0 when the candidate matches, 1 with a report on stderr otherwise,
2 when an input file cannot be read or parsed at all.
"""

import argparse
import json
import sys

POINT_KEY = ("config", "core_scale")
POINT_FIELDS = ("k", "m", "racks")
SWEEP_KEY = ("stripes", "nodes", "failure")
SWEEP_FIELDS = ("racks", "shards", "metadata_only")
REBUILD_KEY = ("scenario", "strategy", "concurrency")
REBUILD_FIELDS = ("batch_stripes", "bit_exact")
RESULT_FIELDS = ("op", "chunk_bytes", "slice_bytes")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        sys.exit(f"bench_schema_diff: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        sys.exit(f"bench_schema_diff: {path} is not valid JSON: {exc}")


def keyed(rows, key_fields, section, errors):
    """Index rows by key_fields; rows missing a key field become errors
    instead of a KeyError traceback."""
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"{section}[{i}]: expected an object, got {row!r}")
            continue
        missing = [k for k in key_fields if k not in row]
        if missing:
            errors.append(
                f"{section}[{i}]: row is missing key field(s) {missing}"
            )
            continue
        out[tuple(row[k] for k in key_fields)] = row
    return out


def section_rows(doc, which, section, required, errors):
    """Fetch doc[section] as a list; a missing-but-required section or a
    non-list value is a diagnostic."""
    rows = doc.get(section)
    if rows is None:
        if required:
            errors.append(f"section {section!r} missing from {which} JSON")
        return []
    if not isinstance(rows, list):
        errors.append(f"section {section!r} in {which} is not a list")
        return []
    return rows


def check_speedup(key, point, min_speedup, errors):
    """Directional check on a fig9 point, recomputing the ratio with a
    zero-makespan guard (a zero baseline row used to ZeroDivisionError)."""
    if point.get("core_scale") != 1:
        return
    unsliced = point.get("unsliced_makespan_s", 0)
    sliced = point.get("sliced_makespan_s", 0)
    if not sliced or sliced <= 0:
        errors.append(
            f"point {key}: sliced makespan is {sliced!r}; cannot form a "
            "speedup ratio (zero/missing makespan in a measured row means "
            "the benchmark did not actually run)"
        )
        return
    speedup = unsliced / sliced
    if speedup < min_speedup:
        errors.append(
            f"point {key}: sliced speedup {speedup:.3f} fell below the "
            f"{min_speedup}x acceptance bar"
        )


def diff_section(base_rows, cand_rows, key_fields, fields, section, errors):
    base = keyed(base_rows, key_fields, f"baseline {section}", errors)
    cand = keyed(cand_rows, key_fields, f"candidate {section}", errors)
    for key in sorted(set(base) - set(cand), key=repr):
        errors.append(f"{section} row missing from candidate: {key}")
    for key in sorted(set(cand) - set(base), key=repr):
        errors.append(f"unexpected new {section} row in candidate: {key}")
    for key in sorted(set(base) & set(cand), key=repr):
        for field in fields:
            if base[key].get(field) != cand[key].get(field):
                errors.append(
                    f"{section} row {key} field {field!r}: baseline "
                    f"{base[key].get(field)!r} vs candidate "
                    f"{cand[key].get(field)!r}"
                )
    return base, cand


def diff(baseline, candidate, min_speedup, min_plan_speedup,
         min_replay_speedup):
    errors = []

    for field in ("schema", "fabric", "workload"):
        if baseline.get(field) != candidate.get(field):
            errors.append(
                f"{field} mismatch: baseline {baseline.get(field)!r} "
                f"vs candidate {candidate.get(field)!r}"
            )

    base_points = section_rows(baseline, "baseline", "points", True, errors)
    cand_points = section_rows(candidate, "candidate", "points", True, errors)
    _, cand_by_key = diff_section(
        base_points, cand_points, POINT_KEY, POINT_FIELDS, "points", errors
    )
    for key, point in sorted(cand_by_key.items()):
        check_speedup(key, point, min_speedup, errors)

    # The scale sweep is required exactly when the baseline carries one, so
    # old baselines keep diffing cleanly.
    sweep_required = "scale_sweep" in baseline
    base_sweep = section_rows(
        baseline, "baseline", "scale_sweep", sweep_required, errors
    )
    cand_sweep = section_rows(
        candidate, "candidate", "scale_sweep", sweep_required, errors
    )
    _, cand_sweep_by_key = diff_section(
        base_sweep, cand_sweep, SWEEP_KEY, SWEEP_FIELDS, "scale_sweep", errors
    )
    for key, row in sorted(cand_sweep_by_key.items(), key=repr):
        makespan = row.get("makespan_s", 0)
        if not makespan or makespan <= 0:
            errors.append(
                f"scale_sweep row {key}: makespan_s is {makespan!r}; a "
                "non-positive makespan means the emulated recovery did not run"
            )
        elif row.get("stripes", 0) / makespan <= 0:
            errors.append(f"scale_sweep row {key}: zero recovery throughput")
        if not row.get("plan_steps"):
            errors.append(f"scale_sweep row {key}: plan_steps is missing/zero")
        if "end_to_end_s" in row and not row.get("end_to_end_s", 0) > 0:
            errors.append(
                f"scale_sweep row {key}: end_to_end_s is "
                f"{row.get('end_to_end_s')!r}; the phase timers did not run"
            )
        # Template-cache acceptance: full-rack rows are where hundreds of
        # thousands of stripes share a handful of structural signatures, so
        # the cached build must beat classic plan+lowering by the bar.  The
        # ratio is host time over host time in one process, so machine
        # speed divides out.
        if row.get("failure") == "full-rack" and "plan_speedup" in row:
            plan_speedup = row.get("plan_speedup") or 0
            if plan_speedup < min_plan_speedup:
                errors.append(
                    f"scale_sweep row {key}: plan_speedup "
                    f"{plan_speedup:.3f} fell below the "
                    f"{min_plan_speedup}x template-cache acceptance bar"
                )
            misses = row.get("template_cache_misses", 0)
            affected = row.get("affected_stripes", 0)
            if affected and misses * 10 > affected:
                errors.append(
                    f"scale_sweep row {key}: {misses} template-cache "
                    f"misses for {affected} affected stripes — the "
                    "signature space is exploding instead of collapsing"
                )
        # Calendar-queue acceptance: full-rack rows replay hundreds of
        # thousands to millions of events, where the bucketed queue must
        # beat the global binary heap by the bar.  Same within-run
        # host-ratio construction as plan_speedup.
        if row.get("failure") == "full-rack" and "replay_speedup" in row:
            replay_speedup = row.get("replay_speedup") or 0
            if replay_speedup < min_replay_speedup:
                errors.append(
                    f"scale_sweep row {key}: replay_speedup "
                    f"{replay_speedup:.3f} fell below the "
                    f"{min_replay_speedup}x calendar-queue acceptance bar"
                )

    # Like the scale sweep, the rebuild section is required exactly when
    # the baseline carries one.
    rebuild_required = "rebuild" in baseline
    base_rebuild = section_rows(
        baseline, "baseline", "rebuild", rebuild_required, errors
    )
    cand_rebuild = section_rows(
        candidate, "candidate", "rebuild", rebuild_required, errors
    )
    _, cand_rebuild_by_key = diff_section(
        base_rebuild, cand_rebuild, REBUILD_KEY, REBUILD_FIELDS, "rebuild",
        errors,
    )
    for key, row in sorted(cand_rebuild_by_key.items(), key=repr):
        makespan = row.get("makespan_s", 0)
        if not makespan or makespan <= 0:
            errors.append(
                f"rebuild row {key}: makespan_s is {makespan!r}; a "
                "non-positive makespan means the rebuild did not actually run"
            )
        if row.get("bit_exact") is not True:
            errors.append(
                f"rebuild row {key}: bit_exact is "
                f"{row.get('bit_exact')!r}; recovered bytes diverged from "
                "the original encoding"
            )
        if not row.get("chunks_recovered"):
            errors.append(
                f"rebuild row {key}: chunks_recovered is missing/zero"
            )
        if not row.get("scans"):
            errors.append(f"rebuild row {key}: scans is missing/zero")

    base_runs = section_rows(
        baseline, "baseline", "host_results", True, errors
    )
    cand_runs = section_rows(
        candidate, "candidate", "host_results", True, errors
    )
    diff_section(
        base_runs, cand_runs, ("name",), RESULT_FIELDS, "host_results", errors
    )

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--min-speedup", type=float, default=1.3)
    parser.add_argument("--min-plan-speedup", type=float, default=5.0)
    parser.add_argument("--min-replay-speedup", type=float, default=2.0)
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    for which, doc in (("baseline", baseline), ("candidate", candidate)):
        if not isinstance(doc, dict):
            sys.exit(f"bench_schema_diff: {which} JSON is not an object")

    errors = diff(
        baseline, candidate, args.min_speedup, args.min_plan_speedup,
        args.min_replay_speedup
    )
    if errors:
        print(f"bench_schema_diff: {len(errors)} mismatch(es):", file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        return 1
    print("bench_schema_diff: candidate matches the baseline structure")
    return 0


if __name__ == "__main__":
    sys.exit(main())
