#pragma once

// An allocator adaptor that default-initialises instead of
// value-initialising on the plain construct(p) overload.  For trivial
// element types this makes vector::resize() skip the zero-fill — the
// columnar plan arena resizes multi-hundred-MB columns to exact extents
// and then overwrites every element through raw cursors, so the memset
// would be pure waste on the planning critical path.

#include <memory>
#include <type_traits>
#include <utility>

namespace car::util {

template <typename T, typename Alloc = std::allocator<T>>
class DefaultInitAllocator : public Alloc {
  using Traits = std::allocator_traits<Alloc>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename Traits::template rebind_alloc<U>>;
  };

  using Alloc::Alloc;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    Traits::construct(static_cast<Alloc&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace car::util
