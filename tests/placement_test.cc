#include "cluster/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/configs.h"

namespace car::cluster {
namespace {

class RandomPlacementSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  CfsConfig config_ = paper_configs()[std::get<0>(GetParam())];
  util::Rng rng_{std::get<1>(GetParam())};
};

TEST_P(RandomPlacementSweep, InvariantsHoldForEveryStripe) {
  constexpr std::size_t kStripes = 60;
  const auto p = Placement::random(config_.topology(), config_.k, config_.m,
                                   kStripes, rng_);
  ASSERT_EQ(p.num_stripes(), kStripes);
  EXPECT_TRUE(p.validate());

  for (StripeId s = 0; s < kStripes; ++s) {
    const auto census = p.rack_census(s);
    const std::size_t total =
        std::accumulate(census.begin(), census.end(), std::size_t{0});
    EXPECT_EQ(total, config_.k + config_.m);
    for (std::size_t c : census) {
      EXPECT_LE(c, config_.m) << "rack quota violated in stripe " << s;
    }
    auto nodes = p.stripe(s);
    std::vector<NodeId> sorted(nodes.begin(), nodes.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST_P(RandomPlacementSweep, OccupancyAccountsForAllChunks) {
  const auto p = Placement::random(config_.topology(), config_.k, config_.m,
                                   40, rng_);
  const auto occ = p.node_occupancy();
  const std::size_t total =
      std::accumulate(occ.begin(), occ.end(), std::size_t{0});
  EXPECT_EQ(total, 40 * (config_.k + config_.m));
  for (NodeId n = 0; n < p.topology().num_nodes(); ++n) {
    EXPECT_EQ(p.chunks_on_node(n).size(), occ[n]);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, RandomPlacementSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 42u, 777u)));

TEST(Placement, ChunkIndicesInRackMatchesNodeOf) {
  util::Rng rng(5);
  const auto cfg = cfs2();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 10, rng);
  for (StripeId s = 0; s < p.num_stripes(); ++s) {
    for (RackId r = 0; r < p.topology().num_racks(); ++r) {
      const auto indices = p.chunk_indices_in_rack(s, r);
      EXPECT_EQ(indices.size(), p.chunks_in_rack(s, r));
      for (std::size_t c : indices) {
        EXPECT_EQ(p.topology().rack_of(p.node_of(s, c)), r);
      }
    }
  }
}

TEST(Placement, AddStripeValidatesLayout) {
  Placement p(Topology({2, 2, 2}), 3, 2);  // k=3, m=2, width 5
  EXPECT_NO_THROW(p.add_stripe({0, 1, 2, 3, 4}));
  EXPECT_THROW(p.add_stripe({0, 1, 2, 3}), std::invalid_argument);     // arity
  EXPECT_THROW(p.add_stripe({0, 0, 2, 3, 4}), std::invalid_argument);  // dup
  EXPECT_THROW(p.add_stripe({0, 1, 2, 3, 9}), std::invalid_argument);  // range
}

TEST(Placement, RackQuotaEnforced) {
  // Width 4 with m=1: no rack may hold 2+ chunks of one stripe.
  Placement p(Topology({3, 3, 3, 3}), 3, 1);
  EXPECT_THROW(p.add_stripe({0, 1, 3, 6}), std::invalid_argument);
  EXPECT_NO_THROW(p.add_stripe({0, 3, 6, 9}));
}

TEST(Placement, RandomThrowsWhenQuotaMakesStripeImpossible) {
  // Two racks, m=1 -> at most 2 chunk slots per stripe but width is 3.
  util::Rng rng(1);
  EXPECT_THROW(Placement::random(Topology({5, 5}), 2, 1, 1, rng),
               std::invalid_argument);
}

TEST(Placement, ConstructorRejectsImpossibleWidth) {
  EXPECT_THROW(Placement(Topology({2, 2}), 4, 2), std::invalid_argument);
}

TEST(Placement, RoundRobinIsValidAndDeterministic) {
  const auto cfg = cfs1();
  const auto p1 = Placement::round_robin(cfg.topology(), cfg.k, cfg.m, 20);
  const auto p2 = Placement::round_robin(cfg.topology(), cfg.k, cfg.m, 20);
  EXPECT_TRUE(p1.validate());
  for (StripeId s = 0; s < 20; ++s) {
    const auto a = p1.stripe(s);
    const auto b = p2.stripe(s);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Placement, OutOfRangeAccessorsThrow) {
  util::Rng rng(3);
  const auto cfg = cfs1();
  const auto p = Placement::random(cfg.topology(), cfg.k, cfg.m, 2, rng);
  EXPECT_THROW((void)p.node_of(2, 0), std::out_of_range);
  EXPECT_THROW((void)p.node_of(0, 7), std::out_of_range);
  EXPECT_THROW((void)p.stripe(5), std::out_of_range);
  EXPECT_THROW((void)p.chunks_in_rack(0, 9), std::out_of_range);
  EXPECT_THROW(p.chunks_on_node(99), std::out_of_range);
}

}  // namespace
}  // namespace car::cluster
