// End-to-end rolling-failure rebuild runs (the `carctl rebuild-run` core).
//
// run_rebuild_scenario reuses the inject::Scenario spec grammar — the
// rolling failures are the spec's repeatable `crash node=N at=T` lines, and
// the rebuild control plane's knobs are `batch-stripes` / `concurrency` —
// but executes through the RebuildCoordinator instead of the single-plan
// resilient runtime: every crash is a membership event, affected stripes
// are scanned and prioritized by exposure, and batches overlap on one
// virtual timeline.
//
// Population always uses per-stripe seeds (emul::Cluster::stripe_seed), so
// it can be sharded across `populate_shards` threads with byte-identical
// results — shard count never changes a single stored byte, a recovered
// byte, or an event-log byte.  Under `data-mode metadata` only the first
// `sample` affected stripes are materialised (inject::DataPolicy); all
// other recoveries are measured, not materialised.
//
// Canned scenarios:
//   rolling-two-rack — RS(4,2), two failures in two different racks, the
//                      second landing mid-rebuild (the acceptance case);
//   rolling-triple   — RS(4,3), three rolling failures across three racks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "inject/scenario.h"
#include "rebuild/coordinator.h"
#include "util/attributes.h"

namespace car::rebuild {

struct RebuildScenarioOutcome {
  RebuildResult result;
  /// Recovered chunks whose bytes were checked against the original
  /// encoding: all of them, except under data-mode metadata where only
  /// sampled stripes carry bytes.
  std::size_t chunks_expected = 0;
  std::size_t chunks_verified = 0;
  bool bit_exact = false;  // chunks_verified == chunks_expected
  std::size_t stripes_materialised = 0;
};

/// Build the cluster, populate it (`populate_shards` threads over disjoint
/// stripe sets), run the coordinator over the spec's crash schedule, and
/// byte-verify every materialised recovered chunk.  The scenario must
/// contain at least one node crash and every crash must use an `at=` time
/// (util::CheckError otherwise).  Deterministic: the same scenario yields
/// the same outcome — including a byte-identical EventLog — for any
/// populate_shards >= 1.
RebuildScenarioOutcome run_rebuild_scenario(const inject::Scenario& scenario,
                                            std::size_t populate_shards = 1)
    CAR_BOUNDARY;

/// Names of the embedded rolling-failure scenarios, in listing order.
[[nodiscard]] std::vector<std::string> canned_rebuild_scenario_names();

/// Fetch an embedded rolling-failure scenario by name (throws
/// std::invalid_argument for unknown names).  The spec text round-trips
/// through inject::parse_scenario, so the `crash` grammar is exercised by
/// every caller.
inject::Scenario canned_rebuild_scenario(const std::string& name);

}  // namespace car::rebuild
