#include "cluster/topology.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::cluster {
namespace {

TEST(Topology, BasicCounts) {
  const Topology t({4, 3, 3});
  EXPECT_EQ(t.num_racks(), 3u);
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.nodes_in_rack_count(0), 4u);
  EXPECT_EQ(t.nodes_in_rack_count(2), 3u);
  EXPECT_EQ(t.to_string(), "{4,3,3}");
}

TEST(Topology, RackOfMapsEveryNodeConsistently) {
  const Topology t({6, 4, 5, 3, 2});
  std::size_t node = 0;
  for (RackId rack = 0; rack < t.num_racks(); ++rack) {
    for (std::size_t i = 0; i < t.nodes_in_rack_count(rack); ++i, ++node) {
      EXPECT_EQ(t.rack_of(node), rack) << "node " << node;
    }
  }
  EXPECT_EQ(node, t.num_nodes());
}

TEST(Topology, RackRangeAndNodesInRack) {
  const Topology t({2, 3});
  EXPECT_EQ(t.rack_range(0), (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(t.rack_range(1), (std::pair<NodeId, NodeId>{2, 5}));
  EXPECT_EQ(t.nodes_in_rack(1), (std::vector<NodeId>{2, 3, 4}));
}

TEST(Topology, Validation) {
  EXPECT_THROW(Topology({}), std::invalid_argument);
  EXPECT_THROW(Topology({3, 0, 2}), std::invalid_argument);
  const Topology t({2, 2});
  EXPECT_THROW((void)t.rack_of(4), std::out_of_range);
  EXPECT_THROW((void)t.rack_range(2), std::out_of_range);
  EXPECT_THROW((void)t.nodes_in_rack_count(2), std::out_of_range);
}

TEST(Topology, Equality) {
  EXPECT_EQ(Topology({1, 2}), Topology({1, 2}));
  EXPECT_NE(Topology({1, 2}), Topology({2, 1}));
}

TEST(PaperConfigs, MatchTableII) {
  const auto cfgs = paper_configs();
  ASSERT_EQ(cfgs.size(), 3u);

  EXPECT_EQ(cfgs[0].name, "CFS1");
  EXPECT_EQ(cfgs[0].nodes_per_rack, (std::vector<std::size_t>{4, 3, 3}));
  EXPECT_EQ(cfgs[0].k, 4u);
  EXPECT_EQ(cfgs[0].m, 3u);
  EXPECT_EQ(cfgs[0].topology().num_nodes(), 10u);

  EXPECT_EQ(cfgs[1].name, "CFS2");
  EXPECT_EQ(cfgs[1].k, 6u);
  EXPECT_EQ(cfgs[1].m, 3u);
  EXPECT_EQ(cfgs[1].topology().num_nodes(), 13u);

  EXPECT_EQ(cfgs[2].name, "CFS3");
  EXPECT_EQ(cfgs[2].k, 10u);
  EXPECT_EQ(cfgs[2].m, 4u);
  EXPECT_EQ(cfgs[2].topology().num_nodes(), 20u);
  EXPECT_EQ(cfgs[2].stripe_width(), 14u);
}

}  // namespace
}  // namespace car::cluster
