// Bulk (region) operations over GF(2^8) buffers.
//
// These are the kernels the Reed–Solomon codec spends its time in: multiply a
// whole chunk by a coefficient and accumulate into a destination chunk.  The
// heavy lifting is done by the runtime-dispatched SIMD kernels in
// gf/kernels.h (scalar / SSSE3 / AVX2, selected once at startup); this header
// is the span-typed API the rest of the repo uses.
//
// All functions require dst.size() == src.size(); they throw
// util::CheckError (a std::invalid_argument) otherwise.
//
// Aliasing contract: src and dst may be the *same* region (identical data
// pointer and size — the in-place case used by scale_region); every kernel
// variant loads each block before storing it, so exact aliasing is safe on
// scalar and SIMD paths alike.  Partially overlapping regions are undefined.
#pragma once

#include <cstdint>
#include <span>

#include "util/attributes.h"

namespace car::gf {

/// dst ^= src (characteristic-2 addition of two regions). dst may equal src
/// (result is then all zeros) but partial overlap is undefined.
CAR_HOT void xor_region(std::span<const std::uint8_t> src,
                        std::span<std::uint8_t> dst);

/// dst = c * src.  c == 0 zeroes dst; c == 1 copies.  In-place safe.
CAR_HOT void mul_region(std::uint8_t c, std::span<const std::uint8_t> src,
                std::span<std::uint8_t> dst);

/// dst ^= c * src — the fused multiply-accumulate used by encode/decode.
/// In-place safe (dst == src computes dst ^= c * dst).
CAR_HOT void mul_region_acc(std::uint8_t c, std::span<const std::uint8_t> src,
                    std::span<std::uint8_t> dst);

/// In-place dst *= c (forwards dst as both operands of mul_region, which the
/// aliasing contract above makes explicitly safe on every kernel path).
CAR_HOT void scale_region(std::uint8_t c, std::span<std::uint8_t> dst);

/// Zero a region.
CAR_HOT void zero_region(std::span<std::uint8_t> dst) noexcept;

/// Dot product of coefficient vector and chunk rows:
/// out = sum_i coeffs[i] * rows[i]; rows.size() == coeffs.size() required.
/// `rows` are equally sized chunks; `out` must match their size and may not
/// overlap any row.
///
/// Fused: the sum is evaluated in cache-sized tiles — every source row is
/// folded into a destination tile while that tile is still resident — so a
/// k-way combine makes one pass over `out` instead of k full-buffer sweeps.
CAR_HOT void linear_combine(std::span<const std::uint8_t> coeffs,
                    std::span<const std::span<const std::uint8_t>> rows,
                    std::span<std::uint8_t> out);

/// out ^= sum_i coeffs[i] * rows[i] — the accumulating form of
/// linear_combine (same tiling, same contracts, no initial zeroing).
CAR_HOT void linear_combine_acc(std::span<const std::uint8_t> coeffs,
                        std::span<const std::span<const std::uint8_t>> rows,
                        std::span<std::uint8_t> out);

}  // namespace car::gf
