// CAR vs RR on the paper's three CFS configurations (Table II).
//
// For each configuration this example builds a random rack-fault-tolerant
// placement of 100 stripes, fails a random node, and compares the cross-rack
// repair traffic and load-balancing rate of:
//   * RR  — the baseline that fetches k random survivors to the replacement;
//   * CAR — minimum-rack selection + partial decoding + greedy balancing.
//
// Build & run:  ./build/examples/car_vs_rr [seed]
#include <cstdio>
#include <cstdlib>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace car;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  constexpr std::size_t kStripes = 100;

  util::TextTable table({"CFS", "code", "lost chunks", "RR x-rack (chunks)",
                         "CAR x-rack (chunks)", "saving", "RR lambda",
                         "CAR lambda"});

  for (const auto& cfg : cluster::paper_configs()) {
    util::Rng rng(seed);
    const auto placement =
        cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, kStripes, rng);
    const auto scenario = cluster::inject_random_failure(placement, rng);
    const auto censuses = recovery::build_censuses(placement, scenario);

    const auto rr = recovery::plan_rr(placement, censuses, rng);
    const auto rr_sum =
        recovery::rr_traffic(placement, rr, scenario.failed_rack);

    const auto car = recovery::balance_greedy(placement, censuses, {50});
    const auto car_sum = recovery::car_traffic(
        car.solutions, placement.topology().num_racks(), scenario.failed_rack);

    const double saving =
        1.0 - static_cast<double>(car_sum.total_chunks()) /
                  static_cast<double>(rr_sum.total_chunks());
    table.add_row({cfg.name,
                   "RS(" + std::to_string(cfg.k) + "," +
                       std::to_string(cfg.m) + ")",
                   std::to_string(scenario.lost.size()),
                   std::to_string(rr_sum.total_chunks()),
                   std::to_string(car_sum.total_chunks()),
                   util::fmt_percent(saving),
                   util::fmt_double(rr_sum.lambda()),
                   util::fmt_double(car_sum.lambda())});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nCAR accesses the minimum number of racks per stripe and aggregates\n"
      "inside each rack, so each accessed rack ships exactly one chunk.\n");
  return 0;
}
