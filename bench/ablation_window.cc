// Recovery-window ablation: parallelism vs in-flight memory.
//
// schedule_windowed bounds the number of stripes recovered concurrently.
// This bench sweeps the window and reports simulated recovery makespan and
// the in-flight buffer bound (window x k chunks at the aggregation points),
// showing where wider windows stop paying: once the cross-rack links
// saturate, extra parallelism buys nothing but memory pressure.
#include <cstdio>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "recovery/scheduler.h"
#include "simnet/flowsim.h"
#include "util/bytes.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr std::uint64_t kChunkSize = 8ull << 20;

}  // namespace

int main() {
  using namespace car;
  std::printf("== Ablation: recovery window (parallelism vs memory) ==\n");
  std::printf("%zu stripes, %s chunks, CFS timing on the flow simulator\n\n",
              kStripes, util::format_bytes(kChunkSize).c_str());

  for (const auto& cfg : cluster::paper_configs()) {
    util::Rng rng(0xA81A7E00ULL + cfg.k);
    const auto placement = cluster::Placement::random(
        cfg.topology(), cfg.k, cfg.m, kStripes, rng);
    const auto scenario = cluster::inject_random_failure(placement, rng);
    const auto censuses = recovery::build_censuses(placement, scenario);
    const rs::Code code(cfg.k, cfg.m);
    const auto balanced = recovery::balance_greedy(placement, censuses, {50});
    const auto plan = recovery::build_car_plan(
        placement, code, balanced.solutions, kChunkSize,
        scenario.failed_node);

    const simnet::NetConfig net;
    util::TextTable table({"window", "makespan (s)", "time/chunk (s)",
                           "in-flight bound (chunks)"});
    for (const std::size_t window : {1u, 2u, 4u, 8u, 16u, 1000u}) {
      const auto scheduled = recovery::schedule_windowed(plan, window);
      const auto sim =
          simnet::simulate_plan(placement.topology(), scheduled, net);
      const std::size_t inflight =
          recovery::max_inflight_stripes(scheduled) * (cfg.k + 1);
      table.add_row({window >= kStripes ? "unbounded"
                                        : std::to_string(window),
                     util::fmt_double(sim.makespan_s, 2),
                     util::fmt_double(sim.makespan_s /
                                          static_cast<double>(censuses.size()),
                                      3),
                     std::to_string(inflight)});
    }
    std::printf("-- %s, RS(%zu,%zu), %zu lost chunks --\n%s\n",
                cfg.name.c_str(), cfg.k, cfg.m, censuses.size(),
                table.to_string().c_str());
  }
  std::printf("The knee sits where window x per-stripe traffic saturates "
              "the rack uplinks;\nbeyond it, extra in-flight stripes only "
              "grow buffer requirements.\n");
  return 0;
}
