// Concurrent batch execution for the rebuild control plane.
//
// BatchDriver runs SEVERAL slice-lowered recovery plans ("batches") on one
// shared virtual timeline — the overlapping-recoveries engine behind
// RebuildCoordinator.  It is the multi-plan sibling of the sequential
// event loop in inject/runtime.cc and deliberately mirrors its mechanics
// step for step: per-slice transfer timeouts (preview-based, no wire
// commit), bounded retries with seeded backoff, drop/corrupt fault
// matching via inject::transfer_fault_applies, at-most-once traffic
// accounting, pooled zero-copy staging, and real GF kernels through
// recovery/compute.h — so a single-batch rebuild is bit- and
// timing-equivalent to the inject engine running the same plan.
//
// What it adds over the inject engine:
//   * admit() — enqueue another batch at the current virtual time; its
//     slice steps interleave with in-flight batches on the (time, batch,
//     step, attempt) calendar queue (emul/calendar_queue.h — same pop
//     order as the old min-heap, O(1) amortized), so cross-rack shipping
//     of one batch overlaps partial decoding of another.
//   * Step-output isolation — every batch's plans use dense step ids
//     starting at 0, so step-output buffer refs are biased by a per-batch
//     base (batch k gets ids k << 32) before touching the cluster; chunk
//     refs are globally unique already (batches own disjoint stripes).
//   * run_until(deadline) — execute until a batch completes, the timeline
//     reaches a membership-event deadline, or everything is idle; the
//     coordinator interleaves failure events and fresh batches between
//     calls.
//   * cancel_all() — the membership-change protocol: publish every output
//     whose producing step delivered ALL slices, wipe step outputs
//     cluster-wide, and report what survived, so the coordinator can
//     re-plan the remainder at the new epoch and resume bit-exact.
//
// Node crashes are NOT handled here (the FaultPlan must not contain any):
// failures are membership events owned by the coordinator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "emul/calendar_queue.h"
#include "emul/cluster.h"
#include "inject/event_log.h"
#include "inject/fault.h"
#include "inject/runtime.h"
#include "recovery/plan.h"
#include "recovery/slice.h"
#include "util/rng.h"

namespace car::rebuild {

/// A (stripe, chunk index) recovered and published as a replica on the
/// replacement node.
struct PublishedChunk {
  cluster::StripeId stripe = 0;
  std::size_t chunk_index = 0;
};

/// Why run_until returned.
enum class StopReason : std::uint8_t {
  kIdle,       // no in-flight batch and nothing queued
  kBatchDone,  // a batch completed (outputs published); others may run on
  kDeadline,   // the next event would land at/after the given deadline
};

struct RunOutcome {
  StopReason stop = StopReason::kIdle;
  /// Batch ids that completed during this call (kBatchDone).
  std::vector<std::size_t> finished;
};

/// One cancelled batch's salvage report.
struct CancelledBatch {
  std::size_t batch = 0;                  // admit()'s batch id
  std::vector<PublishedChunk> published;  // outputs that fully delivered
  std::vector<cluster::StripeId> unfinished_stripes;  // need re-planning
  std::size_t cancelled_steps = 0;        // slice steps abandoned
};

class BatchDriver {
 public:
  /// `faults` must contain no node crashes (util::CheckError otherwise) —
  /// link and transfer faults only; link fault windows are armed relative
  /// to the cluster clock's time at construction.  The cluster must use
  /// ClockMode::kVirtual.  `slice_bytes` == 0 means chunk-granular (one
  /// slice per step).
  BatchDriver(emul::Cluster& cluster, const inject::FaultPlan& faults,
              const inject::RetryPolicy& policy, std::uint64_t seed,
              std::uint64_t slice_bytes, inject::DataPolicy data,
              inject::EventLog& log);

  /// Admit a validated plan as batch `batch_id` at the current virtual
  /// time.  All of its outputs must target plan.replacement, which must be
  /// alive.  The id labels the batch in log details ("batch N").
  void admit(std::size_t batch_id, const recovery::RecoveryPlan& plan);

  /// Drive the shared event loop.  With a deadline (absolute virtual
  /// seconds), execution stops before processing any event scheduled at or
  /// after it — the point where the coordinator injects a membership
  /// change.  Throws util::StateError when a transfer exhausts its retry
  /// budget.
  RunOutcome run_until(std::optional<double> deadline);

  /// Membership-change protocol: for every in-flight batch, publish the
  /// outputs whose producing step delivered all slices, then wipe step
  /// outputs cluster-wide and forget the batches.  Returns one salvage
  /// report per cancelled batch (admit order); completed batches are not
  /// listed (their outputs were already published).
  std::vector<CancelledBatch> cancel_all();

  /// Advance the shared timeline (monotone; used by the coordinator to
  /// move to a failure event's time before scanning).
  void advance_to(double t);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t inflight() const noexcept { return inflight_; }
  [[nodiscard]] const emul::ExecutionReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] const inject::RunStats& stats() const noexcept {
    return stats_;
  }

 private:
  struct Batch {
    std::size_t id = 0;
    recovery::RecoveryPlan plan;
    recovery::SlicePlan sliced;
    std::vector<std::size_t> indegrees;
    std::vector<std::vector<std::size_t>> dependents;
    std::vector<char> done;
    std::size_t completed = 0;
    std::uint64_t buffer_base = 0;  // added to step-output buffer ids
    bool finished = false;
  };

  // (ready time, batch slot, step id, 1-based attempt) — ties break on the
  // earliest-admitted batch, then the lowest step id, then attempt, so the
  // pop order is a pure function of the admitted plans.  The three
  // non-time fields pack into one calendar-queue key as
  // slot(16) | step(32) | attempt(16), which makes the queue's (time, key)
  // lexicographic order exactly the old tuple order; pack_event CHECKs
  // the field ranges.  Every push satisfies the queue's monotone-insertion
  // discipline: dependents are pushed at their producer's finish time with
  // a larger step id, retries at a later time (or the same time with a
  // larger attempt), and admissions at now_ with a strictly larger slot.
  static std::uint64_t pack_event(std::size_t slot, std::size_t id,
                                  std::size_t attempt);

  [[nodiscard]] bool is_real(cluster::StripeId stripe) const;
  [[nodiscard]] recovery::BufferRef biased(const recovery::BufferRef& ref,
                                           const Batch& batch) const;
  double run_compute(const Batch& batch, const recovery::PlanStep& step,
                     const recovery::SliceInfo& slice, double t);
  std::optional<double> run_transfer_attempt(std::size_t slot,
                                             const recovery::PlanStep& step,
                                             const recovery::SliceInfo& slice,
                                             double t, std::size_t attempt);
  /// Publish outputs of `batch` whose producing step delivered every slice
  /// (all of them when whole_batch).  Returns the published chunks.
  std::vector<PublishedChunk> publish_outputs(const Batch& batch,
                                              bool whole_batch);
  void advance(double t);

  emul::Cluster& cluster_;
  inject::FaultPlan faults_;
  inject::RetryPolicy policy_;
  std::uint64_t seed_;
  std::uint64_t slice_bytes_;
  inject::DataPolicy data_;
  inject::EventLog& log_;
  util::Rng backoff_rng_;
  std::vector<Batch> batches_;  // completed slots stay (finished == true)
  std::size_t admitted_ = 0;    // lifetime batch count, keys buffer_base
  std::size_t inflight_ = 0;
  emul::CalendarQueue queue_;
  double t0_;
  double now_;
  emul::ExecutionReport report_;
  inject::RunStats stats_;
};

}  // namespace car::rebuild
