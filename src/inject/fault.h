// Deterministic, seedable fault model for the cluster emulator.
//
// A FaultPlan is a declarative schedule of adversity, expressed in virtual
// seconds relative to the start of a run:
//
//   * LinkFault   — a rate window on one emulated link: factor 0 blacks the
//                   link out, 0 < factor < 1 degrades it (armed onto
//                   emul::SerialLink's rate windows);
//   * TransferFault — drop (payload lost in flight, receiver times out) or
//                   corrupt (payload arrives, checksum mismatch) applied to
//                   matching transfer attempts, optionally probabilistic;
//   * NodeCrash   — a node dies mid-recovery, triggered at a plan-completion
//                   fraction or a virtual time; the resilient runtime
//                   escalates to a recovery/multi re-plan.
//
// Everything is deterministic: probabilistic transfer faults are decided by
// a hash of (seed, fault index, step id, attempt), never by execution
// order, so the same seed and FaultPlan produce the same fault sequence on
// any machine and thread schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "cluster/types.h"

namespace car::emul {
class Cluster;
}  // namespace car::emul

namespace car::inject {

/// Which emulated link a LinkFault targets.
enum class LinkSide : std::uint8_t {
  kNodeUp,    // node -> ToR access link (id = node)
  kNodeDown,  // ToR -> node access link (id = node)
  kRackUp,    // rack -> core link       (id = rack)
  kRackDown,  // core -> rack link       (id = rack)
};

[[nodiscard]] const char* to_string(LinkSide side) noexcept;

/// Scale one link's rate by `factor` during [start_s, end_s) virtual
/// seconds from run start.  factor == 0 is a blackout.
struct LinkFault {
  LinkSide side = LinkSide::kRackUp;
  std::size_t id = 0;  // node id or rack id, per side
  double start_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;
};

/// Drop or corrupt matching transfer attempts.
struct TransferFault {
  enum class Kind : std::uint8_t { kDrop, kCorrupt };
  Kind kind = Kind::kDrop;
  /// Restrict to one plan step id; nullopt matches every transfer step.
  std::optional<std::size_t> step;
  /// Restrict to these 1-based attempt numbers; empty matches every
  /// attempt.  {1} faults only the first try (the retry then succeeds).
  std::vector<std::size_t> attempts;
  /// Apply with this probability (decided deterministically per attempt
  /// from the run seed).  1.0 = always.
  double probability = 1.0;
};

[[nodiscard]] const char* to_string(TransferFault::Kind kind) noexcept;

/// Kill a node mid-recovery.  Exactly one trigger must be set.
struct NodeCrash {
  cluster::NodeId node = 0;
  /// Fires once completed steps / total steps >= at_fraction.
  std::optional<double> at_fraction;
  /// Fires once the virtual clock reaches this offset from run start.
  std::optional<double> at_time_s;
};

struct FaultPlan {
  std::vector<LinkFault> link_faults;
  std::vector<TransferFault> transfer_faults;
  std::vector<NodeCrash> node_crashes;

  [[nodiscard]] bool empty() const noexcept {
    return link_faults.empty() && transfer_faults.empty() &&
           node_crashes.empty();
  }

  /// Check every fault against the topology (ids in range, windows ordered,
  /// factors/probabilities sane, crash triggers well-formed).  Throws
  /// util::CheckError on the first violation.
  void validate(const cluster::Topology& topology) const;
};

/// Arm every link fault onto the cluster's links, shifted by `t0` (the
/// virtual run-start time) so relative windows land on the cluster's
/// absolute timeline.  Validates against the cluster's topology first.
void arm_link_faults(emul::Cluster& cluster, const FaultPlan& plan,
                     double t0);

/// Deterministic per-attempt fault decision: does `fault` (at index
/// `fault_index` in its plan) hit transfer step `step_id` on 1-based
/// attempt `attempt` under `seed`?  Pure function of its arguments.
[[nodiscard]] bool transfer_fault_applies(const TransferFault& fault,
                                          std::size_t fault_index,
                                          std::size_t step_id,
                                          std::size_t attempt,
                                          std::uint64_t seed);

}  // namespace car::inject
