#include "recovery/planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/configs.h"

namespace car::recovery {
namespace {

using cluster::Placement;
using cluster::Topology;

Placement paper_placement(const cluster::CfsConfig& cfg, std::size_t stripes,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  return Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
}

class MaterializeSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MaterializeSweep, EverySolutionReadsExactlyKChunksAndUsesEveryRack) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  const auto p = paper_placement(cfg, 40, std::get<1>(GetParam()));
  util::Rng rng(std::get<1>(GetParam()) + 99);
  const auto scenario = cluster::inject_random_failure(p, rng);
  const auto censuses = build_censuses(p, scenario);

  for (const auto& census : censuses) {
    for (const auto& set : enumerate_minimal_solutions(census)) {
      const auto solution = materialize(p, census, set);
      EXPECT_EQ(solution.stripe, census.stripe);
      EXPECT_EQ(solution.lost_chunk, census.lost_chunk);

      // Exactly k distinct surviving chunks, never the lost one.
      const auto all = solution.all_chunk_indices();
      EXPECT_EQ(all.size(), census.k);
      auto sorted = all;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                sorted.end());
      EXPECT_EQ(std::find(all.begin(), all.end(), census.lost_chunk),
                all.end());

      // Every pick lives in its claimed rack and is non-empty.
      for (const auto& pick : solution.picks) {
        EXPECT_FALSE(pick.chunk_indices.empty());
        for (std::size_t c : pick.chunk_indices) {
          EXPECT_EQ(p.topology().rack_of(p.node_of(census.stripe, c)),
                    pick.rack);
        }
      }

      // Accessed intact racks = rack set; each contributes >= 1 chunk.
      std::vector<cluster::RackId> intact;
      for (const auto& pick : solution.picks) {
        if (pick.rack != census.failed_rack) intact.push_back(pick.rack);
      }
      std::sort(intact.begin(), intact.end());
      EXPECT_EQ(intact, solution.rack_set.racks);
      EXPECT_EQ(solution.cross_rack_chunks(), set.racks.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, MaterializeSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(7u, 1234u)));

TEST(Materialize, UsesFailedRackSurvivorsFirst) {
  // Hand-crafted layout: failed rack keeps 2 survivors; they must be used
  // before intact-rack chunks are pulled.
  Placement p(Topology({3, 3, 3}), 4, 3);
  p.add_stripe({0, 1, 2, 3, 4, 5, 6});  // A1: 3 chunks, A2: 3, A3: 1
  const auto scenario = cluster::inject_node_failure(p, 0);
  const auto census = build_census(p, scenario, scenario.lost[0]);
  // local survivors = 2, k = 4 -> need 2 more, intact best = A2 (3) -> d=1.
  EXPECT_EQ(min_intact_racks(census), 1u);
  const auto solution = materialize(p, census, default_solution(census));
  ASSERT_EQ(solution.picks.size(), 2u);
  EXPECT_EQ(solution.picks[0].rack, 0u);
  EXPECT_EQ(solution.picks[0].chunk_indices,
            (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(solution.picks[1].rack, 1u);
  EXPECT_EQ(solution.picks[1].chunk_indices.size(), 2u);  // trimmed from 3
}

TEST(Materialize, RejectsInvalidRackSets) {
  Placement p(Topology({3, 3, 3}), 4, 3);
  p.add_stripe({0, 1, 2, 3, 4, 5, 6});
  const auto scenario = cluster::inject_node_failure(p, 0);
  const auto census = build_census(p, scenario, scenario.lost[0]);
  EXPECT_THROW(materialize(p, census, RackSet{{2}}), std::invalid_argument);
  EXPECT_THROW(materialize(p, census, RackSet{{1, 2}}), std::invalid_argument);
}

TEST(PlanCarInitial, OneSolutionPerLostChunk) {
  const auto cfg = cluster::cfs3();
  const auto p = paper_placement(cfg, 100, 5);
  util::Rng rng(6);
  const auto scenario = cluster::inject_random_failure(p, rng);
  const auto censuses = build_censuses(p, scenario);
  const auto solutions = plan_car_initial(p, censuses);
  ASSERT_EQ(solutions.size(), censuses.size());
  for (std::size_t i = 0; i < solutions.size(); ++i) {
    EXPECT_EQ(solutions[i].stripe, censuses[i].stripe);
    EXPECT_TRUE(is_valid_minimal(censuses[i], solutions[i].rack_set));
  }
}

}  // namespace
}  // namespace car::recovery
