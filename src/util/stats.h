// Streaming descriptive statistics (Welford) and small helpers used by the
// benchmark harnesses to report mean/stddev over repeated experiment runs.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace car::util {

/// Numerically stable streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    sum_ += x;
  }

  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Population variance (divide by n).
  [[nodiscard]] double variance() const noexcept {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (divide by n-1); 0 when fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double sample_stddev() const noexcept {
    return std::sqrt(sample_variance());
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order stats).
/// `q` in [0,1]. Throws on an empty sample.
double percentile(std::span<const double> sample, double q);

/// Mean of a sample; throws on empty input.
double mean_of(std::span<const double> sample);

}  // namespace car::util
