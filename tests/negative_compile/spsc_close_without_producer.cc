// SPSC role violation: closing the stream without the producer role.
// close() is CAR_REQUIRES(producer_) — only the producer may declare
// end-of-stream (a consumer-side close would race in-flight pushes), so
// -Wthread-safety must reject this translation unit.
#include "util/spsc_queue.h"

namespace {

[[maybe_unused]] void use() {
  car::util::SpscQueue<int> queue(8);
  const car::util::SpscConsumerToken<int> token(queue);
  // BAD: holding the consumer role, calling a producer-side method.
  queue.close();
}

}  // namespace
