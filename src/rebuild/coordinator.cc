#include "rebuild/coordinator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "recovery/multi.h"
#include "recovery/validate.h"
#include "util/check.h"

namespace car::rebuild {

namespace {

using inject::EventKind;

/// Host seconds since `since` (planning-path instrumentation only; every
/// scheduling decision stays on the virtual clock).
double host_seconds_since(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

std::string join_nodes(const std::vector<cluster::NodeId>& nodes) {
  std::string out;
  for (const cluster::NodeId node : nodes) {
    if (!out.empty()) out += ' ';
    out += std::to_string(node);
  }
  return out;
}

}  // namespace

const char* to_string(Strategy strategy) noexcept {
  return strategy == Strategy::kCar ? "car" : "rr";
}

RebuildCoordinator::RebuildCoordinator(emul::Cluster& cluster,
                                       const cluster::Placement& placement,
                                       const rs::Code& code,
                                       RebuildOptions options)
    : cluster_(cluster),
      placement_(placement),
      code_(code),
      options_(std::move(options)),
      rr_rng_(options_.seed ^ 0x9e3779b97f4a7c15ULL) {}

RebuildResult RebuildCoordinator::run(std::span<const FailureEvent> events) {
  CAR_CHECK_STATE(!ran_, "RebuildCoordinator::run: one-shot — construct a "
                         "fresh coordinator per failure schedule");
  CAR_CHECK(!events.empty(), "RebuildCoordinator::run: no failure events");
  CAR_CHECK(options_.faults.node_crashes.empty(),
            "RebuildCoordinator::run: node crashes belong in the events "
            "schedule, not in options.faults");
  CAR_CHECK_GT(options_.batch_stripes, std::size_t{0},
               "RebuildCoordinator::run: batch_stripes must be >= 1");
  CAR_CHECK_GT(options_.max_inflight, std::size_t{0},
               "RebuildCoordinator::run: max_inflight must be >= 1");
  CAR_CHECK_GT(options_.chunk_bytes, std::uint64_t{0},
               "RebuildCoordinator::run: chunk_bytes must be > 0");
  const std::size_t num_nodes = placement_.topology().num_nodes();
  for (std::size_t i = 0; i < events.size(); ++i) {
    CAR_CHECK_LT(events[i].node, num_nodes,
                 "RebuildCoordinator::run: failure event names an unknown "
                 "node");
    CAR_CHECK_GE(events[i].at_s, 0.0,
                 "RebuildCoordinator::run: failure time must be >= 0");
    if (i > 0) {
      CAR_CHECK_GE(events[i].at_s, events[i - 1].at_s,
                   "RebuildCoordinator::run: failure events must be "
                   "time-ordered");
      for (std::size_t j = 0; j < i; ++j) {
        CAR_CHECK_NE(events[i].node, events[j].node,
                     "RebuildCoordinator::run: a node cannot fail twice");
      }
    }
  }
  ran_ = true;

  replacement_ = events.front().node;
  replacement_rack_ = placement_.topology().rack_of(replacement_);
  const double t0 = cluster_.clock().now();

  BatchDriver driver(cluster_, options_.faults, options_.retry, options_.seed,
                     options_.slice_bytes, options_.data, result_.log);

  for (std::size_t i = 0; i < events.size(); ++i) {
    const FailureEvent& event = events[i];
    const double when = t0 + event.at_s;
    // Run whatever is in flight up to the instant the failure lands.
    pump(driver, when);
    driver.advance_to(when);

    std::string detail = "epoch " + std::to_string(i + 1) + ": node " +
                         std::to_string(event.node) + " down";
    if (i == 0) {
      cluster_.erase_node(event.node);
      const std::uint64_t generation =
          cluster_.add_replacement_guard(event.node);
      detail += " — designated replacement (slot wiped, guard generation " +
                std::to_string(generation) + ")";
    } else {
      // Satellite: dropping the guarded replacement — of any generation —
      // raises the cluster's CAR_CHECK diagnostic and aborts the run.
      cluster_.drop_node(event.node);
      detail += " — cancelling in-flight batches for re-plan";
    }
    result_.log.record(when, EventKind::kMembershipChange,
                       static_cast<std::int64_t>(i + 1), -1,
                       static_cast<std::int64_t>(event.node), 0, detail);
    failed_.push_back(event.node);

    const auto cancelled = driver.cancel_all();
    std::size_t requeued = 0;
    for (const CancelledBatch& batch : cancelled) {
      const auto it = inflight_batches_.find(batch.batch);
      CAR_CHECK_STATE(it != inflight_batches_.end(),
                      "rebuild: cancelled batch was never dispatched");
      {
        util::MutexLock lock(state_mu_);
        for (const PublishedChunk& chunk : batch.published) {
          if (!recovered_.contains(chunk.stripe, chunk.chunk_index)) {
            recovered_.mark(chunk.stripe, chunk.chunk_index);
            result_.recovered.push_back(chunk);
          }
        }
        close_windows(it->second.stripes, when);
      }
      result_.batches[it->second.record_index].cancelled = true;
      ++result_.metrics.batches_cancelled;
      requeued += batch.unfinished_stripes.size();
      result_.log.record(
          when, EventKind::kBatchCancelled,
          static_cast<std::int64_t>(batch.batch), -1,
          static_cast<std::int64_t>(replacement_), 0,
          "batch " + std::to_string(batch.batch) + ": " +
              std::to_string(batch.published.size()) + " chunks salvaged, " +
              std::to_string(batch.unfinished_stripes.size()) +
              " stripes need re-planning");
      inflight_batches_.erase(it);
    }
    if (requeued > 0) {
      result_.metrics.stripes_requeued += requeued;
      result_.log.record(when, EventKind::kStripesRequeued,
                         static_cast<std::int64_t>(i + 1), -1, -1, 0,
                         std::to_string(requeued) + " stripes from " +
                             std::to_string(cancelled.size()) +
                             " cancelled batches re-enter the queue at "
                             "epoch " +
                             std::to_string(i + 1));
    }

    scan_epoch(i + 1);
  }

  pump(driver, std::nullopt);
  CAR_CHECK_STATE(queue_.empty() && driver.inflight() == 0,
                  "rebuild: run drained with work outstanding");
  {
    util::MutexLock lock(state_mu_);
    CAR_CHECK_STATE(exposure_since_.empty() && at_risk_since_.empty(),
                    "rebuild: exposure windows left open after the rebuild "
                    "completed");
  }

  result_.replacement = replacement_;
  result_.failed_nodes = failed_;
  result_.report = driver.report();
  result_.stats = driver.stats();
  result_.metrics.makespan_s = driver.now() - (t0 + events.front().at_s);
  result_.metrics.template_cache_hits = template_cache_.stats().hits;
  result_.metrics.template_cache_misses = template_cache_.stats().misses;
  std::sort(result_.recovered.begin(), result_.recovered.end(),
            [](const PublishedChunk& a, const PublishedChunk& b) {
              return a.stripe != b.stripe ? a.stripe < b.stripe
                                          : a.chunk_index < b.chunk_index;
            });
  result_.log.record(driver.now(), EventKind::kRunComplete, -1, -1,
                     static_cast<std::int64_t>(replacement_),
                     static_cast<std::uint64_t>(result_.recovered.size()) *
                         options_.chunk_bytes,
                     std::to_string(result_.recovered.size()) +
                         " chunks rebuilt across " +
                         std::to_string(result_.metrics.batches_dispatched) +
                         " batches, " + std::to_string(failed_.size()) +
                         " failures");
  return std::move(result_);
}

void RebuildCoordinator::scan_epoch(std::size_t epoch) {
  const double now = cluster_.clock().now();
  std::vector<recovery::StripeExposure> census;
  std::size_t at_risk = 0;
  {
    util::MutexLock lock(state_mu_);
    const auto scan_start = std::chrono::steady_clock::now();
    census = recovery::build_exposure_census(
        placement_, failed_, replacement_, recovered_, options_.scan_shards);
    result_.metrics.scan_host_s += host_seconds_since(scan_start);
    for (const recovery::StripeExposure& entry : census) {
      if (!entry.exposed_chunks.empty() &&
          !exposure_since_.contains(entry.stripe)) {
        exposure_since_.emplace(entry.stripe, now);
      }
      if (entry.tolerance_left == 0) {
        ++at_risk;
        if (!at_risk_since_.contains(entry.stripe)) {
          at_risk_since_.emplace(entry.stripe, now);
        }
      }
    }
  }
  ++result_.metrics.scans;
  result_.log.record(now, EventKind::kScanComplete,
                     static_cast<std::int64_t>(epoch), -1, -1, 0,
                     "epoch " + std::to_string(epoch) + ": " +
                         std::to_string(census.size()) +
                         " stripes need rebuild, " + std::to_string(at_risk) +
                         " at tier 0 (most-exposed)");
  queue_.reset(std::move(census));
}

bool RebuildCoordinator::dispatch_one(BatchDriver& driver) {
  const std::vector<recovery::StripeExposure> batch =
      queue_.pop_batch(options_.batch_stripes);
  if (batch.empty()) return false;
  // The queue is sorted most-exposed first and pop_batch keeps queue
  // order, so the head entry carries the batch's exposure tier.
  const std::size_t tier = batch.front().tolerance_left;
  const std::vector<cluster::NodeId>& signature = batch.front().plan_hosts;

  std::unordered_set<cluster::StripeId> want;
  std::vector<cluster::StripeId> stripes;
  std::vector<PublishedChunk> outputs;
  for (const recovery::StripeExposure& entry : batch) {
    want.insert(entry.stripe);
    stripes.push_back(entry.stripe);
  }

  const recovery::MultiFailureScenario scenario =
      recovery::make_multi_failure_onto(placement_, signature, replacement_);
  const auto scan_start = std::chrono::steady_clock::now();
  std::vector<recovery::MultiStripeCensus> censuses;
  for (auto& census : recovery::build_multi_censuses(placement_, scenario,
                                                     options_.scan_shards)) {
    if (want.contains(census.stripe)) censuses.push_back(std::move(census));
  }
  result_.metrics.scan_host_s += host_seconds_since(scan_start);
  CAR_CHECK_STATE(censuses.size() == batch.size(),
                  "rebuild: batch scan census does not cover every queued "
                  "stripe of the batch signature");

  recovery::RecoveryPlan plan;
  recovery::ValidateOptions vopts;
  vopts.placement = &placement_;
  const auto plan_start = std::chrono::steady_clock::now();
  if (options_.strategy == Strategy::kCar) {
    const recovery::MultiBalanceResult balanced =
        recovery::balance_multi(placement_, censuses);
    plan = recovery::build_multi_car_plan_cached(
        placement_, code_,
        std::span<const recovery::MultiStripeSolution>(balanced.solutions),
        options_.chunk_bytes, replacement_, template_cache_);
    vopts.expected_cross_rack_chunks = recovery::claimed_cross_rack_chunks(
        std::span<const recovery::MultiStripeSolution>(balanced.solutions),
        replacement_rack_);
  } else {
    const std::vector<recovery::MultiRrSolution> solutions =
        recovery::plan_multi_rr(placement_, censuses, rr_rng_);
    plan = recovery::build_multi_rr_plan_cached(
        placement_, code_,
        std::span<const recovery::MultiRrSolution>(solutions),
        options_.chunk_bytes, replacement_, template_cache_);
    vopts.require_single_aggregator_per_rack = false;
  }
  result_.metrics.plan_host_s += host_seconds_since(plan_start);
  // The validation gate: no plan reaches the driver unchecked.
  const recovery::ValidationReport report =
      recovery::validate_plan(plan, placement_.topology(), vopts);
  CAR_CHECK_STATE(report.ok(), "rebuild: batch plan failed validation:\n" +
                                   report.to_string());

  for (const auto& out : plan.outputs) {
    outputs.push_back({out.stripe, out.chunk_index});
  }

  const std::size_t id = next_batch_id_++;
  BatchRecord record;
  record.id = id;
  record.stripes = stripes.size();
  record.tier = tier;
  record.dispatched_at = driver.now();
  inflight_batches_[id] =
      DispatchedBatch{std::move(stripes), result_.batches.size(), {}};
  result_.batches.push_back(record);
  ++result_.metrics.batches_dispatched;

  result_.log.record(
      driver.now(), EventKind::kBatchDispatched,
      static_cast<std::int64_t>(id), -1,
      static_cast<std::int64_t>(replacement_),
      static_cast<std::uint64_t>(outputs.size()) * options_.chunk_bytes,
      "batch " + std::to_string(id) + ": " + std::to_string(record.stripes) +
          " stripes, tier " + std::to_string(tier) + ", signature [" +
          join_nodes(signature) + "], strategy " +
          to_string(options_.strategy) + ", " +
          std::to_string(plan.steps.size()) + " steps");
  driver.admit(id, plan);
  inflight_batches_[id].outputs = std::move(outputs);
  return true;
}

void RebuildCoordinator::pump(BatchDriver& driver,
                              std::optional<double> deadline) {
  while (true) {
    while (driver.inflight() < options_.max_inflight && dispatch_one(driver)) {
    }
    const RunOutcome outcome = driver.run_until(deadline);
    if (outcome.stop == StopReason::kDeadline) return;
    for (const std::size_t id : outcome.finished) {
      on_batch_complete(driver, id);
    }
    if (outcome.stop == StopReason::kBatchDone) continue;
    if (queue_.empty()) return;  // kIdle with nothing left to dispatch
  }
}

void RebuildCoordinator::on_batch_complete(const BatchDriver& driver,
                                           std::size_t batch_id) {
  const auto it = inflight_batches_.find(batch_id);
  CAR_CHECK_STATE(it != inflight_batches_.end(),
                  "rebuild: completed batch was never dispatched");
  const DispatchedBatch& batch = it->second;
  const double now = driver.now();
  {
    util::MutexLock lock(state_mu_);
    for (const PublishedChunk& chunk : batch.outputs) {
      if (!recovered_.contains(chunk.stripe, chunk.chunk_index)) {
        recovered_.mark(chunk.stripe, chunk.chunk_index);
        result_.recovered.push_back(chunk);
      }
    }
    close_windows(batch.stripes, now);
  }
  result_.batches[batch.record_index].completed_at = now;
  result_.log.record(
      now, EventKind::kBatchComplete, static_cast<std::int64_t>(batch_id), -1,
      static_cast<std::int64_t>(replacement_),
      static_cast<std::uint64_t>(batch.outputs.size()) * options_.chunk_bytes,
      "batch " + std::to_string(batch_id) + ": " +
          std::to_string(batch.stripes.size()) + " stripes, " +
          std::to_string(batch.outputs.size()) + " chunks recovered");
  inflight_batches_.erase(it);
}

void RebuildCoordinator::close_windows(
    std::span<const cluster::StripeId> stripes, double now) {
  for (const cluster::StripeId stripe : stripes) {
    if (!stripe_recovered(stripe)) continue;
    if (const auto it = exposure_since_.find(stripe);
        it != exposure_since_.end()) {
      const double window = now - it->second;
      result_.metrics.total_exposure_s += window;
      result_.metrics.max_exposure_s =
          std::max(result_.metrics.max_exposure_s, window);
      exposure_since_.erase(it);
    }
    if (const auto it = at_risk_since_.find(stripe);
        it != at_risk_since_.end()) {
      const double window = now - it->second;
      result_.metrics.total_at_risk_s += window;
      result_.metrics.max_at_risk_s =
          std::max(result_.metrics.max_at_risk_s, window);
      at_risk_since_.erase(it);
    }
  }
}

bool RebuildCoordinator::stripe_recovered(cluster::StripeId stripe) const {
  for (std::size_t chunk = 0; chunk < placement_.chunks_per_stripe();
       ++chunk) {
    const cluster::NodeId host = placement_.node_of(stripe, chunk);
    const bool failed =
        std::find(failed_.begin(), failed_.end(), host) != failed_.end();
    if (failed && !recovered_.contains(stripe, chunk)) return false;
  }
  return true;
}

}  // namespace car::rebuild
