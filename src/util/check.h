// CAR_CHECK / CAR_DCHECK — contract macros for preconditions and invariants.
//
// The paper's correctness argument lives in invariants (Theorem 1 rack
// minima, partial-decoding sums that must reconstruct H_i exactly, link
// timeline monotonicity).  These macros make such contracts explicit and
// loud instead of relying on tests to trip over a violation downstream.
//
//   CAR_CHECK(cond)            always on; throws util::CheckError
//   CAR_CHECK(cond, "msg")     same, with an extra message
//   CAR_CHECK_EQ/NE/LT/LE/GT/GE(a, b [, "msg"])
//                              comparison forms that print both operands
//   CAR_CHECK_FAIL("msg")      unconditional contract failure
//   CAR_DCHECK* variants       compiled out when NDEBUG is defined — for
//                              hot-path invariants too costly for release
//
// CheckError derives from std::invalid_argument so existing callers (and
// tests) that catch std::invalid_argument or std::logic_error keep working
// when a hand-rolled throw is converted to a CAR_CHECK.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace car::util {

/// Thrown on precondition violation.  what() carries file:line, the
/// stringified condition, and any user message.
class CheckError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by CAR_CHECK_STATE on violated runtime-state invariants (missing
/// buffer, mis-sized payload) — is-a std::runtime_error, matching the
/// emulator's historical error contract.
class StateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

inline std::string check_message(const char* file, int line,
                                 std::string_view condition,
                                 std::string_view message) {
  std::ostringstream os;
  os << "CAR_CHECK failed at " << file << ':' << line << ": " << condition;
  if (!message.empty()) os << " — " << message;
  return os.str();
}

[[noreturn]] inline void check_fail(const char* file, int line,
                                    std::string_view condition,
                                    std::string_view message) {
  throw CheckError(check_message(file, line, condition, message));
}

[[noreturn]] inline void check_state_fail(const char* file, int line,
                                          std::string_view condition,
                                          std::string_view message) {
  throw StateError(check_message(file, line, condition, message));
}

/// Prints operands of a failed comparison.  Small integer types are widened
/// so std::uint8_t values print as numbers, not control characters.
template <typename T>
decltype(auto) printable(const T& value) {
  if constexpr (std::is_integral_v<T> && sizeof(T) < sizeof(int)) {
    return static_cast<int>(value);
  } else {
    return (value);
  }
}

template <typename A, typename B>
[[noreturn]] void check_op_fail(const char* file, int line,
                                std::string_view condition, const A& a,
                                const B& b, std::string_view message) {
  std::ostringstream os;
  os << condition << " (with " << printable(a) << " vs " << printable(b)
     << ')';
  if (!message.empty()) os << ' ' << message;
  check_fail(file, line, os.str(), {});
}

}  // namespace detail
}  // namespace car::util

#define CAR_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::car::util::detail::check_fail(__FILE__, __LINE__, #cond,          \
                                      ::std::string_view{__VA_ARGS__});   \
    }                                                                     \
  } while (false)

#define CAR_CHECK_FAIL(...)                                               \
  ::car::util::detail::check_fail(__FILE__, __LINE__, "failure",          \
                                  ::std::string_view{__VA_ARGS__})

/// Runtime-state invariant (throws util::StateError, a std::runtime_error).
#define CAR_CHECK_STATE(cond, ...)                                        \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::car::util::detail::check_state_fail(                              \
          __FILE__, __LINE__, #cond, ::std::string_view{__VA_ARGS__});    \
    }                                                                     \
  } while (false)

#define CAR_CHECK_OP_(op, a, b, ...)                                      \
  do {                                                                    \
    const auto& car_check_a_ = (a);                                       \
    const auto& car_check_b_ = (b);                                       \
    if (!(car_check_a_ op car_check_b_)) [[unlikely]] {                   \
      ::car::util::detail::check_op_fail(__FILE__, __LINE__,              \
                                         #a " " #op " " #b, car_check_a_, \
                                         car_check_b_,                    \
                                         ::std::string_view{__VA_ARGS__}); \
    }                                                                     \
  } while (false)

#define CAR_CHECK_EQ(a, b, ...) CAR_CHECK_OP_(==, a, b, __VA_ARGS__)
#define CAR_CHECK_NE(a, b, ...) CAR_CHECK_OP_(!=, a, b, __VA_ARGS__)
#define CAR_CHECK_LT(a, b, ...) CAR_CHECK_OP_(<, a, b, __VA_ARGS__)
#define CAR_CHECK_LE(a, b, ...) CAR_CHECK_OP_(<=, a, b, __VA_ARGS__)
#define CAR_CHECK_GT(a, b, ...) CAR_CHECK_OP_(>, a, b, __VA_ARGS__)
#define CAR_CHECK_GE(a, b, ...) CAR_CHECK_OP_(>=, a, b, __VA_ARGS__)

// Debug-only variants: full checks in debug builds, no code (and no operand
// evaluation) when NDEBUG is defined.  Operands must still compile either
// way, so a DCHECK never rots silently.
#ifdef NDEBUG
#define CAR_DCHECK_STUB_(cond)                  \
  do {                                          \
    if (false && (cond)) { /* not evaluated */  \
    }                                           \
  } while (false)
#define CAR_DCHECK(cond, ...) CAR_DCHECK_STUB_(cond)
#define CAR_DCHECK_EQ(a, b, ...) CAR_DCHECK_STUB_((a) == (b))
#define CAR_DCHECK_NE(a, b, ...) CAR_DCHECK_STUB_((a) != (b))
#define CAR_DCHECK_LT(a, b, ...) CAR_DCHECK_STUB_((a) < (b))
#define CAR_DCHECK_LE(a, b, ...) CAR_DCHECK_STUB_((a) <= (b))
#define CAR_DCHECK_GT(a, b, ...) CAR_DCHECK_STUB_((a) > (b))
#define CAR_DCHECK_GE(a, b, ...) CAR_DCHECK_STUB_((a) >= (b))
#else
#define CAR_DCHECK(cond, ...) CAR_CHECK(cond, __VA_ARGS__)
#define CAR_DCHECK_EQ(a, b, ...) CAR_CHECK_EQ(a, b, __VA_ARGS__)
#define CAR_DCHECK_NE(a, b, ...) CAR_CHECK_NE(a, b, __VA_ARGS__)
#define CAR_DCHECK_LT(a, b, ...) CAR_CHECK_LT(a, b, __VA_ARGS__)
#define CAR_DCHECK_LE(a, b, ...) CAR_CHECK_LE(a, b, __VA_ARGS__)
#define CAR_DCHECK_GT(a, b, ...) CAR_CHECK_GT(a, b, __VA_ARGS__)
#define CAR_DCHECK_GE(a, b, ...) CAR_CHECK_GE(a, b, __VA_ARGS__)
#endif
