#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

namespace car::util {
namespace {

TEST(BufferPool, ClassBytesRoundsUpToPowersOfTwo) {
  EXPECT_EQ(BufferPool::class_bytes(1), BufferPool::kMinClassBytes);
  EXPECT_EQ(BufferPool::class_bytes(BufferPool::kMinClassBytes),
            BufferPool::kMinClassBytes);
  EXPECT_EQ(BufferPool::class_bytes(BufferPool::kMinClassBytes + 1),
            2 * BufferPool::kMinClassBytes);
  EXPECT_EQ(BufferPool::class_bytes(65536), 65536u);
  EXPECT_EQ(BufferPool::class_bytes(65537), 131072u);
}

TEST(BufferPool, AcquireHandsOutExactSizeAndTracksHighWater) {
  BufferPool pool;
  {
    BufferLease a = pool.acquire(1500);
    ASSERT_TRUE(a.active());
    EXPECT_EQ(a.size(), 1500u);
    const auto s = pool.stats();
    EXPECT_EQ(s.acquires, 1u);
    EXPECT_EQ(s.outstanding_bytes, BufferPool::class_bytes(1500));
    EXPECT_EQ(s.high_water_bytes, BufferPool::class_bytes(1500));
  }
  // Lease returned: nothing outstanding, capacity parked, high water keeps
  // its maximum.
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.high_water_bytes, BufferPool::class_bytes(1500));
  EXPECT_EQ(s.pooled_bytes, BufferPool::class_bytes(1500));
  EXPECT_EQ(s.recycles, 1u);
}

TEST(BufferPool, SteadyStateReusesFreelistCapacity) {
  BufferPool pool;
  { BufferLease warm = pool.acquire(64 * 1024); }
  for (int i = 0; i < 100; ++i) {
    BufferLease lease = pool.acquire(64 * 1024);
    std::memset(lease.data(), i, lease.size());
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 101u);
  // Every checkout after the first came from the freelist: steady-state
  // staging performs zero heap allocation per slice.
  EXPECT_EQ(s.freelist_hits, 100u);
  EXPECT_EQ(s.pooled_bytes, 64u * 1024);
}

TEST(BufferPool, ZeroByteAcquireIsInactive) {
  BufferPool pool;
  BufferLease lease = pool.acquire(0);
  EXPECT_FALSE(lease.active());
  EXPECT_EQ(lease.size(), 0u);
  EXPECT_EQ(pool.stats().outstanding_bytes, 0u);
}

TEST(BufferPool, TakeCountsInUnifiedHighWaterButNotStaging) {
  BufferPool pool;
  std::vector<std::uint8_t> buf = pool.take(8192);
  EXPECT_EQ(buf.size(), 8192u);
  const auto s = pool.stats();
  EXPECT_EQ(s.takes, 1u);
  // take() buffers are long-lived store buffers — they must not inflate the
  // staging mark (or the window bound in slice_exec_test would be
  // unprovable), but they ARE live pool-served capacity, so the unified
  // high-water mark folds them in.
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.staging_high_water_bytes, 0u);
  EXPECT_EQ(s.taken_outstanding_bytes, 8192u);
  EXPECT_EQ(s.high_water_bytes, 8192u);
  pool.recycle(std::move(buf));
  EXPECT_EQ(pool.stats().pooled_bytes, 8192u);
  EXPECT_EQ(pool.stats().taken_outstanding_bytes, 0u);
  EXPECT_EQ(pool.stats().high_water_bytes, 8192u);  // peak is sticky
  // The next take of the same class is a freelist hit.
  std::vector<std::uint8_t> again = pool.take(5000);
  EXPECT_EQ(again.size(), 5000u);
  EXPECT_GE(again.capacity(), 5000u);
  EXPECT_EQ(pool.stats().freelist_hits, 1u);
}

TEST(BufferPool, UnifiedHighWaterCoversMixedLeaseTakeWorkloads) {
  BufferPool pool;
  std::vector<std::uint8_t> store = pool.take(16 * 1024);
  {
    BufferLease staging = pool.acquire(4096);
    const auto s = pool.stats();
    EXPECT_EQ(s.outstanding_bytes, 4096u);
    EXPECT_EQ(s.taken_outstanding_bytes, 16u * 1024);
    // The unified mark sees both regimes at once; the staging mark sees
    // only the lease.
    EXPECT_EQ(s.high_water_bytes, 16u * 1024 + 4096u);
    EXPECT_EQ(s.staging_high_water_bytes, 4096u);
  }
  pool.recycle(std::move(store));
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.taken_outstanding_bytes, 0u);
  EXPECT_EQ(s.high_water_bytes, 16u * 1024 + 4096u);
}

TEST(BufferPool, RecycleOfForeignBuffersSaturatesTakenAtZero) {
  BufferPool pool;
  // A vector the pool never take()d: the credit saturates instead of
  // wrapping the counter.
  pool.recycle(std::vector<std::uint8_t>(8192));
  EXPECT_EQ(pool.stats().taken_outstanding_bytes, 0u);
  // ...and a real take afterwards still accounts exactly.
  std::vector<std::uint8_t> buf = pool.take(2048);
  EXPECT_EQ(pool.stats().taken_outstanding_bytes, 2048u);
  pool.recycle(std::move(buf));
  EXPECT_EQ(pool.stats().taken_outstanding_bytes, 0u);
}

TEST(BufferPool, RecycleDropsSubMinimumBuffers) {
  BufferPool pool;
  pool.recycle(std::vector<std::uint8_t>(10));
  EXPECT_EQ(pool.stats().pooled_bytes, 0u);
}

TEST(BufferPool, DetachTransfersOwnership) {
  BufferPool pool;
  BufferLease lease = pool.acquire(2048);
  std::memset(lease.data(), 0x5A, lease.size());
  std::vector<std::uint8_t> owned = std::move(lease).detach();
  EXPECT_EQ(owned.size(), 2048u);
  EXPECT_EQ(owned[2047], 0x5A);
  // Detach ends the staging accounting without parking the capacity.
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.pooled_bytes, 0u);
}

TEST(BufferPool, ReleaseIsIdempotentAndMoveSafe) {
  BufferPool pool;
  BufferLease a = pool.acquire(4096);
  a.release();
  a.release();  // no double-return
  EXPECT_FALSE(a.active());
  EXPECT_EQ(pool.stats().outstanding_bytes, 0u);
  EXPECT_EQ(pool.stats().recycles, 1u);

  BufferLease b = pool.acquire(4096);
  BufferLease c = std::move(b);
  EXPECT_FALSE(b.active());  // NOLINT(bugprone-use-after-move): moved-from
  EXPECT_TRUE(c.active());
  EXPECT_EQ(pool.stats().outstanding_bytes, 4096u);
}

TEST(BufferPool, HighWaterTracksPeakConcurrentLeases) {
  BufferPool pool;
  {
    BufferLease a = pool.acquire(1024);
    BufferLease b = pool.acquire(1024);
    BufferLease c = pool.acquire(2048);
    EXPECT_EQ(pool.stats().outstanding_bytes, 4096u);
  }
  {
    BufferLease d = pool.acquire(1024);
    EXPECT_EQ(pool.stats().outstanding_bytes, 1024u);
  }
  EXPECT_EQ(pool.stats().high_water_bytes, 4096u);
}

TEST(BufferPool, TrimDropsIdleCapacityKeepsCounters) {
  BufferPool pool;
  { BufferLease a = pool.acquire(32 * 1024); }
  EXPECT_EQ(pool.stats().pooled_bytes, 32u * 1024);
  pool.trim();
  const auto s = pool.stats();
  EXPECT_EQ(s.pooled_bytes, 0u);
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.high_water_bytes, 32u * 1024);
  // After a trim the next checkout allocates again.
  { BufferLease b = pool.acquire(32 * 1024); }
  EXPECT_EQ(pool.stats().freelist_hits, 0u);
}

TEST(BufferPool, MixedClassCheckoutsLandInTheRightFreelists) {
  BufferPool pool;
  { BufferLease small = pool.acquire(1024); }
  { BufferLease big = pool.acquire(128 * 1024); }
  EXPECT_EQ(pool.stats().pooled_bytes, 1024u + 128 * 1024);
  // A 1 KiB request must not dequeue the 128 KiB buffer.
  {
    BufferLease again = pool.acquire(512);
    EXPECT_EQ(pool.stats().pooled_bytes, 128u * 1024);
  }
}

// TSan-targeted contention stress: many threads hammer a shared pool with
// interleaved acquire (staging leases) and take/recycle (store buffers)
// across several size classes.  Under -fsanitize=thread this exercises the
// mu_-guarded freelists and the unified high-water accounting from every
// interleaving the scheduler produces; the post-join assertions prove the
// counters stayed exact, not just data-race-free.
TEST(BufferPoolStress, ConcurrentTakeRecycleAcrossSizeClassesStaysConsistent) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  static constexpr std::size_t kClasses[] = {512, 4096, 16 * 1024, 64 * 1024};
  constexpr int kNumClasses = 4;

  BufferPool pool;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t n = kClasses[(t + i) % kNumClasses];
        if ((t + i) % 2 == 0) {
          // Staging regime: scoped lease, touched so TSan sees the bytes.
          BufferLease lease = pool.acquire(n);
          ASSERT_TRUE(lease.active());
          lease.data()[0] = static_cast<std::uint8_t>(i);
          lease.data()[lease.size() - 1] = static_cast<std::uint8_t>(t);
        } else {
          // Store regime: explicit take/recycle round trip.
          std::vector<std::uint8_t> buf = pool.take(n);
          ASSERT_EQ(buf.size(), n);
          buf[0] = static_cast<std::uint8_t>(t);
          pool.recycle(std::move(buf));
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  const BufferPool::Stats s = pool.stats();
  // Every checkout was returned: nothing outstanding in either regime.
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.taken_outstanding_bytes, 0u);
  // Counter totals are exact despite the contention.
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(s.acquires + s.takes, total);
  EXPECT_EQ(s.acquires, total / 2);
  EXPECT_EQ(s.takes, total / 2);
  EXPECT_EQ(s.recycles, total);
  // The unified high-water mark folds both regimes in, so it can never sit
  // below the staging-only mark, and at least one largest-class checkout
  // must be visible in it.
  EXPECT_GE(s.high_water_bytes, s.staging_high_water_bytes);
  EXPECT_GE(s.high_water_bytes, kClasses[kNumClasses - 1]);
  // All returned capacity parked in the freelists (pooled_bytes can exceed
  // the concurrent peak — each size class parks its own buffers — so the
  // bound to check is trim() draining it exactly to zero, with the sticky
  // counters untouched).
  EXPECT_GT(s.pooled_bytes, 0u);
  // Freelist reuse must have kicked in: with 3200 round trips over four
  // size classes, steady state cannot be allocating every time.
  EXPECT_GT(s.freelist_hits, 0u);
  pool.trim();
  const BufferPool::Stats after = pool.stats();
  EXPECT_EQ(after.pooled_bytes, 0u);
  EXPECT_EQ(after.high_water_bytes, s.high_water_bytes);
  EXPECT_EQ(after.recycles, s.recycles);
}

}  // namespace
}  // namespace car::util
