#include "xorcode/rdp.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace car::xorcode {
namespace {

std::vector<std::vector<Chunk>> random_data(const Rdp& code,
                                            std::size_t symbol_size,
                                            util::Rng& rng) {
  std::vector<std::vector<Chunk>> data(
      code.data_disks(), std::vector<Chunk>(code.rows(), Chunk(symbol_size)));
  for (auto& column : data) {
    for (auto& symbol : column) rng.fill_bytes(symbol);
  }
  return data;
}

TEST(Rdp, ConstructionRequiresPrimeP) {
  EXPECT_THROW(Rdp(1), std::invalid_argument);
  EXPECT_THROW(Rdp(2), std::invalid_argument);
  EXPECT_THROW(Rdp(4), std::invalid_argument);
  EXPECT_THROW(Rdp(9), std::invalid_argument);
  EXPECT_NO_THROW(Rdp(3));
  EXPECT_NO_THROW(Rdp(13));
}

class RdpSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  Rdp code_{GetParam()};
  util::Rng rng_{GetParam() * 100 + 3};
};

TEST_P(RdpSweep, EncodeVerifies) {
  const auto data = random_data(code_, 64, rng_);
  const auto stripe = code_.encode(data);
  ASSERT_EQ(stripe.size(), code_.total_disks());
  EXPECT_TRUE(code_.verify(stripe));

  // Corrupt one symbol: verification must fail.
  auto corrupted = stripe;
  corrupted[0][0][0] ^= 0xFF;
  EXPECT_FALSE(code_.verify(corrupted));
}

TEST_P(RdpSweep, ConventionalRecoveryRebuildsEveryColumn) {
  const auto data = random_data(code_, 32, rng_);
  const auto stripe = code_.encode(data);
  for (std::size_t disk = 0; disk < code_.total_disks(); ++disk) {
    const auto rebuilt = code_.recover_conventional(stripe, disk);
    ASSERT_EQ(rebuilt.size(), code_.rows());
    for (std::size_t r = 0; r < code_.rows(); ++r) {
      EXPECT_EQ(rebuilt[r], stripe[disk][r]) << "disk " << disk << " row "
                                             << r;
    }
  }
}

TEST_P(RdpSweep, EveryValidHybridAssignmentRecoversExactly) {
  const auto data = random_data(code_, 16, rng_);
  const auto stripe = code_.encode(data);
  const std::size_t n = code_.rows();

  for (std::size_t disk = 0; disk < code_.data_disks(); ++disk) {
    for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
      std::vector<bool> assignment(n);
      bool valid = true;
      for (std::size_t r = 0; r < n; ++r) {
        assignment[r] = (mask >> r) & 1u;
        if (assignment[r] && (r + disk) % code_.p() + 1 == code_.p()) {
          valid = false;
        }
      }
      if (!valid) continue;
      const auto plan = code_.plan_recovery(disk, assignment);
      const auto rebuilt = code_.recover_with_plan(stripe, plan);
      for (std::size_t r = 0; r < n; ++r) {
        ASSERT_EQ(rebuilt[r], stripe[disk][r])
            << "disk " << disk << " mask " << mask << " row " << r;
      }
    }
  }
}

TEST_P(RdpSweep, HybridRecoveryReadsFewerSymbolsThanConventional) {
  const std::size_t conventional_reads = code_.rows() * (code_.p() - 1);
  for (std::size_t disk = 0; disk < code_.data_disks(); ++disk) {
    const auto plan = code_.plan_hybrid_recovery(disk);
    EXPECT_LT(plan.reads.size(), conventional_reads) << "disk " << disk;
    // Xiang et al.: the optimum approaches a ~25% saving as p grows; at
    // small p the saving is smaller but must be at least one symbol.
    // Also check the known asymptotic bound: reads >= ~3/4 of conventional.
    EXPECT_GE(plan.reads.size(), conventional_reads / 2);
  }
}

TEST_P(RdpSweep, HybridPlanReadsAreDistinctSurvivingSymbols) {
  for (std::size_t disk = 0; disk < code_.data_disks(); ++disk) {
    const auto plan = code_.plan_hybrid_recovery(disk);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const auto& [d, r] : plan.reads) {
      EXPECT_NE(d, disk) << "plan reads the failed disk";
      EXPECT_LT(d, code_.total_disks());
      EXPECT_LT(r, code_.rows());
      EXPECT_TRUE(seen.insert({d, r}).second) << "duplicate read";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, RdpSweep, ::testing::Values(3u, 5u, 7u, 11u));

TEST(Rdp, KnownOptimalReadCountForP5) {
  // For p=5 the conventional rebuild of a data disk reads 4x4 = 16 symbols;
  // the optimal hybrid (2 rows + 2 diagonals) reads 12 — a 25% saving
  // (Xiang et al., SIGMETRICS'10).
  const Rdp code(5);
  for (std::size_t disk = 0; disk < code.data_disks(); ++disk) {
    const auto plan = code.plan_hybrid_recovery(disk);
    EXPECT_EQ(plan.reads.size(), 12u) << "disk " << disk;
  }
}

TEST(Rdp, PlanValidation) {
  const Rdp code(5);
  EXPECT_THROW(code.plan_recovery(4, std::vector<bool>(4, false)),
               std::invalid_argument);  // row-parity disk
  EXPECT_THROW(code.plan_recovery(0, std::vector<bool>(3, false)),
               std::invalid_argument);  // arity
  EXPECT_THROW(code.plan_hybrid_recovery(5), std::invalid_argument);
  // Row on the missing diagonal must not be assigned to a diagonal:
  // for disk f=1, row r with (r+1) % 5 == 4 -> r = 3.
  std::vector<bool> bad(4, false);
  bad[3] = true;
  EXPECT_THROW(code.plan_recovery(1, bad), std::invalid_argument);
}

TEST(Rdp, EncodeValidation) {
  const Rdp code(3);
  EXPECT_THROW(code.encode({}), std::invalid_argument);
  std::vector<std::vector<Chunk>> ragged(2, std::vector<Chunk>(2, Chunk(8)));
  ragged[1][0].resize(4);
  EXPECT_THROW(code.encode(ragged), std::invalid_argument);
  std::vector<std::vector<Chunk>> wrong_rows(2,
                                             std::vector<Chunk>(3, Chunk(8)));
  EXPECT_THROW(code.encode(wrong_rows), std::invalid_argument);
}

TEST(Rdp, DoubleFailureToleranceViaReencode) {
  // RDP is RAID-6: losing both parity columns is recoverable by
  // re-encoding from the data columns.
  util::Rng rng(9);
  const Rdp code(7);
  const auto data = random_data(code, 24, rng);
  const auto stripe = code.encode(data);
  const auto again = code.encode(data);
  EXPECT_EQ(again[Rdp::kRowParity(7)], stripe[Rdp::kRowParity(7)]);
  EXPECT_EQ(again[Rdp::kDiagParity(7)], stripe[Rdp::kDiagParity(7)]);
}

}  // namespace
}  // namespace car::xorcode
