#include "util/stats.h"

#include <algorithm>

#include "util/check.h"

namespace car::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

BackoffSchedule::BackoffSchedule(double base_s, double factor, double cap_s,
                                 double jitter)
    : base_s_(base_s), factor_(factor), cap_s_(cap_s), jitter_(jitter) {
  CAR_CHECK(base_s > 0.0, "BackoffSchedule: base must be positive");
  CAR_CHECK(factor >= 1.0, "BackoffSchedule: factor must be >= 1");
  CAR_CHECK_GE(cap_s, base_s, "BackoffSchedule: cap must be >= base");
  CAR_CHECK(jitter >= 0.0 && jitter < 1.0,
            "BackoffSchedule: jitter must be in [0, 1)");
}

double BackoffSchedule::raw_delay(std::size_t attempt) const {
  CAR_CHECK(attempt > 0, "BackoffSchedule: attempts are 1-based");
  // Once base * factor^(a-1) crosses the cap, stop exponentiating — the
  // uncapped value overflows to inf for large attempt counts otherwise.
  double delay = base_s_;
  for (std::size_t i = 1; i < attempt && delay < cap_s_; ++i) {
    delay *= factor_;
  }
  return std::min(delay, cap_s_);
}

double BackoffSchedule::delay(std::size_t attempt, Rng& rng) const {
  const double scale = 1.0 + jitter_ * (2.0 * rng.next_double() - 1.0);
  return raw_delay(attempt) * scale;
}

double percentile(std::span<const double> sample, double q) {
  CAR_CHECK(!sample.empty(), "percentile: empty sample");
  CAR_CHECK(q >= 0.0 && q <= 1.0, "percentile: q not in [0,1]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) {
  CAR_CHECK(!sample.empty(), "mean_of: empty sample");
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

}  // namespace car::util
