// Per-stripe rack census under a node failure (paper §IV-B).
//
// For stripe j and racks A_1..A_r the census is c_{i,j} — how many chunks of
// the stripe each rack holds — plus c'_{f,j}, the count in the failed rack
// after losing one chunk (Eq. 1).  All of CAR's decisions are functions of
// this census.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/failure.h"
#include "cluster/placement.h"
#include "cluster/types.h"

namespace car::recovery {

struct StripeCensus {
  cluster::StripeId stripe = 0;
  std::size_t lost_chunk = 0;           // chunk index lost in this stripe
  cluster::RackId failed_rack = 0;
  std::size_t k = 0;                    // data chunks needed to reconstruct
  std::vector<std::size_t> chunks;      // c_{i,j} per rack (pre-failure)
  std::vector<std::size_t> surviving;   // c'_{i,j}: failed rack decremented

  [[nodiscard]] std::size_t num_racks() const noexcept { return chunks.size(); }

  /// Surviving chunks inside the failed rack, c'_{f,j}.
  [[nodiscard]] std::size_t surviving_in_failed_rack() const noexcept {
    return surviving[failed_rack];
  }

  /// Total surviving chunks across the cluster (must be >= k for an MDS
  /// code to recover).
  [[nodiscard]] std::size_t total_surviving() const noexcept;
};

/// Census for one lost chunk.
StripeCensus build_census(const cluster::Placement& placement,
                          const cluster::FailureScenario& scenario,
                          const cluster::LostChunk& lost);

/// Censuses for every lost chunk of a failure scenario, in scenario order.
std::vector<StripeCensus> build_censuses(
    const cluster::Placement& placement,
    const cluster::FailureScenario& scenario);

}  // namespace car::recovery
