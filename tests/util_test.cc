#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace car::util {
namespace {

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    (void)c;
  }
  Rng d(43);
  EXPECT_NE(Rng(42)(), d());
}

TEST(Rng, NextBelowStaysInRangeAndCoversValues) {
  Rng rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.next_in(2, 1), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(4);
  const auto sample = rng.sample_indices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto i : sample) EXPECT_LT(i, 100u);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, FillBytesCoversOddSizes) {
  Rng rng(5);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u}) {
    std::vector<std::uint8_t> buf(n, 0xAA);
    rng.fill_bytes(buf);
    // Not a randomness test — just exercise the tail path.
    EXPECT_EQ(buf.size(), n);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  RunningStats other;
  other.add(3.0);
  s.merge(other);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile(v, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_THROW(mean_of(empty), std::invalid_argument);
}

TEST(TextTable, RendersAlignedAndCsv) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nb,22\n");
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"a"});
  t.add_row({"x,y"});
  t.add_row({"quote\"inside"});
  EXPECT_EQ(t.to_csv(), "a\n\"x,y\"\n\"quote\"\"inside\"\n");
}

TEST(BackoffSchedule, GrowsGeometricallyUpToCap) {
  const BackoffSchedule schedule(0.01, 2.0, 0.25, 0.0);
  EXPECT_DOUBLE_EQ(schedule.raw_delay(1), 0.01);
  EXPECT_DOUBLE_EQ(schedule.raw_delay(2), 0.02);
  EXPECT_DOUBLE_EQ(schedule.raw_delay(3), 0.04);
  EXPECT_DOUBLE_EQ(schedule.raw_delay(5), 0.16);
  EXPECT_DOUBLE_EQ(schedule.raw_delay(6), 0.25);   // capped
  EXPECT_DOUBLE_EQ(schedule.raw_delay(60), 0.25);  // stays capped, no inf
  EXPECT_DOUBLE_EQ(schedule.raw_delay(100000), 0.25);
}

TEST(BackoffSchedule, ZeroJitterEqualsRawDelay) {
  const BackoffSchedule schedule(0.05, 3.0, 1.0, 0.0);
  Rng rng(7);
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_DOUBLE_EQ(schedule.delay(attempt, rng),
                     schedule.raw_delay(attempt));
  }
}

TEST(BackoffSchedule, JitterStaysWithinBandAndIsSeedDeterministic) {
  const BackoffSchedule schedule(0.1, 2.0, 5.0, 0.25);
  Rng a(99), b(99);
  for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
    const double raw = schedule.raw_delay(attempt);
    const double jittered = schedule.delay(attempt, a);
    EXPECT_GE(jittered, raw * 0.75);
    EXPECT_LE(jittered, raw * 1.25);
    EXPECT_DOUBLE_EQ(jittered, schedule.delay(attempt, b));
  }
}

TEST(BackoffSchedule, RejectsMalformedParametersAndAttemptZero) {
  EXPECT_THROW(BackoffSchedule(0.0, 2.0, 1.0, 0.1), CheckError);
  EXPECT_THROW(BackoffSchedule(0.1, 0.5, 1.0, 0.1), CheckError);
  EXPECT_THROW(BackoffSchedule(0.5, 2.0, 0.1, 0.1), CheckError);
  EXPECT_THROW(BackoffSchedule(0.1, 2.0, 1.0, 1.0), CheckError);
  EXPECT_THROW(BackoffSchedule(0.1, 2.0, 1.0, -0.1), CheckError);
  const BackoffSchedule schedule(0.1, 2.0, 1.0, 0.0);
  EXPECT_THROW((void)schedule.raw_delay(0), CheckError);
}

TEST(Bytes, FormatsHumanReadableSizes) {
  using namespace literals;
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4_MiB), "4.00 MiB");
  EXPECT_EQ(format_bytes(1536_MiB), "1.50 GiB");
  EXPECT_EQ(format_bytes(2_KiB), "2.00 KiB");
  EXPECT_EQ(format_rate(125e6), "125.0 MB/s");
  EXPECT_EQ(format_rate(2.5e9), "2.50 GB/s");
  EXPECT_EQ(format_rate(500.0), "0.5 KB/s");
}

}  // namespace
}  // namespace car::util
