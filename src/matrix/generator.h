// Construction of systematic MDS generator matrices for (k, m) codes.
//
// A generator G is (k+m) x k over GF(2^8); the top k rows are the identity
// (systematic property) and every k-row subset of G is invertible (MDS
// property).  Two constructions are provided:
//
//  * Vandermonde: start from the extended Vandermonde matrix and reduce it so
//    the top k rows become the identity (the classic Reed–Solomon approach —
//    elementary column operations preserve the any-k-rows-invertible
//    property).
//  * Cauchy: identity stacked on a Cauchy matrix, which is MDS by
//    construction for distinct sample points.
#pragma once

#include <cstddef>

#include "matrix/matrix.h"

namespace car::matrix {

/// (k+m) x k systematic Vandermonde-based RS generator.
/// Requires k >= 1, m >= 0, k + m <= 256.  Throws std::invalid_argument.
Matrix systematic_vandermonde(std::size_t k, std::size_t m);

/// (k+m) x k systematic Cauchy-based generator.
/// Requires k >= 1, m >= 0, k + m <= 256.  Throws std::invalid_argument.
Matrix systematic_cauchy(std::size_t k, std::size_t m);

/// Verify the MDS property by checking that every k-row subset of G is
/// invertible.  Exponential in (k+m choose k) — intended for tests with
/// small parameters.
bool verify_mds(const Matrix& generator, std::size_t k);

/// Verify the systematic property: top k rows of G equal the identity.
bool verify_systematic(const Matrix& generator, std::size_t k);

}  // namespace car::matrix
