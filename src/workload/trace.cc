#include "workload/trace.h"

#include <algorithm>
#include <cmath>

#include "recovery/balancer.h"
#include "recovery/metrics.h"
#include "recovery/plan.h"
#include "rs/code.h"
#include "simnet/flowsim.h"
#include "util/check.h"

namespace car::workload {

std::vector<FailureEvent> generate_failure_trace(
    const cluster::Topology& topology, const TraceConfig& config,
    util::Rng& rng) {
  CAR_CHECK(config.mean_interarrival_s > 0,
            "generate_failure_trace: mean inter-arrival must be positive");
  std::vector<FailureEvent> events;
  events.reserve(config.num_failures);
  double clock = 0.0;
  for (std::size_t i = 0; i < config.num_failures; ++i) {
    // Exponential inter-arrival via inverse transform; guard the log.
    const double u = std::max(rng.next_double(), 1e-12);
    clock += -config.mean_interarrival_s * std::log(u);
    const auto node = static_cast<cluster::NodeId>(
        rng.next_below(topology.num_nodes()));
    events.push_back({clock, node});
  }
  return events;
}

TraceReport run_failure_trace(const cluster::Placement& placement,
                              const std::vector<FailureEvent>& events,
                              Strategy strategy, std::uint64_t chunk_size,
                              const simnet::NetConfig& net, util::Rng& rng) {
  CAR_CHECK(chunk_size > 0, "run_failure_trace: chunk_size must be > 0");
  const rs::Code code(placement.k(), placement.m());
  TraceReport report;
  std::vector<std::size_t> per_rack(placement.topology().num_racks(), 0);
  std::size_t total_cross_chunks = 0;
  cluster::RackId any_failed_rack = 0;

  for (const FailureEvent& event : events) {
    const auto scenario =
        cluster::inject_node_failure(placement, event.node);
    if (scenario.lost.empty()) continue;
    const auto censuses = recovery::build_censuses(placement, scenario);

    recovery::RecoveryPlan plan;
    recovery::TrafficSummary summary;
    if (strategy == Strategy::kCar) {
      const auto balanced = recovery::balance_greedy(placement, censuses,
                                                     {50});
      summary = recovery::car_traffic(balanced.solutions,
                                      placement.topology().num_racks(),
                                      scenario.failed_rack);
      plan = recovery::build_car_plan(placement, code, balanced.solutions,
                                      chunk_size, scenario.failed_node);
    } else {
      const auto rr = recovery::plan_rr(placement, censuses, rng);
      summary = recovery::rr_traffic(placement, rr, scenario.failed_rack);
      plan = recovery::build_rr_plan(placement, code, rr, chunk_size,
                                     scenario.failed_node);
    }

    const auto sim = simnet::simulate_plan(placement.topology(), plan, net);

    ++report.failures_processed;
    report.chunks_rebuilt += scenario.lost.size();
    report.cross_rack_bytes += plan.cross_rack_bytes();
    report.total_recovery_s += sim.makespan_s;
    report.max_recovery_s = std::max(report.max_recovery_s, sim.makespan_s);
    for (cluster::RackId i = 0; i < per_rack.size(); ++i) {
      per_rack[i] += summary.per_rack_chunks[i];
      total_cross_chunks += summary.per_rack_chunks[i];
    }
    any_failed_rack = scenario.failed_rack;
  }

  // Aggregate lambda over the whole trace.  Every rack hosts failures at
  // some point, so average over all racks rather than excluding one.
  if (total_cross_chunks > 0 && per_rack.size() > 1) {
    const std::size_t max =
        *std::max_element(per_rack.begin(), per_rack.end());
    const double avg = static_cast<double>(total_cross_chunks) /
                       static_cast<double>(per_rack.size());
    report.aggregate_lambda = static_cast<double>(max) / avg;
  }
  (void)any_failed_rack;
  return report;
}

}  // namespace car::workload
