// Positive control: the same shapes as the violation fixtures, written with
// correct lock discipline.  This translation unit must compile CLEAN under
// -Wthread-safety -Werror — if it ever fails, the negative fixtures are
// rejecting style, not violations.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Everything {
 public:
  // GUARDED_BY + RAII scoped capability.
  void bump() CAR_EXCLUDES(mu_) {
    car::util::MutexLock lock(mu_);
    ++events_;
  }

  // REQUIRES satisfied by the caller's lock, including around an early
  // unlock()/lock() window (the executor's worker-loop shape).
  void bump_twice() CAR_EXCLUDES(mu_) {
    car::util::MutexLock lock(mu_);
    bump_locked();
    lock.unlock();
    lock.lock();
    bump_locked();
  }

  // ACQUIRE / RELEASE pair that really does what it declares.
  void enter() CAR_ACQUIRE(mu_) { mu_.lock(); }
  void leave() CAR_RELEASE(mu_) { mu_.unlock(); }

  // CondVar wait with the capability held, in an explicit predicate loop.
  void wait_for_event() CAR_EXCLUDES(mu_) {
    car::util::MutexLock lock(mu_);
    while (events_ == 0) cv_.wait(mu_);
  }

  void signal() CAR_EXCLUDES(mu_) {
    bump();
    cv_.notify_all();
  }

 private:
  void bump_locked() CAR_REQUIRES(mu_) { ++events_; }

  car::util::Mutex mu_;
  car::util::CondVar cv_;
  int events_ CAR_GUARDED_BY(mu_) = 0;
};

[[maybe_unused]] void use() {
  Everything e;
  e.bump();
  e.bump_twice();
  e.enter();
  e.leave();
  e.signal();
  e.wait_for_event();
}

}  // namespace
