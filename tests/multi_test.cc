#include "recovery/multi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"

namespace car::recovery {
namespace {

using cluster::Placement;
using cluster::Topology;

Placement make_placement(const cluster::CfsConfig& cfg, std::size_t stripes,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  return Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
}

TEST(MultiFailure, ScenarioValidation) {
  const auto cfg = cluster::cfs1();
  const auto p = make_placement(cfg, 5, 1);
  EXPECT_THROW(make_multi_failure(p, {}), std::invalid_argument);
  EXPECT_THROW(make_multi_failure(p, {0, 0}), std::invalid_argument);
  EXPECT_THROW(make_multi_failure(p, {99}), std::invalid_argument);
  const auto scenario = make_multi_failure(p, {3, 7});
  EXPECT_EQ(scenario.replacement, 3u);
  EXPECT_EQ(scenario.replacement_rack, p.topology().rack_of(3));
  EXPECT_TRUE(scenario.is_failed(7));
  EXPECT_FALSE(scenario.is_failed(1));
}

TEST(MultiFailure, CensusCountsLostAndSurvivingConsistently) {
  const auto cfg = cluster::cfs2();
  const auto p = make_placement(cfg, 40, 2);
  const auto scenario = make_multi_failure(p, {0, 5});
  const auto censuses = build_multi_censuses(p, scenario);
  ASSERT_FALSE(censuses.empty());
  for (const auto& census : censuses) {
    const std::size_t surviving = std::accumulate(
        census.surviving.begin(), census.surviving.end(), std::size_t{0});
    EXPECT_EQ(surviving + census.lost_chunks.size(), cfg.k + cfg.m);
    EXPECT_GE(census.lost_chunks.size(), 1u);
    EXPECT_LE(census.lost_chunks.size(), 2u);
    EXPECT_TRUE(std::is_sorted(census.lost_chunks.begin(),
                               census.lost_chunks.end()));
    for (std::size_t c : census.lost_chunks) {
      EXPECT_TRUE(scenario.is_failed(p.node_of(census.stripe, c)));
    }
  }
}

TEST(MultiFailure, SingleFailureIsASpecialCase) {
  // With one failed node, the multi machinery must agree with the
  // single-failure path on censuses and traffic.
  const auto cfg = cluster::cfs3();
  const auto p = make_placement(cfg, 60, 3);
  const cluster::NodeId victim = 4;
  const auto single = cluster::inject_node_failure(p, victim);
  if (single.lost.empty()) GTEST_SKIP();
  const auto single_censuses = build_censuses(p, single);
  const auto multi = make_multi_failure(p, {victim});
  const auto multi_censuses = build_multi_censuses(p, multi);
  ASSERT_EQ(multi_censuses.size(), single_censuses.size());

  const auto single_balanced = balance_greedy(p, single_censuses, {50});
  const auto multi_balanced = balance_multi(p, multi_censuses, 50);
  const auto racks = p.topology().num_racks();
  EXPECT_EQ(car_traffic(single_balanced.solutions, racks, single.failed_rack)
                .total_chunks(),
            multi_traffic(multi_balanced.solutions, racks,
                          multi.replacement_rack)
                .total_chunks());
}

TEST(MultiFailure, UnrecoverableStripeThrows) {
  // Force a stripe losing more than m chunks: fail m+1 of its hosts.
  const auto cfg = cluster::cfs1();  // m = 3
  const auto p = make_placement(cfg, 10, 4);
  const auto hosts = p.stripe(0);
  std::vector<cluster::NodeId> victims(hosts.begin(),
                                       hosts.begin() + cfg.m + 1);
  const auto scenario = make_multi_failure(p, victims);
  EXPECT_THROW(build_multi_censuses(p, scenario), std::invalid_argument);
}

class MultiFailureSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MultiFailureSweep, SolutionsAreMinimalAndCompleteAndBalanced) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  const int failures = std::get<1>(GetParam());
  const auto p = make_placement(cfg, 50, std::get<2>(GetParam()));
  util::Rng rng(std::get<2>(GetParam()) + 100);

  const auto victims =
      rng.sample_indices(p.topology().num_nodes(), failures);
  std::vector<cluster::NodeId> nodes(victims.begin(), victims.end());
  const auto scenario = make_multi_failure(p, nodes);

  std::vector<MultiStripeCensus> censuses;
  try {
    censuses = build_multi_censuses(p, scenario);
  } catch (const std::invalid_argument&) {
    GTEST_SKIP() << "random failure exceeded code tolerance";
  }
  if (censuses.empty()) GTEST_SKIP();

  const auto result = balance_multi(p, censuses, 50);
  ASSERT_EQ(result.solutions.size(), censuses.size());

  for (std::size_t j = 0; j < censuses.size(); ++j) {
    const auto& solution = result.solutions[j];
    // Exactly k distinct survivors, none of them lost.
    const auto all = solution.all_chunk_indices();
    EXPECT_EQ(all.size(), censuses[j].k);
    for (std::size_t c : all) {
      EXPECT_FALSE(std::binary_search(censuses[j].lost_chunks.begin(),
                                      censuses[j].lost_chunks.end(), c));
      EXPECT_FALSE(scenario.is_failed(p.node_of(censuses[j].stripe, c)));
    }
    // Rack set is a valid minimal selection.
    EXPECT_TRUE(is_valid_minimal_for(censuses[j].k,
                                     censuses[j].replacement_rack,
                                     censuses[j].surviving,
                                     solution.rack_set));
  }

  // Lambda trace is monotone non-increasing.
  for (std::size_t i = 1; i < result.lambda_trace.size(); ++i) {
    EXPECT_LE(result.lambda_trace[i], result.lambda_trace[i - 1] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, MultiFailureSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(11u, 57u)));

TEST(MultiFailure, EmulatedRecoveryIsBitExactForDoubleFailure) {
  const auto cfg = cluster::cfs2();
  const auto p = make_placement(cfg, 12, 8);
  const rs::Code code(cfg.k, cfg.m);
  constexpr std::uint64_t kChunk = 32 * 1024;

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 400e6;
  emul::Cluster cluster(cfg.topology(), emul_cfg);
  util::Rng data_rng(77);
  const auto originals = cluster.populate(p, code, kChunk, data_rng);

  const auto scenario = make_multi_failure(p, {1, 9});
  cluster.erase_node(1);
  cluster.erase_node(9);
  const auto censuses = build_multi_censuses(p, scenario);
  ASSERT_FALSE(censuses.empty());

  const auto balanced = balance_multi(p, censuses, 50);
  const auto plan = build_multi_car_plan(p, code, balanced.solutions, kChunk,
                                         scenario.replacement);
  cluster.execute(plan);

  for (const auto& census : censuses) {
    for (std::size_t lost : census.lost_chunks) {
      const auto* rec =
          cluster.find_chunk(scenario.replacement, census.stripe, lost);
      ASSERT_NE(rec, nullptr) << "stripe " << census.stripe;
      EXPECT_EQ(*rec, originals[census.stripe][lost]);
    }
  }
}

TEST(MultiFailure, EmulatedRrRecoveryIsBitExact) {
  const auto cfg = cluster::cfs3();
  const auto p = make_placement(cfg, 8, 9);
  const rs::Code code(cfg.k, cfg.m);
  constexpr std::uint64_t kChunk = 16 * 1024;

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 400e6;
  emul::Cluster cluster(cfg.topology(), emul_cfg);
  util::Rng data_rng(78);
  const auto originals = cluster.populate(p, code, kChunk, data_rng);

  const auto scenario = make_multi_failure(p, {2, 11});
  cluster.erase_node(2);
  cluster.erase_node(11);
  const auto censuses = build_multi_censuses(p, scenario);
  if (censuses.empty()) GTEST_SKIP();

  util::Rng rr_rng(79);
  const auto rr = plan_multi_rr(p, censuses, rr_rng);
  const auto plan =
      build_multi_rr_plan(p, code, rr, kChunk, scenario.replacement);
  cluster.execute(plan);

  for (const auto& census : censuses) {
    for (std::size_t lost : census.lost_chunks) {
      const auto* rec =
          cluster.find_chunk(scenario.replacement, census.stripe, lost);
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(*rec, originals[census.stripe][lost]);
    }
  }
}

TEST(MultiFailure, WholeRackFailureIsAlwaysRecoverable) {
  // The placement quota c_{i,j} <= m exists precisely so that losing an
  // entire rack never exceeds the code's tolerance (paper §IV-B).  Fail
  // every node of each rack in turn; build_multi_censuses must never throw
  // and recovery must be planable with the replacement in another rack.
  for (int cfg_index = 0; cfg_index < 3; ++cfg_index) {
    const auto cfg = cluster::paper_configs()[cfg_index];
    const auto p = make_placement(cfg, 40, 1000 + cfg_index);
    for (cluster::RackId rack = 0; rack < p.topology().num_racks(); ++rack) {
      auto victims = p.topology().nodes_in_rack(rack);
      // Rebuild onto a node outside the failed rack.
      const cluster::NodeId replacement =
          p.topology().rack_range((rack + 1) % p.topology().num_racks())
              .first;
      auto scenario = make_multi_failure(p, victims);
      scenario.replacement = replacement;
      scenario.replacement_rack = p.topology().rack_of(replacement);

      std::vector<MultiStripeCensus> censuses;
      ASSERT_NO_THROW(censuses = build_multi_censuses(p, scenario))
          << cfg.name << " rack " << rack;
      if (censuses.empty()) continue;
      const auto balanced = balance_multi(p, censuses, 50);
      ASSERT_EQ(balanced.solutions.size(), censuses.size());
      for (std::size_t j = 0; j < censuses.size(); ++j) {
        EXPECT_LE(censuses[j].lost_chunks.size(), cfg.m);
        EXPECT_EQ(balanced.solutions[j].all_chunk_indices().size(), cfg.k);
      }
    }
  }
}

TEST(MultiFailure, TrafficAccountingMatchesPlanBytes) {
  const auto cfg = cluster::cfs3();
  const auto p = make_placement(cfg, 30, 10);
  const rs::Code code(cfg.k, cfg.m);
  const auto scenario = make_multi_failure(p, {0, 7});
  const auto censuses = build_multi_censuses(p, scenario);
  const auto balanced = balance_multi(p, censuses, 50);
  constexpr std::uint64_t kChunk = 4096;
  const auto plan = build_multi_car_plan(p, code, balanced.solutions, kChunk,
                                         scenario.replacement);
  const auto summary = multi_traffic(
      balanced.solutions, p.topology().num_racks(), scenario.replacement_rack);
  EXPECT_EQ(plan.cross_rack_bytes(), summary.total_bytes(kChunk));

  util::Rng rng(11);
  const auto rr = plan_multi_rr(p, censuses, rng);
  const auto rr_plan =
      build_multi_rr_plan(p, code, rr, kChunk, scenario.replacement);
  const auto rr_summary =
      multi_rr_traffic(p, rr, scenario.replacement_rack);
  EXPECT_EQ(rr_plan.cross_rack_bytes(), rr_summary.total_bytes(kChunk));
}

}  // namespace
}  // namespace car::recovery
