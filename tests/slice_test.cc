#include "recovery/slice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "recovery/scheduler.h"
#include "recovery/validate.h"
#include "util/check.h"

namespace car::recovery {
namespace {

using cluster::Placement;

struct Fixture {
  cluster::CfsConfig cfg;
  Placement placement;
  rs::Code code;
  cluster::FailureScenario scenario;
  std::vector<StripeCensus> censuses;

  explicit Fixture(int cfg_index, std::uint64_t seed, std::size_t stripes = 10)
      : cfg(cluster::paper_configs()[cfg_index]),
        placement(make_placement(cfg, stripes, seed)),
        code(cfg.k, cfg.m) {
    util::Rng rng(seed + 1);
    scenario = cluster::inject_random_failure(placement, rng);
    censuses = build_censuses(placement, scenario);
  }

  static Placement make_placement(const cluster::CfsConfig& cfg,
                                  std::size_t stripes, std::uint64_t seed) {
    util::Rng rng(seed);
    return Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  }

  [[nodiscard]] RecoveryPlan car_plan(std::uint64_t chunk) const {
    const auto balanced = balance_greedy(placement, censuses, {50});
    return build_car_plan(placement, code, balanced.solutions, chunk,
                          scenario.failed_node);
  }
};

// --- lowering properties -------------------------------------------------

TEST(SlicePlanLowering, GridCoversChunkExactly) {
  Fixture f(0, 11);
  const std::uint64_t chunk = 96 * 1024 + 7;  // deliberately odd
  const auto plan = f.car_plan(chunk);
  const auto sliced = slice_plan(plan, 16 * 1024);

  EXPECT_EQ(sliced.num_slices, (chunk + 16 * 1024 - 1) / (16 * 1024));
  EXPECT_EQ(sliced.num_base_steps, plan.steps.size());
  ASSERT_EQ(sliced.steps.size(), plan.steps.size() * sliced.num_slices);
  ASSERT_EQ(sliced.info.size(), sliced.steps.size());

  for (std::size_t base = 0; base < plan.steps.size(); ++base) {
    std::uint64_t covered = 0;
    for (std::size_t s = 0; s < sliced.num_slices; ++s) {
      const std::size_t id = sliced.sliced_id(base, s);
      const auto& info = sliced.info[id];
      EXPECT_EQ(sliced.steps[id].id, id);
      EXPECT_EQ(info.base_step, base);
      EXPECT_EQ(info.slice, s);
      EXPECT_EQ(info.offset, covered);
      covered += info.length;
    }
    EXPECT_EQ(covered, chunk) << "base step " << base;
  }
}

TEST(SlicePlanLowering, DependenciesMapSliceToSameSlice) {
  Fixture f(1, 23);
  const std::uint64_t chunk = 64 * 1024;
  const auto plan = f.car_plan(chunk);
  const auto sliced = slice_plan(plan, 8 * 1024);

  for (std::size_t base = 0; base < plan.steps.size(); ++base) {
    for (std::size_t s = 0; s < sliced.num_slices; ++s) {
      const auto& step = sliced.steps[sliced.sliced_id(base, s)];
      const auto& parent = plan.steps[base];
      ASSERT_EQ(step.deps.size(), parent.deps.size());
      for (std::size_t d = 0; d < parent.deps.size(); ++d) {
        EXPECT_EQ(step.deps[d], sliced.sliced_id(parent.deps[d], s));
      }
    }
  }
}

TEST(SlicePlanLowering, ByteTotalsMatchBasePlanExactly) {
  for (const std::uint64_t slice :
       {std::uint64_t{1024}, std::uint64_t{64 * 1024},
        std::uint64_t{96 * 1024 + 7}, std::uint64_t{1 << 20}}) {
    Fixture f(2, 31);
    const std::uint64_t chunk = 96 * 1024 + 7;
    const auto plan = f.car_plan(chunk);
    const auto sliced = slice_plan(plan, slice);
    EXPECT_EQ(sliced.cross_rack_bytes(), plan.cross_rack_bytes());
    EXPECT_EQ(sliced.intra_rack_bytes(), plan.intra_rack_bytes());
    EXPECT_EQ(sliced.compute_bytes(), plan.compute_bytes());
    EXPECT_EQ(sliced.per_rack_cross_bytes(f.placement.topology()),
              plan.per_rack_cross_bytes(f.placement.topology()));
  }
}

TEST(SlicePlanLowering, DegenerateSliceIsTheIdentity) {
  Fixture f(0, 47);
  const std::uint64_t chunk = 32 * 1024;
  const auto plan = f.car_plan(chunk);
  // slice_size >= chunk_size must reproduce the base plan step for step.
  for (const std::uint64_t slice : {chunk, chunk + 1, 10 * chunk}) {
    const auto sliced = slice_plan(plan, slice);
    EXPECT_EQ(sliced.num_slices, 1u);
    EXPECT_EQ(sliced.slice_size, chunk);
    ASSERT_EQ(sliced.steps.size(), plan.steps.size());
    for (std::size_t i = 0; i < plan.steps.size(); ++i) {
      EXPECT_EQ(sliced.steps[i].id, plan.steps[i].id);
      EXPECT_EQ(sliced.steps[i].bytes, plan.steps[i].bytes);
      EXPECT_EQ(sliced.steps[i].deps, plan.steps[i].deps);
    }
  }
}

TEST(SlicePlanLowering, OutputsKeepBaseStepIds) {
  Fixture f(0, 53);
  const auto plan = f.car_plan(64 * 1024);
  const auto sliced = slice_plan(plan, 4 * 1024);
  ASSERT_EQ(sliced.outputs.size(), plan.outputs.size());
  for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
    EXPECT_EQ(sliced.outputs[i].step_id, plan.outputs[i].step_id);
    EXPECT_EQ(sliced.outputs[i].stripe, plan.outputs[i].stripe);
    EXPECT_EQ(sliced.outputs[i].chunk_index, plan.outputs[i].chunk_index);
  }
}

TEST(SlicePlanLowering, EmptyPlanLowersToEmpty) {
  RecoveryPlan plan;
  plan.chunk_size = 0;
  const auto sliced = slice_plan(plan, 1024);
  EXPECT_TRUE(sliced.steps.empty());
  EXPECT_TRUE(sliced.outputs.empty());
}

TEST(SlicePlanLowering, RejectsContractViolations) {
  Fixture f(0, 61);
  auto plan = f.car_plan(16 * 1024);
  EXPECT_THROW((void)slice_plan(plan, 0), util::CheckError);
  plan.steps.front().bytes += 1;
  EXPECT_THROW((void)slice_plan(plan, 4 * 1024), util::CheckError);
}

TEST(SlicePlanLowering, SlicedIdIsSixtyFourBitAndChecksOverflow) {
  // Regression: the id grid used to be computed in the base id's own type,
  // which wraps for million-step plans on narrow size_t — the wrap aliases
  // two different slices onto one id.  The arithmetic is now pinned to
  // uint64_t with a hard overflow check at the boundary.
  SlicePlan sliced;
  sliced.num_slices = 4096;

  // A million-step plan sliced 4096 ways: ids far beyond 2^32 must come out
  // exact, not truncated.
  const std::uint64_t big_base = 1'000'000;
  EXPECT_EQ(sliced.sliced_id(big_base, 4095),
            big_base * std::uint64_t{4096} + 4095);

  // Exactly representable boundary: the largest base step whose last slice
  // still fits in uint64_t.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t last_ok = (kMax - 4095) / 4096;
  EXPECT_EQ(sliced.sliced_id(last_ok, 4095), last_ok * 4096 + 4095);

  // One past it overflows and must throw instead of silently wrapping.
  EXPECT_THROW((void)sliced.sliced_id(last_ok + 1, 4095), util::CheckError);
  EXPECT_THROW((void)sliced.sliced_id(kMax, 1), util::CheckError);
}

TEST(SlicePlanLowering, WindowedPlansSliceToo) {
  // schedule_windowed adds lane-gating deps; the lowering must carry them
  // through the same-slice dependency image without breaking coverage.
  Fixture f(1, 67);
  const auto plan = schedule_windowed(f.car_plan(64 * 1024), 2);
  const auto sliced = slice_plan(plan, 8 * 1024);
  const auto report =
      validate_sliced_plan(sliced, plan, f.placement.topology());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- validate_sliced_plan ------------------------------------------------

TEST(ValidateSlicedPlan, AcceptsFaithfulLowerings) {
  for (const std::uint64_t slice :
       {std::uint64_t{1024}, std::uint64_t{8 * 1024},
        std::uint64_t{96 * 1024 + 7}}) {
    Fixture f(0, 71);
    const auto plan = f.car_plan(96 * 1024 + 7);
    const auto sliced = slice_plan(plan, slice);
    const auto report =
        validate_sliced_plan(sliced, plan, f.placement.topology());
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

struct Tampered : public ::testing::Test {
  Fixture f{0, 83};
  RecoveryPlan plan = f.car_plan(64 * 1024);
  SlicePlan sliced = slice_plan(plan, 8 * 1024);

  [[nodiscard]] ValidationReport validate() const {
    return validate_sliced_plan(sliced, plan, f.placement.topology());
  }
};

TEST_F(Tampered, DetectsMetadataDrift) {
  sliced.chunk_size += 1;
  EXPECT_FALSE(validate().ok());
}

TEST_F(Tampered, DetectsBrokenCoverage) {
  // Shift one slice's byte range: the chunk is no longer partitioned.
  sliced.info[1].offset += 1;
  EXPECT_FALSE(validate().ok());
}

TEST_F(Tampered, DetectsWrongSliceBytes) {
  sliced.steps[1].bytes += 1;
  const auto report = validate();
  EXPECT_FALSE(report.ok());
}

TEST_F(Tampered, DetectsCrossRackByteDrift) {
  // Flip an intra-rack slice transfer to claim cross-rack (or vice versa):
  // slicing must never change what crosses the core.
  for (auto& step : sliced.steps) {
    if (step.kind == StepKind::kTransfer) {
      step.cross_rack = !step.cross_rack;
      break;
    }
  }
  const auto report = validate();
  EXPECT_FALSE(report.ok());
  const bool mentions_traffic = std::any_of(
      report.errors.begin(), report.errors.end(), [](const std::string& e) {
        return e.find("cross-rack") != std::string::npos;
      });
  EXPECT_TRUE(mentions_traffic) << report.to_string();
}

TEST_F(Tampered, DetectsDependencyImageViolation) {
  // Point a slice at a *different* slice of its parent — breaks the
  // same-slice pipeline contract even though the DAG stays acyclic.
  for (std::size_t id = 0; id < sliced.steps.size(); ++id) {
    if (!sliced.steps[id].deps.empty() &&
        sliced.info[id].slice + 1 < sliced.num_slices) {
      sliced.steps[id].deps[0] += 1;
      break;
    }
  }
  EXPECT_FALSE(validate().ok());
}

TEST_F(Tampered, DetectsEndpointDrift) {
  for (auto& step : sliced.steps) {
    if (step.kind == StepKind::kTransfer) {
      step.dst = (step.dst + 1) % f.placement.topology().num_nodes();
      break;
    }
  }
  EXPECT_FALSE(validate().ok());
}

TEST_F(Tampered, DetectsOutputDrift) {
  ASSERT_FALSE(sliced.outputs.empty());
  sliced.outputs.front().stripe += 1;
  EXPECT_FALSE(validate().ok());
}

TEST_F(Tampered, DetectsMissingSliceSteps) {
  sliced.steps.pop_back();
  sliced.info.pop_back();
  EXPECT_FALSE(validate().ok());
}

}  // namespace
}  // namespace car::recovery
