// Template-cache differential tests: plans instantiated from cached
// signatures must be the *same function* as the classic per-stripe
// planners — bit-equal RecoveryPlans, bit-equal arenas (columns, reverse
// CSR, outputs, accounting), a collapsing signature space, canonical
// decode-coefficient memoisation, shard-invariant scans, and real-byte
// decode through a template-cached arena.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "cluster/configs.h"
#include "cluster/placement.h"
#include "emul/cluster.h"
#include "recovery/exposure.h"
#include "recovery/multi.h"
#include "recovery/plan_arena.h"
#include "recovery/plan_template.h"
#include "recovery/slice.h"
#include "rs/code.h"
#include "util/rng.h"

namespace car {
namespace {

using recovery::MultiFailureScenario;
using recovery::MultiStripeCensus;
using recovery::PlanArena;
using recovery::PlanTemplateCache;
using recovery::RecoveryPlan;

constexpr std::uint64_t kChunk = 96 * 1024 + 7;  // no slice size divides it

/// A multi-failure fixture on a paper config: `failed_racks` whole racks
/// when > 0, otherwise `failed_count` random nodes in distinct racks.
struct Fixture {
  cluster::Placement placement;
  rs::Code code;
  MultiFailureScenario scenario;
  std::vector<MultiStripeCensus> censuses;
};

Fixture make_fixture(int cfg_index, std::uint64_t seed, std::size_t stripes,
                     std::size_t failed_racks, std::size_t failed_count) {
  const auto cfg = cluster::paper_configs()[cfg_index];
  util::Rng rng(seed);
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  const auto& topology = placement.topology();
  std::vector<cluster::NodeId> failed;
  if (failed_racks > 0) {
    for (cluster::RackId r = 0; r < failed_racks; ++r) {
      for (const auto node : topology.nodes_in_rack(r)) {
        failed.push_back(node);
        if (failed.size() >= cfg.m) break;  // keep every stripe decodable
      }
    }
  } else {
    // One node from each of the first `failed_count` racks: distinct racks
    // keep the per-stripe loss within tolerance with high probability at
    // these sizes, and the census builder throws if not.
    for (std::size_t r = 0; r < failed_count; ++r) {
      const auto nodes = topology.nodes_in_rack(r);
      failed.push_back(nodes[seed % nodes.size()]);
    }
  }
  rs::Code code(cfg.k, cfg.m);
  auto scenario = recovery::make_multi_failure(placement, failed);
  auto censuses = recovery::build_multi_censuses(placement, scenario);
  return {std::move(placement), std::move(code), std::move(scenario),
          std::move(censuses)};
}

void expect_plan_equal(const RecoveryPlan& a, const RecoveryPlan& b) {
  EXPECT_EQ(a.replacement, b.replacement);
  EXPECT_EQ(a.replacement_rack, b.replacement_rack);
  EXPECT_EQ(a.chunk_size, b.chunk_size);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    const auto& x = a.steps[i];
    const auto& y = b.steps[i];
    EXPECT_EQ(x.id, y.id) << "step " << i;
    EXPECT_EQ(x.kind, y.kind) << "step " << i;
    EXPECT_EQ(x.stripe, y.stripe) << "step " << i;
    EXPECT_EQ(x.deps, y.deps) << "step " << i;
    EXPECT_EQ(x.src, y.src) << "step " << i;
    EXPECT_EQ(x.dst, y.dst) << "step " << i;
    EXPECT_EQ(x.payload, y.payload) << "step " << i;
    EXPECT_EQ(x.cross_rack, y.cross_rack) << "step " << i;
    EXPECT_EQ(x.node, y.node) << "step " << i;
    EXPECT_EQ(x.bytes, y.bytes) << "step " << i;
    ASSERT_EQ(x.inputs.size(), y.inputs.size()) << "step " << i;
    for (std::size_t j = 0; j < x.inputs.size(); ++j) {
      EXPECT_EQ(x.inputs[j].buffer, y.inputs[j].buffer) << "step " << i;
      EXPECT_EQ(x.inputs[j].coeff, y.inputs[j].coeff) << "step " << i;
    }
  }
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i].stripe, b.outputs[i].stripe);
    EXPECT_EQ(a.outputs[i].chunk_index, b.outputs[i].chunk_index);
    EXPECT_EQ(a.outputs[i].step_id, b.outputs[i].step_id);
  }
}

void expect_arena_equal(const PlanArena& a, const PlanArena& b) {
  ASSERT_EQ(a.num_base_steps(), b.num_base_steps());
  EXPECT_EQ(a.stripe_closed(), b.stripe_closed());
  const auto sa = a.to_slice_plan();
  const auto sb = b.to_slice_plan();
  ASSERT_EQ(sa.steps.size(), sb.steps.size());
  for (std::size_t i = 0; i < sa.steps.size(); ++i) {
    const auto& x = sa.steps[i];
    const auto& y = sb.steps[i];
    EXPECT_EQ(x.id, y.id) << "step " << i;
    EXPECT_EQ(x.kind, y.kind) << "step " << i;
    EXPECT_EQ(x.stripe, y.stripe) << "step " << i;
    EXPECT_EQ(x.deps, y.deps) << "step " << i;
    EXPECT_EQ(x.src, y.src) << "step " << i;
    EXPECT_EQ(x.dst, y.dst) << "step " << i;
    EXPECT_EQ(x.payload, y.payload) << "step " << i;
    EXPECT_EQ(x.cross_rack, y.cross_rack) << "step " << i;
    EXPECT_EQ(x.node, y.node) << "step " << i;
    EXPECT_EQ(x.bytes, y.bytes) << "step " << i;
    ASSERT_EQ(x.inputs.size(), y.inputs.size()) << "step " << i;
    for (std::size_t j = 0; j < x.inputs.size(); ++j) {
      EXPECT_EQ(x.inputs[j].buffer, y.inputs[j].buffer) << "step " << i;
      EXPECT_EQ(x.inputs[j].coeff, y.inputs[j].coeff) << "step " << i;
    }
  }
  // The reverse CSR is instantiated from template-local CSRs on the cached
  // path and counting-sorted on the classic path — they must agree.
  for (std::uint64_t base = 0; base < a.num_base_steps(); ++base) {
    const auto x = a.dependents(base);
    const auto y = b.dependents(base);
    ASSERT_EQ(x.size(), y.size()) << "base " << base;
    EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin())) << "base " << base;
  }
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    EXPECT_EQ(a.outputs()[i].stripe, b.outputs()[i].stripe);
    EXPECT_EQ(a.outputs()[i].chunk_index, b.outputs()[i].chunk_index);
    EXPECT_EQ(a.outputs()[i].step_id, b.outputs()[i].step_id);
  }
  EXPECT_EQ(a.cross_rack_bytes(), b.cross_rack_bytes());
  EXPECT_EQ(a.intra_rack_bytes(), b.intra_rack_bytes());
  EXPECT_EQ(a.compute_bytes(), b.compute_bytes());
}

// --- cached plans == classic plans, bit for bit --------------------------

TEST(PlanTemplateCache, CarCachedPlanMatchesClassicAcrossConfigs) {
  for (const int cfg_index : {0, 1, 2}) {
    for (const std::uint64_t seed : {11u, 12u}) {
      // Mix of whole-rack and scattered multi-node failures.
      const std::size_t racks = (seed % 2 == 1) ? 1 : 0;
      const std::size_t nodes = racks > 0 ? 0 : 2;
      const auto fx =
          make_fixture(cfg_index, seed, /*stripes=*/40, racks, nodes);
      const auto balanced =
          recovery::balance_multi(fx.placement, fx.censuses);
      const auto classic = recovery::build_multi_car_plan(
          fx.placement, fx.code, balanced.solutions, kChunk,
          fx.scenario.replacement);
      PlanTemplateCache cache;
      const auto cached = recovery::build_multi_car_plan_cached(
          fx.placement, fx.code, balanced.solutions, kChunk,
          fx.scenario.replacement, cache);
      expect_plan_equal(cached, classic);
      EXPECT_EQ(cache.stats().hits + cache.stats().misses,
                balanced.solutions.size());
    }
  }
}

TEST(PlanTemplateCache, RrCachedPlanMatchesClassic) {
  for (const int cfg_index : {0, 2}) {
    const auto fx = make_fixture(cfg_index, 21, /*stripes=*/40,
                                 /*failed_racks=*/1, 0);
    util::Rng rr_rng(77);
    const auto solutions =
        recovery::plan_multi_rr(fx.placement, fx.censuses, rr_rng);
    const auto classic = recovery::build_multi_rr_plan(
        fx.placement, fx.code, solutions, kChunk, fx.scenario.replacement);
    PlanTemplateCache cache;
    const auto cached = recovery::build_multi_rr_plan_cached(
        fx.placement, fx.code, solutions, kChunk, fx.scenario.replacement,
        cache);
    expect_plan_equal(cached, classic);
  }
}

TEST(PlanTemplateCache, OntoReplacementMatchesClassic) {
  // The rebuild control plane's shape: an explicit replacement that hosts
  // no failed chunk, so fetch positions never resolve to it for free.
  const auto cfg = cluster::paper_configs()[1];
  util::Rng rng(31);
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 30, rng);
  const auto& topology = placement.topology();
  std::vector<cluster::NodeId> failed;
  for (const auto node : topology.nodes_in_rack(1)) {
    failed.push_back(node);
    if (failed.size() >= cfg.m) break;
  }
  const cluster::NodeId replacement = topology.nodes_in_rack(0).front();
  const auto scenario =
      recovery::make_multi_failure_onto(placement, failed, replacement);
  const auto censuses = recovery::build_multi_censuses(placement, scenario);
  const auto balanced = recovery::balance_multi(placement, censuses);
  rs::Code code(cfg.k, cfg.m);
  const auto classic = recovery::build_multi_car_plan(
      placement, code, balanced.solutions, kChunk, replacement);
  PlanTemplateCache cache;
  const auto cached = recovery::build_multi_car_plan_cached(
      placement, code, balanced.solutions, kChunk, replacement, cache);
  expect_plan_equal(cached, classic);
}

// --- templated arena == classic lowering, including the reverse CSR ------

TEST(PlanTemplateCache, TemplatedCarArenaMatchesClassicLowering) {
  const auto fx =
      make_fixture(1, 41, /*stripes=*/50, /*failed_racks=*/1, 0);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  const auto classic_plan = recovery::build_multi_car_plan(
      fx.placement, fx.code, balanced.solutions, kChunk,
      fx.scenario.replacement);
  for (const std::uint64_t slice : {std::uint64_t{16 * 1024}, kChunk}) {
    const auto classic = PlanArena::build(classic_plan, slice);
    PlanTemplateCache cache;
    const auto templated = recovery::build_multi_car_arena(
        fx.placement, fx.code, balanced.solutions, kChunk, slice,
        fx.scenario.replacement, cache);
    expect_arena_equal(templated, classic);
  }
}

TEST(PlanTemplateCache, TemplatedRrArenaMatchesClassicLowering) {
  const auto fx =
      make_fixture(0, 43, /*stripes=*/50, /*failed_racks=*/1, 0);
  util::Rng rr_rng(5);
  const auto solutions =
      recovery::plan_multi_rr(fx.placement, fx.censuses, rr_rng);
  const auto classic_plan = recovery::build_multi_rr_plan(
      fx.placement, fx.code, solutions, kChunk, fx.scenario.replacement);
  const auto classic = PlanArena::build(classic_plan, 16 * 1024);
  PlanTemplateCache cache;
  const auto templated = recovery::build_multi_rr_arena(
      fx.placement, fx.code, solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);
  expect_arena_equal(templated, classic);
}

// --- signature space collapses, and stays collapsed on reuse -------------

TEST(PlanTemplateCache, SignatureSpaceCollapses) {
  const auto fx =
      make_fixture(1, 47, /*stripes=*/400, /*failed_racks=*/1, 0);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  ASSERT_GT(balanced.solutions.size(), 100u);
  PlanTemplateCache cache;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, kChunk,
      fx.scenario.replacement, cache);
  EXPECT_GT(arena.num_base_steps(), 0u);
  // Hundreds of stripes share a handful of structural signatures.
  EXPECT_LT(cache.stats().misses * 10, balanced.solutions.size());
  // A second batch over the same signatures runs entirely on hits.
  const auto misses_before = cache.stats().misses;
  const auto again = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, kChunk,
      fx.scenario.replacement, cache);
  EXPECT_EQ(cache.stats().misses, misses_before);
  expect_arena_equal(again, arena);
}

// --- decode coefficients memoise canonically ------------------------------

TEST(RepairMemo, CanonicalisesOnLostAndSurvivorSet) {
  const rs::Code code(4, 2);
  recovery::RepairMemo memo;
  const std::vector<std::size_t> survivors{1, 2, 3, 4};
  // Entries are addressed by chunk index (instantiation does
  // coeffs[lost][chunk]), so the span covers 0..max survivor index.
  const auto first = memo.coeffs(code, 0, survivors);
  ASSERT_EQ(first.size(), 5u);
  EXPECT_EQ(memo.size(), 1u);
  // Same key: same entry (no growth) and the exact same storage.
  const auto second = memo.coeffs(code, 0, survivors);
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_EQ(first.data(), second.data());
  // The memo must agree with the code's own repair vector, re-indexed by
  // chunk, with non-survivor positions zeroed.
  const auto direct = code.repair_vector(0, survivors);
  ASSERT_EQ(direct.size(), survivors.size());
  EXPECT_EQ(first[0], 0);  // chunk 0 is the lost one, not a survivor
  for (std::size_t pos = 0; pos < survivors.size(); ++pos) {
    EXPECT_EQ(first[survivors[pos]], direct[pos]) << "survivor " << pos;
  }
  // A different lost chunk or survivor set is a different entry.
  (void)memo.coeffs(code, 5, survivors);
  EXPECT_EQ(memo.size(), 2u);
  (void)memo.coeffs(code, 1, std::vector<std::size_t>{0, 2, 3, 4});
  EXPECT_EQ(memo.size(), 3u);
}

// --- sharded scans are bit-identical to serial ---------------------------

TEST(ShardedScan, MultiCensusesInvariantInShardCount) {
  const auto fx =
      make_fixture(2, 53, /*stripes=*/97, /*failed_racks=*/1, 0);
  const auto base =
      recovery::build_multi_censuses(fx.placement, fx.scenario, 1);
  for (const std::size_t shards : {2u, 8u, 200u}) {
    const auto sharded =
        recovery::build_multi_censuses(fx.placement, fx.scenario, shards);
    ASSERT_EQ(sharded.size(), base.size()) << "shards " << shards;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(sharded[i].stripe, base[i].stripe);
      EXPECT_EQ(sharded[i].lost_chunks, base[i].lost_chunks);
      EXPECT_EQ(sharded[i].replacement_rack, base[i].replacement_rack);
      EXPECT_EQ(sharded[i].k, base[i].k);
      EXPECT_EQ(sharded[i].surviving, base[i].surviving);
    }
  }
}

TEST(ShardedScan, ExposureCensusInvariantInShardCount) {
  const auto fx =
      make_fixture(1, 59, /*stripes=*/83, /*failed_racks=*/1, 0);
  recovery::RecoveredSet recovered;
  // Mark a few chunks recovered so plan/exposed sets diverge.
  for (const auto& census : fx.censuses) {
    if (census.stripe % 3 == 0 && !census.lost_chunks.empty()) {
      recovered.mark(census.stripe, census.lost_chunks.front());
    }
  }
  const auto base = recovery::build_exposure_census(
      fx.placement, fx.scenario.failed_nodes, fx.scenario.replacement,
      recovered, 1);
  for (const std::size_t shards : {2u, 8u}) {
    const auto sharded = recovery::build_exposure_census(
        fx.placement, fx.scenario.failed_nodes, fx.scenario.replacement,
        recovered, shards);
    ASSERT_EQ(sharded.size(), base.size()) << "shards " << shards;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(sharded[i].stripe, base[i].stripe);
      EXPECT_EQ(sharded[i].exposed_chunks, base[i].exposed_chunks);
      EXPECT_EQ(sharded[i].plan_chunks, base[i].plan_chunks);
      EXPECT_EQ(sharded[i].plan_hosts, base[i].plan_hosts);
      EXPECT_EQ(sharded[i].tolerance_left, base[i].tolerance_left);
      EXPECT_EQ(sharded[i].min_racks, base[i].min_racks);
    }
  }
}

// --- real bytes decode bit-exactly through a template-cached arena -------

TEST(PlanTemplateCache, RealBytesDecodeBitExactFromTemplatedArena) {
  const auto fx =
      make_fixture(0, 61, /*stripes=*/24, /*failed_racks=*/1, 0);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);
  ASSERT_GT(cache.stats().hits, 0u);

  emul::EmulConfig config;
  config.node_bps = 200e6;
  config.oversubscription = 4.0;
  config.page_bytes = 16 * 1024;
  config.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(fx.placement.topology(), config);
  std::vector<cluster::StripeId> all(fx.placement.num_stripes());
  std::iota(all.begin(), all.end(), cluster::StripeId{0});
  const auto originals =
      cluster.populate_sampled(fx.placement, fx.code, kChunk, 7, all);
  for (const auto node : fx.scenario.failed_nodes) cluster.erase_node(node);

  emul::ArenaExecOptions options;
  options.shards = 2;
  options.replay_shards = 2;
  const auto report = cluster.execute_arena(arena, options);
  EXPECT_GT(report.wall_s, 0.0);

  std::size_t verified = 0;
  for (const auto& out : arena.outputs()) {
    const auto it = originals.find(out.stripe);
    ASSERT_NE(it, originals.end());
    const auto* rec = cluster.find_chunk(fx.scenario.replacement, out.stripe,
                                         out.chunk_index);
    ASSERT_NE(rec, nullptr) << "stripe " << out.stripe;
    EXPECT_EQ(*rec, it->second[out.chunk_index])
        << "stripe " << out.stripe << " chunk " << out.chunk_index;
    ++verified;
  }
  EXPECT_EQ(verified, arena.outputs().size());
  EXPECT_GT(verified, 0u);
}

}  // namespace
}  // namespace car
