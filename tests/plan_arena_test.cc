// PlanArena differential tests: the columnar arena must be the *same
// function* as the SlicePlan lowering (bit-equal steps, info, outputs, and
// byte accounting), and execute_arena must be observationally identical to
// execute(slice_plan(...)) — same recovered bytes, same traffic totals,
// same per-link byte totals, and the same deterministic virtual timeline —
// for every shard count and under metadata-only payloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "recovery/multi.h"
#include "recovery/plan_arena.h"
#include "recovery/scheduler.h"
#include "recovery/slice.h"
#include "util/check.h"
#include "util/rng.h"

namespace car {
namespace {

using emul::ArenaExecOptions;
using emul::ClockMode;
using emul::Cluster;
using emul::EmulConfig;
using emul::ExecutionReport;
using recovery::PlanArena;

constexpr std::uint64_t kOddChunk = 96 * 1024 + 7;  // no slice size divides it

EmulConfig virtual_config() {
  EmulConfig cfg;
  cfg.node_bps = 200e6;
  cfg.oversubscription = 4.0;
  cfg.page_bytes = 16 * 1024;
  cfg.clock_mode = ClockMode::kVirtual;
  return cfg;
}

/// Seeded CAR plan on a paper config, plus everything needed to execute it.
struct Fixture {
  cluster::Placement placement;
  cluster::FailureScenario failure;
  recovery::RecoveryPlan plan;
  rs::Code code;
};

Fixture make_fixture(int cfg_index, std::uint64_t seed, std::uint64_t chunk,
                     std::size_t window = 0, std::size_t stripes = 6) {
  const auto cfg = cluster::paper_configs()[cfg_index];
  util::Rng rng(seed);
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  auto failure = cluster::inject_random_failure(placement, rng);
  const auto censuses = recovery::build_censuses(placement, failure);
  const auto balanced = recovery::balance_greedy(placement, censuses, {50});
  rs::Code code(cfg.k, cfg.m);
  auto plan = recovery::build_car_plan(placement, code, balanced.solutions,
                                       chunk, failure.failed_node);
  if (window > 0) plan = recovery::schedule_windowed(plan, window);
  return {std::move(placement), std::move(failure), std::move(plan),
          std::move(code)};
}

void expect_step_equal(const recovery::PlanStep& a,
                       const recovery::PlanStep& b, std::uint64_t id) {
  EXPECT_EQ(a.id, b.id) << "step " << id;
  EXPECT_EQ(a.kind, b.kind) << "step " << id;
  EXPECT_EQ(a.stripe, b.stripe) << "step " << id;
  EXPECT_EQ(a.deps, b.deps) << "step " << id;
  EXPECT_EQ(a.src, b.src) << "step " << id;
  EXPECT_EQ(a.dst, b.dst) << "step " << id;
  EXPECT_EQ(a.payload, b.payload) << "step " << id;
  EXPECT_EQ(a.cross_rack, b.cross_rack) << "step " << id;
  EXPECT_EQ(a.node, b.node) << "step " << id;
  EXPECT_EQ(a.bytes, b.bytes) << "step " << id;
  ASSERT_EQ(a.inputs.size(), b.inputs.size()) << "step " << id;
  for (std::size_t i = 0; i < a.inputs.size(); ++i) {
    EXPECT_EQ(a.inputs[i].buffer, b.inputs[i].buffer) << "step " << id;
    EXPECT_EQ(a.inputs[i].coeff, b.inputs[i].coeff) << "step " << id;
  }
}

// --- lowering differential: arena == slice_plan, field for field ---------

TEST(PlanArenaLowering, MatchesSlicePlanBitForBit) {
  for (const int cfg_index : {0, 1, 2}) {
    const auto fx = make_fixture(cfg_index, 101 + cfg_index, kOddChunk);
    for (const std::uint64_t slice :
         {std::uint64_t{1024}, std::uint64_t{64 * 1024}, kOddChunk,
          kOddChunk + 1}) {
      const auto expected = recovery::slice_plan(fx.plan, slice);
      const auto arena = PlanArena::build(fx.plan, slice);
      const auto actual = arena.to_slice_plan();

      EXPECT_EQ(actual.replacement, expected.replacement);
      EXPECT_EQ(actual.replacement_rack, expected.replacement_rack);
      EXPECT_EQ(actual.chunk_size, expected.chunk_size);
      EXPECT_EQ(actual.slice_size, expected.slice_size);
      EXPECT_EQ(actual.num_slices, expected.num_slices);
      EXPECT_EQ(actual.num_base_steps, expected.num_base_steps);
      ASSERT_EQ(actual.steps.size(), expected.steps.size());
      ASSERT_EQ(actual.info.size(), expected.info.size());
      for (std::uint64_t id = 0; id < expected.steps.size(); ++id) {
        expect_step_equal(actual.steps[id], expected.steps[id], id);
        EXPECT_EQ(actual.info[id], expected.info[id]) << "info " << id;
        // step()/slice_info() must agree with the bulk materialisation.
        expect_step_equal(arena.step(id), expected.steps[id], id);
        EXPECT_EQ(arena.slice_info(id), expected.info[id]);
      }
      ASSERT_EQ(actual.outputs.size(), expected.outputs.size());
      for (std::size_t i = 0; i < expected.outputs.size(); ++i) {
        EXPECT_EQ(actual.outputs[i].stripe, expected.outputs[i].stripe);
        EXPECT_EQ(actual.outputs[i].chunk_index,
                  expected.outputs[i].chunk_index);
        EXPECT_EQ(actual.outputs[i].step_id, expected.outputs[i].step_id);
      }
      // Accounting mirrors the base plan exactly (slicing never changes
      // byte totals).
      EXPECT_EQ(arena.cross_rack_bytes(), fx.plan.cross_rack_bytes());
      EXPECT_EQ(arena.intra_rack_bytes(), fx.plan.intra_rack_bytes());
      EXPECT_EQ(arena.compute_bytes(), fx.plan.compute_bytes());
      EXPECT_EQ(arena.per_rack_cross_bytes(fx.placement.topology()),
                fx.plan.per_rack_cross_bytes(fx.placement.topology()));
    }
  }
}

TEST(PlanArenaLowering, BuilderPlansAreStripeClosedWindowedOnesAreNot) {
  const auto plain = make_fixture(0, 11, 64 * 1024);
  EXPECT_TRUE(PlanArena::build(plain.plan, 16 * 1024).stripe_closed());

  const auto windowed = make_fixture(0, 11, 64 * 1024, /*window=*/1);
  EXPECT_FALSE(PlanArena::build(windowed.plan, 16 * 1024).stripe_closed());
}

TEST(PlanArenaLowering, RejectsBackwardDependencies) {
  auto fx = make_fixture(0, 13, 64 * 1024);
  // Point an early step at a later one: still a DAG the generic executor
  // could run, but it breaks the forward-dep contract the arena needs to
  // walk steps in id order.
  ASSERT_GE(fx.plan.steps.size(), 2u);
  fx.plan.steps.front().deps.push_back(fx.plan.steps.size() - 1);
  EXPECT_THROW(PlanArena::build(fx.plan, 16 * 1024), util::CheckError);
}

TEST(PlanArenaLowering, RejectsByteContractViolations) {
  auto fx = make_fixture(0, 13, 64 * 1024);
  for (auto& step : fx.plan.steps) {
    if (step.kind == recovery::StepKind::kTransfer) {
      step.bytes += 1;  // no longer chunk_size
      break;
    }
  }
  EXPECT_THROW(PlanArena::build(fx.plan, 16 * 1024), util::CheckError);
}

// --- execution differential: execute_arena == execute(slice_plan) --------

struct Observed {
  ExecutionReport report;
  std::vector<rs::Chunk> recovered;
  std::vector<std::uint64_t> per_link_bytes;
};

/// Execute the fixture's plan on a fresh cluster, through the classic
/// SlicePlan engine (options == nullptr) or through execute_arena.
Observed run_fixture(const Fixture& fx, std::uint64_t slice,
                     const ArenaExecOptions* options,
                     std::uint64_t data_seed = 99) {
  Cluster cluster(fx.placement.topology(), virtual_config());
  std::vector<cluster::StripeId> all(fx.placement.num_stripes());
  std::iota(all.begin(), all.end(), cluster::StripeId{0});
  // populate_sampled over every stripe so both engines (and every sampled
  // subset) read identical per-stripe seeded bytes.
  std::span<const cluster::StripeId> to_populate = all;
  if (options != nullptr && options->metadata_only) {
    to_populate = options->sampled_stripes;
  }
  const auto originals = cluster.populate_sampled(
      fx.placement, fx.code, fx.plan.chunk_size, data_seed, to_populate);
  cluster.erase_node(fx.failure.failed_node);

  Observed out;
  if (options == nullptr) {
    out.report = cluster.execute(recovery::slice_plan(fx.plan, slice));
  } else {
    out.report =
        cluster.execute_arena(PlanArena::build(fx.plan, slice), *options);
  }

  for (const auto& output : fx.plan.outputs) {
    const auto it = originals.find(output.stripe);
    if (it == originals.end()) continue;  // unsampled: measured, not stored
    const auto* rec = cluster.find_chunk(fx.failure.failed_node,
                                         output.stripe, output.chunk_index);
    EXPECT_NE(rec, nullptr) << "stripe " << output.stripe;
    EXPECT_EQ(*rec, it->second[output.chunk_index])
        << "stripe " << output.stripe << " chunk " << output.chunk_index;
    out.recovered.push_back(rec != nullptr ? *rec : rs::Chunk{});
  }
  const auto& topo = fx.placement.topology();
  for (cluster::NodeId n = 0; n < topo.num_nodes(); ++n) {
    out.per_link_bytes.push_back(cluster.node_up_link(n).bytes_transmitted());
    out.per_link_bytes.push_back(
        cluster.node_down_link(n).bytes_transmitted());
  }
  for (cluster::RackId r = 0; r < topo.num_racks(); ++r) {
    out.per_link_bytes.push_back(cluster.rack_up_link(r).bytes_transmitted());
    out.per_link_bytes.push_back(
        cluster.rack_down_link(r).bytes_transmitted());
  }
  return out;
}

void expect_same_timeline(const Observed& a, const Observed& b) {
  // Bit-equality, not tolerance: the arena's replay pass performs the same
  // reservations in the same order as the SlicePlan engine.
  EXPECT_EQ(a.report.wall_s, b.report.wall_s);
  EXPECT_EQ(a.report.compute_s, b.report.compute_s);
  EXPECT_EQ(a.report.replacement_compute_s, b.report.replacement_compute_s);
  EXPECT_EQ(a.report.cross_rack_bytes, b.report.cross_rack_bytes);
  EXPECT_EQ(a.report.intra_rack_bytes, b.report.intra_rack_bytes);
  EXPECT_EQ(a.report.per_rack_cross_bytes, b.report.per_rack_cross_bytes);
}

TEST(ExecuteArena, MatchesSlicePlanEngineBitForBit) {
  for (const int cfg_index : {0, 1, 2}) {
    const auto fx = make_fixture(cfg_index, 202 + cfg_index, kOddChunk);
    for (const std::uint64_t slice : {std::uint64_t{16 * 1024}, kOddChunk}) {
      const auto base = run_fixture(fx, slice, nullptr);
      ArenaExecOptions options;  // shards 1, real bytes
      const auto arena = run_fixture(fx, slice, &options);
      expect_same_timeline(arena, base);
      ASSERT_EQ(arena.recovered.size(), base.recovered.size());
      for (std::size_t i = 0; i < base.recovered.size(); ++i) {
        EXPECT_EQ(arena.recovered[i], base.recovered[i]) << "chunk " << i;
      }
      EXPECT_EQ(arena.per_link_bytes, base.per_link_bytes);
    }
  }
}

TEST(ExecuteArena, TimelineIsInvariantInShardCount) {
  const auto fx = make_fixture(1, 303, kOddChunk, /*window=*/0,
                               /*stripes=*/12);
  ArenaExecOptions one;
  const auto base = run_fixture(fx, 16 * 1024, &one);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    ArenaExecOptions options;
    options.shards = shards;
    const auto sharded = run_fixture(fx, 16 * 1024, &options);
    expect_same_timeline(sharded, base);
    EXPECT_EQ(sharded.per_link_bytes, base.per_link_bytes);
    ASSERT_EQ(sharded.recovered.size(), base.recovered.size());
    for (std::size_t i = 0; i < base.recovered.size(); ++i) {
      EXPECT_EQ(sharded.recovered[i], base.recovered[i]);
    }
  }
}

TEST(ExecuteArena, ReplayTimelineIsInvariantInReplayShardCount) {
  // Deterministic parallel Phase-2 replay: per-stripe-shard heaps drained
  // under the owner-advances safe-window protocol must commit every
  // reservation and floating-point accumulation in the exact global merge
  // order, so makespans, per-link totals, and recovered bytes are
  // bit-identical to the sequential replay for every shard count.
  const auto fx = make_fixture(1, 404, kOddChunk, /*window=*/0,
                               /*stripes=*/12);
  ArenaExecOptions one;
  const auto base = run_fixture(fx, 16 * 1024, &one);
  for (const std::size_t replay_shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ArenaExecOptions options;
    options.replay_shards = replay_shards;
    const auto sharded = run_fixture(fx, 16 * 1024, &options);
    expect_same_timeline(sharded, base);
    EXPECT_EQ(sharded.per_link_bytes, base.per_link_bytes);
    ASSERT_EQ(sharded.recovered.size(), base.recovered.size());
    for (std::size_t i = 0; i < base.recovered.size(); ++i) {
      EXPECT_EQ(sharded.recovered[i], base.recovered[i]);
    }
  }
  // Scan sharding and replay sharding compose without perturbing a bit.
  ArenaExecOptions both;
  both.shards = 4;
  both.replay_shards = 4;
  const auto composed = run_fixture(fx, 16 * 1024, &both);
  expect_same_timeline(composed, base);
  EXPECT_EQ(composed.per_link_bytes, base.per_link_bytes);
}

TEST(ExecuteArena, ParallelReplayRequiresStripeClosedPlans) {
  for (const std::uint64_t seed : {17, 18, 19, 20, 21}) {
    const auto fx = make_fixture(0, seed, 64 * 1024, /*window=*/1,
                                 /*stripes=*/12);
    const auto arena = PlanArena::build(fx.plan, 16 * 1024);
    if (arena.stripe_closed()) continue;
    Cluster cluster(fx.placement.topology(), virtual_config());
    util::Rng data_rng(18);
    cluster.populate(fx.placement, fx.code, fx.plan.chunk_size, data_rng);
    cluster.erase_node(fx.failure.failed_node);
    ArenaExecOptions options;
    options.replay_shards = 2;
    EXPECT_THROW(cluster.execute_arena(arena, options), util::CheckError);
    return;
  }
  FAIL() << "no seed produced a plan with cross-stripe deps";
}

TEST(ExecuteArena, ShardedExecutionRequiresStripeClosedPlans) {
  // A window of 1 serialises scheduling across stripes, so as soon as the
  // failure touches >= 2 stripes the plan carries cross-stripe deps.  Scan a
  // few seeds for such a fixture instead of pinning one seed's RNG stream.
  for (const std::uint64_t seed : {17, 18, 19, 20, 21}) {
    const auto fx = make_fixture(0, seed, 64 * 1024, /*window=*/1,
                                 /*stripes=*/12);
    const auto arena = PlanArena::build(fx.plan, 16 * 1024);
    if (arena.stripe_closed()) continue;
    Cluster cluster(fx.placement.topology(), virtual_config());
    util::Rng data_rng(18);
    cluster.populate(fx.placement, fx.code, fx.plan.chunk_size, data_rng);
    cluster.erase_node(fx.failure.failed_node);
    ArenaExecOptions options;
    options.shards = 2;
    EXPECT_THROW(cluster.execute_arena(arena, options), util::CheckError);
    return;
  }
  FAIL() << "no seed produced a plan with cross-stripe deps";
}

TEST(ExecuteArena, MetadataModeKeepsTheExactTimelineAndVerifiesSamples) {
  const auto fx = make_fixture(2, 404, kOddChunk, /*window=*/0,
                               /*stripes=*/10);
  ArenaExecOptions real;
  const auto base = run_fixture(fx, 16 * 1024, &real);

  // Sample two recovered stripes; everything else is metadata-only.
  std::vector<cluster::StripeId> sampled;
  for (const auto& out : fx.plan.outputs) {
    if (sampled.size() >= 2) break;
    if (std::find(sampled.begin(), sampled.end(), out.stripe) ==
        sampled.end()) {
      sampled.push_back(out.stripe);
    }
  }
  ASSERT_EQ(sampled.size(), 2u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    ArenaExecOptions options;
    options.shards = shards;
    options.metadata_only = true;
    options.sampled_stripes = sampled;
    const auto metadata = run_fixture(fx, 16 * 1024, &options);
    // Identical virtual timeline and byte accounting — payloads don't
    // change what is *measured* ...
    expect_same_timeline(metadata, base);
    // ... and the sampled stripes still carried real bytes, verified
    // bit-exactly inside run_fixture (recovered only holds sampled ones).
    EXPECT_EQ(metadata.recovered.size(), sampled.size());
  }
}

// --- 100k-stripe smoke: the scale path end to end -------------------------

TEST(ExecuteArena, HundredThousandStripeMetadataSmoke) {
  // Uniform 20x20 fabric, single-node failure (a full rack at this size
  // would touch nearly every stripe — the 1M-stripe full-rack point lives
  // in the bench sweep, not in unit tests).
  constexpr std::size_t kStripes = 100000;
  constexpr std::uint64_t kChunk = 64 * 1024;
  cluster::CfsConfig cfg;
  cfg.name = "uniform";
  cfg.nodes_per_rack.assign(20, 20);
  cfg.k = 4;
  cfg.m = 2;
  const rs::Code code(cfg.k, cfg.m);

  Cluster cluster(cfg.topology(), virtual_config());
  util::Rng place_rng(7);
  const auto placement = cluster::Placement::random(
      cfg.topology(), cfg.k, cfg.m, kStripes, place_rng);
  util::Rng fail_rng(8);
  const auto failed =
      cluster::inject_random_failure(placement, fail_rng).failed_node;
  const auto mf = recovery::make_multi_failure(placement, {failed});
  const auto censuses = recovery::build_multi_censuses(placement, mf);
  ASSERT_FALSE(censuses.empty());
  const auto balanced = recovery::balance_multi(placement, censuses, 0);
  const auto plan = recovery::build_multi_car_plan(
      placement, code, balanced.solutions, kChunk, mf.replacement);
  const auto arena = PlanArena::build(plan, kChunk);
  EXPECT_TRUE(arena.stripe_closed());

  std::vector<cluster::StripeId> sampled;
  for (const auto& out : plan.outputs) {
    if (sampled.size() >= 2) break;
    if (std::find(sampled.begin(), sampled.end(), out.stripe) ==
        sampled.end()) {
      sampled.push_back(out.stripe);
    }
  }
  const auto originals =
      cluster.populate_sampled(placement, code, kChunk, 9, sampled);
  cluster.erase_node(failed);

  ArenaExecOptions options;
  options.shards = 4;
  options.metadata_only = true;
  options.sampled_stripes = sampled;
  const auto report = cluster.execute_arena(arena, options);
  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_GT(report.cross_rack_bytes, 0u);

  std::size_t verified = 0;
  for (const auto& out : plan.outputs) {
    const auto it = originals.find(out.stripe);
    if (it == originals.end()) continue;
    const auto* rec =
        cluster.find_chunk(mf.replacement, out.stripe, out.chunk_index);
    verified += rec != nullptr && *rec == it->second[out.chunk_index];
  }
  std::size_t expected = 0;
  for (const auto& out : plan.outputs) {
    expected += originals.contains(out.stripe);
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(verified, expected);
}

}  // namespace
}  // namespace car
