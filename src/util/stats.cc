#include "util/stats.h"

#include <algorithm>

#include "util/check.h"

namespace car::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> sample, double q) {
  CAR_CHECK(!sample.empty(), "percentile: empty sample");
  CAR_CHECK(q >= 0.0 && q <= 1.0, "percentile: q not in [0,1]");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) {
  CAR_CHECK(!sample.empty(), "mean_of: empty sample");
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

}  // namespace car::util
