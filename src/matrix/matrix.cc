#include "matrix/matrix.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "gf/gf256.h"
#include "util/check.h"

namespace car::matrix {

using gf::Gf256;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols,
               std::vector<std::uint8_t> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  CAR_CHECK_EQ(data_.size(), rows_ * cols_,
               "Matrix: data size != rows*cols");
}

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<std::uint8_t>> rows) {
  const std::size_t r = rows.size();
  if (r == 0) return {};
  const std::size_t c = rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    CAR_CHECK_EQ(row.size(), c, "Matrix::from_rows: ragged rows");
    std::size_t j = 0;
    for (std::uint8_t v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

std::uint8_t Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

std::span<const std::uint8_t> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<std::uint8_t> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  CAR_CHECK_EQ(cols_, rhs.rows_, "Matrix::operator*: shape mismatch");
  const auto& f = Gf256::instance();
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t t = 0; t < cols_; ++t) {
      const std::uint8_t a = (*this)(i, t);
      if (a == 0) continue;
      const std::uint8_t* mul_row = f.mul_row(a);
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) ^= mul_row[rhs(t, j)];
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> Matrix::apply(
    std::span<const std::uint8_t> vec) const {
  CAR_CHECK_EQ(vec.size(), cols_, "Matrix::apply: vector size mismatch");
  const auto& f = Gf256::instance();
  std::vector<std::uint8_t> out(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j < cols_; ++j) {
      acc ^= f.mul((*this)(i, j), vec[j]);
    }
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  CAR_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
            "Matrix::operator+: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] ^ rhs.data_[i];
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= rows_) {
      throw std::out_of_range("Matrix::select_rows: index out of range");
    }
    const auto src = row(idx[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

namespace {

/// Gauss–Jordan elimination of [a | b] in place; returns false when `a` is
/// singular. On success `a` becomes the identity and `b` holds a^-1 * b0.
bool gauss_jordan(Matrix& a, Matrix& b) {
  const auto& f = Gf256::instance();
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot: any nonzero entry at or below the diagonal.
    std::size_t pivot = col;
    while (pivot < n && a(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      for (std::size_t j = 0; j < b.cols(); ++j) {
        std::swap(b(col, j), b(pivot, j));
      }
    }
    // Scale pivot row to 1.
    const std::uint8_t inv = f.inv(a(col, col));
    if (inv != 1) {
      for (std::size_t j = 0; j < n; ++j) a(col, j) = f.mul(a(col, j), inv);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        b(col, j) = f.mul(b(col, j), inv);
      }
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = a(r, col);
      if (factor == 0) continue;
      const std::uint8_t* mul_row = f.mul_row(factor);
      for (std::size_t j = 0; j < n; ++j) a(r, j) ^= mul_row[a(col, j)];
      for (std::size_t j = 0; j < b.cols(); ++j) b(r, j) ^= mul_row[b(col, j)];
    }
  }
  return true;
}

}  // namespace

Matrix Matrix::inverted() const {
  CAR_CHECK_EQ(rows_, cols_, "Matrix::inverted: matrix not square");
  Matrix a = *this;
  Matrix inv = identity(rows_);
  if (!gauss_jordan(a, inv)) {
    throw std::domain_error("Matrix::inverted: singular matrix");
  }
  return inv;
}

bool Matrix::invertible() const {
  if (rows_ != cols_) return false;
  Matrix a = *this;
  Matrix b(rows_, 0);
  return gauss_jordan(a, b);
}

std::size_t Matrix::rank() const {
  const auto& f = Gf256::instance();
  Matrix a = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && a(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t j = 0; j < cols_; ++j) std::swap(a(rank, j), a(pivot, j));
    }
    const std::uint8_t inv = f.inv(a(rank, col));
    for (std::size_t j = 0; j < cols_; ++j) a(rank, j) = f.mul(a(rank, j), inv);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const std::uint8_t factor = a(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < cols_; ++j) {
        a(r, j) ^= f.mul(factor, a(rank, j));
      }
    }
    ++rank;
  }
  return rank;
}

std::string Matrix::to_string() const {
  std::string out;
  char buf[8];
  for (std::size_t i = 0; i < rows_; ++i) {
    out += '[';
    for (std::size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof buf, "%02x", (*this)(i, j));
      out += buf;
      if (j + 1 < cols_) out += ' ';
    }
    out += "]\n";
  }
  return out;
}

}  // namespace car::matrix
