#include "cluster/topology.h"

#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace car::cluster {

Topology::Topology(std::vector<std::size_t> nodes_per_rack)
    : nodes_per_rack_(std::move(nodes_per_rack)) {
  CAR_CHECK(!nodes_per_rack_.empty(), "Topology: at least one rack required");
  rack_first_node_.reserve(nodes_per_rack_.size() + 1);
  rack_first_node_.push_back(0);
  for (std::size_t n : nodes_per_rack_) {
    CAR_CHECK(n > 0, "Topology: racks must be non-empty");
    total_nodes_ += n;
    rack_first_node_.push_back(total_nodes_);
  }
  rack_by_node_.reserve(total_nodes_);
  for (RackId rack = 0; rack < nodes_per_rack_.size(); ++rack) {
    rack_by_node_.insert(rack_by_node_.end(), nodes_per_rack_[rack], rack);
  }
}

std::size_t Topology::nodes_in_rack_count(RackId rack) const {
  if (rack >= num_racks()) {
    throw std::out_of_range("Topology::nodes_in_rack_count: bad rack id");
  }
  return nodes_per_rack_[rack];
}

RackId Topology::rack_of(NodeId node) const {
  if (node >= total_nodes_) {
    throw std::out_of_range("Topology::rack_of: bad node id");
  }
  return rack_by_node_[node];
}

std::pair<NodeId, NodeId> Topology::rack_range(RackId rack) const {
  if (rack >= num_racks()) {
    throw std::out_of_range("Topology::rack_range: bad rack id");
  }
  return {rack_first_node_[rack], rack_first_node_[rack + 1]};
}

std::vector<NodeId> Topology::nodes_in_rack(RackId rack) const {
  const auto [first, last] = rack_range(rack);
  std::vector<NodeId> out;
  out.reserve(last - first);
  for (NodeId n = first; n < last; ++n) out.push_back(n);
  return out;
}

std::string Topology::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < nodes_per_rack_.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(nodes_per_rack_[i]);
  }
  out += '}';
  return out;
}

}  // namespace car::cluster
