#!/usr/bin/env python3
"""Structural diff between two recovery-bench JSON baselines.

CI runs `micro_recovery --json` on the PR build and compares the result
against the committed BENCH_recovery.json with this tool.  Host timing is
noisy and machine-specific, so absolute times are deliberately ignored —
what must match is the *structure*:

  - the schema string (car-recovery-bench/1);
  - the fabric and workload constants (these define the experiment; a drift
    here silently changes what the baseline means);
  - the set of measured points, keyed by (config, core_scale), and each
    point's integer/config fields (k, m, racks);
  - the set of host_results benchmark names and their non-timing fields
    (op, chunk_bytes, slice_bytes).

Makespans on the virtual clock are deterministic per build, but they may
legitimately move when the planner or emulator changes; the only value
check is directional: every default-fabric (core_scale == 1) point must
keep speedup >= --min-speedup (default 1.3, the acceptance bar).

Usage:
  bench_schema_diff.py BASELINE CANDIDATE [--min-speedup 1.3]

Exits 0 when the candidate matches, 1 with a report on stderr otherwise.
"""

import argparse
import json
import sys

POINT_KEY = ("config", "core_scale")
POINT_FIELDS = ("k", "m", "racks")
RESULT_FIELDS = ("op", "chunk_bytes", "slice_bytes")


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def keyed(rows, key_fields):
    out = {}
    for row in rows:
        out[tuple(row[k] for k in key_fields)] = row
    return out


def diff(baseline, candidate, min_speedup):
    errors = []

    for field in ("schema", "fabric", "workload"):
        if baseline.get(field) != candidate.get(field):
            errors.append(
                f"{field} mismatch: baseline {baseline.get(field)!r} "
                f"vs candidate {candidate.get(field)!r}"
            )

    base_points = keyed(baseline.get("points", []), POINT_KEY)
    cand_points = keyed(candidate.get("points", []), POINT_KEY)
    for key in sorted(set(base_points) - set(cand_points)):
        errors.append(f"point missing from candidate: {key}")
    for key in sorted(set(cand_points) - set(base_points)):
        errors.append(f"unexpected new point in candidate: {key}")
    for key in sorted(set(base_points) & set(cand_points)):
        for field in POINT_FIELDS:
            if base_points[key].get(field) != cand_points[key].get(field):
                errors.append(
                    f"point {key} field {field!r}: baseline "
                    f"{base_points[key].get(field)!r} vs candidate "
                    f"{cand_points[key].get(field)!r}"
                )

    for key, point in sorted(cand_points.items()):
        if point.get("core_scale") == 1 and point.get("speedup", 0) < min_speedup:
            errors.append(
                f"point {key}: sliced speedup {point.get('speedup')} fell "
                f"below the {min_speedup}x acceptance bar"
            )

    base_runs = keyed(baseline.get("host_results", []), ("name",))
    cand_runs = keyed(candidate.get("host_results", []), ("name",))
    for key in sorted(set(base_runs) - set(cand_runs)):
        errors.append(f"host_result missing from candidate: {key[0]}")
    for key in sorted(set(base_runs) & set(cand_runs)):
        for field in RESULT_FIELDS:
            if base_runs[key].get(field) != cand_runs[key].get(field):
                errors.append(
                    f"host_result {key[0]} field {field!r}: baseline "
                    f"{base_runs[key].get(field)!r} vs candidate "
                    f"{cand_runs[key].get(field)!r}"
                )

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--min-speedup", type=float, default=1.3)
    args = parser.parse_args()

    errors = diff(load(args.baseline), load(args.candidate), args.min_speedup)
    if errors:
        print(f"bench_schema_diff: {len(errors)} mismatch(es):", file=sys.stderr)
        for err in errors:
            print(f"  - {err}", file=sys.stderr)
        return 1
    print("bench_schema_diff: candidate matches the baseline structure")
    return 0


if __name__ == "__main__":
    sys.exit(main())
