#include "emul/executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/check.h"

namespace car::emul {

Executor::Executor(std::size_t max_workers) : max_workers_(max_workers) {
  CAR_CHECK(max_workers > 0, "Executor: max_workers must be >= 1");
}

std::size_t Executor::planned_workers(std::size_t num_tasks) const {
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return std::min({max_workers_, hw, num_tasks});
}

void Executor::run(std::size_t num_tasks, std::vector<std::size_t> indegrees,
                   const std::vector<std::vector<std::size_t>>& dependents,
                   const std::function<void(std::size_t)>& fn,
                   const std::function<bool()>& should_abort) {
  if (num_tasks == 0) return;
  CAR_CHECK(indegrees.size() == num_tasks && dependents.size() == num_tasks,
            "Executor::run: adjacency size mismatch");

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::size_t> ready;
  std::size_t completed = 0;
  std::size_t active = 0;
  bool stop = false;
  bool cycle = false;
  bool aborted = false;
  std::exception_ptr error;

  for (std::size_t id = 0; id < num_tasks; ++id) {
    if (indegrees[id] == 0) ready.push_back(id);
  }
  CAR_CHECK(!ready.empty(), "Executor::run: dependency cycle (no roots)");

  auto worker = [&] {
    std::unique_lock lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stop || !ready.empty(); });
      if (stop) return;
      if (should_abort && should_abort()) {
        // Abandon queued work; in-flight tasks drain like the error path.
        aborted = true;
        stop = true;
        cv.notify_all();
        return;
      }
      const std::size_t id = ready.front();
      ready.pop_front();
      ++active;
      lock.unlock();

      std::exception_ptr task_error;
      try {
        fn(id);
      } catch (...) {
        task_error = std::current_exception();
      }

      lock.lock();
      --active;
      ++completed;
      if (task_error) {
        // First failure wins; abandon queued work and let in-flight drain.
        if (!error) error = task_error;
        stop = true;
      } else if (!stop) {
        for (const std::size_t dep : dependents[id]) {
          if (--indegrees[dep] == 0) ready.push_back(dep);
        }
        if (completed == num_tasks) {
          stop = true;
        } else if (ready.empty() && active == 0) {
          cycle = true;  // unfinished tasks but nothing can ever run them
          stop = true;
        }
      }
      cv.notify_all();
    }
  };

  const std::size_t n_workers = planned_workers(num_tasks);
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (error) std::rethrow_exception(error);
  CAR_CHECK(!cycle, "Executor::run: dependency cycle in DAG");
  CAR_CHECK_STATE(!aborted, "Executor::run: aborted by should_abort");
}

}  // namespace car::emul
