#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace car::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CAR_CHECK(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  CAR_CHECK_EQ(row.size(), header_.size(), "TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::add_row(std::initializer_list<std::string> row) {
  add_row(std::vector<std::string>(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace car::util
