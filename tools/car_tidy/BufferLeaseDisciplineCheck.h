// car-buffer-lease-discipline
//
// util::BufferLease is a scoped checkout of pooled bytes: its destructor
// returns the buffer, so a lease (or its address) escaping the owning scope
// is a use-after-recycle waiting to happen.  This check rejects:
//
//   * functions returning BufferLease& or BufferLease*
//   * data members of type BufferLease& or BufferLease*
//   * taking the address of a BufferLease (&lease)
//
// Moving a lease by value, calling .detach(), and passing a lease by
// reference *parameter* (the callee's frame cannot outlive the caller's)
// are all fine and not flagged.  BufferLease's own members (the move
// operations must return *this) are exempt.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::car {

class BufferLeaseDisciplineCheck : public ClangTidyCheck {
 public:
  BufferLeaseDisciplineCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::car
