#include "cluster/placement.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace car::cluster {

Placement::Placement(Topology topology, std::size_t k, std::size_t m)
    : topology_(std::move(topology)), k_(k), m_(m) {
  CAR_CHECK_GE(k_, std::size_t{1}, "Placement: k must be >= 1");
  CAR_CHECK_LE(k_ + m_, topology_.num_nodes(),
               "Placement: stripe width exceeds total node count");
}

NodeId Placement::node_of(StripeId stripe, std::size_t chunk_index) const {
  if (stripe >= stripes_.size()) {
    throw std::out_of_range("Placement::node_of: bad stripe id");
  }
  if (chunk_index >= chunks_per_stripe()) {
    throw std::out_of_range("Placement::node_of: bad chunk index");
  }
  return stripes_[stripe][chunk_index];
}

std::span<const NodeId> Placement::stripe(StripeId id) const {
  if (id >= stripes_.size()) {
    throw std::out_of_range("Placement::stripe: bad stripe id");
  }
  return stripes_[id];
}

void Placement::check_stripe(std::span<const NodeId> chunk_nodes) const {
  CAR_CHECK_EQ(chunk_nodes.size(), chunks_per_stripe(),
               "Placement: stripe must have k+m chunks");
  std::unordered_set<NodeId> seen;
  std::vector<std::size_t> per_rack(topology_.num_racks(), 0);
  for (NodeId node : chunk_nodes) {
    CAR_CHECK_LT(node, topology_.num_nodes(),
                 "Placement: node id out of range");
    CAR_CHECK(seen.insert(node).second,
              "Placement: chunks of a stripe must be on distinct nodes");
    const RackId rack = topology_.rack_of(node);
    CAR_CHECK_LE(++per_rack[rack], m_,
                 "Placement: rack quota violated (c_{i,j} must be <= m for "
                 "single-rack fault tolerance)");
  }
}

void Placement::add_stripe(std::vector<NodeId> chunk_nodes) {
  check_stripe(chunk_nodes);
  stripes_.push_back(std::move(chunk_nodes));
}

std::size_t Placement::chunks_in_rack(StripeId stripe, RackId rack) const {
  if (rack >= topology_.num_racks()) {
    throw std::out_of_range("Placement::chunks_in_rack: bad rack id");
  }
  std::size_t count = 0;
  for (NodeId node : this->stripe(stripe)) {
    if (topology_.rack_of(node) == rack) ++count;
  }
  return count;
}

std::vector<std::size_t> Placement::rack_census(StripeId stripe) const {
  std::vector<std::size_t> census(topology_.num_racks(), 0);
  for (NodeId node : this->stripe(stripe)) {
    ++census[topology_.rack_of(node)];
  }
  return census;
}

std::vector<std::size_t> Placement::chunk_indices_in_rack(StripeId stripe,
                                                          RackId rack) const {
  if (rack >= topology_.num_racks()) {
    throw std::out_of_range("Placement::chunk_indices_in_rack: bad rack id");
  }
  std::vector<std::size_t> out;
  const auto nodes = this->stripe(stripe);
  for (std::size_t c = 0; c < nodes.size(); ++c) {
    if (topology_.rack_of(nodes[c]) == rack) out.push_back(c);
  }
  return out;
}

std::vector<ChunkRef> Placement::chunks_on_node(NodeId node) const {
  if (node >= topology_.num_nodes()) {
    throw std::out_of_range("Placement::chunks_on_node: bad node id");
  }
  std::vector<ChunkRef> out;
  for (StripeId s = 0; s < stripes_.size(); ++s) {
    for (std::size_t c = 0; c < stripes_[s].size(); ++c) {
      if (stripes_[s][c] == node) out.push_back({s, c});
    }
  }
  return out;
}

std::vector<std::size_t> Placement::node_occupancy() const {
  std::vector<std::size_t> occ(topology_.num_nodes(), 0);
  for (const auto& stripe : stripes_) {
    for (NodeId node : stripe) ++occ[node];
  }
  return occ;
}

bool Placement::validate() const noexcept {
  try {
    for (const auto& stripe : stripes_) check_stripe(stripe);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<NodeId> Placement::choose_stripe_nodes(const Topology& topology,
                                                   std::size_t k,
                                                   std::size_t m,
                                                   util::Rng& rng) {
  // Feasibility under the per-rack quota: each rack contributes at most
  // min(|rack|, m) chunk slots to a stripe.
  std::size_t capacity = 0;
  for (RackId r = 0; r < topology.num_racks(); ++r) {
    capacity += std::min(topology.nodes_in_rack_count(r), m);
  }
  CAR_CHECK_GE(capacity, k + m,
               "Placement: topology cannot host a stripe under the "
               "single-rack fault-tolerance quota");

  // Rejection-free greedy: scan a uniform random permutation of the nodes
  // in order, taking each node while its rack still has quota.  The
  // permutation is materialised lazily with a forward partial Fisher–Yates
  // so only the scanned prefix is ever drawn — at fleet scale (10k nodes,
  // 1M stripes) a full per-stripe shuffle is ~1000x more RNG work than the
  // k+m-node prefix actually consumed.  `pool` carries the permutation
  // state; any starting order yields the same uniform distribution.
  std::vector<NodeId> pool(topology.num_nodes());
  std::iota(pool.begin(), pool.end(), NodeId{0});
  std::vector<std::size_t> per_rack(topology.num_racks(), 0);
  std::vector<NodeId> chosen;
  choose_stripe_nodes_into(topology, k, m, rng, pool, per_rack, chosen);
  return chosen;
}

void Placement::choose_stripe_nodes_into(const Topology& topology,
                                         std::size_t k, std::size_t m,
                                         util::Rng& rng,
                                         std::vector<NodeId>& pool,
                                         std::vector<std::size_t>& per_rack,
                                         std::vector<NodeId>& chosen) {
  const std::size_t n = pool.size();
  chosen.clear();
  chosen.reserve(k + m);
  for (std::size_t i = 0; i < n && chosen.size() < k + m; ++i) {
    const auto j = i + static_cast<std::size_t>(rng.next_below(n - i));
    std::swap(pool[i], pool[j]);
    const NodeId node = pool[i];
    const RackId rack = topology.rack_of(node);
    if (per_rack[rack] >= m) continue;
    ++per_rack[rack];
    chosen.push_back(node);
  }
  // Reset only the touched quota counters for the next stripe.
  for (const NodeId node : chosen) per_rack[topology.rack_of(node)] = 0;
}

Placement Placement::random(Topology topology, std::size_t k, std::size_t m,
                            std::size_t num_stripes, util::Rng& rng) {
  Placement p(std::move(topology), k, m);
  const auto& topo = p.topology();

  // Same feasibility check choose_stripe_nodes performs, hoisted out of the
  // per-stripe loop.
  std::size_t capacity = 0;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    capacity += std::min(topo.nodes_in_rack_count(r), m);
  }
  CAR_CHECK_GE(capacity, k + m,
               "Placement: topology cannot host a stripe under the "
               "single-rack fault-tolerance quota");

  std::vector<NodeId> pool(topo.num_nodes());
  std::iota(pool.begin(), pool.end(), NodeId{0});
  std::vector<std::size_t> per_rack(topo.num_racks(), 0);
  std::vector<NodeId> chosen;
  p.stripes_.reserve(num_stripes);
  for (StripeId s = 0; s < num_stripes; ++s) {
    choose_stripe_nodes_into(topo, k, m, rng, pool, per_rack, chosen);
    // The generator guarantees distinct nodes and the rack quota by
    // construction, so skip the per-stripe invariant re-check that
    // dominates fleet-scale placement builds.
    p.stripes_.push_back(chosen);
  }
  return p;
}

void Placement::move_chunks(NodeId from, NodeId to) {
  CAR_CHECK(from < topology_.num_nodes() && to < topology_.num_nodes(),
            "Placement::move_chunks: node out of range");
  if (from == to) return;
  // Validate against a copy first so a failed move leaves the placement
  // untouched.
  std::vector<std::vector<NodeId>> updated = stripes_;
  for (auto& stripe : updated) {
    bool moved = false;
    for (NodeId& node : stripe) {
      if (node == from) {
        node = to;
        moved = true;
      }
    }
    if (moved) check_stripe(stripe);
  }
  stripes_ = std::move(updated);
}

Placement Placement::round_robin(Topology topology, std::size_t k,
                                 std::size_t m, std::size_t num_stripes) {
  Placement p(std::move(topology), k, m);
  const auto& topo = p.topology();
  const std::size_t n_nodes = topo.num_nodes();

  for (StripeId s = 0; s < num_stripes; ++s) {
    std::vector<NodeId> chosen;
    chosen.reserve(k + m);
    std::vector<std::size_t> per_rack(topo.num_racks(), 0);
    std::vector<bool> used(n_nodes, false);
    NodeId cursor = s % n_nodes;
    // Walk the ring starting at the stripe offset, skipping quota violations.
    for (std::size_t step = 0; step < n_nodes && chosen.size() < k + m;
         ++step) {
      const NodeId node = (cursor + step) % n_nodes;
      if (used[node]) continue;
      const RackId rack = topo.rack_of(node);
      if (per_rack[rack] >= m) continue;
      used[node] = true;
      ++per_rack[rack];
      chosen.push_back(node);
    }
    CAR_CHECK_EQ(chosen.size(), k + m,
                 "Placement::round_robin: topology cannot host a stripe under "
                 "the single-rack fault-tolerance quota");
    p.add_stripe(std::move(chosen));
  }
  return p;
}

void Placement::set_host(StripeId stripe, std::size_t chunk_index,
                         NodeId node) {
  if (stripe >= stripes_.size()) {
    throw std::out_of_range("Placement::set_host: bad stripe id");
  }
  if (chunk_index >= chunks_per_stripe()) {
    throw std::out_of_range("Placement::set_host: bad chunk index");
  }
  std::vector<NodeId> updated = stripes_[stripe];
  updated[chunk_index] = node;
  check_stripe(updated);
  stripes_[stripe] = std::move(updated);
}

bool Placement::can_host(StripeId stripe, std::size_t chunk_index,
                         NodeId node) const {
  if (stripe >= stripes_.size() || chunk_index >= chunks_per_stripe() ||
      node >= topology_.num_nodes()) {
    return false;
  }
  std::vector<NodeId> updated = stripes_[stripe];
  updated[chunk_index] = node;
  try {
    check_stripe(updated);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

Placement Placement::spread(Topology topology, std::size_t k, std::size_t m,
                            std::size_t num_stripes, util::Rng& rng) {
  Placement p(std::move(topology), k, m);
  const auto& topo = p.topology();
  const std::size_t r = topo.num_racks();
  const std::size_t width = k + m;

  // Per-rack capacity: node count and the fault-tolerance quota both bind.
  std::vector<std::size_t> capacity(r);
  std::size_t total_capacity = 0;
  for (RackId rack = 0; rack < r; ++rack) {
    capacity[rack] = std::min(topo.nodes_in_rack_count(rack), m);
    total_capacity += capacity[rack];
  }
  CAR_CHECK_GE(total_capacity, width,
               "Placement::spread: topology cannot host a stripe under the "
               "single-rack fault-tolerance quota");

  for (StripeId s = 0; s < num_stripes; ++s) {
    // Water-filling: each chunk goes to the least-loaded rack with spare
    // capacity, which minimises the maximum chunks-per-rack of the stripe.
    // Tie order is shuffled per stripe so load spreads across runs.
    std::vector<RackId> order(r);
    std::iota(order.begin(), order.end(), RackId{0});
    rng.shuffle(order);

    std::vector<std::size_t> count(r, 0);
    std::vector<std::vector<NodeId>> pool(r);
    for (RackId rack = 0; rack < r; ++rack) {
      pool[rack] = topo.nodes_in_rack(rack);
      rng.shuffle(pool[rack]);
    }

    std::vector<NodeId> chosen;
    chosen.reserve(width);
    for (std::size_t c = 0; c < width; ++c) {
      RackId best = r;
      for (RackId rack : order) {
        if (count[rack] >= capacity[rack]) continue;
        if (best == r || count[rack] < count[best]) best = rack;
      }
      chosen.push_back(pool[best].back());
      pool[best].pop_back();
      ++count[best];
    }
    p.add_stripe(std::move(chosen));
  }
  return p;
}

Placement Placement::compact(Topology topology, std::size_t k, std::size_t m,
                             std::size_t num_stripes, util::Rng& rng) {
  Placement p(std::move(topology), k, m);
  const auto& topo = p.topology();
  const std::size_t r = topo.num_racks();
  const std::size_t width = k + m;

  for (StripeId s = 0; s < num_stripes; ++s) {
    std::vector<NodeId> chosen;
    chosen.reserve(width);
    // Fill racks up to the quota (m chunks or the rack's node count,
    // whichever is smaller) in rotating order.
    for (std::size_t step = 0; step < r && chosen.size() < width; ++step) {
      const RackId rack = (s + step) % r;
      auto nodes = topo.nodes_in_rack(rack);
      rng.shuffle(nodes);
      const std::size_t take =
          std::min({m, nodes.size(), width - chosen.size()});
      chosen.insert(chosen.end(), nodes.begin(),
                    nodes.begin() + static_cast<std::ptrdiff_t>(take));
    }
    CAR_CHECK_EQ(chosen.size(), width,
                 "Placement::compact: topology cannot host a stripe under the "
                 "single-rack fault-tolerance quota");
    p.add_stripe(std::move(chosen));
  }
  return p;
}

}  // namespace car::cluster
