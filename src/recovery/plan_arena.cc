#include "recovery/plan_arena.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "recovery/slice.h"
#include "util/check.h"

namespace car::recovery {

namespace {

std::uint32_t narrow_node(cluster::NodeId node, const char* what) {
  if (static_cast<std::uint64_t>(node) >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::out_of_range(std::string("PlanArena: ") + what +
                            " id does not fit the 32-bit endpoint column");
  }
  return static_cast<std::uint32_t>(node);
}

}  // namespace

std::pair<std::uint64_t, std::uint32_t> PlanArena::pack_ref(
    const BufferRef& ref) {
  if (ref.kind == BufferRef::Kind::kStepOutput) {
    return {static_cast<std::uint64_t>(ref.step_id), kStepRefBit};
  }
  if (static_cast<std::uint64_t>(ref.chunk_index) >= kStepRefBit) {
    throw std::out_of_range(
        "PlanArena: chunk index does not fit the 31-bit ref column");
  }
  return {static_cast<std::uint64_t>(ref.stripe),
          static_cast<std::uint32_t>(ref.chunk_index)};
}

PlanArena PlanArena::build(const RecoveryPlan& plan,
                           std::uint64_t slice_size) {
  CAR_CHECK(slice_size > 0, "PlanArena: slice_size must be > 0");

  PlanArena arena;
  arena.replacement_ = plan.replacement;
  arena.replacement_rack_ = plan.replacement_rack;
  arena.chunk_size_ = plan.chunk_size;
  arena.outputs_ = plan.outputs;

  const std::size_t n = plan.steps.size();
  if (n == 0) {
    arena.slice_size_ = std::min(slice_size, plan.chunk_size);
    arena.num_slices_ = 1;
    arena.dep_off_.assign(1, 0);
    arena.rdep_off_.assign(1, 0);
    arena.in_off_.assign(1, 0);
    return arena;
  }

  CAR_CHECK(plan.chunk_size > 0,
            "PlanArena: non-empty plan with chunk_size == 0");
  arena.slice_size_ = std::min(slice_size, plan.chunk_size);
  arena.num_slices_ =
      (plan.chunk_size + arena.slice_size_ - 1) / arena.slice_size_;

  arena.flags_.reserve(n);
  arena.stripe_.reserve(n);
  arena.endpoint_a_.reserve(n);
  arena.endpoint_b_.reserve(n);
  arena.payload_a_.reserve(n);
  arena.payload_b_.reserve(n);
  arena.dep_off_.reserve(n + 1);
  arena.in_off_.reserve(n + 1);
  arena.dep_off_.push_back(0);
  arena.in_off_.push_back(0);

  for (std::size_t index = 0; index < n; ++index) {
    const PlanStep& step = plan.steps[index];
    CAR_CHECK(step.id == index, "PlanArena: step ids must be dense");
    // Same byte contract slice_plan() enforces — a violation would skew
    // every computed slice length downstream.
    if (step.kind == StepKind::kTransfer) {
      CAR_CHECK(step.bytes == plan.chunk_size,
                "PlanArena: transfer step bytes != chunk_size");
    } else {
      CAR_CHECK(step.bytes == plan.chunk_size * step.inputs.size(),
                "PlanArena: compute step bytes != chunk_size * |inputs|");
    }

    std::uint8_t flags = 0;
    if (step.kind == StepKind::kCompute) flags |= kComputeFlag;
    if (step.cross_rack) flags |= kCrossRackFlag;
    arena.flags_.push_back(flags);
    arena.stripe_.push_back(static_cast<std::uint64_t>(step.stripe));
    if (step.kind == StepKind::kTransfer) {
      arena.endpoint_a_.push_back(narrow_node(step.src, "transfer src"));
      arena.endpoint_b_.push_back(narrow_node(step.dst, "transfer dst"));
      const auto [pa, pb] = pack_ref(step.payload);
      arena.payload_a_.push_back(pa);
      arena.payload_b_.push_back(pb);
    } else {
      arena.endpoint_a_.push_back(narrow_node(step.node, "compute node"));
      arena.endpoint_b_.push_back(0);
      arena.payload_a_.push_back(0);
      arena.payload_b_.push_back(0);
    }

    for (const std::size_t dep : step.deps) {
      // Forward edges are what let executors drain the arena in id order
      // with no heap; every builder (and schedule_windowed) emits them.
      CAR_CHECK(dep < index, "PlanArena: dependency ids must be forward "
                             "(dep < step)");
      arena.dep_entries_.push_back(static_cast<std::uint64_t>(dep));
      if (plan.steps[dep].stripe != step.stripe) {
        arena.stripe_closed_ = false;
      }
    }
    arena.dep_off_.push_back(
        static_cast<std::uint64_t>(arena.dep_entries_.size()));

    for (const ComputeInput& in : step.inputs) {
      const auto [ra, rb] = pack_ref(in.buffer);
      arena.in_ref_a_.push_back(ra);
      arena.in_ref_b_.push_back(rb);
      arena.in_coeff_.push_back(in.coeff);
    }
    arena.in_off_.push_back(static_cast<std::uint64_t>(arena.in_ref_a_.size()));
  }

  arena.build_reverse_deps();

  // The id grid must be representable: the overflow check in sliced_id
  // would otherwise fire mid-execution instead of at build time.
  (void)arena.sliced_id(arena.num_base_steps() - 1, arena.num_slices_ - 1);
  return arena;
}

void PlanArena::build_reverse_deps() {
  // Reverse CSR (dependents) via counting sort over the forward edges.
  const std::size_t n = flags_.size();
  rdep_off_.assign(n + 1, 0);
  for (const std::uint64_t dep : dep_entries_) {
    ++rdep_off_[dep + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    rdep_off_[i + 1] += rdep_off_[i];
  }
  rdep_entries_.resize(dep_entries_.size());
  std::vector<std::uint64_t> cursor(rdep_off_.begin(), rdep_off_.end() - 1);
  for (std::size_t step = 0; step < n; ++step) {
    for (std::uint64_t at = dep_off_[step]; at < dep_off_[step + 1]; ++at) {
      const std::uint64_t dep = dep_entries_[at];
      rdep_entries_[cursor[dep]++] = static_cast<std::uint64_t>(step);
    }
  }
}

PlanArena PlanArena::create(cluster::NodeId replacement,
                            cluster::RackId replacement_rack,
                            std::uint64_t chunk_size,
                            std::uint64_t slice_size) {
  CAR_CHECK(chunk_size > 0, "PlanArena: chunk_size must be > 0");
  CAR_CHECK(slice_size > 0, "PlanArena: slice_size must be > 0");
  PlanArena arena;
  arena.replacement_ = replacement;
  arena.replacement_rack_ = replacement_rack;
  arena.chunk_size_ = chunk_size;
  arena.slice_size_ = std::min(slice_size, chunk_size);
  arena.num_slices_ = (chunk_size + arena.slice_size_ - 1) / arena.slice_size_;
  arena.dep_off_.push_back(0);
  arena.rdep_off_.push_back(0);
  arena.in_off_.push_back(0);
  return arena;
}

void PlanArena::reserve(std::uint64_t steps, std::uint64_t deps,
                        std::uint64_t inputs, std::uint64_t outputs) {
  CAR_CHECK(cur_steps_ == 0 && flags_.empty(),
            "PlanArena::reserve must run before the first append");
  flags_.resize(steps);
  stripe_.resize(steps);
  endpoint_a_.resize(steps);
  endpoint_b_.resize(steps);
  payload_a_.resize(steps);
  payload_b_.resize(steps);
  dep_off_.resize(steps + 1);
  dep_entries_.resize(deps);
  rdep_off_.resize(steps + 1);
  rdep_entries_.resize(deps);
  in_off_.resize(steps + 1);
  in_ref_a_.resize(inputs);
  in_ref_b_.resize(inputs);
  in_coeff_.resize(inputs);
  outputs_.resize(outputs);
  sized_ = true;
}

void PlanArena::finalize() {
  // An exact reserve() that overcounted would leave trailing
  // value-initialised steps; undercounts are caught per append.
  CAR_CHECK(cur_steps_ == flags_.size() && cur_deps_ == dep_entries_.size() &&
                cur_inputs_ == in_ref_a_.size() &&
                cur_outputs_ == outputs_.size(),
            "PlanArena::finalize: reserve() totals do not match the "
            "appended extents");
  // No counting sort here: append_instantiated() already materialised the
  // reverse CSR from each template's local one (deps are stripe-local, so
  // the global reverse CSR is the per-stripe concatenation).
  if (num_base_steps() > 0) {
    (void)sliced_id(num_base_steps() - 1, num_slices_ - 1);
  }
}

std::uint64_t PlanArena::sliced_id(std::uint64_t base,
                                   std::uint64_t slice) const {
  return recovery::sliced_id(base, num_slices_, slice);
}

std::uint64_t PlanArena::cross_rack_bytes() const noexcept {
  // Each transfer's slices sum to exactly chunk_size, so the totals are
  // per-base-step arithmetic — no walk over the slice dimension.
  std::uint64_t total = 0;
  for (std::uint64_t base = 0; base < num_base_steps(); ++base) {
    if (kind(base) == StepKind::kTransfer && cross_rack(base) &&
        src(base) != dst(base)) {
      total += chunk_size_;
    }
  }
  return total;
}

std::uint64_t PlanArena::intra_rack_bytes() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t base = 0; base < num_base_steps(); ++base) {
    if (kind(base) == StepKind::kTransfer && !cross_rack(base) &&
        src(base) != dst(base)) {
      total += chunk_size_;
    }
  }
  return total;
}

std::uint64_t PlanArena::compute_bytes() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t base = 0; base < num_base_steps(); ++base) {
    if (kind(base) == StepKind::kCompute) {
      total += chunk_size_ * static_cast<std::uint64_t>(num_inputs(base));
    }
  }
  return total;
}

std::vector<std::uint64_t> PlanArena::per_rack_cross_bytes(
    const cluster::Topology& topology) const {
  std::vector<std::uint64_t> out(topology.num_racks(), 0);
  for (std::uint64_t base = 0; base < num_base_steps(); ++base) {
    if (kind(base) == StepKind::kTransfer && cross_rack(base) &&
        src(base) != dst(base)) {
      out[topology.rack_of(src(base))] += chunk_size_;
    }
  }
  return out;
}

PlanStep PlanArena::step(std::uint64_t sliced) const {
  const std::uint64_t base = sliced / num_slices_;
  const std::uint64_t slice = sliced % num_slices_;
  PlanStep out;
  out.id = static_cast<std::size_t>(sliced);
  out.kind = kind(base);
  out.stripe = stripe(base);
  out.deps.reserve(deps(base).size());
  for (const std::uint64_t dep : deps(base)) {
    out.deps.push_back(static_cast<std::size_t>(sliced_id(dep, slice)));
  }
  out.cross_rack = cross_rack(base);
  if (out.kind == StepKind::kTransfer) {
    out.src = src(base);
    out.dst = dst(base);
    out.payload = payload(base);
  } else {
    out.node = node(base);
    out.inputs.reserve(num_inputs(base));
    for (std::size_t i = 0; i < num_inputs(base); ++i) {
      out.inputs.push_back(input(base, i));
    }
  }
  out.bytes = step_bytes(base, slice);
  return out;
}

SliceInfo PlanArena::slice_info(std::uint64_t sliced) const {
  const std::uint64_t base = sliced / num_slices_;
  const std::uint64_t slice = sliced % num_slices_;
  return SliceInfo{static_cast<std::size_t>(base),
                   static_cast<std::size_t>(slice), slice_offset(slice),
                   slice_length(slice)};
}

SlicePlan PlanArena::to_slice_plan() const {
  SlicePlan out;
  out.replacement = replacement_;
  out.replacement_rack = replacement_rack_;
  out.chunk_size = chunk_size_;
  out.slice_size = slice_size_;
  out.num_slices = static_cast<std::size_t>(num_slices_);
  out.num_base_steps = static_cast<std::size_t>(num_base_steps());
  out.outputs.assign(outputs_.begin(), outputs_.end());
  const std::uint64_t total = num_sliced_steps();
  out.steps.reserve(total);
  out.info.reserve(total);
  for (std::uint64_t id = 0; id < total; ++id) {
    out.steps.push_back(step(id));
    out.info.push_back(slice_info(id));
  }
  return out;
}

}  // namespace car::recovery
