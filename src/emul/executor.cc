#include "emul/executor.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <stdexcept>
#include <thread>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace car::emul {

Executor::Executor(std::size_t max_workers) : max_workers_(max_workers) {
  CAR_CHECK(max_workers > 0, "Executor: max_workers must be >= 1");
}

std::size_t Executor::planned_workers(std::size_t num_tasks) const {
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return std::min({max_workers_, hw, num_tasks});
}

namespace {

/// Shared scheduling state for one run().  Everything the workers touch is
/// behind `mu`; the annotations make the worker loop's lock discipline
/// (hold to schedule, release around the task body) compiler-checked.
struct RunState {
  util::Mutex mu;
  util::CondVar cv;
  std::deque<std::size_t> ready CAR_GUARDED_BY(mu);
  std::vector<std::size_t> indegrees CAR_GUARDED_BY(mu);
  std::size_t completed CAR_GUARDED_BY(mu) = 0;
  std::size_t active CAR_GUARDED_BY(mu) = 0;
  bool stop CAR_GUARDED_BY(mu) = false;
  bool cycle CAR_GUARDED_BY(mu) = false;
  bool aborted CAR_GUARDED_BY(mu) = false;
  std::exception_ptr error CAR_GUARDED_BY(mu);
};

}  // namespace

void Executor::run(std::size_t num_tasks, std::vector<std::size_t> indegrees,
                   const std::vector<std::vector<std::size_t>>& dependents,
                   const std::function<void(std::size_t)>& fn,
                   const std::function<bool()>& should_abort) {
  if (num_tasks == 0) return;
  CAR_CHECK(indegrees.size() == num_tasks && dependents.size() == num_tasks,
            "Executor::run: adjacency size mismatch");

  RunState st;
  {
    util::MutexLock lock(st.mu);
    st.indegrees = std::move(indegrees);
    for (std::size_t id = 0; id < num_tasks; ++id) {
      if (st.indegrees[id] == 0) st.ready.push_back(id);
    }
    CAR_CHECK(!st.ready.empty(), "Executor::run: dependency cycle (no roots)");
  }

  auto worker = [&st, &dependents, &fn, &should_abort, num_tasks] {
    util::MutexLock lock(st.mu);
    for (;;) {
      while (!st.stop && st.ready.empty()) st.cv.wait(st.mu);
      if (st.stop) return;
      if (should_abort && should_abort()) {
        // Abandon queued work; in-flight tasks drain like the error path.
        st.aborted = true;
        st.stop = true;
        st.cv.notify_all();
        return;
      }
      const std::size_t id = st.ready.front();
      st.ready.pop_front();
      ++st.active;
      lock.unlock();

      std::exception_ptr task_error;
      try {
        fn(id);
      } catch (...) {
        task_error = std::current_exception();
      }

      lock.lock();
      --st.active;
      ++st.completed;
      if (task_error) {
        // First failure wins; abandon queued work and let in-flight drain.
        if (!st.error) st.error = task_error;
        st.stop = true;
      } else if (!st.stop) {
        for (const std::size_t dep : dependents[id]) {
          if (--st.indegrees[dep] == 0) st.ready.push_back(dep);
        }
        if (st.completed == num_tasks) {
          st.stop = true;
        } else if (st.ready.empty() && st.active == 0) {
          st.cycle = true;  // unfinished tasks but nothing can ever run them
          st.stop = true;
        }
      }
      st.cv.notify_all();
    }
  };

  const std::size_t n_workers = planned_workers(num_tasks);
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  // The pool has drained, but the analysis (rightly) still wants the lock.
  util::MutexLock lock(st.mu);
  if (st.error) std::rethrow_exception(st.error);
  CAR_CHECK(!st.cycle, "Executor::run: dependency cycle in DAG");
  CAR_CHECK_STATE(!st.aborted, "Executor::run: aborted by should_abort");
}

}  // namespace car::emul
