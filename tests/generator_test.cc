#include "matrix/generator.h"

#include <gtest/gtest.h>

#include <tuple>

namespace car::matrix {
namespace {

using Params = std::tuple<std::size_t, std::size_t>;  // (k, m)

class GeneratorProperties : public ::testing::TestWithParam<Params> {};

TEST_P(GeneratorProperties, VandermondeIsSystematicAndMds) {
  const auto [k, m] = GetParam();
  const auto g = systematic_vandermonde(k, m);
  ASSERT_EQ(g.rows(), k + m);
  ASSERT_EQ(g.cols(), k);
  EXPECT_TRUE(verify_systematic(g, k));
  EXPECT_TRUE(verify_mds(g, k));
}

TEST_P(GeneratorProperties, CauchyIsSystematicAndMds) {
  const auto [k, m] = GetParam();
  const auto g = systematic_cauchy(k, m);
  ASSERT_EQ(g.rows(), k + m);
  ASSERT_EQ(g.cols(), k);
  EXPECT_TRUE(verify_systematic(g, k));
  EXPECT_TRUE(verify_mds(g, k));
}

// Small parameters keep the exhaustive MDS check (C(k+m, k) inversions)
// cheap; the list includes the shapes of the paper's CFS1 (4,3), RAID-6-like
// (4,2), and wide-parity corners.
INSTANTIATE_TEST_SUITE_P(
    SmallCodes, GeneratorProperties,
    ::testing::Values(Params{1, 1}, Params{1, 4}, Params{2, 2}, Params{3, 2},
                      Params{4, 2}, Params{4, 3}, Params{5, 3}, Params{6, 3},
                      Params{2, 6}, Params{8, 2}));

TEST(Generator, PaperScaleCodesAreSystematic) {
  // Full MDS verification for (10,4) would need C(14,10)=1001 inversions —
  // still fine, so do it once.
  const auto g = systematic_vandermonde(10, 4);
  EXPECT_TRUE(verify_systematic(g, 10));
  EXPECT_TRUE(verify_mds(g, 10));
}

TEST(Generator, ZeroParityDegeneratesToIdentity) {
  const auto g = systematic_vandermonde(4, 0);
  EXPECT_EQ(g, Matrix::identity(4));
  const auto c = systematic_cauchy(4, 0);
  EXPECT_EQ(c, Matrix::identity(4));
}

TEST(Generator, InvalidParametersThrow) {
  EXPECT_THROW(systematic_vandermonde(0, 2), std::invalid_argument);
  EXPECT_THROW(systematic_cauchy(0, 2), std::invalid_argument);
  EXPECT_THROW(systematic_vandermonde(200, 100), std::invalid_argument);
  EXPECT_THROW(systematic_cauchy(255, 2), std::invalid_argument);
}

TEST(Generator, BoundaryFieldSizeWorks) {
  // k + m == 256 is the largest code GF(2^8) supports.
  const auto g = systematic_vandermonde(250, 6);
  EXPECT_TRUE(verify_systematic(g, 250));
  const auto c = systematic_cauchy(250, 6);
  EXPECT_TRUE(verify_systematic(c, 250));
}

TEST(Generator, VerifyMdsDetectsBrokenGenerators) {
  auto g = systematic_vandermonde(3, 2);
  // Corrupt a parity row to duplicate a data row: the subset {row0, row3,
  // row4-as-row0} becomes singular.
  for (std::size_t j = 0; j < 3; ++j) g(4, j) = g(0, j);
  EXPECT_FALSE(verify_mds(g, 3));
}

TEST(Generator, VerifySystematicDetectsNonIdentityTop) {
  auto g = systematic_vandermonde(3, 2);
  g(1, 1) = 5;
  EXPECT_FALSE(verify_systematic(g, 3));
  EXPECT_FALSE(verify_systematic(Matrix(2, 3), 3));  // too few rows
}

}  // namespace
}  // namespace car::matrix
