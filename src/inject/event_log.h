// Structured event log for fault-injection runs.
//
// Every fault, transfer attempt, timeout, retry, crash, re-plan, and
// completion the resilient runtime observes is recorded as one Event with a
// virtual timestamp.  The log is the run's ground truth: JSON export uses a
// canonical field order and fixed-precision timestamps, so two runs with
// the same seed and FaultPlan serialise to *byte-identical* text — logs are
// diffable artifacts, and determinism is asserted by comparing them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace car::inject {

enum class EventKind : std::uint8_t {
  kRunStart,
  kLinkFaultArmed,
  kTransferAttempt,
  kTransferComplete,
  kTransferTimeout,
  kTransferDrop,
  kTransferCorrupt,
  kRetryScheduled,
  kComputeComplete,
  kNodeCrash,
  kStepsCancelled,
  kReplanStart,
  kReplanValidated,
  kResume,
  kOutputsPublished,
  kRunComplete,
  // Rebuild control plane (src/rebuild).
  kMembershipChange,   // a failure event entered the membership tracker
  kScanComplete,       // exposure census finished for the new epoch
  kBatchDispatched,    // a prioritized batch of stripes entered execution
  kBatchComplete,      // ... and finished (outputs verified/published)
  kBatchCancelled,     // ... or was cancelled by a membership change
  kStripesRequeued,    // unfinished stripes of a cancelled batch re-queued
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// One timestamped occurrence.  Unused numeric fields stay -1 (bytes: 0);
/// the JSON always serialises every field so the byte layout of a log is a
/// pure function of the event sequence.
struct Event {
  std::size_t seq = 0;
  double t = 0.0;  // virtual seconds on the cluster timeline
  EventKind kind = EventKind::kRunStart;
  std::int64_t step = -1;
  std::int64_t attempt = -1;
  std::int64_t node = -1;
  std::uint64_t bytes = 0;
  std::string detail;

  friend bool operator==(const Event&, const Event&) = default;
};

class EventLog {
 public:
  /// Append an event; seq is assigned from the running counter.
  void record(double t, EventKind kind, std::int64_t step = -1,
              std::int64_t attempt = -1, std::int64_t node = -1,
              std::uint64_t bytes = 0, std::string detail = {});

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t count(EventKind kind) const noexcept;

  /// Canonical JSON array, one event object per line, fixed field order,
  /// timestamps as %.9f seconds.  Byte-identical across identical runs.
  [[nodiscard]] std::string to_json() const;

  /// Human-oriented per-kind counts ("transfer-attempt x41, ...").
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const EventLog&, const EventLog&) = default;

 private:
  std::vector<Event> events_;
};

}  // namespace car::inject
