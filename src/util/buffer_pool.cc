#include "util/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace car::util {

namespace {

/// log2 of a power-of-two capacity (the freelist index).
std::size_t class_index(std::size_t capacity) noexcept {
  return static_cast<std::size_t>(std::bit_width(capacity) - 1);
}

}  // namespace

BufferLease::BufferLease(BufferLease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      buf_(std::move(other.buf_)),
      accounted_(std::exchange(other.accounted_, 0)) {}

BufferLease& BufferLease::operator=(BufferLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    buf_ = std::move(other.buf_);
    accounted_ = std::exchange(other.accounted_, 0);
  }
  return *this;
}

BufferLease::~BufferLease() { release(); }

void BufferLease::release() noexcept {
  if (pool_ == nullptr) return;
  pool_->end_lease(std::move(buf_), accounted_, /*park=*/true);
  pool_ = nullptr;
  accounted_ = 0;
  buf_.clear();
}

std::vector<std::uint8_t> BufferLease::detach() && {
  std::vector<std::uint8_t> out = std::move(buf_);
  if (pool_ != nullptr) {
    pool_->end_lease({}, accounted_, /*park=*/false);
    pool_ = nullptr;
    accounted_ = 0;
  }
  return out;
}

std::size_t BufferPool::class_bytes(std::size_t n) noexcept {
  return std::bit_ceil(std::max(n, kMinClassBytes));
}

std::vector<std::uint8_t> BufferPool::checkout_locked(std::size_t n) {
  const std::size_t capacity = class_bytes(n);
  auto& list = free_[class_index(capacity)];
  std::vector<std::uint8_t> buf;
  if (!list.empty()) {
    buf = std::move(list.back());
    list.pop_back();
    ++stats_.freelist_hits;
    stats_.pooled_bytes -= capacity;
  } else {
    buf.reserve(capacity);
  }
  buf.resize(n);
  return buf;
}

BufferLease BufferPool::acquire(std::size_t n) {
  if (n == 0) return {};
  const std::size_t capacity = class_bytes(n);
  MutexLock lock(mu_);
  ++stats_.acquires;
  auto buf = checkout_locked(n);
  stats_.outstanding_bytes += capacity;
  stats_.staging_high_water_bytes =
      std::max(stats_.staging_high_water_bytes, stats_.outstanding_bytes);
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes,
               stats_.outstanding_bytes + stats_.taken_outstanding_bytes);
  return {this, std::move(buf), capacity};
}

std::vector<std::uint8_t> BufferPool::take(std::size_t n) {
  if (n == 0) return {};
  const std::size_t capacity = class_bytes(n);
  MutexLock lock(mu_);
  ++stats_.takes;
  auto buf = checkout_locked(n);
  stats_.taken_outstanding_bytes += capacity;
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes,
               stats_.outstanding_bytes + stats_.taken_outstanding_bytes);
  return buf;
}

void BufferPool::recycle(std::vector<std::uint8_t>&& buf) {
  std::vector<std::uint8_t> victim = std::move(buf);
  if (victim.capacity() < kMinClassBytes) return;  // not worth parking
  // Park by the largest power of two the capacity can serve: a future
  // checkout of that class is guaranteed to fit without reallocating.
  const std::size_t capacity = std::bit_floor(victim.capacity());
  MutexLock lock(mu_);
  ++stats_.recycles;
  // Credit the taken regime, saturating: recycle() also accepts foreign
  // vectors (and detach()ed leases) that were never charged to it.
  stats_.taken_outstanding_bytes -=
      std::min<std::uint64_t>(stats_.taken_outstanding_bytes, capacity);
  stats_.pooled_bytes += capacity;
  free_[class_index(capacity)].push_back(std::move(victim));
}

void BufferPool::end_lease(std::vector<std::uint8_t>&& buf,
                           std::size_t accounted, bool park) noexcept {
  std::vector<std::uint8_t> victim = std::move(buf);
  MutexLock lock(mu_);
  stats_.outstanding_bytes -= accounted;
  if (!park || victim.capacity() < kMinClassBytes) return;
  const std::size_t capacity = std::bit_floor(victim.capacity());
  ++stats_.recycles;
  stats_.pooled_bytes += capacity;
  free_[class_index(capacity)].push_back(std::move(victim));
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void BufferPool::trim() {
  MutexLock lock(mu_);
  for (auto& list : free_) list.clear();
  stats_.pooled_bytes = 0;
}

}  // namespace car::util
