// Shared execution of a compute PlanStep's linear combination.
//
// The emulator (emul/cluster.cc) and the resilient runtime
// (inject/runtime.cc) both execute compute steps over real chunk buffers;
// this helper is the single implementation of the step contract they used to
// duplicate: every gathered input has the same size, the step's declared
// compute volume equals |inputs| * chunk size, and the output is the fused
// GF(2^8) combination sum_i coeff_i * input_i.
#pragma once

#include <span>
#include <string>

#include "recovery/plan.h"
#include "rs/code.h"

namespace car::recovery {

/// Evaluates compute step `step` over `inputs` (one non-null buffer per
/// step.inputs entry, in the same order) and returns the combined chunk.
/// Throws util::StateError on any contract violation; `context` prefixes the
/// failure messages so callers keep their own error voice ("Cluster::execute",
/// "inject", ...).
[[nodiscard]] rs::Chunk execute_compute_step(
    const PlanStep& step, std::span<const rs::Chunk* const> inputs,
    const std::string& context);

}  // namespace car::recovery
