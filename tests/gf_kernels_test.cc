// Differential tests for the runtime-dispatched GF(2^8) kernel variants.
//
// Every kernel the binary carries (scalar always; SSSE3/AVX2 when the host
// supports them) must produce byte-identical output for every region op —
// across sizes 0..257 (every tail shape), misaligned offsets, the special
// coefficients 0/1 and table extremes, and the exact-aliasing (in-place)
// case the contract in gf/kernels.h promises.  The reference is an
// independent per-byte evaluation against Gf256, not another kernel.
#include "gf/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gf/gf256.h"
#include "gf/region.h"
#include "util/check.h"
#include "util/rng.h"

namespace car::gf {
namespace {

std::vector<std::uint8_t> random_buffer(std::size_t n, util::Rng& rng) {
  std::vector<std::uint8_t> buf(n);
  rng.fill_bytes(buf);
  return buf;
}

std::vector<const Kernels*> available_kernels() {
  std::vector<const Kernels*> out = {&scalar_kernels()};
  if (cpu_supports(KernelKind::kSsse3)) out.push_back(ssse3_kernels());
  if (cpu_supports(KernelKind::kAvx2)) out.push_back(avx2_kernels());
  return out;
}

constexpr std::uint8_t kCoeffs[] = {0, 1, 2, 3, 0x1D, 0x8E, 0xFE, 0xFF};

TEST(GfKernels, NibbleTablesMatchFullMulTable) {
  const auto& f = Gf256::instance();
  const NibbleTables& t = nibble_tables();
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned x = 0; x < 256; ++x) {
      const auto expected = f.mul(static_cast<std::uint8_t>(c),
                                  static_cast<std::uint8_t>(x));
      const auto split = static_cast<std::uint8_t>(t.lo[c][x & 0x0F] ^
                                                   t.hi[c][x >> 4]);
      ASSERT_EQ(split, expected) << "c=" << c << " x=" << x;
    }
  }
}

// Every kernel, every size 0..257, every coefficient class: byte-identical
// to the per-byte Gf256 reference.
TEST(GfKernels, AllKernelsMatchReferenceForAllTailShapes) {
  const auto& f = Gf256::instance();
  util::Rng rng(2024);
  for (const Kernels* k : available_kernels()) {
    SCOPED_TRACE(k->name);
    for (std::size_t n = 0; n <= 257; ++n) {
      const auto src = random_buffer(n, rng);
      const auto dst0 = random_buffer(n, rng);
      // xor_region
      {
        auto dst = dst0;
        k->xor_region(src.data(), dst.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(dst[i], static_cast<std::uint8_t>(dst0[i] ^ src[i]))
              << k->name << " xor n=" << n << " i=" << i;
        }
      }
      for (const std::uint8_t c : kCoeffs) {
        // mul_region
        {
          auto dst = dst0;
          k->mul_region(c, src.data(), dst.data(), n);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(dst[i], f.mul(c, src[i]))
                << k->name << " mul n=" << n << " c=" << int(c) << " i=" << i;
          }
        }
        // mul_region_acc
        {
          auto dst = dst0;
          k->mul_region_acc(c, src.data(), dst.data(), n);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(dst[i],
                      static_cast<std::uint8_t>(dst0[i] ^ f.mul(c, src[i])))
                << k->name << " acc n=" << n << " c=" << int(c) << " i=" << i;
          }
        }
      }
    }
  }
}

// Misaligned source and destination: SIMD paths use unaligned loads/stores,
// so any (src_offset, dst_offset) pair inside a page must agree with scalar.
TEST(GfKernels, MisalignedOffsetsMatchScalar) {
  util::Rng rng(7);
  constexpr std::size_t kMax = 1024;
  const auto src_pool = random_buffer(kMax + 64, rng);
  const auto dst_pool = random_buffer(kMax + 64, rng);
  const Kernels& ref = scalar_kernels();
  for (const Kernels* k : available_kernels()) {
    if (k == &ref) continue;
    SCOPED_TRACE(k->name);
    for (std::size_t src_off = 0; src_off < 16; ++src_off) {
      for (const std::size_t dst_off : {std::size_t{0}, std::size_t{1},
                                        std::size_t{7}, std::size_t{15}}) {
        for (const std::size_t n :
             {std::size_t{0}, std::size_t{15}, std::size_t{16},
              std::size_t{17}, std::size_t{63}, std::size_t{64},
              std::size_t{65}, std::size_t{255}, kMax}) {
          auto expected = dst_pool;
          auto actual = dst_pool;
          ref.mul_region_acc(0x53, src_pool.data() + src_off,
                             expected.data() + dst_off, n);
          k->mul_region_acc(0x53, src_pool.data() + src_off,
                            actual.data() + dst_off, n);
          ASSERT_EQ(actual, expected)
              << k->name << " src_off=" << src_off << " dst_off=" << dst_off
              << " n=" << n;
        }
      }
    }
  }
}

// Exact aliasing (src == dst) is part of the kernel contract: in-place
// results must match the out-of-place ones on every variant.  This is the
// regression test for the historical scale_region alias forwarding.
TEST(GfKernels, InPlaceCallsMatchOutOfPlace) {
  util::Rng rng(13);
  for (const Kernels* k : available_kernels()) {
    SCOPED_TRACE(k->name);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{16}, std::size_t{31},
          std::size_t{257}, std::size_t{4096}}) {
      for (const std::uint8_t c : kCoeffs) {
        const auto original = random_buffer(n, rng);
        // mul_region in place
        {
          std::vector<std::uint8_t> expected(n, 0);
          k->mul_region(c, original.data(), expected.data(), n);
          auto buf = original;
          k->mul_region(c, buf.data(), buf.data(), n);
          ASSERT_EQ(buf, expected) << k->name << " mul c=" << int(c);
        }
        // mul_region_acc in place: dst ^= c*dst == (c^1)*dst
        {
          auto expected = original;
          std::vector<std::uint8_t> product(n, 0);
          k->mul_region(c, original.data(), product.data(), n);
          k->xor_region(product.data(), expected.data(), n);
          auto buf = original;
          k->mul_region_acc(c, buf.data(), buf.data(), n);
          ASSERT_EQ(buf, expected) << k->name << " acc c=" << int(c);
        }
        // xor_region in place zeroes the buffer
        {
          auto buf = original;
          k->xor_region(buf.data(), buf.data(), n);
          ASSERT_EQ(buf, std::vector<std::uint8_t>(n, 0)) << k->name;
        }
      }
    }
  }
}

// scale_region forwards dst as both src and dst into mul_region; under the
// in-place-safe contract the result must equal the out-of-place multiply on
// buffers large enough to cross every SIMD width and the combine tile.
TEST(GfKernels, ScaleRegionAliasRegression) {
  util::Rng rng(21);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{257}, std::size_t{65536 + 17}}) {
    for (const std::uint8_t c : kCoeffs) {
      auto buf = random_buffer(n, rng);
      std::vector<std::uint8_t> expected(n, 0);
      mul_region(c, buf, expected);
      scale_region(c, buf);
      ASSERT_EQ(buf, expected) << "n=" << n << " c=" << int(c);
    }
  }
}

// The tiled fused combine must equal the naive k-sweep evaluation, including
// on buffers that span multiple tiles with a ragged tail.
TEST(GfKernels, FusedLinearCombineMatchesNaiveAcrossTiles) {
  util::Rng rng(31);
  const auto& f = Gf256::instance();
  constexpr std::size_t kN = 3 * 32 * 1024 + 257;  // > 3 combine tiles
  constexpr std::size_t kWays = 6;
  std::vector<std::vector<std::uint8_t>> rows;
  for (std::size_t i = 0; i < kWays; ++i) {
    rows.push_back(random_buffer(kN, rng));
  }
  std::vector<std::span<const std::uint8_t>> views(rows.begin(), rows.end());
  const std::vector<std::uint8_t> coeffs = {0, 1, 2, 0x8E, 0xFF, 0x35};
  const auto out0 = random_buffer(kN, rng);

  auto fused = out0;
  linear_combine_acc(coeffs, views, fused);
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint8_t expected = out0[i];
    for (std::size_t r = 0; r < kWays; ++r) {
      expected ^= f.mul(coeffs[r], rows[r][i]);
    }
    ASSERT_EQ(fused[i], expected) << "i=" << i;
  }

  // linear_combine == zero + accumulate.
  std::vector<std::uint8_t> combined(kN, 0xAA);
  linear_combine(coeffs, views, combined);
  auto expected = std::vector<std::uint8_t>(kN, 0);
  linear_combine_acc(coeffs, views, expected);
  EXPECT_EQ(combined, expected);
}

TEST(GfKernels, SelectKernelsResolvesNamesAndRejectsUnknown) {
  EXPECT_EQ(select_kernels("scalar").kind, KernelKind::kScalar);
  EXPECT_EQ(std::string(select_kernels("scalar").name), "scalar");
  // Autodetect picks the best supported variant.
  const Kernels& best = select_kernels("");
  EXPECT_EQ(&best, &select_kernels("auto"));
  if (cpu_supports(KernelKind::kAvx2)) {
    EXPECT_EQ(best.kind, KernelKind::kAvx2);
    EXPECT_EQ(&select_kernels("avx2"), avx2_kernels());
  } else if (cpu_supports(KernelKind::kSsse3)) {
    EXPECT_EQ(best.kind, KernelKind::kSsse3);
  } else {
    EXPECT_EQ(best.kind, KernelKind::kScalar);
  }
  if (cpu_supports(KernelKind::kSsse3)) {
    EXPECT_EQ(&select_kernels("ssse3"), ssse3_kernels());
  } else {
    EXPECT_THROW(static_cast<void>(select_kernels("ssse3")),
                 util::CheckError);
  }
  EXPECT_THROW(static_cast<void>(select_kernels("avx512")),
               util::CheckError);
  EXPECT_THROW(static_cast<void>(select_kernels("SCALAR")),
               util::CheckError);
}

TEST(GfKernels, KernelNamesAreStable) {
  EXPECT_STREQ(kernel_name(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(kernel_name(KernelKind::kSsse3), "ssse3");
  EXPECT_STREQ(kernel_name(KernelKind::kAvx2), "avx2");
  EXPECT_TRUE(cpu_supports(KernelKind::kScalar));
  // The dispatched set is one of the available ones and is consistent with
  // what select_kernels resolves for the process environment.
  const Kernels& active = active_kernels();
  EXPECT_TRUE(cpu_supports(active.kind));
}

// Randomized differential sweep: larger buffers, random coefficients, all
// kernels must agree with scalar byte-for-byte.
TEST(GfKernels, RandomizedDifferentialSweep) {
  util::Rng rng(1234);
  const Kernels& ref = scalar_kernels();
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.next_below(20000);
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    const auto src = random_buffer(n, rng);
    const auto dst0 = random_buffer(n, rng);
    std::vector<std::uint8_t> expected_mul(n, 0);
    auto expected_acc = dst0;
    auto expected_xor = dst0;
    ref.mul_region(c, src.data(), expected_mul.data(), n);
    ref.mul_region_acc(c, src.data(), expected_acc.data(), n);
    ref.xor_region(src.data(), expected_xor.data(), n);
    for (const Kernels* k : available_kernels()) {
      if (k == &ref) continue;
      std::vector<std::uint8_t> mul(n, 0);
      auto acc = dst0;
      auto xored = dst0;
      k->mul_region(c, src.data(), mul.data(), n);
      k->mul_region_acc(c, src.data(), acc.data(), n);
      k->xor_region(src.data(), xored.data(), n);
      ASSERT_EQ(mul, expected_mul) << k->name << " n=" << n << " c=" << int(c);
      ASSERT_EQ(acc, expected_acc) << k->name << " n=" << n << " c=" << int(c);
      ASSERT_EQ(xored, expected_xor) << k->name << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace car::gf
