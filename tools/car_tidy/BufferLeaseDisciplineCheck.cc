#include "BufferLeaseDisciplineCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::car {

namespace {

constexpr char kLease[] = "BufferLease";

bool isLeaseRecord(const CXXRecordDecl *RD) {
  return RD != nullptr && RD->getName() == kLease;
}

}  // namespace

void BufferLeaseDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  const auto LeaseDecl = cxxRecordDecl(hasName(kLease));
  const auto RefOrPtrToLease =
      qualType(anyOf(references(LeaseDecl), pointsTo(LeaseDecl)));

  Finder->addMatcher(
      functionDecl(returns(RefOrPtrToLease), isDefinition()).bind("returns"),
      this);
  Finder->addMatcher(fieldDecl(hasType(RefOrPtrToLease)).bind("field"), this);
  Finder->addMatcher(
      unaryOperator(
          hasOperatorName("&"),
          hasUnaryOperand(expr(hasType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(LeaseDecl)))))))
          .bind("addrof"),
      this);
}

void BufferLeaseDisciplineCheck::check(
    const MatchFinder::MatchResult &Result) {
  if (const auto *F = Result.Nodes.getNodeAs<FunctionDecl>("returns")) {
    // BufferLease's own move operations legitimately return *this.
    if (const auto *M = dyn_cast<CXXMethodDecl>(F);
        M != nullptr && isLeaseRecord(M->getParent())) {
      return;
    }
    diag(F->getLocation(),
         "function returns a reference/pointer to a BufferLease; leases are "
         "scoped checkouts — return the lease by value or detach() the bytes");
    return;
  }
  if (const auto *FD = Result.Nodes.getNodeAs<FieldDecl>("field")) {
    diag(FD->getLocation(),
         "data member holds a reference/pointer to a BufferLease; a stored "
         "lease outliving its scope is a use-after-recycle — own the lease by "
         "value or detach() the bytes");
    return;
  }
  if (const auto *U = Result.Nodes.getNodeAs<UnaryOperator>("addrof")) {
    diag(U->getOperatorLoc(),
         "taking the address of a BufferLease; pass the lease by reference "
         "or move it instead of storing a pointer to it");
  }
}

}  // namespace clang::tidy::car
