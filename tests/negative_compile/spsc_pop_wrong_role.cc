// SPSC role violation: popping while holding the PRODUCER token.  pop is
// CAR_REQUIRES(consumer_) — the producer role does not cover the consumer
// end, so -Wthread-safety must reject this translation unit.
#include "util/spsc_queue.h"

namespace {

[[maybe_unused]] void use() {
  car::util::SpscQueue<int> queue(8);
  const car::util::SpscProducerToken<int> token(queue);
  queue.push(1);
  queue.close();
  // BAD: the producer token grants push/close, not pop — draining from the
  // producer thread would race the real consumer's head_ updates.
  (void)queue.pop();
}

}  // namespace
