// Tests for the non-random placement policies (spread / compact) and the
// mutation APIs (set_host / move_chunks / can_host) used by the repair path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/configs.h"
#include "cluster/placement.h"

namespace car::cluster {
namespace {

TEST(SpreadPlacement, DispersesChunksEvenlyAcrossRacks) {
  util::Rng rng(1);
  // 5 racks, width 14 -> per-rack share is ceil(14/5)=3 <= m=4.
  const auto cfg = cfs3();
  const auto p =
      Placement::spread(cfg.topology(), cfg.k, cfg.m, 30, rng);
  EXPECT_TRUE(p.validate());
  const std::size_t r = p.topology().num_racks();
  const std::size_t width = cfg.k + cfg.m;
  for (StripeId s = 0; s < p.num_stripes(); ++s) {
    const auto census = p.rack_census(s);
    for (std::size_t c : census) {
      EXPECT_GE(c, width / r);
      EXPECT_LE(c, (width + r - 1) / r);
    }
  }
}

TEST(SpreadPlacement, RejectsInfeasibleDispersion) {
  util::Rng rng(2);
  // 2 racks, width 7, m=3: ceil(7/2)=4 > 3 -> quota violation.
  EXPECT_THROW(Placement::spread(Topology({5, 5}), 4, 3, 1, rng),
               std::invalid_argument);
  // Rack with too few nodes for its share.
  EXPECT_THROW(Placement::spread(Topology({2, 6, 6}), 6, 3, 1, rng),
               std::invalid_argument);
}

TEST(CompactPlacement, MinimisesRacksTouched) {
  util::Rng rng(3);
  const auto cfg = cfs3();  // racks {6,4,5,3,2}, m=4, width 14
  const auto p =
      Placement::compact(cfg.topology(), cfg.k, cfg.m, 30, rng);
  EXPECT_TRUE(p.validate());
  for (StripeId s = 0; s < p.num_stripes(); ++s) {
    const auto census = p.rack_census(s);
    const std::size_t racks_touched =
        census.size() -
        static_cast<std::size_t>(std::count(census.begin(), census.end(), 0u));
    // Lower bound: ceil(width / m) racks must be touched.
    const std::size_t lower = (cfg.k + cfg.m + cfg.m - 1) / cfg.m;
    EXPECT_GE(racks_touched, lower);
    // Compactness: touched racks are filled to quota except possibly ones
    // limited by node count and the remainder rack.
    std::size_t at_quota = 0;
    for (RackId rack = 0; rack < census.size(); ++rack) {
      const std::size_t cap =
          std::min<std::size_t>(cfg.m, p.topology().nodes_in_rack_count(rack));
      if (census[rack] == cap) ++at_quota;
    }
    EXPECT_GE(at_quota + 1, racks_touched);
  }
}

TEST(CompactPlacement, ProducesLowerCarTrafficThanSpread) {
  // The compact layout should let CAR touch fewer racks per stripe than the
  // spread layout does — the placement ablation's core claim.
  const auto cfg = cfs3();
  util::Rng rng_a(4), rng_b(4);
  const auto compact =
      Placement::compact(cfg.topology(), cfg.k, cfg.m, 50, rng_a);
  const auto spread =
      Placement::spread(cfg.topology(), cfg.k, cfg.m, 50, rng_b);

  auto avg_racks = [&](const Placement& p) {
    double racks = 0;
    for (StripeId s = 0; s < p.num_stripes(); ++s) {
      const auto census = p.rack_census(s);
      racks += static_cast<double>(
          census.size() -
          static_cast<std::size_t>(
              std::count(census.begin(), census.end(), 0u)));
    }
    return racks / static_cast<double>(p.num_stripes());
  };
  EXPECT_LT(avg_racks(compact), avg_racks(spread));
}

TEST(PlacementMutation, SetHostValidatesInvariants) {
  Placement p(Topology({2, 2, 2}), 2, 2);
  p.add_stripe({0, 2, 3, 4});
  // Node 5 is free and in rack 2 which currently holds chunks on node 4
  // only -> allowed.
  EXPECT_TRUE(p.can_host(0, 0, 5));
  p.set_host(0, 0, 5);
  EXPECT_EQ(p.node_of(0, 0), 5u);
  // Duplicate node rejected.
  EXPECT_FALSE(p.can_host(0, 1, 5));
  EXPECT_THROW(p.set_host(0, 1, 5), std::invalid_argument);
  // Rack quota (m=2): rack 2 already hosts chunks on nodes 4 and 5.
  EXPECT_FALSE(p.can_host(0, 1, 4));  // node 4 already hosts a chunk
  EXPECT_THROW(p.set_host(9, 0, 0), std::out_of_range);
  EXPECT_THROW(p.set_host(0, 9, 0), std::out_of_range);
}

TEST(PlacementMutation, MoveChunksRelocatesEverything) {
  Placement p(Topology({2, 2, 2}), 2, 2);
  p.add_stripe({0, 2, 3, 4});
  p.add_stripe({0, 1, 2, 4});
  ASSERT_EQ(p.chunks_on_node(0).size(), 2u);
  p.move_chunks(0, 5);
  EXPECT_TRUE(p.chunks_on_node(0).empty());
  EXPECT_EQ(p.chunks_on_node(5).size(), 2u);
  EXPECT_TRUE(p.validate());
  p.move_chunks(5, 5);  // no-op
  EXPECT_EQ(p.chunks_on_node(5).size(), 2u);
  EXPECT_THROW(p.move_chunks(0, 99), std::invalid_argument);
}

TEST(PlacementMutation, MoveChunksRejectsInvalidTargetAtomically) {
  Placement p(Topology({2, 2, 2}), 2, 2);
  p.add_stripe({0, 1, 2, 4});  // rack 0 holds 2 chunks (quota m=2)
  // Moving node 4's chunk into rack 0 (node... both rack-0 nodes host
  // already) -> duplicate/quota violation.
  EXPECT_THROW(p.move_chunks(4, 0), std::invalid_argument);
  // Placement unchanged.
  EXPECT_EQ(p.node_of(0, 3), 4u);
  EXPECT_TRUE(p.validate());
}

}  // namespace
}  // namespace car::cluster
