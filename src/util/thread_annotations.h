// Clang thread-safety annotation macros (CAR_GUARDED_BY and friends).
//
// These wrap Clang's `-Wthread-safety` attribute set so lock discipline is
// *proved at compile time* instead of probabilistically caught by TSan: a
// member tagged CAR_GUARDED_BY(mu_) cannot be read or written on a path
// where the analysis cannot show `mu_` is held, and the build breaks (the
// repo compiles with -Werror) rather than racing at runtime.  On compilers
// without the attribute set (GCC builds, MSVC) every macro expands to
// nothing, so annotated code stays portable.
//
// The annotations only carry their weight on types that declare themselves
// capabilities — use util::Mutex / util::MutexLock (util/mutex.h), not
// std::mutex, for any new shared state.  Glossary:
//
//   CAR_CAPABILITY(name)       class is a lockable capability (a mutex)
//   CAR_SCOPED_CAPABILITY      class is an RAII lock holder
//   CAR_GUARDED_BY(mu)         member may only be accessed holding `mu`
//   CAR_PT_GUARDED_BY(mu)      pointee may only be accessed holding `mu`
//   CAR_REQUIRES(mu, ...)      function must be called with `mu` held
//   CAR_ACQUIRE(mu, ...)       function acquires `mu` (held on return)
//   CAR_RELEASE(mu, ...)       function releases `mu`
//   CAR_TRY_ACQUIRE(b, mu)     function acquires `mu` iff it returns `b`
//   CAR_EXCLUDES(mu, ...)      function must NOT be called with `mu` held
//                              (the caller would self-deadlock)
//   CAR_ASSERT_CAPABILITY(mu)  runtime assertion that `mu` is held
//   CAR_RETURN_CAPABILITY(mu)  function returns a reference to `mu`
//   CAR_NO_THREAD_SAFETY_ANALYSIS
//                              opt a definition out (trusted glue only —
//                              say why in a comment)
//
// tests/negative_compile/ holds fixtures proving each macro class actually
// rejects a violation under Clang; docs/architecture.md ("static analysis &
// lock discipline") covers how to run the checks locally.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define CAR_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define CAR_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

#define CAR_CAPABILITY(x) CAR_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define CAR_SCOPED_CAPABILITY CAR_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define CAR_GUARDED_BY(x) CAR_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define CAR_PT_GUARDED_BY(x) CAR_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define CAR_ACQUIRED_BEFORE(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define CAR_ACQUIRED_AFTER(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define CAR_REQUIRES(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define CAR_REQUIRES_SHARED(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define CAR_ACQUIRE(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define CAR_ACQUIRE_SHARED(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define CAR_RELEASE(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define CAR_RELEASE_SHARED(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define CAR_TRY_ACQUIRE(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define CAR_EXCLUDES(...) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define CAR_ASSERT_CAPABILITY(x) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define CAR_RETURN_CAPABILITY(x) \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define CAR_NO_THREAD_SAFETY_ANALYSIS \
  CAR_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
