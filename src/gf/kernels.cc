// Portable scalar kernels, nibble-table construction, and runtime dispatch.
//
// The SIMD vtables (detail::kSsse3Kernels / kAvx2Kernels) are defined in
// kernels_ssse3.cc / kernels_avx2.cc, which the build compiles with the
// matching -m flags only when the target architecture and compiler allow it;
// CAR_GF_HAVE_SSSE3 / CAR_GF_HAVE_AVX2 record that decision for this TU.
#include "gf/kernels.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "gf/gf256.h"
#include "util/check.h"

namespace car::gf {

const NibbleTables& nibble_tables() {
  static const NibbleTables tables = [] {
    NibbleTables t{};
    const Gf256& field = Gf256::instance();
    for (unsigned c = 0; c < 256; ++c) {
      const std::uint8_t* row = field.mul_row(static_cast<std::uint8_t>(c));
      for (unsigned x = 0; x < 16; ++x) {
        t.lo[c][x] = row[x];
        t.hi[c][x] = row[x << 4];
      }
    }
    return t;
  }();
  return tables;
}

namespace {

void xor_region_scalar(const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  std::size_t i = 0;
  // Word-at-a-time XOR; memcpy keeps it strict-aliasing clean and compiles
  // to plain loads/stores.  Loading both words before the store makes the
  // exact-alias (src == dst) case well-defined.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_region_scalar(std::uint8_t c, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t n) {
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    dst[i] = row[src[i]];
    dst[i + 1] = row[src[i + 1]];
    dst[i + 2] = row[src[i + 2]];
    dst[i + 3] = row[src[i + 3]];
    dst[i + 4] = row[src[i + 4]];
    dst[i + 5] = row[src[i + 5]];
    dst[i + 6] = row[src[i + 6]];
    dst[i + 7] = row[src[i + 7]];
  }
  for (; i < n; ++i) dst[i] = row[src[i]];
}

void mul_region_acc_scalar(std::uint8_t c, const std::uint8_t* src,
                           std::uint8_t* dst, std::size_t n) {
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    dst[i] ^= row[src[i]];
    dst[i + 1] ^= row[src[i + 1]];
    dst[i + 2] ^= row[src[i + 2]];
    dst[i + 3] ^= row[src[i + 3]];
    dst[i + 4] ^= row[src[i + 4]];
    dst[i + 5] ^= row[src[i + 5]];
    dst[i + 6] ^= row[src[i + 6]];
    dst[i + 7] ^= row[src[i + 7]];
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

}  // namespace

namespace detail {
const Kernels kScalarKernels = {KernelKind::kScalar, "scalar",
                                &xor_region_scalar, &mul_region_scalar,
                                &mul_region_acc_scalar};
}  // namespace detail

bool cpu_supports(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kSsse3:
#if CAR_GF_HAVE_SSSE3
      return __builtin_cpu_supports("ssse3") != 0;
#else
      return false;
#endif
    case KernelKind::kAvx2:
#if CAR_GF_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const Kernels& scalar_kernels() noexcept { return detail::kScalarKernels; }

const Kernels* ssse3_kernels() noexcept {
#if CAR_GF_HAVE_SSSE3
  return &detail::kSsse3Kernels;
#else
  return nullptr;
#endif
}

const Kernels* avx2_kernels() noexcept {
#if CAR_GF_HAVE_AVX2
  return &detail::kAvx2Kernels;
#else
  return nullptr;
#endif
}

const char* kernel_name(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kSsse3:
      return "ssse3";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const Kernels& select_kernels(std::string_view name) {
  if (name.empty() || name == "auto") {
    if (cpu_supports(KernelKind::kAvx2)) return *avx2_kernels();
    if (cpu_supports(KernelKind::kSsse3)) return *ssse3_kernels();
    return scalar_kernels();
  }
  if (name == "scalar") return scalar_kernels();
  if (name == "ssse3") {
    CAR_CHECK(cpu_supports(KernelKind::kSsse3),
              "CAR_GF_KERNEL=ssse3: variant not available on this host/build");
    return *ssse3_kernels();
  }
  if (name == "avx2") {
    CAR_CHECK(cpu_supports(KernelKind::kAvx2),
              "CAR_GF_KERNEL=avx2: variant not available on this host/build");
    return *avx2_kernels();
  }
  CAR_CHECK_FAIL("CAR_GF_KERNEL: unknown kernel '" + std::string(name) +
                 "' (expected scalar, ssse3, avx2, or auto)");
}

const Kernels& active_kernels() {
  static const Kernels& kernels = []() -> const Kernels& {
    const char* env = std::getenv("CAR_GF_KERNEL");
    return select_kernels(env == nullptr ? std::string_view{}
                                         : std::string_view{env});
  }();
  return kernels;
}

}  // namespace car::gf
