// Systematic (k, m) Reed–Solomon codec over GF(2^8).
//
// A stripe is k data chunks + m parity chunks, all the same size; any k of
// the k+m chunks reconstruct everything (MDS).  Chunk index convention:
// 0..k-1 are data chunks, k..k+m-1 are parity chunks — matching H_1..H_{k+m}
// in the paper (0-based here).
//
// Beyond plain encode/decode, the codec exposes the *repair vector*
// y = g_i · X (paper Eq. 5–6): the coefficients that express a lost chunk as
// a linear combination of any k chosen survivors.  CAR's intra-rack
// aggregation ("partial decoding", rs/partial.h) is built directly on it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/matrix.h"

namespace car::rs {

using Chunk = std::vector<std::uint8_t>;
using ChunkView = std::span<const std::uint8_t>;

class Code {
 public:
  enum class Construction { kVandermonde, kCauchy };

  /// Requires 1 <= k, 0 <= m, k + m <= 256.  Throws std::invalid_argument.
  Code(std::size_t k, std::size_t m,
       Construction construction = Construction::kVandermonde);

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n() const noexcept { return k_ + m_; }
  [[nodiscard]] Construction construction() const noexcept {
    return construction_;
  }

  /// Full (k+m) x k systematic generator matrix G.
  [[nodiscard]] const matrix::Matrix& generator() const noexcept {
    return generator_;
  }

  /// Row g_i of the generator (1 x k) for chunk i in [0, k+m).
  [[nodiscard]] std::span<const std::uint8_t> generator_row(
      std::size_t chunk_index) const;

  /// Encode: data.size() == k equally-sized chunks -> m parity chunks.
  [[nodiscard]] std::vector<Chunk> encode(
      std::span<const ChunkView> data) const;

  /// Encode a full stripe: returns k data copies + m parities (n chunks).
  [[nodiscard]] std::vector<Chunk> encode_stripe(
      std::span<const ChunkView> data) const;

  /// Repair vector y for reconstructing chunk `target` from exactly k
  /// survivors (distinct chunk indices != target):  H_target = sum_i y[i] *
  /// survivor_chunk[i].  Throws std::invalid_argument on bad ids.
  [[nodiscard]] std::vector<std::uint8_t> repair_vector(
      std::size_t target, std::span<const std::size_t> survivors) const;

  /// Reconstruct chunk `target` from k survivors (ids + matching chunks).
  [[nodiscard]] Chunk reconstruct(
      std::size_t target, std::span<const std::size_t> survivor_ids,
      std::span<const ChunkView> survivor_chunks) const;

  /// Decode all k data chunks from any k survivors.
  [[nodiscard]] std::vector<Chunk> decode_data(
      std::span<const std::size_t> survivor_ids,
      std::span<const ChunkView> survivor_chunks) const;

 private:
  /// Inverse of the k survivor rows of G (the matrix X in the paper).
  [[nodiscard]] matrix::Matrix survivor_inverse(
      std::span<const std::size_t> survivor_ids) const;

  void validate_survivors(std::span<const std::size_t> survivor_ids,
                          std::size_t exclude) const;

  std::size_t k_;
  std::size_t m_;
  Construction construction_;
  matrix::Matrix generator_;
};

}  // namespace car::rs
