// Fixture for car-buffer-lease-discipline.  Mock BufferLease stands in for
// util/buffer_pool.h.
namespace car::util {
class BufferLease {
 public:
  BufferLease();
  BufferLease(BufferLease &&other);
  BufferLease &operator=(BufferLease &&other);  // member of the class: exempt
  unsigned char *data();
  unsigned long size() const;
};
}  // namespace car::util

using car::util::BufferLease;

// ---- violations -----------------------------------------------------------

BufferLease &escape_by_reference(BufferLease &lease) {  // EXPECT: function returns a reference/pointer to a BufferLease
  return lease;
}

struct LeaseCache {
  BufferLease *stashed;  // EXPECT: data member holds a reference/pointer to a BufferLease
};

void stash_address(LeaseCache &cache, BufferLease lease) {
  cache.stashed = &lease;  // EXPECT: taking the address of a BufferLease
}

// ---- non-findings ---------------------------------------------------------

// Returning by value (move) is the supported ownership transfer.
BufferLease pass_through(BufferLease lease) { return lease; }

// Borrowing by reference parameter is fine: the callee frame cannot outlive
// the caller's scope.
unsigned long peek(const BufferLease &lease) { return lease.size(); }

// Owning a lease by value inside a struct is fine too.
struct SliceJob {
  BufferLease wire;
};
