// Microbenchmarks for the GF(2^8) kernels that dominate decode time.
//
// Every available kernel variant (scalar, and SSSE3/AVX2 when the host
// supports them) is benchmarked separately so the dispatch win is visible,
// and the fused linear_combine is raced against the naive k-sweep loop it
// replaced.  Results calibrate the compute-throughput constants used by the
// flow simulator (simnet::NetConfig::gf_compute_bps / xor_compute_bps) and
// the emulator's virtual clock (emul::EmulConfig::virtual_gf_bps).
//
// Usage:
//   micro_gf [--json <path>] [google-benchmark flags]
//
// --json writes the machine-readable baseline (schema car-gf-bench/1,
// documented in docs/architecture.md); the repo's committed BENCH_gf.json is
// produced this way.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <string>
#include <vector>

#include "gf/galois.h"
#include "gf/gf256.h"
#include "gf/kernels.h"
#include "gf/region.h"
#include "util/rng.h"

namespace {

using namespace car;

std::vector<std::uint8_t> random_buffer(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> buf(n);
  rng.fill_bytes(buf);
  return buf;
}

/// What one benchmark measures, keyed by its registered name; the JSON
/// reporter joins this with google-benchmark's timing.
struct BenchMeta {
  std::string op;      // "xor_region" | "mul_region" | "mul_region_acc" | ...
  std::string kernel;  // "scalar" | "ssse3" | "avx2" | "active"
  std::size_t buffer_bytes = 0;    // per-source region size
  std::size_t sources = 1;         // rows combined per iteration
  std::size_t bytes_per_iter = 0;  // total bytes processed per iteration
};

std::map<std::string, BenchMeta>& meta_registry() {
  static std::map<std::string, BenchMeta> registry;
  return registry;
}

/// One timed result, joined with its metadata.
struct CollectedRun {
  std::string name;
  BenchMeta meta;
  std::int64_t iterations = 0;
  double real_seconds = 0.0;  // accumulated over all iterations
};

/// Console output as usual, plus collection for the --json reporter.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const auto it = meta_registry().find(run.benchmark_name());
      if (it == meta_registry().end()) continue;
      CollectedRun c;
      c.name = run.benchmark_name();
      c.meta = it->second;
      c.iterations = run.iterations;
      c.real_seconds = run.real_accumulated_time;
      collected_.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<CollectedRun>& collected() const noexcept {
    return collected_;
  }

 private:
  std::vector<CollectedRun> collected_;
};

double throughput_bps(const CollectedRun& run) {
  if (run.real_seconds <= 0.0 || run.iterations <= 0) return 0.0;
  return static_cast<double>(run.meta.bytes_per_iter) *
         static_cast<double>(run.iterations) / run.real_seconds;
}

// ---------------------------------------------------------------------------
// Per-kernel region-op benchmarks.

constexpr std::size_t kRegionSizes[] = {4096, 65536, std::size_t{1} << 20,
                                        std::size_t{1} << 22};
constexpr std::uint8_t kCoeff = 0x8E;  // generic coefficient, no 0/1 fast path

void register_kernel_benches(const gf::Kernels& k) {
  const std::string kernel = k.name;
  for (const std::size_t n : kRegionSizes) {
    {
      const std::string name =
          "xor_region/" + kernel + "/" + std::to_string(n);
      meta_registry()[name] = {"xor_region", kernel, n, 1, n};
      benchmark::RegisterBenchmark(
          name.c_str(), [fn = k.xor_region, n](benchmark::State& state) {
            const auto src = random_buffer(n, 1);
            auto dst = random_buffer(n, 2);
            for (auto _ : state) {
              fn(src.data(), dst.data(), n);
              benchmark::DoNotOptimize(dst.data());
            }
          });
    }
    {
      const std::string name =
          "mul_region/" + kernel + "/" + std::to_string(n);
      meta_registry()[name] = {"mul_region", kernel, n, 1, n};
      benchmark::RegisterBenchmark(
          name.c_str(), [fn = k.mul_region, n](benchmark::State& state) {
            const auto src = random_buffer(n, 3);
            std::vector<std::uint8_t> dst(n, 0);
            for (auto _ : state) {
              fn(kCoeff, src.data(), dst.data(), n);
              benchmark::DoNotOptimize(dst.data());
            }
          });
    }
    {
      const std::string name =
          "mul_region_acc/" + kernel + "/" + std::to_string(n);
      meta_registry()[name] = {"mul_region_acc", kernel, n, 1, n};
      benchmark::RegisterBenchmark(
          name.c_str(), [fn = k.mul_region_acc, n](benchmark::State& state) {
            const auto src = random_buffer(n, 4);
            auto dst = random_buffer(n, 5);
            for (auto _ : state) {
              fn(kCoeff, src.data(), dst.data(), n);
              benchmark::DoNotOptimize(dst.data());
            }
          });
    }
  }
}

// ---------------------------------------------------------------------------
// Fused k-way combine vs the naive k-sweep loop it replaced (both run on the
// dispatched kernels; the contrast isolates the tiling, not the ISA).

constexpr std::size_t kCombineChunk = std::size_t{1} << 20;
constexpr std::size_t kCombineWays[] = {2, 4, 6, 10};

struct CombineFixture {
  std::vector<std::vector<std::uint8_t>> rows;
  std::vector<std::span<const std::uint8_t>> views;
  std::vector<std::uint8_t> coeffs;
  std::vector<std::uint8_t> out;
};

CombineFixture make_combine_fixture(std::size_t ways) {
  CombineFixture f;
  for (std::size_t i = 0; i < ways; ++i) {
    f.rows.push_back(random_buffer(kCombineChunk, 10 + i));
  }
  f.views.assign(f.rows.begin(), f.rows.end());
  f.coeffs.resize(ways);
  util::Rng rng(99);
  for (auto& c : f.coeffs) {
    // Generic coefficients only: keep every row on the multiply path.
    c = static_cast<std::uint8_t>(2 + rng.next_below(250));
  }
  f.out = random_buffer(kCombineChunk, 77);
  return f;
}

void register_combine_benches() {
  for (const std::size_t ways : kCombineWays) {
    {
      const std::string name = "linear_combine/fused/" + std::to_string(ways);
      meta_registry()[name] = {"linear_combine_fused", "active", kCombineChunk,
                               ways, ways * kCombineChunk};
      benchmark::RegisterBenchmark(
          name.c_str(), [ways](benchmark::State& state) {
            CombineFixture f = make_combine_fixture(ways);
            for (auto _ : state) {
              gf::linear_combine_acc(f.coeffs, f.views, f.out);
              benchmark::DoNotOptimize(f.out.data());
            }
          });
    }
    {
      const std::string name = "linear_combine/naive/" + std::to_string(ways);
      meta_registry()[name] = {"linear_combine_naive", "active", kCombineChunk,
                               ways, ways * kCombineChunk};
      benchmark::RegisterBenchmark(
          name.c_str(), [ways](benchmark::State& state) {
            CombineFixture f = make_combine_fixture(ways);
            for (auto _ : state) {
              // The pre-fusion shape: one full-buffer sweep per source row.
              for (std::size_t i = 0; i < ways; ++i) {
                gf::mul_region_acc(f.coeffs[i], f.views[i], f.out);
              }
              benchmark::DoNotOptimize(f.out.data());
            }
          });
    }
  }
}

// ---------------------------------------------------------------------------
// Element-op benchmarks (unchanged from the scalar era, kept for trend
// continuity).

void BM_Gf256ScalarMul(benchmark::State& state) {
  const auto& f = gf::Gf256::instance();
  std::uint8_t a = 3, b = 7, acc = 0;
  for (auto _ : state) {
    acc ^= f.mul(a, b);
    a = static_cast<std::uint8_t>(a + 1);
    b = static_cast<std::uint8_t>(b + 3);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Gf256ScalarMul);

void BM_GenericFieldMul(benchmark::State& state) {
  const gf::Field f(static_cast<unsigned>(state.range(0)));
  std::uint32_t a = 3, b = 7, acc = 0;
  const std::uint32_t mask = f.size() - 1;
  for (auto _ : state) {
    acc ^= f.mul(a, b);
    a = (a + 1) & mask;
    b = (b + 3) & mask;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GenericFieldMul)->Arg(8)->Arg(16);

// ---------------------------------------------------------------------------
// JSON baseline writer (schema car-gf-bench/1).

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

/// Throughput of `op` on `kernel` at buffer size `bytes`, or 0 when the
/// benchmark did not run.
double find_bps(const std::vector<CollectedRun>& runs, const std::string& op,
                const std::string& kernel, std::size_t bytes) {
  for (const CollectedRun& run : runs) {
    if (run.meta.op == op && run.meta.kernel == kernel &&
        run.meta.buffer_bytes == bytes) {
      return throughput_bps(run);
    }
  }
  return 0.0;
}

void write_json(const std::string& path,
                const std::vector<CollectedRun>& runs) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "micro_gf: cannot open --json path %s\n",
                 path.c_str());
    std::exit(1);
  }
  os << std::setprecision(10);
  const gf::Kernels& active = gf::active_kernels();
  os << "{\n";
  os << "  \"schema\": \"car-gf-bench/1\",\n";
  os << "  \"active_kernel\": \"" << active.name << "\",\n";
  os << "  \"cpu\": {\"ssse3\": "
     << (gf::cpu_supports(gf::KernelKind::kSsse3) ? "true" : "false")
     << ", \"avx2\": "
     << (gf::cpu_supports(gf::KernelKind::kAvx2) ? "true" : "false")
     << "},\n";
  // The constants experiments should be calibrated against: sustained
  // multiply-accumulate / XOR throughput of the dispatched kernel at 1 MiB.
  os << "  \"calibration\": {\"gf_compute_bps\": "
     << find_bps(runs, "mul_region_acc", active.name, std::size_t{1} << 20)
     << ", \"xor_compute_bps\": "
     << find_bps(runs, "xor_region", active.name, std::size_t{1} << 20)
     << "},\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CollectedRun& run = runs[i];
    os << "    {\"name\": \"" << json_escape(run.name) << "\", \"op\": \""
       << json_escape(run.meta.op) << "\", \"kernel\": \""
       << json_escape(run.meta.kernel) << "\", \"bytes\": "
       << run.meta.buffer_bytes << ", \"sources\": " << run.meta.sources
       << ", \"iterations\": " << run.iterations << ", \"real_time_s\": "
       << run.real_seconds << ", \"bytes_per_second\": "
       << throughput_bps(run) << "}" << (i + 1 < runs.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --json <path> / --json=<path> before google-benchmark parses the
  // rest of the command line.
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  register_kernel_benches(gf::scalar_kernels());
  if (gf::cpu_supports(gf::KernelKind::kSsse3)) {
    register_kernel_benches(*gf::ssse3_kernels());
  }
  if (gf::cpu_supports(gf::KernelKind::kAvx2)) {
    register_kernel_benches(*gf::avx2_kernels());
  }
  register_combine_benches();

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) write_json(json_path, reporter.collected());
  return 0;
}
