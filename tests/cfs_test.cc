#include "cfs/filesystem.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::cfs {
namespace {

FsConfig small_config(std::size_t chunk_size = 8 * 1024) {
  FsConfig config{cluster::cfs2().topology(), 6, 3, chunk_size, 99, {}};
  config.emul.node_bps = 400e6;
  return config;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  rng.fill_bytes(data);
  return data;
}

TEST(FileSystem, WriteReadRoundTrip) {
  FileSystem fs(small_config());
  const auto data = pattern_bytes(50'000, 1);  // ~1.02 stripes of 6x8KiB
  const auto meta = fs.write_file("a.bin", data);
  EXPECT_EQ(meta.size, data.size());
  EXPECT_EQ(meta.stripes.size(), 2u);  // 50000 / (6*8192) -> 2 stripes
  EXPECT_EQ(fs.read_file("a.bin"), data);
  EXPECT_EQ(fs.total_chunks(), 2u * 9u);
}

TEST(FileSystem, StatAndValidation) {
  FileSystem fs(small_config());
  EXPECT_EQ(fs.stat("nope"), std::nullopt);
  EXPECT_THROW(fs.read_file("nope"), std::out_of_range);
  const auto data = pattern_bytes(100, 2);
  fs.write_file("x", data);
  ASSERT_TRUE(fs.stat("x").has_value());
  EXPECT_EQ(fs.stat("x")->size, 100u);
  EXPECT_THROW(fs.write_file("x", data), std::invalid_argument);
  EXPECT_THROW(fs.write_file("y", {}), std::invalid_argument);
  EXPECT_THROW(fs.fail_node(999), std::out_of_range);
  EXPECT_THROW(fs.repair(), std::logic_error);
}

TEST(FileSystem, DegradedReadsServeDataWhileANodeIsDown) {
  FileSystem fs(small_config());
  const auto data = pattern_bytes(120'000, 3);
  fs.write_file("file", data);

  // Fail a node that actually hosts chunks of this file.
  cluster::NodeId victim = 0;
  std::size_t hosted = 0;
  for (cluster::NodeId n = 0; n < fs.topology().num_nodes(); ++n) {
    const auto chunks = fs.placement().chunks_on_node(n).size();
    if (chunks > hosted) {
      hosted = chunks;
      victim = n;
    }
  }
  ASSERT_GT(hosted, 0u);
  fs.fail_node(victim);

  EXPECT_EQ(fs.read_file("file"), data) << "degraded reads must be exact";
}

TEST(FileSystem, RepairRestoresRedundancyAndData) {
  FileSystem fs(small_config());
  const auto data = pattern_bytes(200'000, 4);
  fs.write_file("file", data);

  const auto occupancy = fs.placement().node_occupancy();
  cluster::NodeId victim = 0;
  for (cluster::NodeId n = 0; n < occupancy.size(); ++n) {
    if (occupancy[n] > occupancy[victim]) victim = n;
  }
  fs.fail_node(victim);

  const auto report = fs.repair();
  EXPECT_EQ(report.replacement, victim);
  EXPECT_EQ(report.chunks_rebuilt, occupancy[victim]);
  EXPECT_GT(report.cross_rack_bytes, 0u);
  EXPECT_GE(report.lambda, 1.0 - 1e-12);
  EXPECT_TRUE(fs.failed_nodes().empty());
  EXPECT_TRUE(fs.placement().validate());

  // Data fully intact after repair, and again after a second failure of a
  // different node.
  EXPECT_EQ(fs.read_file("file"), data);
  fs.fail_node((victim + 1) % fs.topology().num_nodes());
  fs.repair();
  EXPECT_EQ(fs.read_file("file"), data);
}

TEST(FileSystem, RepairOntoAFreshReplacementNode) {
  FileSystem fs(small_config());
  const auto data = pattern_bytes(100'000, 5);
  fs.write_file("file", data);

  // Fail the busiest node, repair onto a node with no chunks if possible.
  const auto occupancy = fs.placement().node_occupancy();
  cluster::NodeId victim = 0;
  for (cluster::NodeId n = 0; n < occupancy.size(); ++n) {
    if (occupancy[n] > occupancy[victim]) victim = n;
  }
  cluster::NodeId fresh = fs.topology().num_nodes();
  for (cluster::NodeId n = 0; n < occupancy.size(); ++n) {
    if (n != victim && occupancy[n] == 0) {
      fresh = n;
      break;
    }
  }
  if (fresh == fs.topology().num_nodes()) {
    GTEST_SKIP() << "no empty node in this layout";
  }
  fs.fail_node(victim);
  const auto report = fs.repair(fresh);
  EXPECT_EQ(report.replacement, fresh);
  EXPECT_TRUE(fs.placement().validate());
  EXPECT_EQ(fs.read_file("file"), data);
}

TEST(FileSystem, DoubleFailureRepairKeepsDataIntact) {
  FileSystem fs(small_config(4 * 1024));
  const auto data = pattern_bytes(150'000, 6);
  fs.write_file("file", data);
  fs.fail_node(2);
  fs.fail_node(7);
  const auto report = fs.repair();
  EXPECT_GT(report.chunks_rebuilt, 0u);
  EXPECT_TRUE(fs.placement().validate());
  EXPECT_EQ(fs.read_file("file"), data);
}

TEST(FileSystem, WriteWhileDegradedIsRejected) {
  FileSystem fs(small_config());
  fs.write_file("a", pattern_bytes(100, 7));
  fs.fail_node(0);
  EXPECT_THROW(fs.write_file("b", pattern_bytes(100, 8)), std::logic_error);
}

TEST(FileSystem, MultipleFilesShareTheCluster) {
  FileSystem fs(small_config());
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(pattern_bytes(30'000 + 1000 * i, 100 + i));
    fs.write_file("f" + std::to_string(i), payloads.back());
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fs.read_file("f" + std::to_string(i)), payloads[i]);
  }
  fs.fail_node(1);
  fs.repair();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fs.read_file("f" + std::to_string(i)), payloads[i]);
  }
}

}  // namespace
}  // namespace car::cfs
