#include "recovery/scheduler.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/check.h"

namespace car::recovery {

namespace {

/// Stripes in first-appearance order plus each stripe's first/last step ids.
struct StripeSpans {
  std::vector<cluster::StripeId> order;
  std::map<cluster::StripeId, std::pair<std::size_t, std::size_t>> span;
};

StripeSpans stripe_spans(const RecoveryPlan& plan) {
  StripeSpans out;
  for (const auto& step : plan.steps) {
    auto [it, inserted] =
        out.span.try_emplace(step.stripe, step.id, step.id);
    if (inserted) {
      out.order.push_back(step.stripe);
    } else {
      it->second.second = std::max(it->second.second, step.id);
    }
  }
  return out;
}

}  // namespace

RecoveryPlan schedule_windowed(const RecoveryPlan& plan, std::size_t window) {
  CAR_CHECK_GE(window, std::size_t{1}, "schedule_windowed");
  RecoveryPlan scheduled = plan;
  const auto spans = stripe_spans(plan);
  if (spans.order.size() <= window) return scheduled;

  // Lane l recovers stripes l, l+window, l+2*window, ...; each stripe's
  // root steps (those with no deps) additionally wait for the lane
  // predecessor's final step.
  for (std::size_t i = window; i < spans.order.size(); ++i) {
    const auto predecessor = spans.order[i - window];
    const auto current = spans.order[i];
    const std::size_t gate = spans.span.at(predecessor).second;
    const auto [first, last] = spans.span.at(current);
    for (std::size_t id = first; id <= last; ++id) {
      auto& step = scheduled.steps[id];
      if (step.stripe == current && step.deps.empty()) {
        step.deps.push_back(gate);
      }
    }
  }
  return scheduled;
}

std::vector<std::size_t> step_indegrees(std::span<const PlanStep> steps) {
  const std::size_t n = steps.size();
  std::vector<std::size_t> indegrees(n, 0);
  for (const auto& step : steps) {
    // Plan-DAG well-formedness: dependency ids must name existing steps.
    CAR_CHECK_LT(step.id, n, "step_indegrees: step id out of range");
    for (const std::size_t dep : step.deps) {
      CAR_CHECK_LT(dep, n, "step_indegrees: unknown dependency id");
      ++indegrees[step.id];
    }
  }
  return indegrees;
}

std::vector<std::size_t> step_indegrees(const RecoveryPlan& plan) {
  return step_indegrees(std::span<const PlanStep>(plan.steps));
}

std::vector<std::vector<std::size_t>> step_dependents(
    std::span<const PlanStep> steps) {
  const std::size_t n = steps.size();
  std::vector<std::vector<std::size_t>> dependents(n);
  for (const auto& step : steps) {
    CAR_CHECK_LT(step.id, n, "step_dependents: step id out of range");
    for (const std::size_t dep : step.deps) {
      CAR_CHECK_LT(dep, n, "step_dependents: unknown dependency id");
      dependents[dep].push_back(step.id);
    }
  }
  return dependents;
}

std::vector<std::vector<std::size_t>> step_dependents(
    const RecoveryPlan& plan) {
  return step_dependents(std::span<const PlanStep>(plan.steps));
}

std::size_t max_inflight_stripes(const RecoveryPlan& plan) {
  const auto spans = stripe_spans(plan);
  if (spans.order.empty()) return 0;

  // A stripe is "gated" when one of its steps depends on another stripe's
  // step; ungated stripes can all be in flight together, and each gated
  // stripe chains behind exactly one predecessor (lane structure), so the
  // bound is the number of ungated (lane-head) stripes.
  std::map<cluster::StripeId, bool> gated;
  for (const auto stripe : spans.order) gated[stripe] = false;
  for (const auto& step : plan.steps) {
    for (const std::size_t dep : step.deps) {
      if (plan.steps[dep].stripe != step.stripe) {
        gated[step.stripe] = true;
      }
    }
  }
  std::size_t heads = 0;
  for (const auto& [stripe, is_gated] : gated) heads += !is_gated;
  return heads;
}

}  // namespace car::recovery
