// Concurrency tests for the bounded worker-pool DAG executor.  These are the
// tests meant to run under the `tsan` CMake preset: they exercise wide
// fan-out, mid-plan failures, and cycle detection with real thread
// interleavings.
#include "emul/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace car::emul {
namespace {

struct Dag {
  std::vector<std::size_t> indegrees;
  std::vector<std::vector<std::size_t>> dependents;

  explicit Dag(std::size_t n) : indegrees(n, 0), dependents(n) {}

  void edge(std::size_t from, std::size_t to) {
    dependents[from].push_back(to);
    ++indegrees[to];
  }
};

TEST(Executor, RejectsZeroWorkers) {
  EXPECT_THROW(Executor(0), std::invalid_argument);
}

TEST(Executor, EmptyDagIsANoOp) {
  Executor exec(4);
  exec.run(0, {}, {}, [](std::size_t) { FAIL() << "no tasks to run"; });
}

TEST(Executor, RejectsMismatchedAdjacency) {
  Executor exec(4);
  EXPECT_THROW(exec.run(3, {0, 0}, {{}, {}, {}}, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(Executor, WideFanOutRunsEveryTaskOnce) {
  // One root unlocking 4000 leaves: the seed implementation would have
  // created 4001 threads here; the pool must stay bounded.
  constexpr std::size_t kLeaves = 4000;
  Dag dag(kLeaves + 1);
  for (std::size_t leaf = 1; leaf <= kLeaves; ++leaf) dag.edge(0, leaf);

  Executor exec(64);
  std::vector<std::atomic<int>> runs(kLeaves + 1);
  std::atomic<std::size_t> concurrent{0};
  std::atomic<std::size_t> high_water{0};
  exec.run(kLeaves + 1, dag.indegrees, dag.dependents, [&](std::size_t id) {
    const std::size_t now = ++concurrent;
    std::size_t peak = high_water.load();
    while (now > peak && !high_water.compare_exchange_weak(peak, now)) {
    }
    ++runs[id];
    --concurrent;
  });

  for (std::size_t id = 0; id <= kLeaves; ++id) {
    EXPECT_EQ(runs[id].load(), 1) << "task " << id;
  }
  EXPECT_LE(high_water.load(), exec.planned_workers(kLeaves + 1));
}

TEST(Executor, NeverExceedsHardwareConcurrency) {
  Executor exec(100000);
  const std::size_t hw = std::max<unsigned>(
      1, std::thread::hardware_concurrency());
  EXPECT_LE(exec.planned_workers(1u << 20), hw);
  EXPECT_EQ(exec.planned_workers(1), 1u);
}

TEST(Executor, TasksSeeCompletedDependencies) {
  // Layered random DAG: every task checks that all its prerequisites
  // finished before it started.
  constexpr std::size_t kTasks = 2000;
  util::Rng rng(123);
  Dag dag(kTasks);
  std::vector<std::vector<std::size_t>> deps_of(kTasks);
  for (std::size_t id = 1; id < kTasks; ++id) {
    const std::size_t n_deps = rng.next_below(3);
    for (std::size_t d = 0; d < n_deps; ++d) {
      const std::size_t dep = rng.next_below(id);
      deps_of[id].push_back(dep);
      dag.edge(dep, id);
    }
  }

  std::vector<std::atomic<bool>> done(kTasks);
  Executor exec(16);
  exec.run(kTasks, dag.indegrees, dag.dependents, [&](std::size_t id) {
    for (const std::size_t dep : deps_of[id]) {
      EXPECT_TRUE(done[dep].load()) << "task " << id << " ran before dep "
                                    << dep;
    }
    done[id] = true;
  });
  for (std::size_t id = 0; id < kTasks; ++id) EXPECT_TRUE(done[id].load());
}

TEST(Executor, MidPlanFailureDrainsAndRethrows) {
  // fan-in -> failing task -> dependents: the failure must abandon every
  // task downstream of it, drain the pool without deadlock, and rethrow.
  constexpr std::size_t kRoots = 50;
  constexpr std::size_t kTail = 50;
  const std::size_t failing = kRoots;
  Dag dag(kRoots + 1 + kTail);
  for (std::size_t r = 0; r < kRoots; ++r) dag.edge(r, failing);
  for (std::size_t t = 0; t < kTail; ++t) dag.edge(failing, failing + 1 + t);

  std::atomic<std::size_t> tail_runs{0};
  Executor exec(8);
  EXPECT_THROW(
      exec.run(dag.indegrees.size(), dag.indegrees, dag.dependents,
               [&](std::size_t id) {
                 if (id == failing) throw std::runtime_error("step exploded");
                 if (id > failing) ++tail_runs;
               }),
      std::runtime_error);
  EXPECT_EQ(tail_runs.load(), 0u);
}

TEST(Executor, FirstOfManyConcurrentFailuresWins) {
  constexpr std::size_t kTasks = 100;
  Dag dag(kTasks);  // all independent
  Executor exec(16);
  try {
    exec.run(kTasks, dag.indegrees, dag.dependents, [&](std::size_t id) {
      throw std::runtime_error("task " + std::to_string(id) + " failed");
    });
    FAIL() << "expected a rethrown task error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
  }
}

TEST(Executor, DetectsCycleWithNoRoots) {
  Dag dag(2);
  dag.edge(0, 1);
  dag.edge(1, 0);
  Executor exec(4);
  EXPECT_THROW(exec.run(2, dag.indegrees, dag.dependents, [](std::size_t) {}),
               std::invalid_argument);
}

TEST(Executor, DetectsCycleBehindCompletedPrefix) {
  // Task 0 runs fine; tasks 1 and 2 depend on each other, so after 0
  // completes the ready queue drains with work outstanding.
  Dag dag(3);
  dag.edge(0, 1);
  dag.edge(1, 2);
  dag.edge(2, 1);
  std::atomic<std::size_t> runs{0};
  Executor exec(4);
  EXPECT_THROW(
      exec.run(3, dag.indegrees, dag.dependents,
               [&](std::size_t) { ++runs; }),
      std::invalid_argument);
  EXPECT_EQ(runs.load(), 1u);
}

TEST(Executor, ShouldAbortStopsIssuingAndThrowsStateError) {
  // A long serial chain: flip the abort flag after a few tasks and verify
  // the rest never start and the run raises util::StateError.
  constexpr std::size_t kTasks = 200;
  Dag dag(kTasks);
  for (std::size_t i = 0; i + 1 < kTasks; ++i) dag.edge(i, i + 1);

  std::atomic<std::size_t> runs{0};
  std::atomic<bool> abort{false};
  Executor exec(4);
  EXPECT_THROW(exec.run(
                   kTasks, dag.indegrees, dag.dependents,
                   [&](std::size_t) {
                     if (++runs == 5) abort = true;
                   },
                   [&] { return abort.load(); }),
               util::StateError);
  EXPECT_LT(runs.load(), kTasks);
  EXPECT_GE(runs.load(), 5u);
}

TEST(Executor, ShouldAbortBeforeStartRunsNothing) {
  Dag dag(32);
  std::atomic<std::size_t> runs{0};
  Executor exec(4);
  EXPECT_THROW(exec.run(
                   32, dag.indegrees, dag.dependents,
                   [&](std::size_t) { ++runs; }, [] { return true; }),
               util::StateError);
  EXPECT_EQ(runs.load(), 0u);
}

TEST(Executor, NullShouldAbortNeverTriggers) {
  Dag dag(16);
  std::atomic<std::size_t> runs{0};
  Executor exec(4);
  exec.run(
      16, dag.indegrees, dag.dependents, [&](std::size_t) { ++runs; },
      std::function<bool()>{});
  EXPECT_EQ(runs.load(), 16u);
}

}  // namespace
}  // namespace car::emul
