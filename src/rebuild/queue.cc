#include "rebuild/queue.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace car::rebuild {

namespace {

bool higher_priority(const recovery::StripeExposure& a,
                     const recovery::StripeExposure& b) {
  return std::tuple(a.tolerance_left, a.cross_rack_cost(), a.stripe) <
         std::tuple(b.tolerance_left, b.cross_rack_cost(), b.stripe);
}

}  // namespace

void RebuildQueue::reset(std::vector<recovery::StripeExposure> census) {
  std::sort(census.begin(), census.end(), higher_priority);
  util::MutexLock lock(mu_);
  entries_ = std::move(census);
}

std::vector<recovery::StripeExposure> RebuildQueue::pop_batch(
    std::size_t max_stripes) {
  util::MutexLock lock(mu_);
  std::vector<recovery::StripeExposure> batch;
  if (entries_.empty() || max_stripes == 0) return batch;
  const std::vector<cluster::NodeId> signature = entries_.front().plan_hosts;
  std::vector<recovery::StripeExposure> keep;
  keep.reserve(entries_.size());
  for (auto& entry : entries_) {
    if (batch.size() < max_stripes && entry.plan_hosts == signature) {
      batch.push_back(std::move(entry));
    } else {
      keep.push_back(std::move(entry));
    }
  }
  entries_ = std::move(keep);
  return batch;
}

bool RebuildQueue::empty() const {
  util::MutexLock lock(mu_);
  return entries_.empty();
}

std::size_t RebuildQueue::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace car::rebuild
