#include "rebuild/scenario.h"

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "emul/cluster.h"
#include "rs/code.h"
#include "util/check.h"
#include "util/rng.h"

namespace car::rebuild {

namespace {

/// (stripe, chunk index) key matching recovery/exposure.cc's packing.
std::uint64_t chunk_key(cluster::StripeId stripe, std::size_t chunk_index) {
  return (static_cast<std::uint64_t>(stripe) << 16) |
         static_cast<std::uint64_t>(chunk_index);
}

struct CannedSpec {
  const char* name;
  const char* spec;
};

// The acceptance case: RS(4,2), node 1 (rack 0) fails at t=0 and node 5
// (rack 1) fails mid-rebuild, so stripes hit by both failures exhaust
// their tolerance and must preempt fresh-degraded work after the re-scan.
constexpr const char* kRollingTwoRack = R"(# rolling failures in two racks
name rolling-two-rack
racks 4,4,4,3
k 4
m 2
stripes 24
chunk-kib 32
slice-kib 8
seed 11
strategy car
node-mbps 100
oversub 4
page-kib 8
timeout 0.5
max-attempts 5
crash node=1 at=0
crash node=5 at=0.004
batch-stripes 4
concurrency 2
)";

// Three rolling failures with RS(4,3): the full tolerance of the code is
// consumed one failure at a time, with two re-plan epochs.
constexpr const char* kRollingTriple = R"(# three rolling failures
name rolling-triple
racks 4,4,4,4
k 4
m 3
stripes 18
chunk-kib 32
slice-kib 8
seed 13
strategy car
node-mbps 100
oversub 4
page-kib 8
timeout 0.5
max-attempts 5
crash node=2 at=0
crash node=6 at=0.003
crash node=10 at=0.008
batch-stripes 3
concurrency 2
)";

constexpr CannedSpec kCanned[] = {
    {"rolling-two-rack", kRollingTwoRack},
    {"rolling-triple", kRollingTriple},
};

}  // namespace

std::vector<std::string> canned_rebuild_scenario_names() {
  std::vector<std::string> names;
  for (const CannedSpec& canned : kCanned) names.emplace_back(canned.name);
  return names;
}

inject::Scenario canned_rebuild_scenario(const std::string& name) {
  for (const CannedSpec& canned : kCanned) {
    if (name == canned.name) return inject::parse_scenario(canned.spec);
  }
  throw std::invalid_argument("unknown rebuild scenario: " + name);
}

RebuildScenarioOutcome run_rebuild_scenario(const inject::Scenario& scenario,
                                            std::size_t populate_shards) {
  CAR_CHECK(!scenario.faults.node_crashes.empty(),
            "run_rebuild_scenario: the spec needs at least one `crash "
            "node=N at=T` event");
  CAR_CHECK_GT(populate_shards, std::size_t{0},
               "run_rebuild_scenario: populate_shards must be >= 1");
  CAR_CHECK(scenario.strategy == "car" || scenario.strategy == "rr",
            "run_rebuild_scenario: strategy must be car or rr");
  for (const inject::NodeCrash& crash : scenario.faults.node_crashes) {
    CAR_CHECK(crash.at_time_s.has_value(),
              "run_rebuild_scenario: rolling failures need `at=` virtual "
              "times (at-fraction is a single-plan trigger)");
  }
  const bool metadata =
      scenario.data_mode.has_value() && *scenario.data_mode == "metadata";
  CAR_CHECK(!scenario.data_mode.has_value() ||
                *scenario.data_mode == "real" || metadata,
            "run_rebuild_scenario: data-mode must be real or metadata");

  const cluster::Topology topology(scenario.racks);
  const rs::Code code(scenario.k, scenario.m);

  emul::EmulConfig config;
  config.node_bps = scenario.node_bps;
  config.oversubscription = scenario.oversubscription;
  config.page_bytes = scenario.page_bytes;
  config.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(topology, config);

  util::Rng rng(scenario.seed);
  const auto placement = cluster::Placement::random(
      topology, scenario.k, scenario.m, scenario.stripes, rng);

  std::vector<FailureEvent> events;
  std::set<cluster::StripeId> affected;
  for (const inject::NodeCrash& crash : scenario.faults.node_crashes) {
    events.push_back({crash.node, *crash.at_time_s});
    for (const cluster::ChunkRef& ref : placement.chunks_on_node(crash.node)) {
      affected.insert(ref.stripe);
    }
  }

  // Per-stripe seeded data (emul::Cluster::stripe_seed) makes the stored
  // bytes a pure function of (seed, stripe) — shard assignment is free to
  // change without changing a byte anywhere.
  std::vector<cluster::StripeId> materialise;
  if (metadata) {
    for (const cluster::StripeId stripe : affected) {
      materialise.push_back(stripe);
      if (materialise.size() == scenario.sample_stripes) break;
    }
  } else {
    for (cluster::StripeId stripe = 0; stripe < scenario.stripes; ++stripe) {
      materialise.push_back(stripe);
    }
  }

  std::unordered_map<cluster::StripeId, std::vector<rs::Chunk>> originals;
  if (populate_shards <= 1) {
    originals = cluster.populate_sampled(placement, code, scenario.chunk_bytes,
                                         scenario.seed, materialise);
  } else {
    std::vector<std::vector<cluster::StripeId>> subsets(populate_shards);
    for (std::size_t i = 0; i < materialise.size(); ++i) {
      subsets[i % populate_shards].push_back(materialise[i]);
    }
    std::vector<std::unordered_map<cluster::StripeId, std::vector<rs::Chunk>>>
        partials(populate_shards);
    std::vector<std::thread> workers;
    workers.reserve(populate_shards);
    for (std::size_t shard = 0; shard < populate_shards; ++shard) {
      workers.emplace_back([&, shard] {
        partials[shard] =
            cluster.populate_sampled(placement, code, scenario.chunk_bytes,
                                     scenario.seed, subsets[shard]);
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (auto& partial : partials) {
      originals.merge(partial);
    }
  }

  RebuildOptions options;
  options.strategy =
      scenario.strategy == "car" ? Strategy::kCar : Strategy::kRr;
  options.chunk_bytes = scenario.chunk_bytes;
  options.slice_bytes = scenario.slice_bytes;
  options.batch_stripes = scenario.rebuild_batch_stripes;
  options.max_inflight = scenario.rebuild_concurrency;
  options.seed = scenario.seed;
  // Scan sharding is bit-identical to serial scanning for every count, so
  // reusing the populate shard knob cannot change a logged byte.
  options.scan_shards = populate_shards;
  options.retry = scenario.retry;
  options.faults = scenario.faults;
  options.faults.node_crashes.clear();  // membership events, not faults
  if (metadata) {
    options.data.metadata_only = true;
    options.data.sampled_stripes = materialise;
  }

  RebuildCoordinator coordinator(cluster, placement, code, options);
  RebuildScenarioOutcome outcome;
  outcome.result = coordinator.run(events);
  outcome.stripes_materialised = materialise.size();

  // Completeness: every chunk that lived on a crashed node must have been
  // recovered, whether or not its stripe carried real bytes.
  std::unordered_set<std::uint64_t> recovered;
  for (const PublishedChunk& chunk : outcome.result.recovered) {
    recovered.insert(chunk_key(chunk.stripe, chunk.chunk_index));
  }
  for (const FailureEvent& event : events) {
    for (const cluster::ChunkRef& ref : placement.chunks_on_node(event.node)) {
      CAR_CHECK_STATE(
          recovered.contains(chunk_key(ref.stripe, ref.chunk_index)),
          "run_rebuild_scenario: chunk s" + std::to_string(ref.stripe) + "#" +
              std::to_string(ref.chunk_index) + " lost on node " +
              std::to_string(event.node) + " was never recovered");
    }
  }

  // Bit-exactness: every materialised recovered chunk must match the
  // original encoding byte for byte.
  const std::unordered_set<cluster::StripeId> real(materialise.begin(),
                                                   materialise.end());
  for (const PublishedChunk& chunk : outcome.result.recovered) {
    if (!real.contains(chunk.stripe)) continue;
    ++outcome.chunks_expected;
    const rs::Chunk* got = cluster.find_chunk(
        outcome.result.replacement, chunk.stripe, chunk.chunk_index);
    const auto it = originals.find(chunk.stripe);
    if (got != nullptr && it != originals.end() &&
        chunk.chunk_index < it->second.size() &&
        *got == it->second[chunk.chunk_index]) {
      ++outcome.chunks_verified;
    }
  }
  outcome.bit_exact = outcome.chunks_verified == outcome.chunks_expected;
  return outcome;
}

}  // namespace car::rebuild
