// carctl — command-line driver for the CAR library.
//
// Subcommands:
//   traffic   cross-rack repair traffic, CAR vs RR           (paper Fig. 7)
//   balance   load-balancing rate vs greedy iterations        (paper Fig. 8)
//   simulate  recovery time on the flow-level simulator       (paper Fig. 9)
//   emulate   real-byte recovery on the in-process emulator
//   trace     long-horizon Poisson failure trace study
//   validate  statically check an emitted recovery plan (DAG shape, byte
//             sizing, data flow, aggregator structure, traffic claims)
//   inject-run  execute a fault-injection scenario (src/inject) end to end:
//             link faults, transfer drops/corruption, mid-recovery node
//             crashes with recovery/multi re-planning; verifies bit-exact
//             recovery and can export the deterministic event log as JSON
//   rebuild-run  drive the self-healing rebuild control plane (src/rebuild)
//             over a rolling-failure schedule: exposure scan, prioritized
//             queue, overlapping validated batches, re-plan on every
//             membership change; verifies bit-exact recovery
//
// Common flags:
//   --cfs 1|2|3           pick a paper configuration (Table II), or
//   --racks 4,3,3 --k 6 --m 3   describe a custom cluster
//   --stripes N --runs N --seed S --chunk-mib N --csv
//
// Examples:
//   carctl traffic --cfs 3 --runs 50
//   carctl simulate --racks 5,5,5,5 --k 8 --m 4 --oversub 8 --chunk-mib 16
//   carctl emulate --cfs 2 --stripes 20 --chunk-mib 1
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "inject/scenario.h"
#include "rebuild/scenario.h"
#include "recovery/balancer.h"
#include "recovery/multi.h"
#include "recovery/plan_arena.h"
#include "recovery/plan_template.h"
#include "recovery/scheduler.h"
#include "recovery/validate.h"
#include "recovery/weighted.h"
#include "simnet/flowsim.h"
#include "util/bytes.h"
#include "util/flags.h"
#include "util/rss.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace.h"

namespace {

using namespace car;

cluster::CfsConfig config_from(const util::Flags& flags) {
  // Uniform datacenter shorthand: --num-racks R --rack-size N describes R
  // identical racks without spelling out a 100-element --racks list.
  if (flags.has("num-racks") || flags.has("rack-size")) {
    cluster::CfsConfig cfg;
    cfg.name = "uniform";
    const auto num_racks =
        static_cast<std::size_t>(flags.get_int("num-racks", 10));
    const auto rack_size =
        static_cast<std::size_t>(flags.get_int("rack-size", 10));
    if (num_racks == 0 || rack_size == 0) {
      throw std::invalid_argument(
          "--num-racks and --rack-size must be positive");
    }
    cfg.nodes_per_rack.assign(num_racks, rack_size);
    cfg.k = static_cast<std::size_t>(flags.get_int("k", 4));
    cfg.m = static_cast<std::size_t>(flags.get_int("m", 2));
    return cfg;
  }
  if (flags.has("racks") || flags.has("k") || flags.has("m")) {
    cluster::CfsConfig cfg;
    cfg.name = "custom";
    cfg.nodes_per_rack = flags.get_size_list("racks", {4, 3, 3});
    cfg.k = static_cast<std::size_t>(flags.get_int("k", 4));
    cfg.m = static_cast<std::size_t>(flags.get_int("m", 3));
    return cfg;
  }
  const auto index = flags.get_int("cfs", 2);
  if (index < 1 || index > 3) {
    throw std::invalid_argument("--cfs must be 1, 2, or 3");
  }
  return cluster::paper_configs()[static_cast<std::size_t>(index - 1)];
}

void emit(const util::TextTable& table, const util::Flags& flags) {
  if (flags.get_bool("csv")) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_string().c_str(), stdout);
  }
}

int cmd_traffic(const util::Flags& flags) {
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 100));
  const int runs = static_cast<int>(flags.get_int("runs", 50));
  const std::uint64_t chunk =
      static_cast<std::uint64_t>(flags.get_int("chunk-mib", 4)) * util::kMiB;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  util::RunningStats rr_stat, car_stat, rr_lambda, car_lambda;
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(seed + static_cast<std::uint64_t>(run) * 131);
    const auto placement = cluster::Placement::random(
        cfg.topology(), cfg.k, cfg.m, stripes, rng);
    const auto scenario = cluster::inject_random_failure(placement, rng);
    const auto censuses = recovery::build_censuses(placement, scenario);

    const auto rr = recovery::plan_rr(placement, censuses, rng);
    const auto rr_sum =
        recovery::rr_traffic(placement, rr, scenario.failed_rack);
    rr_stat.add(static_cast<double>(rr_sum.total_bytes(chunk)));
    rr_lambda.add(rr_sum.lambda());

    const auto car = recovery::balance_greedy(placement, censuses, {50});
    const auto car_sum = recovery::car_traffic(
        car.solutions, placement.topology().num_racks(),
        scenario.failed_rack);
    car_stat.add(static_cast<double>(car_sum.total_bytes(chunk)));
    car_lambda.add(car_sum.lambda());
  }

  util::TextTable table(
      {"config", "strategy", "cross-rack (mean)", "lambda (mean)"});
  table.add_row({cfg.name, "RR",
                 util::format_bytes(static_cast<std::uint64_t>(rr_stat.mean())),
                 util::fmt_double(rr_lambda.mean(), 3)});
  table.add_row({cfg.name, "CAR",
                 util::format_bytes(static_cast<std::uint64_t>(car_stat.mean())),
                 util::fmt_double(car_lambda.mean(), 3)});
  emit(table, flags);
  std::printf("saving: %s\n",
              util::fmt_percent(1.0 - car_stat.mean() / rr_stat.mean())
                  .c_str());
  return 0;
}

int cmd_balance(const util::Flags& flags) {
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 100));
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations", 50));
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  const auto scenario = cluster::inject_random_failure(placement, rng);
  const auto censuses = recovery::build_censuses(placement, scenario);
  const auto result =
      recovery::balance_greedy(placement, censuses, {iterations});

  util::TextTable table({"iteration", "lambda"});
  for (std::size_t i = 0; i < result.lambda_trace.size(); ++i) {
    table.add_row(
        {std::to_string(i), util::fmt_double(result.lambda_trace[i], 4)});
  }
  emit(table, flags);
  std::printf("substitutions: %zu\n", result.substitutions);
  return 0;
}

int cmd_simulate(const util::Flags& flags) {
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 100));
  const int runs = static_cast<int>(flags.get_int("runs", 20));
  const std::uint64_t chunk =
      static_cast<std::uint64_t>(flags.get_int("chunk-mib", 8)) * util::kMiB;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const rs::Code code(cfg.k, cfg.m);

  simnet::NetConfig net;
  net.node_bps = flags.get_double("node-gbps", 1.0) * 125e6;
  net.oversubscription = flags.get_double("oversub", 5.0);
  net.per_hop_latency_s = flags.get_double("hop-latency-us", 0.0) * 1e-6;

  util::RunningStats rr_stat, car_stat;
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(seed + static_cast<std::uint64_t>(run) * 613);
    const auto placement = cluster::Placement::random(
        cfg.topology(), cfg.k, cfg.m, stripes, rng);
    const auto scenario = cluster::inject_random_failure(placement, rng);
    const auto censuses = recovery::build_censuses(placement, scenario);
    const double lost = static_cast<double>(scenario.lost.size());

    const auto rr = recovery::plan_rr(placement, censuses, rng);
    rr_stat.add(simnet::simulate_plan(
                    placement.topology(),
                    recovery::build_rr_plan(placement, code, rr, chunk,
                                            scenario.failed_node),
                    net)
                    .makespan_s /
                lost);
    const auto car = recovery::balance_greedy(placement, censuses, {50});
    car_stat.add(simnet::simulate_plan(
                     placement.topology(),
                     recovery::build_car_plan(placement, code, car.solutions,
                                              chunk, scenario.failed_node),
                     net)
                     .makespan_s /
                 lost);
  }
  util::TextTable table({"config", "strategy", "time/chunk (s)", "stddev"});
  table.add_row({cfg.name, "RR", util::fmt_double(rr_stat.mean(), 4),
                 util::fmt_double(rr_stat.sample_stddev(), 4)});
  table.add_row({cfg.name, "CAR", util::fmt_double(car_stat.mean(), 4),
                 util::fmt_double(car_stat.sample_stddev(), 4)});
  emit(table, flags);
  std::printf("speedup: %s\n",
              util::fmt_percent(1.0 - car_stat.mean() / rr_stat.mean())
                  .c_str());
  return 0;
}

// Arena-backed scale path for `carctl emulate`, engaged by --metadata-only,
// --shards, or --fail-rack.  Plans through recovery/multi (a full-rack
// failure is just a multi-failure whose node set is one rack), lowers the
// plan into a columnar PlanArena, materialises real bytes only for the
// sampled stripes under --metadata-only, and executes with the sharded
// virtual-clock engine.  The reported timeline is invariant in both the
// shard count and the payload mode; the sampled stripes are verified
// bit-exactly against their seeded originals.
int cmd_emulate_scale(const util::Flags& flags) {
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 20));
  const std::uint64_t chunk = static_cast<std::uint64_t>(
      flags.get_double("chunk-mib", 0.25) * static_cast<double>(util::kMiB));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  // Replay defaults to one shard: the safe-window protocol admits one
  // drainer at a time whatever the shard count, so the serial calendar
  // drain is the fastest configuration; sharded replay stays available as
  // a generality/verification mode (results are bit-identical either way).
  const auto replay_shards =
      static_cast<std::size_t>(flags.get_int("replay-shards", 1));
  const bool metadata_only = flags.get_bool("metadata-only", false);
  const auto sample = static_cast<std::size_t>(flags.get_int("sample", 4));
  const bool fail_rack = flags.get_bool("fail-rack", false);
  const bool json = flags.get_bool("json", false);
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations", 0));
  const std::uint64_t slice_bytes =
      static_cast<std::uint64_t>(flags.get_int("slice-kib", 0)) * util::kKiB;
  const std::string strategy = flags.get("strategy", "car");
  const std::string engine_name = flags.get("engine", "calendar");
  emul::ReplayEngine engine;
  if (engine_name == "calendar") {
    engine = emul::ReplayEngine::kCalendar;
  } else if (engine_name == "heap") {
    engine = emul::ReplayEngine::kHeap;
  } else {
    throw std::invalid_argument("--engine must be calendar or heap");
  }
  const bool stream = flags.get_bool("stream", false);
  if (stream && engine != emul::ReplayEngine::kCalendar) {
    throw std::invalid_argument("--stream requires --engine calendar");
  }
  const rs::Code code(cfg.k, cfg.m);

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = flags.get_double("node-mbps", 400.0) * 1e6;
  emul_cfg.oversubscription = flags.get_double("oversub", 5.0);
  // The sharded engine replays timing deterministically, which needs the
  // virtual clock; wall-clock pacing is meaningless at this scale anyway.
  emul_cfg.clock_mode = emul::ClockMode::kVirtual;

  const auto host_start = std::chrono::steady_clock::now();
  emul::Cluster cluster(cfg.topology(), emul_cfg);
  util::Rng place_rng(seed);
  const auto placement = cluster::Placement::random(
      cfg.topology(), cfg.k, cfg.m, stripes, place_rng);
  const auto& topology = placement.topology();

  // Seeded failure choice: a random data-bearing node, widened to its whole
  // rack under --fail-rack.  The first failed node doubles as the
  // replacement slot, as in the single-failure flow.
  util::Rng fail_rng(seed + 1);
  const auto first_failed =
      cluster::inject_random_failure(placement, fail_rng).failed_node;
  std::vector<cluster::NodeId> failed_nodes{first_failed};
  if (fail_rack) {
    for (const auto node :
         topology.nodes_in_rack(topology.rack_of(first_failed))) {
      if (node != first_failed) failed_nodes.push_back(node);
    }
  }
  const auto mf = recovery::make_multi_failure(placement, failed_nodes);

  // Per-phase host timing: scan (census), plan (rack selection +
  // balancing), lower (template-cached plan instantiation straight into
  // the columnar arena), replay (payload pass + virtual-clock timing
  // replay).  Each phase is timed around exactly one call.
  const auto phase_clock = [] { return std::chrono::steady_clock::now(); };
  const auto phase_s = [](auto since, auto until) {
    return std::chrono::duration<double>(until - since).count();
  };

  const auto pipeline_start = phase_clock();
  auto t = pipeline_start;
  const auto censuses = recovery::build_multi_censuses(placement, mf, shards);
  const double scan_s = phase_s(t, phase_clock());
  if (censuses.empty()) {
    std::puts("no stripe lost a chunk — nothing to recover");
    return 0;
  }

  // Solve first in both modes: CAR's load balancing is a global barrier
  // (Algorithm 2 iterates over every census), so the streamed pipeline
  // overlaps the phases downstream of it — lowering against replay.
  const std::uint64_t slice =
      slice_bytes > 0 ? slice_bytes : std::max<std::uint64_t>(chunk, 1);
  recovery::PlanTemplateCache cache;
  double plan_s = 0.0;
  std::vector<recovery::MultiStripeSolution> car_solutions;
  std::vector<recovery::MultiRrSolution> rr_solutions;
  if (strategy == "car") {
    t = phase_clock();
    auto balanced = recovery::balance_multi(placement, censuses, iterations);
    plan_s = phase_s(t, phase_clock());
    car_solutions = std::move(balanced.solutions);
  } else if (strategy == "rr") {
    util::Rng rr_rng(seed + 2);
    t = phase_clock();
    rr_solutions = recovery::plan_multi_rr(placement, censuses, rr_rng);
    plan_s = phase_s(t, phase_clock());
  } else {
    throw std::invalid_argument("--strategy must be car or rr");
  }
  const std::size_t num_solutions =
      strategy == "car" ? car_solutions.size() : rr_solutions.size();

  // Stripes that carry real bytes: the first --sample distinct output
  // stripes under --metadata-only, every stripe otherwise (survivors of
  // affected stripes must hold bytes for the transfers to read).  Output
  // stripe order is exactly solution order, so the selection is known
  // before a single plan row is lowered — which is what lets the streamed
  // mode seed payloads up front.
  std::vector<cluster::StripeId> materialise;
  if (metadata_only) {
    for (std::size_t i = 0; i < num_solutions && materialise.size() < sample;
         ++i) {
      materialise.push_back(strategy == "car" ? car_solutions[i].stripe
                                              : rr_solutions[i].stripe);
    }
  } else {
    materialise.resize(stripes);
    std::iota(materialise.begin(), materialise.end(), cluster::StripeId{0});
  }
  const auto originals = cluster.populate_sampled(placement, code, chunk,
                                                  seed, materialise);
  for (const auto node : mf.failed_nodes) cluster.erase_node(node);

  emul::ArenaExecOptions options;
  options.shards = shards;
  options.replay_shards = replay_shards;
  options.metadata_only = metadata_only;
  options.replay_engine = engine;
  if (metadata_only) options.sampled_stripes = materialise;

  double lower_s = 0.0;
  double replay_s = 0.0;
  recovery::PlanArena arena;
  emul::ExecutionReport report;
  if (!stream) {
    t = phase_clock();
    arena = strategy == "car"
                ? recovery::build_multi_car_arena(placement, code,
                                                  car_solutions, chunk, slice,
                                                  mf.replacement, cache)
                : recovery::build_multi_rr_arena(placement, code, rr_solutions,
                                                 chunk, slice, mf.replacement,
                                                 cache);
    lower_s = phase_s(t, phase_clock());
    t = phase_clock();
    report = cluster.execute_arena(arena, options);
    replay_s = phase_s(t, phase_clock());
  } else {
    // Streamed pipeline: the reserve pass fixes the arena's extents, then
    // a producer thread instantiates templates and publishes its
    // stripe-closed row watermark while the executor replays published
    // rows concurrently.  lower_s is the producer's host effort (reserve +
    // append) even though the append overlaps replay wall-clock time.
    t = phase_clock();
    recovery::ArenaStreamBuild build =
        strategy == "car"
            ? recovery::reserve_multi_car_arena(placement, car_solutions,
                                                chunk, slice, mf.replacement,
                                                cache)
            : recovery::reserve_multi_rr_arena(placement, rr_solutions, chunk,
                                               slice, mf.replacement, cache);
    const double reserve_s = phase_s(t, phase_clock());
    emul::ArenaStreamFeed feed;
    std::exception_ptr produce_error;
    double append_s = 0.0;
    std::thread producer([&] {
      const auto p0 = phase_clock();
      try {
        const auto publish = [&feed](std::uint64_t rows) {
          feed.publish(rows);
        };
        if (strategy == "car") {
          recovery::stream_multi_car_arena(build, placement, code,
                                           car_solutions, cache, publish);
        } else {
          recovery::stream_multi_rr_arena(build, placement, code,
                                          rr_solutions, cache, publish);
        }
      } catch (...) {
        produce_error = std::current_exception();
      }
      // Close even on error so the executor's ingest loop terminates (its
      // closed-before-published check turns the early close into a
      // failure there).
      feed.close();
      append_s = phase_s(p0, phase_clock());
    });
    t = phase_clock();
    try {
      report = cluster.execute_arena_streaming(build.arena, options, feed);
    } catch (...) {
      producer.join();
      if (produce_error) std::rethrow_exception(produce_error);
      throw;
    }
    replay_s = phase_s(t, phase_clock());
    producer.join();
    if (produce_error) std::rethrow_exception(produce_error);
    lower_s = reserve_s + append_s;
    arena = std::move(build.arena);
  }
  const double end_to_end_s = phase_s(pipeline_start, phase_clock());
  const auto outputs = arena.outputs();

  std::size_t expected = 0;
  std::size_t verified = 0;
  for (const auto& out : outputs) {
    const auto it = originals.find(out.stripe);
    if (it == originals.end()) continue;
    ++expected;
    const auto* rec =
        cluster.find_chunk(mf.replacement, out.stripe, out.chunk_index);
    verified += rec != nullptr && *rec == it->second[out.chunk_index];
  }
  const double host_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  if (json) {
    std::printf(
        "{\n"
        "  \"command\": \"emulate-scale\",\n"
        "  \"strategy\": \"%s\",\n"
        "  \"stripes\": %zu,\n"
        "  \"racks\": %zu,\n"
        "  \"nodes\": %zu,\n"
        "  \"failure\": \"%s\",\n"
        "  \"affected_stripes\": %zu,\n"
        "  \"plan_steps\": %llu,\n"
        "  \"outputs\": %zu,\n"
        "  \"metadata_only\": %s,\n"
        "  \"shards\": %zu,\n"
        "  \"replay_shards\": %zu,\n"
        "  \"makespan_s\": %.17g,\n"
        "  \"cross_rack_bytes\": %llu,\n"
        "  \"verified_outputs\": %zu,\n"
        "  \"expected_outputs\": %zu,\n"
        "  \"timing\": {\n"
        "    \"shards\": %zu,\n"
        "    \"replay_shards\": %zu,\n"
        "    \"engine\": \"%s\",\n"
        "    \"streamed\": %s,\n"
        "    \"scan_s\": %.6f,\n"
        "    \"plan_s\": %.6f,\n"
        "    \"lower_s\": %.6f,\n"
        "    \"replay_s\": %.6f,\n"
        "    \"end_to_end_s\": %.6f,\n"
        "    \"host_s\": %.6f,\n"
        "    \"peak_rss_mib\": %.1f,\n"
        "    \"template_cache_hits\": %zu,\n"
        "    \"template_cache_misses\": %zu\n"
        "  }\n"
        "}\n",
        strategy.c_str(), stripes, topology.num_racks(), topology.num_nodes(),
        fail_rack ? "full-rack" : "single-node", censuses.size(),
        static_cast<unsigned long long>(arena.num_base_steps()),
        outputs.size(), metadata_only ? "true" : "false", shards,
        replay_shards, report.wall_s,
        static_cast<unsigned long long>(report.cross_rack_bytes), verified,
        expected, shards, replay_shards, engine_name.c_str(),
        stream ? "true" : "false", scan_s, plan_s, lower_s, replay_s,
        end_to_end_s, host_s,
        static_cast<double>(util::peak_rss_bytes()) /
            static_cast<double>(util::kMiB),
        cache.stats().hits, cache.stats().misses);
    return verified == expected && expected > 0 ? 0 : 1;
  }

  std::printf("%s | %zu racks x %zu nodes | %zu stripes | %s failure\n",
              strategy.c_str(), topology.num_racks(),
              topology.num_nodes() / topology.num_racks(), stripes,
              fail_rack ? "full-rack" : "single-node");
  std::printf("  affected stripes %zu | plan steps %llu | outputs %zu\n",
              censuses.size(),
              static_cast<unsigned long long>(arena.num_base_steps()),
              outputs.size());
  std::printf("  mode %s | shards %zu | replay shards %zu | engine %s%s | "
              "sampled stripes %zu\n",
              metadata_only ? "metadata-only" : "real-bytes", shards,
              replay_shards, engine_name.c_str(), stream ? " (streamed)" : "",
              materialise.size());
  std::printf("  timing: scan %.3f s | plan %.3f s | lower %.3f s | replay "
              "%.3f s (templates: %zu planned, %zu reused)\n",
              scan_s, plan_s, lower_s, replay_s, cache.stats().misses,
              cache.stats().hits);
  std::printf("  makespan %.3f s | cross-rack %s | end-to-end %.2f s | host "
              "%.2f s | peak rss %.0f MiB\n",
              report.wall_s,
              util::format_bytes(report.cross_rack_bytes).c_str(),
              end_to_end_s, host_s,
              static_cast<double>(util::peak_rss_bytes()) /
                  static_cast<double>(util::kMiB));
  std::printf("  verified %zu/%zu sampled outputs bit-exact\n", verified,
              expected);
  return verified == expected && expected > 0 ? 0 : 1;
}

int cmd_emulate(const util::Flags& flags) {
  if (flags.has("metadata-only") || flags.has("shards") ||
      flags.has("fail-rack")) {
    return cmd_emulate_scale(flags);
  }
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 20));
  const std::uint64_t chunk = static_cast<std::uint64_t>(
      flags.get_double("chunk-mib", 0.25) * static_cast<double>(util::kMiB));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto window = static_cast<std::size_t>(flags.get_int("window", 0));
  const std::uint64_t slice_bytes =
      static_cast<std::uint64_t>(flags.get_int("slice-kib", 0)) * util::kKiB;
  const rs::Code code(cfg.k, cfg.m);

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = flags.get_double("node-mbps", 400.0) * 1e6;
  emul_cfg.oversubscription = flags.get_double("oversub", 5.0);
  // --virtual reports the deterministic simulated makespan instead of
  // host wall time, which is what makes pipelining wins reproducible.
  if (flags.get_bool("virtual", false)) {
    emul_cfg.clock_mode = emul::ClockMode::kVirtual;
  }

  auto run = [&](bool use_car) {
    emul::Cluster cluster(cfg.topology(), emul_cfg);
    util::Rng data_rng(seed);
    const auto placement = cluster::Placement::random(
        cfg.topology(), cfg.k, cfg.m, stripes, data_rng);
    const auto originals = cluster.populate(placement, code, chunk, data_rng);
    util::Rng fail_rng(seed + 1);
    const auto scenario =
        cluster::inject_random_failure(placement, fail_rng);
    cluster.erase_node(scenario.failed_node);
    const auto censuses = recovery::build_censuses(placement, scenario);
    recovery::RecoveryPlan plan;
    if (use_car) {
      const auto balanced =
          recovery::balance_greedy(placement, censuses, {50});
      plan = recovery::build_car_plan(placement, code, balanced.solutions,
                                      chunk, scenario.failed_node);
    } else {
      util::Rng rr_rng(seed + 2);
      const auto rr = recovery::plan_rr(placement, censuses, rr_rng);
      plan = recovery::build_rr_plan(placement, code, rr, chunk,
                                     scenario.failed_node);
    }
    if (window > 0) plan = recovery::schedule_windowed(plan, window);
    // --slice-kib > 0 lowers the plan onto a slice grid so cross-rack
    // shipping of slice s overlaps partial decoding of slice s+1; the
    // recovered bytes and traffic totals are identical either way.
    const auto report =
        slice_bytes > 0
            ? cluster.execute(recovery::slice_plan(plan, slice_bytes))
            : cluster.execute(plan);
    std::size_t verified = 0;
    for (const auto& lost : scenario.lost) {
      const auto* rec = cluster.find_chunk(scenario.failed_node, lost.stripe,
                                           lost.chunk_index);
      verified += rec != nullptr &&
                  *rec == originals[lost.stripe][lost.chunk_index];
    }
    std::printf("%-4s verified %zu/%zu | wall %.3f s | compute %.3f s | "
                "cross-rack %s\n",
                use_car ? "CAR" : "RR", verified, scenario.lost.size(),
                report.wall_s, report.compute_s,
                util::format_bytes(report.cross_rack_bytes).c_str());
    return report.wall_s;
  };
  const double rr_wall = run(false);
  const double car_wall = run(true);
  std::printf("speedup: %s\n",
              util::fmt_percent(1.0 - car_wall / rr_wall).c_str());
  return 0;
}

// Deliberately corrupt a well-formed plan so the validator's rejection paths
// can be exercised end to end (`--inject`): each fixture mirrors one class of
// planner bug the validator must catch.
void inject_fault(recovery::RecoveryPlan& plan,
                  const cluster::Topology& topology,
                  const std::string& fault) {
  if (fault == "cycle") {
    // The first step of stripe 0 feeds (transitively) its final compute;
    // making it also *depend* on that compute closes a cycle.
    if (plan.steps.empty() || plan.outputs.empty()) return;
    plan.steps.front().deps.push_back(plan.outputs.front().step_id);
    return;
  }
  if (fault == "dangling-dep") {
    if (plan.steps.empty()) return;
    plan.steps.back().deps.push_back(plan.steps.size() + 1000);
    return;
  }
  if (fault == "byte-mismatch") {
    for (auto& step : plan.steps) {
      if (step.kind == recovery::StepKind::kTransfer) {
        step.bytes += 1;
        return;
      }
    }
    return;
  }
  if (fault == "double-aggregator") {
    // Duplicate an aggregator compute onto a sibling node in the same rack:
    // the rack now funnels through two aggregators for one stripe.
    for (const auto& step : plan.steps) {
      if (step.kind != recovery::StepKind::kCompute) continue;
      if (step.node == plan.replacement) continue;
      for (const auto sibling :
           topology.nodes_in_rack(topology.rack_of(step.node))) {
        if (sibling == step.node || sibling == plan.replacement) continue;
        recovery::PlanStep twin = step;
        twin.id = plan.steps.size();
        twin.node = sibling;
        plan.steps.push_back(std::move(twin));
        return;
      }
    }
    return;
  }
  throw std::invalid_argument(
      "--inject must be one of cycle, dangling-dep, byte-mismatch, "
      "double-aggregator");
}

int cmd_validate(const util::Flags& flags) {
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 50));
  const std::uint64_t chunk =
      static_cast<std::uint64_t>(flags.get_int("chunk-mib", 4)) * util::kMiB;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto window = static_cast<std::size_t>(flags.get_int("window", 0));
  const std::uint64_t slice_bytes =
      static_cast<std::uint64_t>(flags.get_int("slice-kib", 0)) * util::kKiB;
  const std::string strategy = flags.get("strategy", "all");
  const std::string inject = flags.get("inject", "");
  const rs::Code code(cfg.k, cfg.m);

  util::Rng rng(seed);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  const auto& topology = placement.topology();
  const auto scenario = cluster::inject_random_failure(placement, rng);
  const auto censuses = recovery::build_censuses(placement, scenario);
  const auto replacement_rack = topology.rack_of(scenario.failed_node);

  struct Candidate {
    std::string name;
    recovery::RecoveryPlan plan;
    std::optional<std::uint64_t> claimed;
  };
  std::vector<Candidate> candidates;
  const bool all = strategy == "all";

  if (all || strategy == "car") {
    const auto car = recovery::balance_greedy(placement, censuses, {50});
    candidates.push_back(
        {"car",
         recovery::build_car_plan(placement, code, car.solutions, chunk,
                                  scenario.failed_node),
         recovery::claimed_cross_rack_chunks(car.solutions,
                                             replacement_rack)});
  }
  if (all || strategy == "rr") {
    util::Rng rr_rng(seed + 1);
    const auto rr = recovery::plan_rr(placement, censuses, rr_rng);
    const auto summary =
        recovery::rr_traffic(placement, rr, scenario.failed_rack);
    candidates.push_back(
        {"rr",
         recovery::build_rr_plan(placement, code, rr, chunk,
                                 scenario.failed_node),
         summary.total_chunks()});
  }
  if (all || strategy == "weighted") {
    std::vector<double> bandwidth(topology.num_racks());
    for (std::size_t i = 0; i < bandwidth.size(); ++i) {
      bandwidth[i] = 1.0 + static_cast<double>(i % 3);
    }
    const auto weighted =
        recovery::balance_weighted(placement, censuses, bandwidth);
    candidates.push_back(
        {"weighted",
         recovery::build_car_plan(placement, code, weighted.solutions, chunk,
                                  scenario.failed_node),
         recovery::claimed_cross_rack_chunks(weighted.solutions,
                                             replacement_rack)});
  }
  if (all || strategy == "multi") {
    const auto multi_scenario = recovery::make_multi_failure(
        placement, {scenario.failed_node,
                    (scenario.failed_node + 1) % topology.num_nodes()});
    const auto multi_censuses =
        recovery::build_multi_censuses(placement, multi_scenario);
    const auto balanced = recovery::balance_multi(placement, multi_censuses);
    candidates.push_back(
        {"multi",
         recovery::build_multi_car_plan(placement, code, balanced.solutions,
                                        chunk, multi_scenario.replacement),
         recovery::claimed_cross_rack_chunks(balanced.solutions,
                                             multi_scenario.replacement_rack)});
  }
  if (candidates.empty()) {
    throw std::invalid_argument(
        "--strategy must be car, rr, weighted, multi, or all");
  }

  util::TextTable table({"plan", "steps", "verdict", "errors"});
  bool all_ok = true;
  for (auto& candidate : candidates) {
    if (window > 0) {
      candidate.plan = recovery::schedule_windowed(candidate.plan, window);
    }
    if (!inject.empty()) {
      inject_fault(candidate.plan, topology, inject);
    }
    recovery::ValidateOptions options;
    options.placement = &placement;
    options.expected_cross_rack_chunks = candidate.claimed;
    auto report = recovery::validate_plan(candidate.plan, topology, options);
    if (slice_bytes > 0) {
      // Also check the slice lowering the executors would run.  slice_plan
      // itself throws on plans that break the slicing contract (e.g. an
      // injected byte-mismatch), which counts as a validation failure.
      try {
        const auto sliced =
            recovery::slice_plan(candidate.plan, slice_bytes);
        auto sliced_report =
            recovery::validate_sliced_plan(sliced, candidate.plan, topology);
        for (auto& err : sliced_report.errors) {
          report.errors.push_back("sliced: " + std::move(err));
        }
        for (auto& note : sliced_report.notes) {
          report.notes.push_back("sliced: " + std::move(note));
        }
      } catch (const std::exception& e) {
        report.errors.push_back(std::string("sliced: slice_plan rejected "
                                            "the plan: ") +
                                e.what());
      }
    }
    all_ok = all_ok && report.ok();
    table.add_row({candidate.name,
                   std::to_string(candidate.plan.steps.size()),
                   report.ok() ? "ok" : "INVALID",
                   std::to_string(report.errors.size())});
    if (!report.ok()) {
      std::fputs(report.to_string().c_str(), stderr);
    }
  }
  emit(table, flags);
  return all_ok ? 0 : 1;
}

int cmd_trace(const util::Flags& flags) {
  const auto cfg = config_from(flags);
  const auto stripes = static_cast<std::size_t>(flags.get_int("stripes", 100));
  const auto failures =
      static_cast<std::size_t>(flags.get_int("failures", 30));
  const std::uint64_t chunk =
      static_cast<std::uint64_t>(flags.get_int("chunk-mib", 8)) * util::kMiB;
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));

  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  const auto events = workload::generate_failure_trace(
      placement.topology(), {failures, 24.0 * 3600.0}, rng);
  const simnet::NetConfig net;

  util::TextTable table({"strategy", "chunks rebuilt", "cross-rack",
                         "exposure (s)", "trace lambda"});
  for (const auto strategy :
       {workload::Strategy::kRr, workload::Strategy::kCar}) {
    util::Rng replay = rng.split();
    const auto report = workload::run_failure_trace(placement, events,
                                                    strategy, chunk, net,
                                                    replay);
    table.add_row({strategy == workload::Strategy::kCar ? "CAR" : "RR",
                   std::to_string(report.chunks_rebuilt),
                   util::format_bytes(report.cross_rack_bytes),
                   util::fmt_double(report.total_recovery_s, 1),
                   util::fmt_double(report.aggregate_lambda, 3)});
  }
  emit(table, flags);
  return 0;
}

// Run one fault-injection scenario end to end on the virtual-clock emulator:
// plan recovery, validate, execute under the scenario's FaultPlan with
// timeouts/retries/re-plans, and verify the recovered bytes.  Exit 0 only
// when recovery completed, every validation passed, and every recovered
// chunk is bit-exact.
int cmd_inject_run(const util::Flags& flags) {
  if (flags.get_bool("list")) {
    for (const auto& name : inject::canned_scenario_names()) {
      const auto scenario = inject::canned_scenario(name);
      std::printf("%-22s %zu racks, k=%zu m=%zu, %zu stripes, %zu faults\n",
                  name.c_str(), scenario.racks.size(), scenario.k, scenario.m,
                  scenario.stripes,
                  scenario.faults.link_faults.size() +
                      scenario.faults.transfer_faults.size() +
                      scenario.faults.node_crashes.size());
    }
    return 0;
  }

  inject::Scenario scenario;
  if (flags.has("spec")) {
    std::ifstream in(flags.get("spec", ""));
    if (!in) {
      throw std::invalid_argument("inject-run: cannot open --spec file");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    scenario = inject::parse_scenario(buffer.str());
  } else {
    scenario =
        inject::canned_scenario(flags.get("scenario", "mid-recovery-crash"));
  }
  if (flags.has("strategy")) scenario.strategy = flags.get("strategy", "car");
  if (flags.has("seed")) {
    scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  }
  if (flags.has("slice-kib")) {
    scenario.slice_bytes =
        static_cast<std::uint64_t>(flags.get_int("slice-kib", 0)) * util::kKiB;
  }

  const auto outcome = inject::run_scenario(scenario);
  const auto& run = outcome.run;

  if (flags.has("log-out")) {
    std::ofstream out(flags.get("log-out", ""));
    if (!out) {
      throw std::invalid_argument("inject-run: cannot open --log-out file");
    }
    out << run.log.to_json();
  }
  if (flags.get_bool("json")) {
    std::fputs(run.log.to_json().c_str(), stdout);
  }

  std::printf("scenario %s (%s): failed node %zu%s\n", scenario.name.c_str(),
              scenario.strategy.c_str(),
              static_cast<std::size_t>(outcome.failed_node),
              run.replanned ? ", re-planned after mid-recovery crash" : "");
  std::printf("  events: %s\n", run.log.summary().c_str());
  std::printf(
      "  transfers: %zu attempts (%zu retries, %zu timeouts, %zu drops, "
      "%zu corrupt), wasted wire %s\n",
      run.stats.attempts, run.stats.retries, run.stats.timeouts,
      run.stats.drops, run.stats.corruptions,
      util::format_bytes(run.stats.wasted_wire_bytes).c_str());
  std::printf("  recovery: wall %.3f s | cross-rack %s | chunks %zu/%zu "
              "bit-exact\n",
              run.report.wall_s,
              util::format_bytes(run.report.cross_rack_bytes).c_str(),
              outcome.chunks_verified, outcome.chunks_expected);

  const bool ok = outcome.bit_exact && outcome.chunks_expected > 0 &&
                  outcome.initial_validation.ok() &&
                  (!run.replanned || run.replan_validation.ok());
  std::printf("  result: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

// Drive the rebuild control plane over a rolling-failure scenario: every
// `crash node=N at=T` line is a membership event, affected stripes are
// scanned and prioritized by exposure, and up to `concurrency` validated
// batches overlap on one virtual timeline.  Exit 0 only when every lost
// chunk was recovered and every materialised chunk is bit-exact.
int cmd_rebuild_run(const util::Flags& flags) {
  if (flags.get_bool("list")) {
    for (const auto& name : rebuild::canned_rebuild_scenario_names()) {
      const auto scenario = rebuild::canned_rebuild_scenario(name);
      std::printf(
          "%-22s %zu racks, k=%zu m=%zu, %zu stripes, %zu rolling failures\n",
          name.c_str(), scenario.racks.size(), scenario.k, scenario.m,
          scenario.stripes, scenario.faults.node_crashes.size());
    }
    return 0;
  }

  inject::Scenario scenario;
  if (flags.has("spec")) {
    std::ifstream in(flags.get("spec", ""));
    if (!in) {
      throw std::invalid_argument("rebuild-run: cannot open --spec file");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    scenario = inject::parse_scenario(buffer.str());
  } else {
    scenario = rebuild::canned_rebuild_scenario(
        flags.get("scenario", "rolling-two-rack"));
  }
  if (flags.has("strategy")) scenario.strategy = flags.get("strategy", "car");
  if (flags.has("seed")) {
    scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  }
  if (flags.has("slice-kib")) {
    scenario.slice_bytes =
        static_cast<std::uint64_t>(flags.get_int("slice-kib", 0)) * util::kKiB;
  }
  if (flags.has("batch-stripes")) {
    scenario.rebuild_batch_stripes =
        static_cast<std::size_t>(flags.get_int("batch-stripes", 4));
  }
  if (flags.has("concurrency")) {
    scenario.rebuild_concurrency =
        static_cast<std::size_t>(flags.get_int("concurrency", 2));
  }
  const auto shards =
      static_cast<std::size_t>(flags.get_int("shards", 1));

  const auto outcome = rebuild::run_rebuild_scenario(scenario, shards);
  const auto& result = outcome.result;

  if (flags.has("log-out")) {
    std::ofstream out(flags.get("log-out", ""));
    if (!out) {
      throw std::invalid_argument("rebuild-run: cannot open --log-out file");
    }
    out << result.log.to_json();
  }
  if (flags.get_bool("json")) {
    // The event log stays a pure function of (scenario, seed) — host
    // timing lives only in this wrapper, never in the log (CI diffs
    // --log-out files byte-for-byte across runs and shard counts).
    // shards/replay_shards make the row reproducible from the JSON alone;
    // the control plane's batch driver replays serially, so replay_shards
    // is the literal 1 it runs with.
    std::printf(
        "{\n"
        "  \"timing\": {\n"
        "    \"shards\": %zu,\n"
        "    \"replay_shards\": 1,\n"
        "    \"scan_s\": %.6f,\n"
        "    \"plan_s\": %.6f,\n"
        "    \"template_cache_hits\": %zu,\n"
        "    \"template_cache_misses\": %zu\n"
        "  },\n"
        "  \"log\": ",
        shards, result.metrics.scan_host_s, result.metrics.plan_host_s,
        result.metrics.template_cache_hits,
        result.metrics.template_cache_misses);
    std::fputs(result.log.to_json().c_str(), stdout);
    std::fputs("}\n", stdout);
  }

  std::string failed;
  for (const auto node : result.failed_nodes) {
    if (!failed.empty()) failed += ",";
    failed += std::to_string(node);
  }
  std::printf("scenario %s (%s): %zu rolling failures [%s] -> replacement "
              "%zu\n",
              scenario.name.c_str(), scenario.strategy.c_str(),
              result.failed_nodes.size(), failed.c_str(),
              static_cast<std::size_t>(result.replacement));
  std::printf("  events: %s\n", result.log.summary().c_str());
  std::printf("  control plane: %zu scans, %zu batches (%zu cancelled, "
              "%zu stripes re-queued)\n",
              result.metrics.scans, result.metrics.batches_dispatched,
              result.metrics.batches_cancelled,
              result.metrics.stripes_requeued);
  std::printf("  planning host time: scan %.3f s | plan %.3f s "
              "(templates: %zu planned, %zu reused)\n",
              result.metrics.scan_host_s, result.metrics.plan_host_s,
              result.metrics.template_cache_misses,
              result.metrics.template_cache_hits);
  std::printf("  makespan %.3f s | exposure max %.3f s total %.3f s | "
              "at-risk max %.3f s total %.3f s\n",
              result.metrics.makespan_s, result.metrics.max_exposure_s,
              result.metrics.total_exposure_s, result.metrics.max_at_risk_s,
              result.metrics.total_at_risk_s);
  std::printf("  traffic: cross-rack %s | intra-rack %s | %zu transfer "
              "attempts (%zu retries)\n",
              util::format_bytes(result.report.cross_rack_bytes).c_str(),
              util::format_bytes(result.report.intra_rack_bytes).c_str(),
              result.stats.attempts, result.stats.retries);
  std::printf("  recovery: %zu chunks rebuilt, %zu/%zu bit-exact on %zu "
              "materialised stripes\n",
              result.recovered.size(), outcome.chunks_verified,
              outcome.chunks_expected, outcome.stripes_materialised);

  const bool ok = outcome.bit_exact && outcome.chunks_expected > 0;
  std::printf("  result: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

void usage() {
  std::puts(
      "usage: carctl "
      "<traffic|balance|simulate|emulate|trace|validate|inject-run|"
      "rebuild-run> [flags]\n"
      "  --cfs 1|2|3 | --racks 4,3,3 --k 6 --m 3 | "
      "--num-racks R --rack-size N\n"
      "  --stripes N --runs N --seed S --chunk-mib N --csv\n"
      "  simulate: --node-gbps G --oversub X --hop-latency-us U\n"
      "  emulate:  --node-mbps M --oversub X --window W --slice-kib S --virtual\n"
      "            scale path (arena engine): --metadata-only --sample N\n"
      "            --shards N --replay-shards N --fail-rack --iterations I\n"
      "            --strategy car|rr --engine calendar|heap --stream --json\n"
      "  trace:    --failures N\n"
      "  validate: --strategy car|rr|weighted|multi|all --window W\n"
      "            --slice-kib S (also validate the slice lowering)\n"
      "            --inject cycle|dangling-dep|byte-mismatch|"
      "double-aggregator\n"
      "  inject-run: --scenario NAME | --spec FILE | --list\n"
      "              --strategy car|rr --seed S --slice-kib S --json "
      "--log-out PATH\n"
      "  rebuild-run: --scenario NAME | --spec FILE | --list\n"
      "              --strategy car|rr --seed S --slice-kib S "
      "--batch-stripes N\n"
      "              --concurrency N --shards N --json --log-out PATH");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const auto flags = util::Flags::parse(argc - 2, argv + 2);
    if (command == "traffic") return cmd_traffic(flags);
    if (command == "balance") return cmd_balance(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "emulate") return cmd_emulate(flags);
    if (command == "trace") return cmd_trace(flags);
    if (command == "validate") return cmd_validate(flags);
    if (command == "inject-run") return cmd_inject_run(flags);
    if (command == "rebuild-run") return cmd_rebuild_run(flags);
    usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "carctl: %s\n", error.what());
    return 1;
  }
}
