// SSSE3 kernel variant: GF(2^8) multiply via PSHUFB over split nibble
// tables, 16 bytes per shuffle pair.
//
// This translation unit is compiled with -mssse3 and must contain nothing
// that runs before the CPUID check in select_kernels() — only the three
// kernel functions and their vtable.  All loads/stores are unaligned;
// loading every block before storing it makes exact aliasing (src == dst)
// well-defined, as the contract in kernels.h promises.
#include <tmmintrin.h>

#include "gf/kernels.h"

namespace car::gf {
namespace {

void xor_region_ssse3(const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(a1, b1));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_region_ssse3(std::uint8_t c, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(static_cast<char>(0x0F));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(x, mask));
    const __m128i ph = _mm_shuffle_epi8(
        hi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(pl, ph));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(t.lo[c][src[i] & 0x0F] ^
                                       t.hi[c][src[i] >> 4]);
  }
}

void mul_region_acc_ssse3(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t n) {
  const NibbleTables& t = nibble_tables();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(static_cast<char>(0x0F));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(x, mask));
    const __m128i ph = _mm_shuffle_epi8(
        hi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
  }
  for (; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(t.lo[c][src[i] & 0x0F] ^
                                        t.hi[c][src[i] >> 4]);
  }
}

}  // namespace

namespace detail {
const Kernels kSsse3Kernels = {KernelKind::kSsse3, "ssse3", &xor_region_ssse3,
                               &mul_region_ssse3, &mul_region_acc_ssse3};
}  // namespace detail

}  // namespace car::gf
