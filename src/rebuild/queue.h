// Prioritized rebuild queue: exposure tier first, cost tiebreak second.
//
// The queue holds the output of one scan epoch (recovery/exposure.h) sorted
// by scheduling priority:
//
//   1. tolerance_left ascending — a stripe one failure away from data loss
//      (tolerance 0) is rebuilt before any fresh-degraded stripe, the
//      Facebook warehouse-cluster prioritization (PAPERS.md);
//   2. estimated cross-rack cost ascending — cheap repairs first within a
//      tier, so exposed stripes leave the window sooner;
//   3. stripe id ascending — a total, deterministic order.
//
// Re-prioritization on membership change is by reconstruction: the
// coordinator re-scans at the new epoch and calls reset() with the fresh
// census, so a second failure that turns a queued fresh-degraded stripe
// into a most-exposed one automatically moves it to the front.
//
// Batches must share one failure signature (identical plan_hosts): a
// recovery/multi scenario treats every node outside its failed set as
// alive, so mixing signatures in one batch would let a planner read chunks
// from a dead node that merely isn't in *this* stripe's signature.
// pop_batch therefore returns a head-run of equal-signature entries.
//
// The queue is shared state between the coordinator and (in principle)
// concurrent scan producers, so it carries the PR 7 lock discipline:
// util::Mutex + CAR_GUARDED_BY, analyzable by -Wthread-safety.
#pragma once

#include <cstddef>
#include <vector>

#include "recovery/exposure.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace car::rebuild {

class RebuildQueue {
 public:
  /// Replace the queue's contents with a fresh epoch's census (any order);
  /// entries are sorted by the priority above.
  void reset(std::vector<recovery::StripeExposure> census) CAR_EXCLUDES(mu_);

  /// Remove and return the highest-priority entry plus subsequent entries
  /// with the *same failure signature* (plan_hosts), up to `max_stripes`
  /// total.  Lower-priority same-signature entries are taken in queue
  /// order, skipping over other signatures (which keep their position).
  /// Empty result iff the queue is empty.
  std::vector<recovery::StripeExposure> pop_batch(std::size_t max_stripes)
      CAR_EXCLUDES(mu_);

  [[nodiscard]] bool empty() const CAR_EXCLUDES(mu_);
  [[nodiscard]] std::size_t size() const CAR_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  /// Sorted by (tolerance_left, cross_rack_cost(), stripe) ascending.
  std::vector<recovery::StripeExposure> entries_ CAR_GUARDED_BY(mu_);
};

}  // namespace car::rebuild
