// Scenario-layer tests: the spec parser, the canned scenario library, and
// end-to-end determinism of run_scenario — two identical runs must produce
// byte-identical event logs (the property CI asserts on every canned
// scenario, and the test meant to run under the asan/tsan presets).
#include "inject/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace car::inject {
namespace {

TEST(ParseScenario, ReadsEveryKeyAndFaultType) {
  const auto scenario = parse_scenario(R"(# header comment
name parsed
racks 2,2,2        # trailing comment
k 3
m 1
stripes 5
chunk-kib 32
page-kib 8
seed 99
strategy rr
fail-node 1
node-mbps 250
oversub 3.5
timeout 0.125
max-attempts 9
backoff-base 0.01
backoff-factor 3
backoff-cap 0.5
backoff-jitter 0.1
fault link side=node-down id=4 start=0.1 end=0.2 factor=0.75
fault drop step=2 attempts=1,3 prob=0.5
fault corrupt attempts=2
fault crash node=5 at-fraction=0.25
fault crash node=3 at-time=1.5
)");
  EXPECT_EQ(scenario.name, "parsed");
  EXPECT_EQ(scenario.racks, (std::vector<std::size_t>{2, 2, 2}));
  EXPECT_EQ(scenario.k, 3u);
  EXPECT_EQ(scenario.m, 1u);
  EXPECT_EQ(scenario.stripes, 5u);
  EXPECT_EQ(scenario.chunk_bytes, 32u * 1024u);
  EXPECT_EQ(scenario.page_bytes, 8u * 1024u);
  EXPECT_EQ(scenario.seed, 99u);
  EXPECT_EQ(scenario.strategy, "rr");
  ASSERT_TRUE(scenario.fail_node.has_value());
  EXPECT_EQ(*scenario.fail_node, 1u);
  EXPECT_DOUBLE_EQ(scenario.node_bps, 250e6);
  EXPECT_DOUBLE_EQ(scenario.oversubscription, 3.5);
  EXPECT_DOUBLE_EQ(scenario.retry.transfer_timeout_s, 0.125);
  EXPECT_EQ(scenario.retry.max_attempts, 9u);
  EXPECT_DOUBLE_EQ(scenario.retry.backoff.base_s(), 0.01);
  EXPECT_DOUBLE_EQ(scenario.retry.backoff.factor(), 3.0);
  EXPECT_DOUBLE_EQ(scenario.retry.backoff.cap_s(), 0.5);
  EXPECT_DOUBLE_EQ(scenario.retry.backoff.jitter(), 0.1);

  ASSERT_EQ(scenario.faults.link_faults.size(), 1u);
  const auto& link = scenario.faults.link_faults.front();
  EXPECT_EQ(link.side, LinkSide::kNodeDown);
  EXPECT_EQ(link.id, 4u);
  EXPECT_DOUBLE_EQ(link.factor, 0.75);

  ASSERT_EQ(scenario.faults.transfer_faults.size(), 2u);
  const auto& drop = scenario.faults.transfer_faults[0];
  EXPECT_EQ(drop.kind, TransferFault::Kind::kDrop);
  ASSERT_TRUE(drop.step.has_value());
  EXPECT_EQ(*drop.step, 2u);
  EXPECT_EQ(drop.attempts, (std::vector<std::size_t>{1, 3}));
  EXPECT_DOUBLE_EQ(drop.probability, 0.5);
  EXPECT_EQ(scenario.faults.transfer_faults[1].kind,
            TransferFault::Kind::kCorrupt);

  ASSERT_EQ(scenario.faults.node_crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(*scenario.faults.node_crashes[0].at_fraction, 0.25);
  EXPECT_DOUBLE_EQ(*scenario.faults.node_crashes[1].at_time_s, 1.5);
}

TEST(ParseScenario, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_scenario("bogus-key 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("k\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("k one\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("strategy fancy\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("fault\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("fault warp speed=9\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("fault link side=sideways id=0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("fault drop step\n"), std::invalid_argument);
  EXPECT_NO_THROW(parse_scenario(""));  // empty spec = defaults
}

TEST(ParseScenario, RejectsDuplicateKeysNamingTheLine) {
  EXPECT_THROW(parse_scenario("k 3\nk 4\n"), std::invalid_argument);
  // fault lines are the one legitimately repeatable key.
  EXPECT_NO_THROW(
      parse_scenario("fault corrupt attempts=1\nfault corrupt attempts=2\n"));
  try {
    parse_scenario("stripes 4\nstripes 5\n");
    FAIL() << "duplicate key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    EXPECT_NE(what.find("stripes 5"), std::string::npos) << what;
  }
}

TEST(ParseScenario, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse_scenario("seed -1\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("slice-kib 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("slice-kib 1048577\n"), std::invalid_argument);
  EXPECT_NO_THROW(parse_scenario("slice-kib 1048576\n"));
  EXPECT_THROW(parse_scenario("data-mode fancy\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("sample 1048577\n"), std::invalid_argument);
}

TEST(ParseScenario, ReadsDataModeKeys) {
  const auto scenario = parse_scenario("data-mode metadata\nsample 6\n");
  ASSERT_TRUE(scenario.data_mode.has_value());
  EXPECT_EQ(*scenario.data_mode, "metadata");
  EXPECT_EQ(scenario.sample_stripes, 6u);
  EXPECT_FALSE(parse_scenario("").data_mode.has_value());
}

TEST(CannedScenarios, AllParseAndAreListed) {
  const auto names = canned_scenario_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    const auto scenario = canned_scenario(name);
    EXPECT_EQ(scenario.name, name);
    EXPECT_FALSE(scenario.faults.empty());
  }
  EXPECT_THROW(canned_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(RunScenario, LinkFlapTimesOutRetriesAndStaysBitExact) {
  const auto outcome = run_scenario(canned_scenario("link-flap"));
  EXPECT_TRUE(outcome.bit_exact);
  EXPECT_GT(outcome.chunks_expected, 0u);
  EXPECT_TRUE(outcome.initial_validation.ok());
  EXPECT_GT(outcome.run.stats.timeouts, 0u);
  EXPECT_GT(outcome.run.stats.retries, 0u);
  EXPECT_FALSE(outcome.run.replanned);
}

TEST(RunScenario, MidRecoveryCrashMeetsTheAcceptanceCriteria) {
  const auto outcome = run_scenario(canned_scenario("mid-recovery-crash"));
  // A second node dies at 40% completion: the run must finish with
  // bit-exact data via the recovery/multi re-plan, and the re-plan must
  // pass recovery/validate.
  EXPECT_TRUE(outcome.run.replanned);
  EXPECT_TRUE(outcome.run.replan_validation.ok());
  EXPECT_TRUE(outcome.bit_exact);
  EXPECT_GT(outcome.chunks_expected, 0u);
  EXPECT_EQ(outcome.run.log.count(EventKind::kNodeCrash), 1u);
  EXPECT_EQ(outcome.run.log.count(EventKind::kReplanValidated), 1u);
}

TEST(RunScenario, SlowStragglerRackRecoversDespiteDrops) {
  const auto outcome = run_scenario(canned_scenario("slow-straggler-rack"));
  EXPECT_TRUE(outcome.bit_exact);
  EXPECT_GT(outcome.run.stats.drops, 0u);
  EXPECT_GT(outcome.run.stats.wasted_wire_bytes, 0u);
}

TEST(RunScenario, RrStrategyAlsoSurvivesTheCrash) {
  auto scenario = canned_scenario("mid-recovery-crash");
  scenario.strategy = "rr";
  const auto outcome = run_scenario(scenario);
  EXPECT_TRUE(outcome.run.replanned);
  EXPECT_TRUE(outcome.run.replan_validation.ok());
  EXPECT_TRUE(outcome.bit_exact);
}

// The determinism satellite: same seed + same FaultPlan => byte-identical
// EventLog across two full runs (fresh cluster each time).
TEST(RunScenario, SameSeedRunsAreByteIdentical) {
  for (const auto& name : {"link-flap", "mid-recovery-crash"}) {
    const auto a = run_scenario(canned_scenario(name));
    const auto b = run_scenario(canned_scenario(name));
    EXPECT_EQ(a.run.log, b.run.log) << name;
    EXPECT_EQ(a.run.log.to_json(), b.run.log.to_json()) << name;
    EXPECT_EQ(a.run.report.wall_s, b.run.report.wall_s) << name;
    EXPECT_EQ(a.chunks_verified, b.chunks_verified) << name;
  }
}

// The metadata-mode differential: one spec run under data-mode real and
// data-mode metadata must produce byte-identical event logs and reports —
// payloads change what is *stored*, never what is *measured* — while the
// sampled stripes stay bit-exact.  (No corrupt faults here: their checksum
// detail needs payload bytes; see inject::DataPolicy.)
TEST(RunScenario, MetadataModeMatchesRealModeEventForEvent) {
  const std::string base = R"(name data-mode-diff
racks 3,3,3
k 3
m 2
stripes 10
chunk-kib 32
slice-kib 8
seed 21
strategy car
node-mbps 200
oversub 4
timeout 0.5
max-attempts 6
fault link side=rack-up id=1 start=0 end=0.2 factor=0.25
fault drop step=2 attempts=1 prob=1
)";
  const auto real = run_scenario(parse_scenario(base + "data-mode real\n"));
  const auto metadata = run_scenario(
      parse_scenario(base + "data-mode metadata\nsample 3\n"));

  EXPECT_EQ(real.run.log, metadata.run.log);
  EXPECT_EQ(real.run.log.to_json(), metadata.run.log.to_json());
  EXPECT_EQ(real.run.report.wall_s, metadata.run.report.wall_s);
  EXPECT_EQ(real.run.report.cross_rack_bytes,
            metadata.run.report.cross_rack_bytes);
  EXPECT_EQ(real.run.report.intra_rack_bytes,
            metadata.run.report.intra_rack_bytes);
  EXPECT_EQ(real.run.stats.attempts, metadata.run.stats.attempts);
  EXPECT_EQ(real.run.stats.wasted_wire_bytes,
            metadata.run.stats.wasted_wire_bytes);

  // Every materialised stripe is verified bit-exactly in both modes; the
  // metadata run materialises only the sampled subset.
  EXPECT_TRUE(real.bit_exact);
  EXPECT_TRUE(metadata.bit_exact);
  EXPECT_EQ(real.stripes_materialised, 10u);
  EXPECT_GE(metadata.stripes_materialised, 1u);
  EXPECT_LE(metadata.stripes_materialised, 3u);
  EXPECT_GT(real.chunks_expected, metadata.chunks_expected);
  EXPECT_GT(metadata.chunks_expected, 0u);
}

TEST(RunScenario, DifferentSeedsDiverge) {
  auto scenario = canned_scenario("slow-straggler-rack");
  const auto a = run_scenario(scenario);
  scenario.seed += 1;
  const auto b = run_scenario(scenario);
  EXPECT_TRUE(a.bit_exact);
  EXPECT_TRUE(b.bit_exact);
  EXPECT_NE(a.run.log.to_json(), b.run.log.to_json());
}

}  // namespace
}  // namespace car::inject
