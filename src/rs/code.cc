#include "rs/code.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "gf/gf256.h"
#include "gf/region.h"
#include "matrix/generator.h"
#include "util/check.h"

namespace car::rs {

Code::Code(std::size_t k, std::size_t m, Construction construction)
    : k_(k), m_(m), construction_(construction) {
  generator_ = construction == Construction::kVandermonde
                   ? matrix::systematic_vandermonde(k, m)
                   : matrix::systematic_cauchy(k, m);
}

std::span<const std::uint8_t> Code::generator_row(
    std::size_t chunk_index) const {
  CAR_CHECK_LT(chunk_index, n(),
               "Code::generator_row: chunk index out of range");
  return generator_.row(chunk_index);
}

namespace {

std::size_t common_chunk_size(std::span<const ChunkView> chunks) {
  CAR_CHECK(!chunks.empty(), "rs: empty chunk list");
  const std::size_t size = chunks.front().size();
  for (const auto& c : chunks) {
    CAR_CHECK_EQ(c.size(), size, "rs: chunks must all be the same size");
  }
  return size;
}

}  // namespace

std::vector<Chunk> Code::encode(std::span<const ChunkView> data) const {
  CAR_CHECK_EQ(data.size(), k_, "Code::encode: expected k data chunks");
  const std::size_t size = common_chunk_size(data);
  std::vector<Chunk> parity(m_, Chunk(size, 0));
  for (std::size_t p = 0; p < m_; ++p) {
    // Fused combine: one tiled pass over the parity chunk instead of k
    // full-buffer multiply-accumulate sweeps.
    gf::linear_combine_acc(generator_.row(k_ + p), data, parity[p]);
  }
  return parity;
}

std::vector<Chunk> Code::encode_stripe(std::span<const ChunkView> data) const {
  std::vector<Chunk> stripe;
  stripe.reserve(n());
  for (const auto& d : data) stripe.emplace_back(d.begin(), d.end());
  auto parity = encode(data);
  for (auto& p : parity) stripe.push_back(std::move(p));
  return stripe;
}

void Code::validate_survivors(std::span<const std::size_t> survivor_ids,
                              std::size_t exclude) const {
  CAR_CHECK_EQ(survivor_ids.size(), k_,
               "rs: need exactly k survivor chunks");
  std::unordered_set<std::size_t> seen;
  for (std::size_t id : survivor_ids) {
    CAR_CHECK_LT(id, n(), "rs: survivor id out of range");
    CAR_CHECK_NE(id, exclude,
                 "rs: survivor set contains the lost chunk");
    CAR_CHECK(seen.insert(id).second, "rs: duplicate survivor id");
  }
}

matrix::Matrix Code::survivor_inverse(
    std::span<const std::size_t> survivor_ids) const {
  return generator_.select_rows(survivor_ids).inverted();
}

std::vector<std::uint8_t> Code::repair_vector(
    std::size_t target, std::span<const std::size_t> survivors) const {
  CAR_CHECK_LT(target, n(), "Code::repair_vector: target out of range");
  validate_survivors(survivors, target);
  // y = g_target * X, where X inverts the survivor rows of G (Eq. 5-6).
  const matrix::Matrix x = survivor_inverse(survivors);
  const auto g_row = generator_.row(target);
  std::vector<std::uint8_t> y(k_, 0);
  const auto& f = gf::Gf256::instance();
  for (std::size_t j = 0; j < k_; ++j) {
    std::uint8_t acc = 0;
    for (std::size_t t = 0; t < k_; ++t) {
      acc ^= f.mul(g_row[t], x(t, j));
    }
    y[j] = acc;
  }
  return y;
}

Chunk Code::reconstruct(std::size_t target,
                        std::span<const std::size_t> survivor_ids,
                        std::span<const ChunkView> survivor_chunks) const {
  CAR_CHECK_EQ(survivor_chunks.size(), survivor_ids.size(),
               "Code::reconstruct: ids/chunks arity mismatch");
  const auto y = repair_vector(target, survivor_ids);
  const std::size_t size = common_chunk_size(survivor_chunks);
  Chunk out(size, 0);
  gf::linear_combine_acc(y, survivor_chunks, out);
  return out;
}

std::vector<Chunk> Code::decode_data(
    std::span<const std::size_t> survivor_ids,
    std::span<const ChunkView> survivor_chunks) const {
  CAR_CHECK_EQ(survivor_chunks.size(), survivor_ids.size(),
               "Code::decode_data: ids/chunks arity mismatch");
  validate_survivors(survivor_ids, n());  // `n()` never matches an id
  const std::size_t size = common_chunk_size(survivor_chunks);
  const matrix::Matrix x = survivor_inverse(survivor_ids);
  std::vector<Chunk> data(k_, Chunk(size, 0));
  for (std::size_t i = 0; i < k_; ++i) {
    gf::linear_combine_acc(x.row(i), survivor_chunks, data[i]);
  }
  return data;
}

}  // namespace car::rs
