#include "util/flags.h"

#include <gtest/gtest.h>

namespace car::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesSpaceAndEqualsSyntax) {
  const auto f = parse({"--k", "6", "--m=3", "--name", "cfs2"});
  EXPECT_EQ(f.get_int("k", 0), 6);
  EXPECT_EQ(f.get_int("m", 0), 3);
  EXPECT_EQ(f.get("name"), "cfs2");
  EXPECT_TRUE(f.has("k"));
  EXPECT_FALSE(f.has("z"));
}

TEST(Flags, BooleanSwitches) {
  const auto f = parse({"--csv", "--verbose", "--flag=false"});
  EXPECT_TRUE(f.get_bool("csv"));
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("flag"));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, BooleanBeforeAnotherFlagDoesNotSwallowIt) {
  const auto f = parse({"--csv", "--k", "4"});
  EXPECT_TRUE(f.get_bool("csv"));
  EXPECT_EQ(f.get_int("k", 0), 4);
}

TEST(Flags, PositionalArgumentsAreCollectedInOrder) {
  const auto f = parse({"traffic", "--k", "4", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "traffic");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, FallbacksApplyWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get("x", "def"), "def");
  EXPECT_EQ(f.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get_size_list("x", {1, 2}), (std::vector<std::size_t>{1, 2}));
}

TEST(Flags, NumericParsing) {
  const auto f = parse({"--rate", "2.5", "--n", "7"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 2.5);
  EXPECT_EQ(f.get_int("n", 0), 7);
  EXPECT_THROW((void)f.get_int("rate", 0), std::invalid_argument);
  const auto bad = parse({"--n", "7x"});
  EXPECT_THROW((void)bad.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)bad.get_double("n", 0), std::invalid_argument);
}

TEST(Flags, SizeListParsing) {
  const auto f = parse({"--racks", "4,3,3"});
  EXPECT_EQ(f.get_size_list("racks", {}),
            (std::vector<std::size_t>{4, 3, 3}));
  const auto bad = parse({"--racks", "4,x"});
  EXPECT_THROW(bad.get_size_list("racks", {}), std::invalid_argument);
}

TEST(Flags, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

}  // namespace
}  // namespace car::util
