#include "emul/link.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "util/check.h"

namespace car::emul {

SerialLink::SerialLink(double bytes_per_second)
    : rate_(bytes_per_second), epoch_(std::chrono::steady_clock::now()) {
  CAR_CHECK(bytes_per_second > 0, "SerialLink: rate must be positive");
}

void SerialLink::add_rate_window(double start, double end, double factor) {
  CAR_CHECK(std::isfinite(start) && std::isfinite(end),
            "SerialLink::add_rate_window: window bounds must be finite");
  CAR_CHECK(start >= 0.0 && start < end,
            "SerialLink::add_rate_window: requires 0 <= start < end");
  CAR_CHECK(factor >= 0.0,
            "SerialLink::add_rate_window: factor must be >= 0");
  util::MutexLock lock(mu_);
  windows_.push_back({start, end, factor});
}

double SerialLink::rate_at(double t) const {
  util::MutexLock lock(mu_);
  double rate = rate_;
  for (const auto& w : windows_) {
    if (t >= w.start && t < w.end) rate *= w.factor;
  }
  return rate;
}

double SerialLink::drain_locked(double begin, std::uint64_t bytes) const {
  if (bytes == 0) return begin;
  if (windows_.empty()) {
    return begin + static_cast<double>(bytes) / rate_;
  }
  // Integrate the piecewise-constant rate profile from `begin` until the
  // payload drains.  Every window start/end after `t` is a potential rate
  // change; a zero effective rate fast-forwards to the next boundary (all
  // windows end, so a blackout cannot extend to infinity).
  double t = begin;
  double remaining = static_cast<double>(bytes);
  for (;;) {
    double rate = rate_;
    double boundary = std::numeric_limits<double>::infinity();
    for (const auto& w : windows_) {
      if (t >= w.start && t < w.end) rate *= w.factor;
      if (w.start > t) boundary = std::min(boundary, w.start);
      if (w.end > t) boundary = std::min(boundary, w.end);
    }
    if (rate > 0.0) {
      const double finish = t + remaining / rate;
      if (finish <= boundary) return finish;
      remaining -= rate * (boundary - t);
    } else {
      CAR_CHECK_STATE(std::isfinite(boundary),
                      "SerialLink: blacked out with no closing window");
    }
    t = boundary;
  }
}

double SerialLink::drain_from(double busy_until, double start,
                              std::uint64_t bytes) const {
  util::MutexLock lock(mu_);
  return drain_locked(std::max(busy_until, start), bytes);
}

double SerialLink::reserve(double start, std::uint64_t bytes) {
  CAR_CHECK(std::isfinite(start) && start >= 0.0,
            "SerialLink::reserve: start must be a finite non-negative time");
  util::MutexLock lock(mu_);
  const double previous_free = next_free_;
  const double begin = std::max(next_free_, start);
  next_free_ = drain_locked(begin, bytes);
  // Timeline monotonicity: the link frees no earlier with every reservation
  // (never travels back in time), and no earlier than the requested start.
  CAR_DCHECK_GE(next_free_, previous_free, "SerialLink timeline regressed");
  CAR_DCHECK_GE(next_free_, begin, "SerialLink finish before start");
  total_bytes_ += bytes;
  return next_free_;
}

double SerialLink::reserve_pages(double start, std::uint64_t bytes,
                                 std::uint64_t page_bytes) {
  CAR_CHECK(std::isfinite(start) && start >= 0.0,
            "SerialLink::reserve_pages: start must be a finite non-negative "
            "time");
  CAR_CHECK(page_bytes > 0, "SerialLink::reserve_pages: page_bytes > 0");
  util::MutexLock lock(mu_);
  // The loop body is reserve()'s, page by page; keeping it inline (rather
  // than calling reserve) is what makes the single lock acquisition legal.
  double finish = start;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t page = std::min(remaining, page_bytes);
    const double previous_free = next_free_;
    const double begin = std::max(next_free_, start);
    next_free_ = drain_locked(begin, page);
    CAR_DCHECK_GE(next_free_, previous_free, "SerialLink timeline regressed");
    CAR_DCHECK_GE(next_free_, begin, "SerialLink finish before start");
    total_bytes_ += page;
    finish = next_free_;
    remaining -= page;
  }
  return finish;
}

double SerialLink::preview(double start, std::uint64_t bytes) const {
  CAR_CHECK(std::isfinite(start) && start >= 0.0,
            "SerialLink::preview: start must be a finite non-negative time");
  util::MutexLock lock(mu_);
  return drain_locked(std::max(next_free_, start), bytes);
}

void SerialLink::transmit(std::uint64_t bytes) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - epoch_;
  const double finish = reserve(elapsed.count(), bytes);
  std::this_thread::sleep_until(
      epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(finish)));
}

double SerialLink::next_free() const {
  util::MutexLock lock(mu_);
  return next_free_;
}

std::uint64_t SerialLink::bytes_transmitted() const noexcept {
  util::MutexLock lock(mu_);
  return total_bytes_;
}

LinkPath::LinkPath(std::vector<SerialLink*> hops) : hops_(std::move(hops)) {
  CAR_CHECK(hops_.size() <= kMaxHops, "LinkPath: too many hops");
  for (const SerialLink* hop : hops_) {
    CAR_CHECK(hop != nullptr, "LinkPath: null hop");
  }
}

double LinkPath::reserve(double start, std::uint64_t bytes,
                         std::uint64_t page_bytes) {
  CAR_CHECK(page_bytes > 0, "LinkPath::reserve: page_bytes must be > 0");
  double finish = start;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t page = std::min(remaining, page_bytes);
    for (SerialLink* hop : hops_) {
      finish = std::max(finish, hop->reserve(start, page));
    }
    remaining -= page;
  }
  return finish;
}

double LinkPath::preview(double start, std::uint64_t bytes,
                         std::uint64_t page_bytes) const {
  CAR_CHECK(page_bytes > 0, "LinkPath::preview: page_bytes must be > 0");
  // Shadow each hop's next-free time so successive pages of this transfer
  // queue behind each other exactly as the committing loop would make them.
  // Stack array, not a vector: preview runs once per candidate transfer in
  // the planner's inner loop, and the constructor bounds hops to kMaxHops.
  std::array<double, kMaxHops> busy{};
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    busy[h] = hops_[h]->next_free();
  }
  double finish = start;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t page = std::min(remaining, page_bytes);
    for (std::size_t h = 0; h < hops_.size(); ++h) {
      busy[h] = hops_[h]->drain_from(busy[h], start, page);
      finish = std::max(finish, busy[h]);
    }
    remaining -= page;
  }
  return finish;
}

}  // namespace car::emul
