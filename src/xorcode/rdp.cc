#include "xorcode/rdp.h"

#include <algorithm>
#include <set>

#include "gf/region.h"
#include "util/check.h"

namespace car::xorcode {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

void xor_into(ChunkView src, Chunk& dst) {
  if (dst.empty()) {
    dst.assign(src.begin(), src.end());
  } else {
    gf::xor_region(src, dst);
  }
}

}  // namespace

Rdp::Rdp(std::size_t p) : p_(p) {
  CAR_CHECK(p >= 3 && is_prime(p), "Rdp: p must be a prime >= 3");
}

Stripe Rdp::encode(const std::vector<std::vector<Chunk>>& data) const {
  CAR_CHECK_EQ(data.size(), data_disks(),
               "Rdp::encode: expected p-1 data columns");
  std::size_t symbol_size = 0;
  for (const auto& column : data) {
    CAR_CHECK_EQ(column.size(), rows(),
                 "Rdp::encode: each column needs p-1 rows");
    for (const auto& symbol : column) {
      if (symbol_size == 0) symbol_size = symbol.size();
      CAR_CHECK_EQ(symbol.size(), symbol_size,
                   "Rdp::encode: symbol size mismatch");
    }
  }

  Stripe stripe(total_disks(),
                std::vector<Chunk>(rows(), Chunk(symbol_size, 0)));
  for (std::size_t j = 0; j < data_disks(); ++j) {
    stripe[j] = data[j];
  }
  // Row parity.
  for (std::size_t r = 0; r < rows(); ++r) {
    Chunk& parity = stripe[kRowParity(p_)][r];
    for (std::size_t j = 0; j < data_disks(); ++j) {
      gf::xor_region(stripe[j][r], parity);
    }
  }
  // Diagonal parity over columns 0..p-1 (data + row parity); diagonal
  // p-1 is the missing diagonal.
  for (std::size_t d = 0; d + 1 < p_; ++d) {
    Chunk& parity = stripe[kDiagParity(p_)][d];
    for (std::size_t j = 0; j < p_; ++j) {
      const std::size_t i = (d + p_ - j % p_) % p_;
      if (i < rows()) gf::xor_region(stripe[j][i], parity);
    }
  }
  return stripe;
}

void Rdp::check_stripe(const Stripe& stripe) const {
  CAR_CHECK_EQ(stripe.size(), total_disks(),
               "Rdp: stripe must have p+1 columns");
  for (const auto& column : stripe) {
    CAR_CHECK_EQ(column.size(), rows(),
                 "Rdp: each column must have p-1 rows");
  }
}

bool Rdp::verify(const Stripe& stripe) const {
  check_stripe(stripe);
  std::vector<std::vector<Chunk>> data(stripe.begin(),
                                       stripe.begin() + data_disks());
  const auto expected = encode(data);
  return expected[kRowParity(p_)] == stripe[kRowParity(p_)] &&
         expected[kDiagParity(p_)] == stripe[kDiagParity(p_)];
}

std::vector<Chunk> Rdp::recover_conventional(const Stripe& stripe,
                                             std::size_t failed_disk) const {
  check_stripe(stripe);
  CAR_CHECK_LT(failed_disk, total_disks(), "Rdp: failed disk out of range");
  std::vector<Chunk> rebuilt(rows());
  if (failed_disk == kDiagParity(p_)) {
    // Re-encode the diagonals from the surviving p columns.
    for (std::size_t d = 0; d + 1 < p_; ++d) {
      for (std::size_t j = 0; j < p_; ++j) {
        const std::size_t i = (d + p_ - j % p_) % p_;
        if (i < rows()) xor_into(stripe[j][i], rebuilt[d]);
      }
    }
    return rebuilt;
  }
  // Row method: XOR the other p-1 columns of each row.
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t j = 0; j < p_; ++j) {
      if (j == failed_disk) continue;
      xor_into(stripe[j][r], rebuilt[r]);
    }
  }
  return rebuilt;
}

Rdp::RecoveryPlan Rdp::plan_recovery(
    std::size_t failed_disk, const std::vector<bool>& use_diagonal) const {
  CAR_CHECK_LT(failed_disk, data_disks(),
               "Rdp::plan_recovery: hybrid recovery targets data disks");
  CAR_CHECK_EQ(use_diagonal.size(), rows(),
               "Rdp::plan_recovery: assignment arity");

  RecoveryPlan plan;
  plan.failed_disk = failed_disk;
  plan.use_diagonal = use_diagonal;
  std::set<std::pair<std::size_t, std::size_t>> reads;

  for (std::size_t r = 0; r < rows(); ++r) {
    if (!use_diagonal[r]) {
      // Row group: every other column in row r.
      for (std::size_t j = 0; j < p_; ++j) {
        if (j != failed_disk) reads.insert({j, r});
      }
      continue;
    }
    const std::size_t d = (r + failed_disk) % p_;
    CAR_CHECK_NE(d + 1, p_,
                 "Rdp::plan_recovery: row lies on the missing diagonal and "
                 "must use its row group");
    // Diagonal group: the other cells of diagonal d plus its parity.
    for (std::size_t j = 0; j < p_; ++j) {
      if (j == failed_disk) continue;
      const std::size_t i = (d + p_ - j) % p_;
      if (i < rows()) reads.insert({j, i});
    }
    reads.insert({kDiagParity(p_), d});
  }
  plan.reads.assign(reads.begin(), reads.end());
  return plan;
}

Rdp::RecoveryPlan Rdp::plan_hybrid_recovery(std::size_t failed_disk) const {
  CAR_CHECK_LT(failed_disk, data_disks(),
               "Rdp::plan_hybrid_recovery: hybrid recovery targets data "
               "disks");
  const std::size_t n = rows();
  RecoveryPlan best;
  std::size_t best_reads = static_cast<std::size_t>(-1);
  std::size_t best_imbalance = n + 1;

  for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<bool> assignment(n);
    bool valid = true;
    std::size_t diagonals = 0;
    for (std::size_t r = 0; r < n; ++r) {
      assignment[r] = (mask >> r) & 1u;
      if (!assignment[r]) continue;
      ++diagonals;
      if ((r + failed_disk) % p_ + 1 == p_) {
        valid = false;  // missing diagonal
        break;
      }
    }
    if (!valid) continue;
    auto plan = plan_recovery(failed_disk, assignment);
    const std::size_t imbalance =
        diagonals > n - diagonals ? 2 * diagonals - n : n - 2 * diagonals;
    if (plan.reads.size() < best_reads ||
        (plan.reads.size() == best_reads && imbalance < best_imbalance)) {
      best_reads = plan.reads.size();
      best_imbalance = imbalance;
      best = std::move(plan);
    }
  }
  return best;
}

std::vector<Chunk> Rdp::recover_with_plan(const Stripe& stripe,
                                          const RecoveryPlan& plan) const {
  check_stripe(stripe);
  std::vector<Chunk> rebuilt(rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    if (!plan.use_diagonal[r]) {
      for (std::size_t j = 0; j < p_; ++j) {
        if (j != plan.failed_disk) xor_into(stripe[j][r], rebuilt[r]);
      }
      continue;
    }
    const std::size_t d = (r + plan.failed_disk) % p_;
    for (std::size_t j = 0; j < p_; ++j) {
      if (j == plan.failed_disk) continue;
      const std::size_t i = (d + p_ - j) % p_;
      if (i < rows()) xor_into(stripe[j][i], rebuilt[r]);
    }
    xor_into(stripe[kDiagParity(p_)][d], rebuilt[r]);
  }
  return rebuilt;
}

}  // namespace car::xorcode
