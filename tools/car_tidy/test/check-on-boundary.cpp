// Fixture for car-check-on-boundary.  Mock CAR_CHECK/CAR_BOUNDARY stand in
// for util/check.h and util/attributes.h.
#define CAR_BOUNDARY __attribute__((annotate("car_boundary")))
#define CAR_CHECK(cond, msg) \
  do {                       \
    if (!(cond)) throw msg;  \
  } while (0)

// ---- violations -----------------------------------------------------------

CAR_BOUNDARY void unchecked_entry(int *out, int n);
void unchecked_entry(int *out, int n) {  // EXPECT: does not validate its arguments
  out[0] = n;
}

class Pool {
 public:
  void resize(unsigned long n) CAR_BOUNDARY;

 private:
  unsigned long capacity_ = 0;
};

void Pool::resize(unsigned long n) {  // EXPECT: does not validate its arguments
  capacity_ = n;
}

// ---- non-findings ---------------------------------------------------------

// Contract macro first: the canonical boundary shape.
CAR_BOUNDARY void checked_entry(int *out, int n);
void checked_entry(int *out, int n) {
  CAR_CHECK(out != nullptr && n > 0, "checked_entry: bad arguments");
  out[0] = n;
}

// Guard `if` first: validation by early return.
CAR_BOUNDARY int guarded_entry(int n);
int guarded_entry(int n) {
  if (n <= 0) return 0;
  return n * 2;
}

// Leading declarations may materialise an argument before the check.
CAR_BOUNDARY int decl_then_check(int n);
int decl_then_check(int n) {
  const int doubled = n * 2;
  CAR_CHECK(doubled >= n, "decl_then_check: overflow");
  return doubled;
}

// Untagged functions are out of scope however they start.
void not_a_boundary(int *out, int n) { out[0] = n; }
