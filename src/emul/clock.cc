#include "emul/clock.h"

#include <string>
#include <thread>

#include "util/check.h"

namespace car::emul {

EmulClock::EmulClock(ClockMode mode)
    : mode_(mode), epoch_(std::chrono::steady_clock::now()) {}

double EmulClock::now() const {
  if (mode_ == ClockMode::kReal) {
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - epoch_;
    return dt.count();
  }
  util::MutexLock lock(mu_);
  return virtual_now_;
}

void EmulClock::sleep_until(double t) {
  if (mode_ == ClockMode::kReal) {
    std::this_thread::sleep_until(
        epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(t)));
    return;
  }
  advance_to(t);
}

void EmulClock::advance_to(double t) {
  if (mode_ == ClockMode::kReal) return;
  util::MutexLock lock(mu_);
  if (t > virtual_now_) virtual_now_ = t;
}

void EmulClock::require_virtual(const char* who) const {
  CAR_CHECK_STATE(mode_ == ClockMode::kVirtual,
                  std::string(who) +
                      ": requires ClockMode::kVirtual (wall-clock timelines "
                      "are not reproducible)");
}

}  // namespace car::emul
