#include "emul/calendar_queue.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/check.h"

namespace car::emul {

namespace {

// Min-heap ordering for std::push_heap / std::pop_heap (which build
// max-heaps under the given comparator, so invert it).
struct EntryGreater {
  bool operator()(const CalendarQueue::Entry& a,
                  const CalendarQueue::Entry& b) const noexcept {
    return b < a;
  }
};

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

CalendarQueue::CalendarQueue(std::size_t expected_events) {
  // Aim for tens of events per bucket on a uniformly spread timeline; the
  // clamp keeps the bucket array itself cache- and memory-friendly (the
  // upper bound is ~3 MiB of vector headers).
  const std::size_t hint = expected_events == 0 ? 4096 : expected_events / 32;
  bucket_count_ = next_pow2(std::clamp<std::size_t>(hint, 64, 1u << 17));
  buckets_.resize(bucket_count_);
  cursor_ = bucket_count_;  // empty rung: first prepare() rewindows
}

std::size_t CalendarQueue::bucket_index(double time) const noexcept {
  const double offset = (time - rung_start_) / width_;
  // Anything at or beyond the rung's span routes to the overflow; the cast
  // below is then guaranteed in range (bucket_count_ <= 2^17).
  if (!(offset < static_cast<double>(bucket_count_))) return bucket_count_;
  // Below the rung start: clamp to bucket 0 (a negative double to size_t
  // is UB, and routing to the overflow would pop the event AFTER the
  // rung).  This happens when rewindow() derives the rung from a
  // far-future overflow — rung_start_ becomes the overflow minimum, which
  // can sit well past the drain frontier — and the caller then pushes a
  // still-monotone event into that gap (e.g. the rebuild control plane
  // admitting a batch after a deadline pause, or a streamed replay shard
  // ingesting t_start seeds after draining ahead of the feed).  push()
  // diverts bucket 0 (always <= cursor_) into the live drain heap, which
  // restores exact (time, key) order; rewindow()'s re-bucketing never
  // sees sub-rung times because rung_start_ is the overflow minimum there.
  if (offset < 0.0) return 0;
  return static_cast<std::size_t>(offset);
}

void CalendarQueue::push(double time, std::uint64_t key) {
#ifndef NDEBUG
  if (popped_any_) {
    const Entry incoming{time, key};
    CAR_DCHECK(last_popped_ < incoming,
               "CalendarQueue::push behind the drain cursor (monotone "
               "insertion discipline violated)");
  }
#endif
  ++size_;
  if (width_ > 0.0) {
    const std::size_t b = bucket_index(time);
    if (b < bucket_count_) {
      if (b <= cursor_) {
        // Lands in the bucket being drained (a dependent whose start time
        // shares the current bucket): join the live heap.
        cur_.push_back(Entry{time, key});
        std::push_heap(cur_.begin(), cur_.end(), EntryGreater{});
      } else {
        buckets_[b].push_back(Entry{time, key});
      }
      return;
    }
  }
  overflow_.push_back(Entry{time, key});
}

void CalendarQueue::prepare() {
  while (cur_.empty()) {
    // Advance the cursor to the next populated bucket of the active rung.
    std::size_t next = cursor_ + 1;
    while (next < bucket_count_ && buckets_[next].empty()) ++next;
    if (next < bucket_count_) {
      cursor_ = next;
      // Keep cur_'s capacity: swap it (empty) into the bucket slot, which
      // the cursor never revisits this rung.
      std::swap(cur_, buckets_[next]);
      std::make_heap(cur_.begin(), cur_.end(), EntryGreater{});
      return;
    }
    CAR_CHECK_STATE(!overflow_.empty(),
                    "CalendarQueue: drained with events unaccounted for");
    rewindow();
  }
}

void CalendarQueue::rewindow() {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Entry& e : overflow_) {
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }
  rung_start_ = lo;
  if (hi > lo) {
    width_ = (hi - lo) / static_cast<double>(bucket_count_);
  } else {
    // Every queued event shares one timestamp — common at replay start,
    // where the whole zero-indegree frontier sits at t_start.  Any positive
    // width buckets them together; unit width keeps later, spread-out
    // inserts distributed instead of degenerating to a single heap.
    width_ = 1.0;
  }
  CAR_CHECK_STATE(width_ > 0.0 && std::isfinite(width_),
                  "CalendarQueue: non-finite bucket width (event times must "
                  "be finite)");
  cursor_ = 0;
  // Re-bucket in place: events inside the new rung move to their buckets
  // (index 0 holds at least every event at `lo`, so each rewindow makes
  // progress); the rest stay in the overflow.
  std::size_t keep = 0;
  for (Entry& e : overflow_) {
    const std::size_t b = bucket_index(e.time);
    if (b < bucket_count_) {
      buckets_[b].push_back(e);
    } else {
      overflow_[keep++] = e;
    }
  }
  overflow_.resize(keep);
  // The cursor starts on bucket 0: move it into cur_ if populated (it is
  // whenever the rung was rebuilt, since `lo` maps there).
  if (!buckets_[0].empty()) {
    std::swap(cur_, buckets_[0]);
    std::make_heap(cur_.begin(), cur_.end(), EntryGreater{});
  }
}

const CalendarQueue::Entry& CalendarQueue::top() {
  CAR_DCHECK(!empty(), "CalendarQueue::top on an empty queue");
  prepare();
  return cur_.front();
}

CalendarQueue::Entry CalendarQueue::pop() {
  CAR_DCHECK(!empty(), "CalendarQueue::pop on an empty queue");
  prepare();
  std::pop_heap(cur_.begin(), cur_.end(), EntryGreater{});
  const Entry out = cur_.back();
  cur_.pop_back();
  --size_;
#ifndef NDEBUG
  last_popped_ = out;
  popped_any_ = true;
#endif
  return out;
}

}  // namespace car::emul
