// Peak resident-set-size probe for the --json timing blocks: the scale
// sweeps track memory alongside time, so a lowering change that trades RSS
// for speed shows up in the same diff.
#pragma once

#include <cstdint>

namespace car::util {

/// Peak RSS of this process in bytes (VmHWM on Linux, ru_maxrss elsewhere);
/// 0 when the platform exposes neither.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace car::util
