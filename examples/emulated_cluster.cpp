// Full recovery on the in-process emulated cluster: real bytes move through
// rate-limited links and real GF(2^8) arithmetic reconstructs the lost
// chunks.  Prints wall-clock recovery time and the transmission/computation
// breakdown for CAR vs RR on CFS2 (the Google-Colossus-like configuration).
//
// Build & run:  ./build/examples/emulated_cluster [stripes] [chunk_KiB]
//                                                 [virtual]
// Passing "virtual" as the third argument switches the emulator to the
// virtual clock: nothing sleeps, recovery times are modelled on the same
// link reservations, and the reported numbers are deterministic — use it
// for large stripe counts.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace car;
  const std::size_t stripes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  const std::uint64_t chunk_size =
      (argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256) * 1024;
  const bool use_virtual = argc > 3 && std::strcmp(argv[3], "virtual") == 0;

  const auto cfg = cluster::cfs2();
  const rs::Code code(cfg.k, cfg.m);
  util::Rng rng(42);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 400e6;       // scaled-down fabric so this runs fast
  emul_cfg.oversubscription = 5.0;  // cross-rack is the scarce resource
  emul_cfg.clock_mode =
      use_virtual ? emul::ClockMode::kVirtual : emul::ClockMode::kReal;

  auto run = [&](bool use_car) {
    emul::Cluster cluster(cfg.topology(), emul_cfg);
    util::Rng data_rng(7);  // same data for both arms
    const auto originals = cluster.populate(placement, code, chunk_size,
                                            data_rng);
    util::Rng fail_rng(9);
    const auto scenario = cluster::inject_random_failure(placement, fail_rng);
    cluster.erase_node(scenario.failed_node);
    const auto censuses = recovery::build_censuses(placement, scenario);

    recovery::RecoveryPlan plan;
    if (use_car) {
      const auto balanced = recovery::balance_greedy(placement, censuses, {50});
      plan = recovery::build_car_plan(placement, code, balanced.solutions,
                                      chunk_size, scenario.failed_node);
    } else {
      util::Rng rr_rng(11);
      const auto rr = recovery::plan_rr(placement, censuses, rr_rng);
      plan = recovery::build_rr_plan(placement, code, rr, chunk_size,
                                     scenario.failed_node);
    }
    const auto report = cluster.execute(plan);

    // Verify every recovered chunk bit-exactly.
    std::size_t verified = 0;
    for (const auto& lost : scenario.lost) {
      const auto* rec = cluster.find_chunk(scenario.failed_node, lost.stripe,
                                           lost.chunk_index);
      if (rec != nullptr && *rec == originals[lost.stripe][lost.chunk_index]) {
        ++verified;
      }
    }

    std::printf("%-4s recovered %zu/%zu chunks | wall %.3f s | "
                "compute %.3f s | cross-rack %s | per-chunk %.1f ms\n",
                use_car ? "CAR" : "RR", verified, scenario.lost.size(),
                report.wall_s, report.compute_s,
                util::format_bytes(report.cross_rack_bytes).c_str(),
                1e3 * report.wall_s /
                    static_cast<double>(scenario.lost.size()));
    return report;
  };

  std::printf("CFS2 %s, RS(%zu,%zu), %zu stripes, %s chunks, %s clock\n",
              cfg.topology().to_string().c_str(), cfg.k, cfg.m, stripes,
              util::format_bytes(chunk_size).c_str(),
              use_virtual ? "virtual" : "real");
  const auto rr = run(false);
  const auto car = run(true);
  std::printf("\nCAR vs RR: %.1f%% less cross-rack traffic, %.1f%% faster\n",
              100.0 * (1.0 - static_cast<double>(car.cross_rack_bytes) /
                                 static_cast<double>(rr.cross_rack_bytes)),
              100.0 * (1.0 - car.wall_s / rr.wall_s));
  return 0;
}
