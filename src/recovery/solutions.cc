#include "recovery/solutions.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace car::recovery {

bool RackSet::contains(cluster::RackId rack) const noexcept {
  return std::find(racks.begin(), racks.end(), rack) != racks.end();
}

namespace {

/// Non-home racks with at least one available chunk, sorted by descending
/// availability (ties by ascending rack id — deterministic).
std::vector<cluster::RackId> ranked_racks(
    cluster::RackId home, std::span<const std::size_t> available) {
  std::vector<cluster::RackId> racks;
  for (cluster::RackId i = 0; i < available.size(); ++i) {
    if (i != home && available[i] > 0) racks.push_back(i);
  }
  std::stable_sort(racks.begin(), racks.end(),
                   [&](cluster::RackId a, cluster::RackId b) {
                     return available[a] > available[b];
                   });
  return racks;
}

}  // namespace

std::size_t min_racks_for(std::size_t needed, cluster::RackId home,
                          std::span<const std::size_t> available) {
  CAR_CHECK_LT(home, available.size(),
               "min_racks_for: home rack out of range");
  std::size_t total = 0;
  for (std::size_t a : available) total += a;
  CAR_CHECK_GE(total, needed,
               "min_racks_for: fewer than `needed` chunks available — "
               "unrecoverable");
  const auto ranked = ranked_racks(home, available);
  std::size_t gathered = available[home];
  std::size_t d = 0;
  while (gathered < needed) {
    // total >= needed guarantees we never run off the end.
    gathered += available[ranked[d]];
    ++d;
  }
  return d;
}

std::vector<RackSet> enumerate_rack_sets(
    std::size_t needed, cluster::RackId home,
    std::span<const std::size_t> available) {
  const std::size_t d = min_racks_for(needed, home, available);
  std::vector<cluster::RackId> candidates;
  for (cluster::RackId i = 0; i < available.size(); ++i) {
    if (i != home && available[i] > 0) candidates.push_back(i);
  }

  std::vector<RackSet> out;
  if (d == 0) {
    out.push_back(RackSet{});  // the home rack alone suffices
    return out;
  }

  const std::size_t local = available[home];
  std::vector<cluster::RackId> pick;
  pick.reserve(d);
  // Depth-first enumeration of all d-subsets of the candidate racks that
  // gather at least `needed` chunks together with the home rack.
  auto dfs = [&](auto&& self, std::size_t next, std::size_t sum) -> void {
    if (pick.size() == d) {
      if (sum + local >= needed) out.push_back(RackSet{pick});
      return;
    }
    const std::size_t remaining = d - pick.size();
    for (std::size_t i = next; i + remaining <= candidates.size(); ++i) {
      pick.push_back(candidates[i]);
      self(self, i + 1, sum + available[candidates[i]]);
      pick.pop_back();
    }
  };
  dfs(dfs, 0, 0);
  return out;
}

RackSet default_rack_set(std::size_t needed, cluster::RackId home,
                         std::span<const std::size_t> available) {
  const std::size_t d = min_racks_for(needed, home, available);
  const auto ranked = ranked_racks(home, available);
  RackSet set;
  set.racks.assign(ranked.begin(),
                   ranked.begin() + static_cast<std::ptrdiff_t>(d));
  std::sort(set.racks.begin(), set.racks.end());
  return set;
}

bool is_valid_minimal_for(std::size_t needed, cluster::RackId home,
                          std::span<const std::size_t> available,
                          const RackSet& set) {
  std::size_t d = 0;
  try {
    d = min_racks_for(needed, home, available);
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (set.racks.size() != d) return false;
  std::size_t sum = available[home];
  std::vector<bool> seen(available.size(), false);
  for (cluster::RackId rack : set.racks) {
    if (rack >= available.size() || rack == home) return false;
    if (seen[rack]) return false;
    seen[rack] = true;
    if (available[rack] == 0) return false;
    sum += available[rack];
  }
  return sum >= needed;
}

// --- Single-failure wrappers (paper Theorem 1 terms) -----------------------

std::size_t min_intact_racks(const StripeCensus& census) {
  try {
    return min_racks_for(census.k, census.failed_rack, census.surviving);
  } catch (const std::invalid_argument&) {
    CAR_CHECK_FAIL(
        "min_intact_racks: fewer than k surviving chunks — unrecoverable");
  }
}

std::vector<RackSet> enumerate_minimal_solutions(const StripeCensus& census) {
  return enumerate_rack_sets(census.k, census.failed_rack, census.surviving);
}

RackSet default_solution(const StripeCensus& census) {
  return default_rack_set(census.k, census.failed_rack, census.surviving);
}

bool is_valid_minimal(const StripeCensus& census, const RackSet& set) {
  return is_valid_minimal_for(census.k, census.failed_rack, census.surviving,
                              set);
}

}  // namespace car::recovery
