#include "util/rss.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace car::util {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  // VmHWM is the high-water mark of the resident set — exactly the "peak
  // RSS" a memory regression gate wants (ru_maxrss matches on Linux, but
  // /proc survives getrusage quirks under some sanitizers).
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kib = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0 &&
          std::sscanf(line + 6, "%lu", &kib) == 1) {  // NOLINT(cert-err34-c)
        std::fclose(f);
        return kib * 1024;
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

}  // namespace car::util
