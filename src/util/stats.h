// Streaming descriptive statistics (Welford) and small helpers used by the
// benchmark harnesses to report mean/stddev over repeated experiment runs,
// plus the seeded exponential-backoff schedule shared by retry loops.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace car::util {

/// Numerically stable streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    sum_ += x;
  }

  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Population variance (divide by n).
  [[nodiscard]] double variance() const noexcept {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (divide by n-1); 0 when fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double sample_stddev() const noexcept {
    return std::sqrt(sample_variance());
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential backoff with full-range seeded jitter, the one retry-delay
/// policy in the repository (the fault-injection runtime's transfer retries
/// use it instead of ad-hoc math).  The un-jittered delay for 1-based retry
/// attempt `a` is min(base * factor^(a-1), cap); jitter then scales it
/// uniformly into [1-jitter, 1+jitter] using the caller's Rng, so a seeded
/// run produces an identical delay sequence every time.
class BackoffSchedule {
 public:
  /// Requires base > 0, factor >= 1, cap >= base, jitter in [0, 1).
  /// Throws CheckError otherwise.
  BackoffSchedule(double base_s, double factor, double cap_s, double jitter);

  /// Deterministic (jitter-free) delay for 1-based attempt `attempt`.
  /// Throws CheckError when attempt == 0.
  [[nodiscard]] double raw_delay(std::size_t attempt) const;

  /// Jittered delay for 1-based attempt `attempt`, drawn from `rng`.
  [[nodiscard]] double delay(std::size_t attempt, Rng& rng) const;

  [[nodiscard]] double base_s() const noexcept { return base_s_; }
  [[nodiscard]] double factor() const noexcept { return factor_; }
  [[nodiscard]] double cap_s() const noexcept { return cap_s_; }
  [[nodiscard]] double jitter() const noexcept { return jitter_; }

 private:
  double base_s_;
  double factor_;
  double cap_s_;
  double jitter_;
};

/// Exact percentile of a sample (linear interpolation between order stats).
/// `q` in [0,1]. Throws on an empty sample.
double percentile(std::span<const double> sample, double q);

/// Mean of a sample; throws on empty input.
double mean_of(std::span<const double> sample);

}  // namespace car::util
