// CAR_REQUIRES violation: the capability was held, but has been released by
// the time the requiring function is called.  -Wthread-safety must reject
// this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void drain() {
    car::util::MutexLock lock(mu_);
    lock.unlock();
    pop_locked();  // BAD: pop_locked requires mu_, released above.
  }

  car::util::Mutex mu_;

 private:
  void pop_locked() CAR_REQUIRES(mu_) { --depth_; }

  int depth_ CAR_GUARDED_BY(mu_) = 0;
};

[[maybe_unused]] void use() { Queue{}.drain(); }

}  // namespace
