#include "recovery/plan_template.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace car::recovery {

namespace {

constexpr char kCarTag = 'C';
constexpr char kRrTag = 'R';

void append_token(std::string& key, std::size_t value) {
  CAR_CHECK_LT(value, std::size_t{255},
               "PlanTemplateCache: signature token exceeds one byte");
  key.push_back(static_cast<char>(value));
}

/// CAR signature: lost count plus the pick size sequence.  Neither chunk
/// indices nor rack/node identity appear — see plan_template.h.
void build_car_key(std::string& key, const MultiStripeSolution& solution) {
  key.clear();
  key.push_back(kCarTag);
  append_token(key, solution.lost_chunks.size());
  append_token(key, solution.picks.size());
  for (const RackPick& pick : solution.picks) {
    append_token(key, pick.chunk_indices.size());
  }
}

/// RR signature: lost count, fetch count, and the mask of fetch positions
/// already hosted on the replacement (they skip their transfer, which
/// changes the step topology).
void build_rr_key(std::string& key, std::size_t num_lost,
                  std::size_t num_chunks, std::uint64_t skip_position_mask) {
  key.clear();
  key.push_back(kRrTag);
  append_token(key, num_lost);
  append_token(key, num_chunks);
  for (std::size_t b = 0; b < 8; ++b) {
    key.push_back(static_cast<char>((skip_position_mask >> (8 * b)) & 0xFF));
  }
}

/// Fill a finished template's local reverse-dependency CSR (same counting
/// sort as PlanArena::build_reverse_deps, but it runs once per signature
/// instead of once per arena).
void seal_template(PlanTemplate& tmpl) {
  const std::size_t n = tmpl.steps.size();
  tmpl.rdep_off.assign(n + 1, 0);
  for (const TemplateStep& ts : tmpl.steps) {
    for (const std::uint32_t dep : ts.deps) ++tmpl.rdep_off[dep + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    tmpl.rdep_off[i + 1] += tmpl.rdep_off[i];
  }
  tmpl.rdep_entries.resize(tmpl.num_deps);
  std::vector<std::uint32_t> cursor(tmpl.rdep_off.begin(),
                                    tmpl.rdep_off.end() - 1);
  for (std::size_t step = 0; step < n; ++step) {
    for (const std::uint32_t dep : tmpl.steps[step].deps) {
      tmpl.rdep_entries[cursor[dep]++] = static_cast<std::uint32_t>(step);
    }
  }
}

/// Mirror of build_multi_car_plan's per-solution structure with survivor
/// positions as symbols (the differential suite proves the instantiation
/// identical).
PlanTemplate build_car_template(std::size_t num_lost,
                                std::span<const std::size_t> pick_sizes) {
  PlanTemplate tmpl;
  auto add_step = [&tmpl](TemplateStep step) {
    tmpl.num_deps += step.deps.size();
    tmpl.num_inputs += step.inputs.size();
    tmpl.steps.push_back(std::move(step));
    return static_cast<std::uint32_t>(tmpl.steps.size() - 1);
  };

  std::vector<std::vector<TemplateStep::Input>> final_inputs(num_lost);
  std::vector<std::vector<std::uint32_t>> final_deps(num_lost);

  std::size_t position = 0;
  for (const std::size_t pick_size : pick_sizes) {
    // The aggregator hosts the pick's first survivor; every other pick
    // survivor lives on a different node (placement invariant), so each
    // needs a gather transfer.
    const auto aggregator_sym = static_cast<std::uint32_t>(position);
    std::vector<std::uint32_t> gather_deps;
    for (std::size_t i = 1; i < pick_size; ++i) {
      TemplateStep gather;
      gather.kind = StepKind::kTransfer;
      gather.src_sym = static_cast<std::uint32_t>(position + i);
      gather.dst_sym = aggregator_sym;
      gather.payload_is_step = false;
      gather.payload_ref = static_cast<std::uint32_t>(position + i);
      gather_deps.push_back(add_step(std::move(gather)));
    }
    for (std::size_t l = 0; l < num_lost; ++l) {
      TemplateStep partial;
      partial.kind = StepKind::kCompute;
      partial.src_sym = aggregator_sym;
      partial.coeff_lost = static_cast<std::uint32_t>(l);
      partial.inputs.reserve(pick_size);
      for (std::size_t i = 0; i < pick_size; ++i) {
        partial.inputs.push_back(
            {false, static_cast<std::uint32_t>(position + i)});
      }
      partial.deps = gather_deps;
      const std::uint32_t partial_id = add_step(std::move(partial));

      TemplateStep ship;
      ship.kind = StepKind::kTransfer;
      ship.src_sym = aggregator_sym;
      ship.dst_sym = TemplateStep::kReplacementSym;
      ship.payload_is_step = true;
      ship.payload_ref = partial_id;
      ship.deps = {partial_id};
      const std::uint32_t ship_id = add_step(std::move(ship));

      final_inputs[l].push_back({true, partial_id});
      final_deps[l].push_back(ship_id);
    }
    position += pick_size;
  }

  for (std::size_t l = 0; l < num_lost; ++l) {
    TemplateStep final_step;
    final_step.kind = StepKind::kCompute;
    final_step.src_sym = TemplateStep::kReplacementSym;
    final_step.inputs = std::move(final_inputs[l]);
    final_step.deps = std::move(final_deps[l]);
    const std::uint32_t final_id = add_step(std::move(final_step));
    tmpl.outputs.push_back({static_cast<std::uint32_t>(l), final_id});
  }
  seal_template(tmpl);
  return tmpl;
}

/// Mirror of build_multi_rr_plan's per-solution structure.
PlanTemplate build_rr_template(std::size_t num_lost, std::size_t num_chunks,
                               std::uint64_t skip_position_mask) {
  PlanTemplate tmpl;
  auto add_step = [&tmpl](TemplateStep step) {
    tmpl.num_deps += step.deps.size();
    tmpl.num_inputs += step.inputs.size();
    tmpl.steps.push_back(std::move(step));
    return static_cast<std::uint32_t>(tmpl.steps.size() - 1);
  };

  std::vector<std::uint32_t> deps;
  for (std::size_t pos = 0; pos < num_chunks; ++pos) {
    if (((skip_position_mask >> pos) & 1) != 0) continue;
    TemplateStep fetch;
    fetch.kind = StepKind::kTransfer;
    fetch.src_sym = static_cast<std::uint32_t>(pos);
    fetch.dst_sym = TemplateStep::kReplacementSym;
    fetch.payload_is_step = false;
    fetch.payload_ref = static_cast<std::uint32_t>(pos);
    deps.push_back(add_step(std::move(fetch)));
  }
  for (std::size_t l = 0; l < num_lost; ++l) {
    TemplateStep decode;
    decode.kind = StepKind::kCompute;
    decode.src_sym = TemplateStep::kReplacementSym;
    decode.coeff_lost = static_cast<std::uint32_t>(l);
    decode.inputs.reserve(num_chunks);
    for (std::size_t pos = 0; pos < num_chunks; ++pos) {
      decode.inputs.push_back({false, static_cast<std::uint32_t>(pos)});
    }
    decode.deps = deps;
    const std::uint32_t decode_id = add_step(std::move(decode));
    tmpl.outputs.push_back({static_cast<std::uint32_t>(l), decode_id});
  }
  seal_template(tmpl);
  return tmpl;
}

std::uint64_t skip_mask(const cluster::Placement& placement,
                        const MultiRrSolution& solution,
                        cluster::NodeId replacement) {
  std::uint64_t mask = 0;
  const auto hosts = placement.stripe(solution.stripe);
  for (std::size_t pos = 0; pos < solution.chunk_indices.size(); ++pos) {
    if (hosts[solution.chunk_indices[pos]] != replacement) {
      continue;
    }
    CAR_CHECK_LT(pos, std::size_t{64},
                 "plan_template: fetch position does not fit the 64-bit RR "
                 "signature mask");
    mask |= std::uint64_t{1} << pos;
  }
  return mask;
}

/// Per-stripe instantiation scratch, reused across every stripe of a
/// build_multi_*_cached / build_multi_*_arena call.
struct BindingScratch {
  std::vector<std::size_t> survivors;
  std::vector<std::span<const std::uint8_t>> coeffs;

  StripeBinding bind_car(const rs::Code& code,
                         const MultiStripeSolution& solution,
                         RepairMemo& memo) {
    survivors.clear();
    for (const RackPick& pick : solution.picks) {
      survivors.insert(survivors.end(), pick.chunk_indices.begin(),
                       pick.chunk_indices.end());
    }
    coeffs.clear();
    for (const std::size_t lost : solution.lost_chunks) {
      coeffs.push_back(memo.coeffs(code, lost, survivors));
    }
    return {solution.stripe, survivors, solution.lost_chunks, coeffs};
  }

  StripeBinding bind_rr(const rs::Code& code, const MultiRrSolution& solution,
                        RepairMemo& memo) {
    coeffs.clear();
    for (const std::size_t lost : solution.lost_chunks) {
      coeffs.push_back(memo.coeffs(code, lost, solution.chunk_indices));
    }
    return {solution.stripe, solution.chunk_indices, solution.lost_chunks,
            coeffs};
  }
};

}  // namespace

PlanTemplate& PlanTemplateCache::car(const MultiStripeSolution& solution) {
  build_car_key(scratch_, solution);
  if (cache_.empty()) cache_.reserve(256);
  const auto it = cache_.find(std::string_view(scratch_));
  if (it != cache_.end()) {
    ++stats_.hits;
    // A release_template_rdeps()d entry re-seals on its next hit, so the
    // reverse CSR is present whenever a build can observe it.
    if (it->second.rdep_off.empty()) seal_template(it->second);
    return it->second;
  }
  ++stats_.misses;
  std::vector<std::size_t> pick_sizes;
  pick_sizes.reserve(solution.picks.size());
  for (const RackPick& pick : solution.picks) {
    pick_sizes.push_back(pick.chunk_indices.size());
  }
  return cache_
      .emplace(scratch_,
               build_car_template(solution.lost_chunks.size(), pick_sizes))
      .first->second;
}

PlanTemplate& PlanTemplateCache::rr(std::size_t num_lost,
                                    std::size_t num_chunks,
                                    std::uint64_t skip_position_mask) {
  build_rr_key(scratch_, num_lost, num_chunks, skip_position_mask);
  if (cache_.empty()) cache_.reserve(256);
  const auto it = cache_.find(std::string_view(scratch_));
  if (it != cache_.end()) {
    ++stats_.hits;
    if (it->second.rdep_off.empty()) seal_template(it->second);
    return it->second;
  }
  ++stats_.misses;
  return cache_
      .emplace(scratch_,
               build_rr_template(num_lost, num_chunks, skip_position_mask))
      .first->second;
}

void append_instantiated(RecoveryPlan& plan, const PlanTemplate& tmpl,
                         const StripeBinding& binding,
                         const cluster::Placement& placement,
                         cluster::NodeId replacement) {
  const auto& topology = placement.topology();
  const cluster::StripeId stripe = binding.stripe;
  const auto hosts = placement.stripe(stripe);
  const std::size_t base = plan.steps.size();
  auto resolve = [&](std::uint32_t sym) {
    return sym == TemplateStep::kReplacementSym
               ? replacement
               : hosts[binding.survivors[sym]];
  };
  for (const TemplateStep& ts : tmpl.steps) {
    PlanStep step;
    step.id = plan.steps.size();
    step.kind = ts.kind;
    step.stripe = stripe;
    step.deps.reserve(ts.deps.size());
    for (const std::uint32_t dep : ts.deps) step.deps.push_back(base + dep);
    if (ts.kind == StepKind::kTransfer) {
      step.src = resolve(ts.src_sym);
      step.dst = resolve(ts.dst_sym);
      step.payload =
          ts.payload_is_step
              ? BufferRef::step(base + ts.payload_ref)
              : BufferRef::chunk(stripe, binding.survivors[ts.payload_ref]);
      step.cross_rack =
          topology.rack_of(step.src) != topology.rack_of(step.dst);
      step.bytes = plan.chunk_size;
    } else {
      step.node = resolve(ts.src_sym);
      step.inputs.reserve(ts.inputs.size());
      for (const TemplateStep::Input& in : ts.inputs) {
        if (in.is_step) {
          step.inputs.push_back({BufferRef::step(base + in.ref), 1});
        } else {
          const std::size_t chunk = binding.survivors[in.ref];
          step.inputs.push_back({BufferRef::chunk(stripe, chunk),
                                 binding.coeffs[ts.coeff_lost][chunk]});
        }
      }
      step.bytes = plan.chunk_size * step.inputs.size();
    }
    plan.steps.push_back(std::move(step));
  }
  for (const PlanTemplate::Output& out : tmpl.outputs) {
    plan.outputs.push_back({stripe, binding.lost_chunks[out.lost_pos],
                            base + out.final_step});
  }
}

RecoveryPlan build_multi_car_plan_cached(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    cluster::NodeId replacement, PlanTemplateCache& cache) {
  CAR_CHECK(chunk_size > 0,
            "build_multi_car_plan_cached: chunk_size must be > 0");
  RecoveryPlan plan;
  plan.replacement = replacement;
  plan.replacement_rack = placement.topology().rack_of(replacement);
  plan.chunk_size = chunk_size;
  BindingScratch scratch;
  for (const MultiStripeSolution& solution : solutions) {
    const PlanTemplate& tmpl = cache.car(solution);
    append_instantiated(plan, tmpl,
                        scratch.bind_car(code, solution, cache.repair_memo()),
                        placement, replacement);
  }
  return plan;
}

RecoveryPlan build_multi_rr_plan_cached(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiRrSolution> solutions, std::uint64_t chunk_size,
    cluster::NodeId replacement, PlanTemplateCache& cache) {
  CAR_CHECK(chunk_size > 0,
            "build_multi_rr_plan_cached: chunk_size must be > 0");
  RecoveryPlan plan;
  plan.replacement = replacement;
  plan.replacement_rack = placement.topology().rack_of(replacement);
  plan.chunk_size = chunk_size;
  BindingScratch scratch;
  for (const MultiRrSolution& solution : solutions) {
    const PlanTemplate& tmpl =
        cache.rr(solution.lost_chunks.size(), solution.chunk_indices.size(),
                 skip_mask(placement, solution, replacement));
    append_instantiated(plan, tmpl,
                        scratch.bind_rr(code, solution, cache.repair_memo()),
                        placement, replacement);
  }
  return plan;
}

// --- arena instantiation (defined here so plan_arena.cc need not know the
// template types; PlanArena declares this member in its own header) -------

namespace {

/// Geometric exact-extent growth for the unreserved append path: small
/// callers (tests, single-stripe experiments) append without a reserve()
/// pass, and per-append exact resizes would reallocate every call.
template <typename Vec>
void grow_column(Vec& vec, std::size_t add) {
  const std::size_t need = vec.size() + add;
  if (vec.capacity() < need) vec.reserve(std::max(need, vec.size() * 2));
  vec.resize(need);
}

}  // namespace

void PlanArena::append_instantiated(const PlanTemplate& tmpl,
                                    const StripeBinding& binding,
                                    const cluster::Placement& placement) {
  const auto& topology = placement.topology();
  const cluster::StripeId stripe = binding.stripe;
  const auto hosts = placement.stripe(stripe);
  const std::uint64_t base = cur_steps_;
  const std::size_t nsteps = tmpl.steps.size();
  if (!sized_) {
    grow_column(flags_, nsteps);
    grow_column(stripe_, nsteps);
    grow_column(endpoint_a_, nsteps);
    grow_column(endpoint_b_, nsteps);
    grow_column(payload_a_, nsteps);
    grow_column(payload_b_, nsteps);
    grow_column(dep_off_, nsteps);
    grow_column(in_off_, nsteps);
    grow_column(dep_entries_, tmpl.num_deps);
    grow_column(rdep_off_, nsteps);
    grow_column(rdep_entries_, tmpl.num_deps);
    grow_column(in_ref_a_, tmpl.num_inputs);
    grow_column(in_ref_b_, tmpl.num_inputs);
    grow_column(in_coeff_, tmpl.num_inputs);
    grow_column(outputs_, tmpl.outputs.size());
  }
  CAR_CHECK(base + nsteps <= flags_.size() &&
                cur_deps_ + tmpl.num_deps <= dep_entries_.size() &&
                cur_inputs_ + tmpl.num_inputs <= in_ref_a_.size() &&
                cur_outputs_ + tmpl.outputs.size() <= outputs_.size(),
            "PlanArena::append_instantiated: reserve() undercounted the "
            "column extents");
  auto resolve = [&](std::uint32_t sym) {
    return sym == TemplateStep::kReplacementSym
               ? replacement_
               : hosts[binding.survivors[sym]];
  };
  // Raw cursor writes into the pre-sized columns: this loop runs once per
  // affected stripe at million-stripe scale, and per-element push_back
  // capacity checks across nine columns were the dominant build cost.
  std::uint8_t* const flags = flags_.data() + base;
  std::uint64_t* const stripes = stripe_.data() + base;
  std::uint32_t* const src_col = endpoint_a_.data() + base;
  std::uint32_t* const dst_col = endpoint_b_.data() + base;
  std::uint64_t* const pay_a = payload_a_.data() + base;
  std::uint32_t* const pay_b = payload_b_.data() + base;
  std::uint64_t* const dep_off = dep_off_.data() + base + 1;
  std::uint64_t* const in_off = in_off_.data() + base + 1;
  std::uint64_t* const deps = dep_entries_.data();
  std::uint64_t* const in_a = in_ref_a_.data();
  std::uint32_t* const in_b = in_ref_b_.data();
  std::uint8_t* const in_c = in_coeff_.data();
  std::uint64_t dep_at = cur_deps_;
  std::uint64_t in_at = cur_inputs_;
  for (std::size_t i = 0; i < nsteps; ++i) {
    const TemplateStep& ts = tmpl.steps[i];
    stripes[i] = static_cast<std::uint64_t>(stripe);
    if (ts.kind == StepKind::kTransfer) {
      const cluster::NodeId src = resolve(ts.src_sym);
      const cluster::NodeId dst = resolve(ts.dst_sym);
      flags[i] = topology.rack_of(src) != topology.rack_of(dst)
                     ? kCrossRackFlag
                     : std::uint8_t{0};
      src_col[i] = static_cast<std::uint32_t>(src);
      dst_col[i] = static_cast<std::uint32_t>(dst);
      if (ts.payload_is_step) {
        pay_a[i] = base + ts.payload_ref;
        pay_b[i] = kStepRefBit;
      } else {
        pay_a[i] = static_cast<std::uint64_t>(stripe);
        pay_b[i] = static_cast<std::uint32_t>(binding.survivors[ts.payload_ref]);
      }
    } else {
      flags[i] = kComputeFlag;
      src_col[i] = static_cast<std::uint32_t>(resolve(ts.src_sym));
      dst_col[i] = 0;
      pay_a[i] = 0;
      pay_b[i] = 0;
    }
    for (const std::uint32_t dep : ts.deps) deps[dep_at++] = base + dep;
    dep_off[i] = dep_at;
    for (const TemplateStep::Input& in : ts.inputs) {
      if (in.is_step) {
        in_a[in_at] = base + in.ref;
        in_b[in_at] = kStepRefBit;
        in_c[in_at] = 1;
      } else {
        const std::size_t chunk = binding.survivors[in.ref];
        in_a[in_at] = static_cast<std::uint64_t>(stripe);
        in_b[in_at] = static_cast<std::uint32_t>(chunk);
        in_c[in_at] = binding.coeffs[ts.coeff_lost][chunk];
      }
      ++in_at;
    }
    in_off[i] = in_at;
  }
  // Reverse CSR straight from the template's local one: forward and
  // reverse edge totals are identical, so cur_deps_ doubles as the
  // reverse-entry cursor.
  std::uint64_t* const rdep_off = rdep_off_.data() + base + 1;
  std::uint64_t* const rdeps = rdep_entries_.data();
  for (std::size_t j = 0; j < tmpl.rdep_entries.size(); ++j) {
    rdeps[cur_deps_ + j] = base + tmpl.rdep_entries[j];
  }
  for (std::size_t i = 0; i < nsteps; ++i) {
    rdep_off[i] = cur_deps_ + tmpl.rdep_off[i + 1];
  }
  for (const PlanTemplate::Output& out : tmpl.outputs) {
    outputs_[cur_outputs_++] = {stripe, binding.lost_chunks[out.lost_pos],
                                static_cast<std::size_t>(base + out.final_step)};
  }
  cur_steps_ = base + nsteps;
  cur_deps_ = dep_at;
  cur_inputs_ = in_at;
  // Template deps are local to the instantiated stripe by construction, so
  // appending never breaks stripe closure.
}

void release_template_rdeps(PlanTemplate& tmpl) {
  // swap-with-empty actually returns the memory (clear() keeps capacity).
  std::vector<std::uint32_t>().swap(tmpl.rdep_off);
  std::vector<std::uint32_t>().swap(tmpl.rdep_entries);
}

namespace {

/// Shared reserve pass: resolve one template per solution (hitting the
/// warm cache) and size the arena columns to their exact final extents so
/// appends never reallocate — which is also what lets the streaming
/// executor attach to the arena before the first stripe lands.
template <typename Resolve>
ArenaStreamBuild reserve_arena(const cluster::Placement& placement,
                               std::size_t num_solutions,
                               std::uint64_t chunk_size,
                               std::uint64_t slice_size,
                               cluster::NodeId replacement,
                               Resolve&& resolve) {
  ArenaStreamBuild build;
  build.arena = PlanArena::create(
      replacement, placement.topology().rack_of(replacement), chunk_size,
      slice_size);
  build.templates.reserve(num_solutions);
  std::uint64_t steps = 0, deps = 0, inputs = 0, outputs = 0;
  for (std::size_t i = 0; i < num_solutions; ++i) {
    PlanTemplate& tmpl = resolve(i);
    build.templates.push_back(&tmpl);
    steps += tmpl.steps.size();
    deps += tmpl.num_deps;
    inputs += tmpl.num_inputs;
    outputs += tmpl.outputs.size();
  }
  build.arena.reserve(steps, deps, inputs, outputs);
  return build;
}

/// Shared append pass: instantiate in solution order, publish the
/// stripe-closed row watermark after each append, and drop each
/// signature's reverse-CSR copy the moment its last stripe is down.
template <typename Bind>
void stream_arena(ArenaStreamBuild& build, std::size_t num_solutions,
                  const cluster::Placement& placement, Bind&& bind,
                  const std::function<void(std::uint64_t)>& publish) {
  CAR_CHECK(build.templates.size() == num_solutions,
            "stream_multi_*_arena: the reserve pass saw a different "
            "solution list");
  std::unordered_map<const PlanTemplate*, std::size_t> last_use;
  last_use.reserve(64);
  for (std::size_t i = 0; i < build.templates.size(); ++i) {
    last_use[build.templates[i]] = i;
  }
  for (std::size_t i = 0; i < num_solutions; ++i) {
    PlanTemplate& tmpl = *build.templates[i];
    build.arena.append_instantiated(tmpl, bind(i), placement);
    if (last_use.find(&tmpl)->second == i) release_template_rdeps(tmpl);
    if (publish) publish(build.arena.appended_base_steps());
  }
  build.arena.finalize();
}

}  // namespace

ArenaStreamBuild reserve_multi_car_arena(
    const cluster::Placement& placement,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache) {
  return reserve_arena(placement, solutions.size(), chunk_size, slice_size,
                       replacement,
                       [&](std::size_t i) -> PlanTemplate& {
                         return cache.car(solutions[i]);
                       });
}

ArenaStreamBuild reserve_multi_rr_arena(
    const cluster::Placement& placement,
    std::span<const MultiRrSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache) {
  return reserve_arena(
      placement, solutions.size(), chunk_size, slice_size, replacement,
      [&](std::size_t i) -> PlanTemplate& {
        return cache.rr(solutions[i].lost_chunks.size(),
                        solutions[i].chunk_indices.size(),
                        skip_mask(placement, solutions[i], replacement));
      });
}

void stream_multi_car_arena(
    ArenaStreamBuild& build, const cluster::Placement& placement,
    const rs::Code& code, std::span<const MultiStripeSolution> solutions,
    PlanTemplateCache& cache,
    const std::function<void(std::uint64_t)>& publish) {
  BindingScratch scratch;
  stream_arena(build, solutions.size(), placement,
               [&](std::size_t i) {
                 return scratch.bind_car(code, solutions[i],
                                         cache.repair_memo());
               },
               publish);
}

void stream_multi_rr_arena(
    ArenaStreamBuild& build, const cluster::Placement& placement,
    const rs::Code& code, std::span<const MultiRrSolution> solutions,
    PlanTemplateCache& cache,
    const std::function<void(std::uint64_t)>& publish) {
  BindingScratch scratch;
  stream_arena(build, solutions.size(), placement,
               [&](std::size_t i) {
                 return scratch.bind_rr(code, solutions[i],
                                        cache.repair_memo());
               },
               publish);
}

PlanArena build_multi_car_arena(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache) {
  ArenaStreamBuild build = reserve_multi_car_arena(
      placement, solutions, chunk_size, slice_size, replacement, cache);
  stream_multi_car_arena(build, placement, code, solutions, cache, {});
  return std::move(build.arena);
}

PlanArena build_multi_rr_arena(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiRrSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache) {
  ArenaStreamBuild build = reserve_multi_rr_arena(
      placement, solutions, chunk_size, slice_size, replacement, cache);
  stream_multi_rr_arena(build, placement, code, solutions, cache, {});
  return std::move(build.arena);
}

}  // namespace car::recovery
