#include "util/flags.h"

#include <stdexcept>

#include "util/check.h"

namespace car::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.starts_with("--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    CAR_CHECK(!body.empty(), "Flags: bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double value = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::size_t> Flags::get_size_list(
    const std::string& name, const std::vector<std::size_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::size_t> out;
  std::string token;
  for (char ch : it->second + ",") {
    if (ch == ',') {
      if (token.empty()) continue;
      try {
        out.push_back(static_cast<std::size_t>(std::stoull(token)));
      } catch (const std::exception&) {
        throw std::invalid_argument("Flags: --" + name +
                                    " expects a comma-separated list of "
                                    "integers, got '" + it->second + "'");
      }
      token.clear();
    } else {
      token += ch;
    }
  }
  return out;
}

}  // namespace car::util
