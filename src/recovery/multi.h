// Multi-failure cross-rack-aware recovery.
//
// The paper scopes CAR to single node failures; this module generalises the
// three techniques to concurrent failures of several nodes (up to the code's
// tolerance of m lost chunks per stripe):
//
//  * Rack selection — per stripe, gather k chunks from the minimum number of
//    racks other than the replacement's (Theorem 1 with generalised
//    surviving counts; reuses recovery/solutions.h's core).
//  * Partial decoding — with L lost chunks in a stripe, the repair matrix
//    Y = G_lost · X has L rows, and each contributing rack aggregates one
//    partially decoded chunk *per lost chunk*: cross-rack traffic is
//    L x (#racks accessed) chunks instead of L x k.
//  * Load balancing — the greedy substitution pass now moves weight L_j (the
//    stripe's lost-chunk count) between racks, preserving minimum traffic.
//
// All lost chunks are rebuilt on a single replacement node, mirroring the
// paper's methodology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/metrics.h"
#include "recovery/plan.h"
#include "recovery/planner.h"
#include "recovery/solutions.h"
#include "rs/code.h"
#include "util/rng.h"

namespace car::recovery {

/// A concurrent failure of several nodes.
struct MultiFailureScenario {
  std::vector<cluster::NodeId> failed_nodes;
  /// Node that hosts the rebuilt chunks (must be one of failed_nodes or a
  /// fresh node; its rack anchors the traffic accounting).
  cluster::NodeId replacement = 0;
  cluster::RackId replacement_rack = 0;

  [[nodiscard]] bool is_failed(cluster::NodeId node) const noexcept;
};

/// Per-stripe state under a multi-failure.
struct MultiStripeCensus {
  cluster::StripeId stripe = 0;
  std::vector<std::size_t> lost_chunks;  // >= 1 chunk indices, ascending
  cluster::RackId replacement_rack = 0;
  std::size_t k = 0;
  std::vector<std::size_t> surviving;  // surviving chunks per rack

  [[nodiscard]] std::size_t num_racks() const noexcept {
    return surviving.size();
  }
  [[nodiscard]] std::size_t lost_count() const noexcept {
    return lost_chunks.size();
  }
};

/// Describe the failure of specific nodes; the first failed node acts as
/// replacement.  Throws std::invalid_argument on empty/duplicate node lists.
MultiFailureScenario make_multi_failure(const cluster::Placement& placement,
                                        std::vector<cluster::NodeId> nodes);

/// Same, with an explicit replacement — the epoch-aware form used by the
/// rebuild control plane (src/rebuild), where one primary replacement
/// persists across re-plan generations while each batch's failure
/// signature is only the subset of dead nodes still hosting that batch's
/// chunks.  `replacement` need not appear in `nodes`: a batch of stripes
/// with no chunk on the primary still rebuilds onto it.  Chunks already
/// recovered onto the replacement therefore count as surviving in its rack
/// when the caller omits their host from `nodes`.  Throws
/// std::invalid_argument on empty/duplicate lists or an out-of-range
/// replacement.
MultiFailureScenario make_multi_failure_onto(
    const cluster::Placement& placement, std::vector<cluster::NodeId> nodes,
    cluster::NodeId replacement);

/// Censuses for every stripe that lost at least one chunk.
/// Throws std::invalid_argument if any stripe lost more than m chunks
/// (beyond the code's tolerance — unrecoverable).
///
/// `shards` > 1 splits the scan across that many worker threads, each
/// covering one contiguous stripe range; the per-range outputs are
/// concatenated in range order, so the result is bit-identical to the
/// serial scan for every shard count.
std::vector<MultiStripeCensus> build_multi_censuses(
    const cluster::Placement& placement, const MultiFailureScenario& scenario,
    std::size_t shards = 1);

/// A materialised per-stripe multi-failure solution.
struct MultiStripeSolution {
  cluster::StripeId stripe = 0;
  std::vector<std::size_t> lost_chunks;
  RackSet rack_set;             // racks (other than replacement's) accessed
  std::vector<RackPick> picks;  // chunks read per contributing rack (sum k)

  /// Cross-rack chunks shipped for this stripe: one partial per accessed
  /// rack per lost chunk.
  [[nodiscard]] std::size_t cross_rack_chunks() const noexcept {
    return rack_set.racks.size() * lost_chunks.size();
  }
  [[nodiscard]] std::vector<std::size_t> all_chunk_indices() const;
};

/// Materialise a valid minimal rack set into chunk picks (k chunks total).
MultiStripeSolution materialize_multi(const cluster::Placement& placement,
                                      const MultiStripeCensus& census,
                                      const RackSet& set);

/// Greedy weighted load balancing across stripes (Algorithm 2 generalised:
/// each substitution moves L_j partial chunks between racks and requires
/// t_l - t_i >= 2 * L_j so the maximum never increases).
struct MultiBalanceResult {
  std::vector<MultiStripeSolution> solutions;
  std::vector<double> lambda_trace;
  std::size_t substitutions = 0;
};
MultiBalanceResult balance_multi(const cluster::Placement& placement,
                                 const std::vector<MultiStripeCensus>& censuses,
                                 std::size_t iterations = 50);

/// Cross-rack traffic summary (chunk units, weighted by lost count).
TrafficSummary multi_traffic(const std::vector<MultiStripeSolution>& solutions,
                             std::size_t num_racks,
                             cluster::RackId replacement_rack);

/// Memoises repair vectors on a packed (lost chunk, survivor set) key.
///
/// The decode of a lost chunk from exactly k survivors is the unique
/// solution of a k x k system, so a survivor's coefficient depends only on
/// its chunk index, never its position in the survivor list.  Coefficients
/// are therefore stored canonically indexed by chunk index — coeffs()[c]
/// is chunk c's coefficient — which both collapses permutations of the
/// same survivor set onto one memo entry and lets callers skip positional
/// bookkeeping.  The packed key is (survivor bitset << 6) | lost index,
/// so chunk indices must stay below 58 (checked; k+m never approaches
/// that in practice).
class RepairMemo {
 public:
  /// Canonical decode coefficients for `lost` over `survivors` (which must
  /// be exactly k distinct chunk indices, as rs::Code::repair_vector
  /// requires).  The span is valid until the next coeffs() call inserts.
  std::span<const std::uint8_t> coeffs(const rs::Code& code, std::size_t lost,
                                       std::span<const std::size_t> survivors);

  [[nodiscard]] std::size_t size() const noexcept { return memo_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> memo_;
};

/// Compile into an executable plan: per contributing rack, the aggregator
/// computes one partial per lost chunk and ships each to the replacement.
RecoveryPlan build_multi_car_plan(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    cluster::NodeId replacement);

/// RR-style baseline: fetch k random survivors per stripe to the
/// replacement, which decodes all lost chunks there.
struct MultiRrSolution {
  cluster::StripeId stripe = 0;
  std::vector<std::size_t> lost_chunks;
  std::vector<std::size_t> chunk_indices;  // k survivors fetched
};
std::vector<MultiRrSolution> plan_multi_rr(
    const cluster::Placement& placement,
    const std::vector<MultiStripeCensus>& censuses, util::Rng& rng);
TrafficSummary multi_rr_traffic(const cluster::Placement& placement,
                                const std::vector<MultiRrSolution>& solutions,
                                cluster::RackId replacement_rack);
RecoveryPlan build_multi_rr_plan(const cluster::Placement& placement,
                                 const rs::Code& code,
                                 std::span<const MultiRrSolution> solutions,
                                 std::uint64_t chunk_size,
                                 cluster::NodeId replacement);

}  // namespace car::recovery
