// Static validation of recovery plans.
//
// recovery::validate_plan checks a RecoveryPlan without executing it, so
// every emitted plan can be machine-checked (carctl validate) before it is
// handed to the metrics counter, the flow simulator, or the emulator:
//
//   * structure   — dense step ids, in-range dependency ids, no self-deps,
//                   acyclic dependency DAG;
//   * sizing      — every transfer moves exactly chunk_size bytes and every
//                   compute touches chunk_size * |inputs| bytes;
//   * data flow   — with a Placement, every transfer's payload and every
//                   compute's input provably exists on the right node by the
//                   time the step may run (its producer is a dependency
//                   ancestor), and every declared output lands on the
//                   replacement;
//   * aggregation — per stripe, at most one aggregator node per rack (the
//                   paper's partial-decoding structure: each contributing
//                   rack funnels through a single aggregator);
//   * traffic     — the plan's total cross-rack bytes match the planner's
//                   claimed rack counts (Theorem 1's Σ_j d_j chunks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "recovery/multi.h"
#include "recovery/plan.h"
#include "recovery/planner.h"
#include "recovery/slice.h"

namespace car::recovery {

/// Result of validate_plan: empty errors == valid plan.  `notes` records
/// checks that were skipped (e.g. data-flow analysis without a placement).
struct ValidationReport {
  std::vector<std::string> errors;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  /// Newline-joined errors (then notes), for CLI/diagnostic output.
  [[nodiscard]] std::string to_string() const;
};

struct ValidateOptions {
  /// Enables data-flow validation (chunk homes, buffer availability).
  const cluster::Placement* placement = nullptr;
  /// Enforce the one-aggregator-per-rack-per-stripe invariant (CAR partial
  /// decoding).  Vacuously true for RR plans; disable for exotic plans.
  bool require_single_aggregator_per_rack = true;
  /// When set, the plan's cross-rack transfer total must equal exactly
  /// this many chunk-sized units (e.g. Theorem 1's Σ_j d_j from the
  /// planner's rack sets; see expected_cross_rack_chunks).
  std::optional<std::uint64_t> expected_cross_rack_chunks;
  /// Plans above this step count skip the quadratic ancestor analysis
  /// (noted in the report) but keep all structural checks.
  std::size_t max_flow_analysis_steps = 50'000;
};

/// Statically check `plan` against `topology`.  Never throws on malformed
/// plans — every defect is reported as an error string.
ValidationReport validate_plan(const RecoveryPlan& plan,
                               const cluster::Topology& topology,
                               const ValidateOptions& options = {});

/// Sliced-plan mode: statically check that `sliced` is a faithful lowering
/// of `base` (see recovery/slice.h).  Verifies the grid metadata, per-step
/// fidelity (kind/stripe/endpoints/payload/inputs/cross-rack flags match the
/// base step), slice coverage (each base step's slices partition
/// [0, chunk_size) exactly), the same-slice dependency image, byte-total
/// equality (cross-rack, intra-rack, per-rack, compute — slicing must never
/// change what crosses the core), and output equality.  Never throws on a
/// malformed lowering — every defect is reported as an error string.
/// Validate `base` itself separately with validate_plan.
ValidationReport validate_sliced_plan(const SlicePlan& sliced,
                                      const RecoveryPlan& base,
                                      const cluster::Topology& topology);

/// The planner's claimed cross-rack chunk count for CAR solutions:
/// Σ_j |{racks in stripe j's rack set other than the replacement's}|
/// (each contributes exactly one partially decoded chunk).
std::uint64_t claimed_cross_rack_chunks(
    std::span<const PerStripeSolution> solutions,
    cluster::RackId replacement_rack);

/// Multi-failure variant: each accessed rack ships one partial per lost
/// chunk of the stripe.
std::uint64_t claimed_cross_rack_chunks(
    std::span<const MultiStripeSolution> solutions,
    cluster::RackId replacement_rack);

}  // namespace car::recovery
