// Runtime-dispatched GF(2^8) region kernels.
//
// Every byte the recovery pipeline moves or reconstructs funnels through
// three bulk operations — xor_region, mul_region, mul_region_acc — so they
// get hand-written SIMD variants: SSSE3 (PSHUFB over split nibble tables)
// and AVX2 (VPSHUFB, 64 bytes per iteration), plus a portable scalar path
// unrolled 8 bytes at a time.  The best variant the CPU supports is picked
// once at startup (CPUID via __builtin_cpu_supports) and exposed through a
// small function-pointer vtable, so one binary runs optimally everywhere.
//
// The CAR_GF_KERNEL environment variable (scalar|ssse3|avx2, or auto/empty
// for autodetect) pins the dispatch for testing and benchmarking; asking for
// a variant the host or build cannot run is a loud CheckError, never a
// silent fallback.
//
// Pointer contract (applies to every kernel entry point):
//   * src and dst are raw byte runs of exactly n bytes; n == 0 is legal and
//     the pointers may then be null.
//   * src == dst (exact aliasing, the in-place case) is explicitly safe:
//     kernels load each block before storing it.  Partial overlap is
//     undefined.
//   * No alignment requirement — SIMD paths use unaligned loads/stores and
//     finish tails scalar, so results are byte-identical at any offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace car::gf {

enum class KernelKind : std::uint8_t { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

/// Split multiplication tables: for every coefficient c,
///   c * x == lo[c][x & 0xF] ^ hi[c][x >> 4].
/// Each 16-byte row is exactly one PSHUFB shuffle control load; the scalar
/// tail code in the SIMD kernels indexes the same rows so every path
/// computes the identical field product.
struct NibbleTables {
  alignas(32) std::uint8_t lo[256][16];
  alignas(32) std::uint8_t hi[256][16];
};

/// Process-wide nibble tables, derived from the Gf256 multiplication table
/// on first use (thread-safe).
const NibbleTables& nibble_tables();

/// Function-pointer vtable for one kernel variant.  See the pointer
/// contract above; all three functions accept any c including 0 and 1 (the
/// span-level wrappers in region.h shortcut those, the kernels just compute).
struct Kernels {
  KernelKind kind = KernelKind::kScalar;
  const char* name = nullptr;  // "scalar" | "ssse3" | "avx2"
  void (*xor_region)(const std::uint8_t* src, std::uint8_t* dst,
                     std::size_t n) = nullptr;
  void (*mul_region)(std::uint8_t c, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n) = nullptr;
  void (*mul_region_acc)(std::uint8_t c, const std::uint8_t* src,
                         std::uint8_t* dst, std::size_t n) = nullptr;
};

/// True when `kind` can run on this host *and* was compiled into the binary
/// (non-x86 builds and compilers without -mssse3/-mavx2 report false).
/// Scalar is always available.
[[nodiscard]] bool cpu_supports(KernelKind kind) noexcept;

/// The portable scalar kernel set (always present).
[[nodiscard]] const Kernels& scalar_kernels() noexcept;

/// SIMD kernel sets; nullptr when not compiled into this binary.  Calling
/// their entry points on a CPU where cpu_supports() is false is undefined.
[[nodiscard]] const Kernels* ssse3_kernels() noexcept;
[[nodiscard]] const Kernels* avx2_kernels() noexcept;

/// Resolve a kernel name to a vtable: "" / "auto" picks the best supported
/// variant (avx2 > ssse3 > scalar); "scalar" / "ssse3" / "avx2" pin one.
/// Throws util::CheckError for unknown names or variants this host/build
/// cannot run.  active_kernels() caches select_kernels($CAR_GF_KERNEL).
[[nodiscard]] const Kernels& select_kernels(std::string_view name);

/// The dispatched kernel set for this process: resolved once, on first use,
/// from the CAR_GF_KERNEL environment variable (empty/unset = autodetect).
[[nodiscard]] const Kernels& active_kernels();

/// Human-readable name for a kernel kind ("scalar" | "ssse3" | "avx2").
[[nodiscard]] const char* kernel_name(KernelKind kind) noexcept;

namespace detail {
// Vtable definitions live in per-ISA translation units compiled with the
// matching -m flags; only the accessors above may reference them (they know
// which ones were actually built).
extern const Kernels kScalarKernels;
extern const Kernels kSsse3Kernels;
extern const Kernels kAvx2Kernels;
}  // namespace detail

}  // namespace car::gf
