// Minimal command-line flag parsing for the repository's CLI tools.
//
// Syntax: `--name value`, `--name=value`, or bare `--switch` (boolean).
// Positional arguments (no leading --) are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace car::util {

class Flags {
 public:
  /// Parse argv (excluding argv[0]).  Throws std::invalid_argument on
  /// malformed input (e.g. `--` with no name).
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// String value; `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;

  /// Integer value; throws std::invalid_argument when present but
  /// unparseable.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Floating-point value; throws std::invalid_argument when unparseable.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Boolean switch: present with no value (or "true"/"1") -> true.
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;

  /// Comma-separated list of non-negative integers ("4,3,3").
  [[nodiscard]] std::vector<std::size_t> get_size_list(
      const std::string& name,
      const std::vector<std::size_t>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace car::util
