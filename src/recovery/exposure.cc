#include "recovery/exposure.h"

#include <algorithm>
#include <exception>
#include <iterator>
#include <mutex>
#include <thread>

#include "recovery/solutions.h"
#include "util/check.h"

namespace car::recovery {

namespace {

std::uint64_t key_of(cluster::StripeId stripe, std::size_t chunk_index) {
  // chunk_index < k + m is tiny; 16 bits is generous and keeps the key a
  // single word.
  CAR_CHECK(chunk_index < (1u << 16),
            "RecoveredSet: chunk index exceeds the 16-bit key range");
  return (static_cast<std::uint64_t>(stripe) << 16) |
         static_cast<std::uint64_t>(chunk_index);
}

}  // namespace

void RecoveredSet::mark(cluster::StripeId stripe, std::size_t chunk_index) {
  keys_.insert(key_of(stripe, chunk_index));
}

bool RecoveredSet::contains(cluster::StripeId stripe,
                            std::size_t chunk_index) const {
  return keys_.contains(key_of(stripe, chunk_index));
}

namespace {

/// Serial exposure-scan core over one contiguous stripe range.
void exposure_range(const cluster::Placement& placement,
                    const std::vector<char>& failed,
                    cluster::NodeId replacement, const RecoveredSet& recovered,
                    cluster::StripeId begin, cluster::StripeId end,
                    std::vector<StripeExposure>& out) {
  const auto& topology = placement.topology();
  const cluster::RackId home = topology.rack_of(replacement);
  std::vector<std::size_t> available(topology.num_racks(), 0);
  for (cluster::StripeId s = begin; s < end; ++s) {
    StripeExposure exposure;
    exposure.stripe = s;
    std::fill(available.begin(), available.end(), 0);
    const auto hosts = placement.stripe(s);
    for (std::size_t c = 0; c < hosts.size(); ++c) {
      const cluster::NodeId host = hosts[c];
      if (failed[host] == 0) {
        ++available[topology.rack_of(host)];
        continue;
      }
      const bool safe = recovered.contains(s, c);
      if (!safe) exposure.exposed_chunks.push_back(c);
      // A replica published on the replacement is only visible to the
      // planner when the chunk's placement host IS the replacement; any
      // other recovered chunk is recomputed (identical bytes) by the next
      // plan that touches the stripe.
      if (safe && host == replacement) {
        ++available[home];
      } else {
        exposure.plan_chunks.push_back(c);
        exposure.plan_hosts.push_back(host);
      }
    }
    if (exposure.plan_chunks.empty()) continue;

    CAR_CHECK_LE(exposure.exposed_chunks.size(), placement.m(),
                 "build_exposure_census: stripe lost more than m chunks "
                 "with no live replica — data loss, unrecoverable");
    CAR_CHECK_LE(exposure.plan_chunks.size(), placement.m(),
                 "build_exposure_census: a re-plan would need to rebuild "
                 "more than m chunks of one stripe; recovered replicas on "
                 "the replacement cannot stand in for chunks hosted "
                 "elsewhere (see recovery/exposure.h)");
    exposure.tolerance_left = placement.m() - exposure.exposed_chunks.size();
    std::sort(exposure.plan_hosts.begin(), exposure.plan_hosts.end());
    exposure.plan_hosts.erase(
        std::unique(exposure.plan_hosts.begin(), exposure.plan_hosts.end()),
        exposure.plan_hosts.end());
    exposure.min_racks = min_racks_for(placement.k(), home, available);
    out.push_back(std::move(exposure));
  }
}

}  // namespace

std::vector<StripeExposure> build_exposure_census(
    const cluster::Placement& placement,
    const std::vector<cluster::NodeId>& failed_nodes,
    cluster::NodeId replacement, const RecoveredSet& recovered,
    std::size_t shards) {
  CAR_CHECK(shards >= 1, "build_exposure_census: shards must be >= 1");
  const auto& topology = placement.topology();
  CAR_CHECK(replacement < topology.num_nodes(),
            "build_exposure_census: replacement node id out of range");
  std::vector<char> failed(topology.num_nodes(), 0);
  for (const cluster::NodeId node : failed_nodes) {
    CAR_CHECK_LT(node, topology.num_nodes(),
                 "build_exposure_census: failed node id out of range");
    failed[node] = 1;
  }

  const cluster::StripeId n = placement.num_stripes();
  if (shards <= 1 || n < 2) {
    std::vector<StripeExposure> out;
    exposure_range(placement, failed, replacement, recovered, 0, n, out);
    return out;
  }
  // Contiguous ranges concatenated in range order — bit-identical to the
  // serial scan for every shard count (RecoveredSet reads are const).
  shards = std::min<std::size_t>(shards, n);
  std::vector<std::vector<StripeExposure>> parts(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  std::mutex error_mu;
  std::exception_ptr error;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const cluster::StripeId begin = n * shard / shards;
    const cluster::StripeId end = n * (shard + 1) / shards;
    workers.emplace_back([&, shard, begin, end] {
      try {
        exposure_range(placement, failed, replacement, recovered, begin, end,
                       parts[shard]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<StripeExposure> out;
  out.reserve(total);
  for (auto& part : parts) {
    std::move(part.begin(), part.end(), std::back_inserter(out));
  }
  return out;
}

}  // namespace car::recovery
