#include "emul/cluster.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/configs.h"
#include "emul/link.h"
#include "recovery/balancer.h"

namespace car::emul {
namespace {

using cluster::Topology;

EmulConfig fast_config() {
  EmulConfig cfg;
  cfg.node_bps = 200e6;  // keep tests quick
  cfg.oversubscription = 4.0;
  cfg.page_bytes = 16 * 1024;
  return cfg;
}

TEST(SerialLink, TransmissionTakesBytesOverRate) {
  SerialLink link(1e6);  // 1 MB/s
  const auto t0 = std::chrono::steady_clock::now();
  link.transmit(100'000);  // 0.1 s
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  EXPECT_GE(dt.count(), 0.095);
  EXPECT_LT(dt.count(), 0.5);  // generous upper bound for CI noise
  EXPECT_EQ(link.bytes_transmitted(), 100'000u);
}

TEST(SerialLink, ConcurrentSendersSerialise) {
  SerialLink link(1e6);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread a([&] { link.transmit(50'000); });
  std::thread b([&] { link.transmit(50'000); });
  a.join();
  b.join();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  EXPECT_GE(dt.count(), 0.095);  // 100 KB through 1 MB/s, shared
  EXPECT_EQ(link.bytes_transmitted(), 100'000u);
}

TEST(SerialLink, RejectsNonPositiveRate) {
  EXPECT_THROW(SerialLink(0.0), std::invalid_argument);
  EXPECT_THROW(SerialLink(-5.0), std::invalid_argument);
}

TEST(Cluster, StoreFindEraseChunks) {
  Cluster cluster(Topology({2, 2}), fast_config());
  cluster.store_chunk(1, 7, 3, rs::Chunk{1, 2, 3});
  const auto* chunk = cluster.find_chunk(1, 7, 3);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(*chunk, (rs::Chunk{1, 2, 3}));
  EXPECT_EQ(cluster.find_chunk(0, 7, 3), nullptr);
  cluster.erase_node(1);
  EXPECT_EQ(cluster.find_chunk(1, 7, 3), nullptr);
  EXPECT_THROW(cluster.store_chunk(9, 0, 0, {}), std::out_of_range);
  EXPECT_THROW(cluster.erase_node(9), std::out_of_range);
}

TEST(Cluster, PopulateStoresEveryChunkOnItsHost) {
  util::Rng rng(41);
  const auto cfg = cluster::cfs1();
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 5, rng);
  const rs::Code code(cfg.k, cfg.m);
  Cluster cluster(cfg.topology(), fast_config());
  const auto originals = cluster.populate(placement, code, 2048, rng);
  ASSERT_EQ(originals.size(), 5u);
  for (cluster::StripeId s = 0; s < 5; ++s) {
    ASSERT_EQ(originals[s].size(), cfg.k + cfg.m);
    for (std::size_t c = 0; c < cfg.k + cfg.m; ++c) {
      const auto* stored = cluster.find_chunk(placement.node_of(s, c), s, c);
      ASSERT_NE(stored, nullptr);
      EXPECT_EQ(*stored, originals[s][c]);
    }
  }
}

struct RecoveryFixture {
  cluster::CfsConfig cfg;
  cluster::Placement placement;
  rs::Code code;
  Cluster cluster;
  std::vector<std::vector<rs::Chunk>> originals;
  cluster::FailureScenario scenario;
  std::vector<recovery::StripeCensus> censuses;

  RecoveryFixture(int cfg_index, std::uint64_t seed, std::size_t stripes,
                  std::uint64_t chunk_size)
      : cfg(cluster::paper_configs()[cfg_index]),
        placement(make_placement(cfg, stripes, seed)),
        code(cfg.k, cfg.m),
        cluster(cfg.topology(), fast_config()) {
    util::Rng rng(seed + 1);
    originals = cluster.populate(placement, code, chunk_size, rng);
    scenario = cluster::inject_random_failure(placement, rng);
    cluster.erase_node(scenario.failed_node);
    censuses = recovery::build_censuses(placement, scenario);
  }

  static cluster::Placement make_placement(const cluster::CfsConfig& cfg,
                                           std::size_t stripes,
                                           std::uint64_t seed) {
    util::Rng rng(seed);
    return cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes,
                                      rng);
  }

  void verify_recovered() {
    for (const auto& lost : scenario.lost) {
      const auto* recovered = cluster.find_chunk(scenario.failed_node,
                                                 lost.stripe, lost.chunk_index);
      ASSERT_NE(recovered, nullptr)
          << "stripe " << lost.stripe << " chunk " << lost.chunk_index;
      EXPECT_EQ(*recovered, originals[lost.stripe][lost.chunk_index]);
    }
  }
};

TEST(ClusterExecute, CarPlanRecoversEveryLostChunkBitExactly) {
  RecoveryFixture f(0, 101, 12, 64 * 1024);
  const auto balanced = recovery::balance_greedy(f.placement, f.censuses, {50});
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, balanced.solutions, 64 * 1024,
      f.scenario.failed_node);
  const auto report = f.cluster.execute(plan);
  f.verify_recovered();
  EXPECT_GT(report.wall_s, 0.0);
  EXPECT_GT(report.compute_s, 0.0);
  EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
  EXPECT_EQ(report.intra_rack_bytes, plan.intra_rack_bytes());
  EXPECT_EQ(report.per_rack_cross_bytes,
            plan.per_rack_cross_bytes(f.placement.topology()));
}

TEST(ClusterExecute, RrPlanRecoversEveryLostChunkBitExactly) {
  RecoveryFixture f(1, 202, 10, 64 * 1024);
  util::Rng rng(7);
  const auto rr = recovery::plan_rr(f.placement, f.censuses, rng);
  const auto plan = recovery::build_rr_plan(f.placement, f.code, rr, 64 * 1024,
                                            f.scenario.failed_node);
  const auto report = f.cluster.execute(plan);
  f.verify_recovered();
  EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
}

TEST(ClusterExecute, Cfs3CarAndRrAgreeOnRecoveredBytes) {
  RecoveryFixture f(2, 303, 8, 32 * 1024);
  const auto balanced = recovery::balance_greedy(f.placement, f.censuses, {50});
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, balanced.solutions, 32 * 1024,
      f.scenario.failed_node);
  f.cluster.execute(plan);
  f.verify_recovered();
}

TEST(ClusterExecute, MissingBufferRaises) {
  RecoveryFixture f(0, 404, 4, 4 * 1024);
  const auto solutions = recovery::plan_car_initial(f.placement, f.censuses);
  const auto plan = recovery::build_car_plan(
      f.placement, f.code, solutions, 4 * 1024, f.scenario.failed_node);
  // Erase a node that still hosts survivor chunks referenced by the plan:
  // pick the first aggregator (source of the first transfer or compute).
  cluster::NodeId victim = f.scenario.failed_node;
  for (const auto& step : plan.steps) {
    if (step.kind == recovery::StepKind::kTransfer &&
        step.src != f.scenario.failed_node) {
      victim = step.src;
      break;
    }
    if (step.kind == recovery::StepKind::kCompute &&
        step.node != f.scenario.failed_node) {
      victim = step.node;
      break;
    }
  }
  ASSERT_NE(victim, f.scenario.failed_node);
  f.cluster.erase_node(victim);
  EXPECT_THROW(f.cluster.execute(plan), std::runtime_error);
}

TEST(ClusterExecute, EmptyPlanIsANoOp) {
  Cluster cluster(Topology({2, 2}), fast_config());
  recovery::RecoveryPlan plan;
  plan.chunk_size = 1;
  const auto report = cluster.execute(plan);
  EXPECT_EQ(report.wall_s, 0.0);
  EXPECT_EQ(report.cross_rack_bytes, 0u);
}

TEST(ClusterExecute, InvalidConfigRejected) {
  EmulConfig bad = fast_config();
  bad.page_bytes = 0;
  EXPECT_THROW(Cluster(Topology({2}), bad), std::invalid_argument);
}

}  // namespace
}  // namespace car::emul
