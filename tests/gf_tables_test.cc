#include "gf/tables.h"

#include <gtest/gtest.h>

namespace car::gf {
namespace {

TEST(PrimitivePolynomial, KnownValues) {
  EXPECT_EQ(primitive_polynomial(4), 0x13u);
  EXPECT_EQ(primitive_polynomial(8), 0x11Du);
  EXPECT_EQ(primitive_polynomial(16), 0x1100Bu);
}

TEST(PrimitivePolynomial, RejectsUnsupportedWidths) {
  EXPECT_THROW(primitive_polynomial(0), std::invalid_argument);
  EXPECT_THROW(primitive_polynomial(1), std::invalid_argument);
  EXPECT_THROW(primitive_polynomial(17), std::invalid_argument);
  EXPECT_THROW(primitive_polynomial(32), std::invalid_argument);
}

TEST(SlowMultiply, MatchesHandComputedGf256Products) {
  const auto poly = primitive_polynomial(8);
  // 2 * 2 = 4 (just a shift, no reduction).
  EXPECT_EQ(slow_multiply(2, 2, 8, poly), 4u);
  // 0x80 * 2 = 0x100 -> reduced by 0x11D -> 0x1D.
  EXPECT_EQ(slow_multiply(0x80, 2, 8, poly), 0x1Du);
  // Multiplication by 1 and 0.
  EXPECT_EQ(slow_multiply(0xAB, 1, 8, poly), 0xABu);
  EXPECT_EQ(slow_multiply(0xAB, 0, 8, poly), 0u);
}

TEST(SlowMultiply, IsCommutativeOnSamples) {
  const auto poly = primitive_polynomial(8);
  for (std::uint32_t a = 0; a < 256; a += 7) {
    for (std::uint32_t b = 0; b < 256; b += 11) {
      EXPECT_EQ(slow_multiply(a, b, 8, poly), slow_multiply(b, a, 8, poly));
    }
  }
}

class LogExpWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(LogExpWidths, TablesAreConsistentWithSlowMultiply) {
  const unsigned w = GetParam();
  const auto t = build_log_exp(w);
  const auto poly = primitive_polynomial(w);
  ASSERT_EQ(t.field_size, 1u << w);
  const std::uint32_t order = t.field_size - 1;

  // exp is a bijection onto the nonzero elements and log inverts it.
  std::vector<bool> seen(t.field_size, false);
  for (std::uint32_t i = 0; i < order; ++i) {
    const std::uint32_t x = t.exp[i];
    ASSERT_NE(x, 0u);
    ASSERT_LT(x, t.field_size);
    EXPECT_FALSE(seen[x]) << "exp not injective at " << i;
    seen[x] = true;
    EXPECT_EQ(t.log[x], i);
    EXPECT_EQ(t.exp[i + order], x) << "doubled table mismatch";
  }

  // exp respects multiplication: exp(i+1) = exp(i) * alpha.
  for (std::uint32_t i = 0; i + 1 < order; ++i) {
    EXPECT_EQ(t.exp[i + 1], slow_multiply(t.exp[i], 2, w, poly));
  }
}

TEST_P(LogExpWidths, MulViaLogsMatchesSlowMultiplyOnSamples) {
  const unsigned w = GetParam();
  const auto t = build_log_exp(w);
  const auto poly = primitive_polynomial(w);
  const std::uint32_t order = t.field_size - 1;
  const std::uint32_t step = w <= 8 ? 1 : 257;  // full sweep for small fields
  for (std::uint32_t a = 1; a < t.field_size; a += step) {
    for (std::uint32_t b = 1; b < t.field_size; b += step) {
      const auto expected = slow_multiply(a, b, w, poly);
      const auto via_logs = t.exp[(t.log[a] + t.log[b]) % order];
      EXPECT_EQ(via_logs, expected) << "a=" << a << " b=" << b << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, LogExpWidths,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace car::gf
