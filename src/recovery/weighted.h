// Bandwidth-aware load balancing for heterogeneous cross-rack links.
//
// The paper's Algorithm 2 balances *chunk counts* across racks, implicitly
// assuming every rack uplink has the same capacity.  Section IV-D remarks
// that a greedy strategy also suits "constantly changing network
// conditions"; this module realises that: each rack i has an available
// uplink bandwidth B_i, and the quantity balanced is the estimated drain
// time t_i / B_i.  A substitution moves one partial-chunk transmission from
// the rack with the largest drain time to one that keeps the plan's
// bottleneck strictly below the current one, so the bottleneck drain time
// is monotonically non-increasing while total traffic stays minimum.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/placement.h"
#include "recovery/census.h"
#include "recovery/planner.h"
#include "recovery/solutions.h"

namespace car::recovery {

struct WeightedBalanceResult {
  std::vector<PerStripeSolution> solutions;
  /// Bottleneck drain time (max_i t_i / B_i, in chunk-units per unit
  /// bandwidth) after each applied substitution; entry 0 is the initial
  /// value.
  std::vector<double> bottleneck_trace;
  std::size_t substitutions = 0;

  [[nodiscard]] double initial_bottleneck() const {
    return bottleneck_trace.front();
  }
  [[nodiscard]] double final_bottleneck() const {
    return bottleneck_trace.back();
  }
};

/// Balance the per-rack cross-rack chunk counts against per-rack uplink
/// bandwidths.  `rack_bandwidth[i] > 0` for every rack (relative units are
/// fine; only ratios matter).  Throws std::invalid_argument on arity
/// mismatch, non-positive bandwidth, or empty census list.
WeightedBalanceResult balance_weighted(
    const cluster::Placement& placement,
    const std::vector<StripeCensus>& censuses,
    const std::vector<double>& rack_bandwidth, std::size_t iterations = 50);

/// Estimated bottleneck drain time of a multi-stripe solution under the
/// given bandwidths (max over intact racks of t_i / B_i).
double bottleneck_drain(const std::vector<PerStripeSolution>& solutions,
                        const std::vector<double>& rack_bandwidth,
                        cluster::RackId failed_rack);

}  // namespace car::recovery
