// Multi-stripe load balancing of cross-rack repair traffic.
//
// Algorithm 2 of the paper: start from the default per-stripe solutions,
// then greedily substitute single rack accesses (move one partial-chunk
// transmission from the most-loaded intact rack A_l to a rack A_i with
// t_{l,f} - t_{i,f} >= 2) for at most e iterations.  Total cross-rack
// traffic is invariant (every substitution swaps one rack for another), so
// the greedy pass minimises λ subject to minimum traffic.
//
// An exhaustive branch-and-bound optimiser is also provided to measure how
// close the greedy pass gets to the true optimum (ablation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/placement.h"
#include "recovery/census.h"
#include "recovery/metrics.h"
#include "recovery/planner.h"
#include "recovery/solutions.h"

namespace car::recovery {

struct BalanceOptions {
  /// Maximum substitution iterations (the paper's e).
  std::size_t iterations = 50;
};

struct BalanceResult {
  std::vector<PerStripeSolution> solutions;
  /// λ after each iteration; index 0 is the initial (unbalanced) λ, so the
  /// vector has iterations_run + 1 entries.  When the algorithm converges
  /// before `iterations`, the trace simply ends early.
  std::vector<double> lambda_trace;
  std::size_t substitutions = 0;
  std::size_t iterations_run = 0;

  [[nodiscard]] double initial_lambda() const {
    return lambda_trace.front();
  }
  [[nodiscard]] double final_lambda() const { return lambda_trace.back(); }
};

/// Algorithm 2: greedy multi-stripe balancing.
BalanceResult balance_greedy(const cluster::Placement& placement,
                             const std::vector<StripeCensus>& censuses,
                             const BalanceOptions& options = {});

struct ExhaustiveResult {
  double lambda = 0.0;
  std::size_t max_rack_chunks = 0;
  std::uint64_t nodes_explored = 0;
  std::vector<RackSet> chosen;  // one per stripe
};

/// Exhaustive branch-and-bound over all combinations of valid minimal
/// per-stripe solutions; returns std::nullopt when the search would exceed
/// `max_nodes` explored states.  Total traffic is identical across all
/// combinations, so this minimises max_i t_{i,f} (equivalently λ).
std::optional<ExhaustiveResult> balance_exhaustive(
    const std::vector<StripeCensus>& censuses, std::uint64_t max_nodes);

}  // namespace car::recovery
