#include "recovery/validate.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace car::recovery {

namespace {

std::string step_label(const PlanStep& step) {
  std::ostringstream os;
  os << "step " << step.id
     << (step.kind == StepKind::kTransfer ? " (transfer" : " (compute")
     << ", stripe " << step.stripe << ')';
  return os.str();
}

/// Buffers are identified by (kind, stripe, chunk_index / step_id); a plan
/// may reference the same buffer on several nodes as transfers copy it.
struct BufferKey {
  bool is_step = false;
  cluster::StripeId stripe = 0;
  std::uint64_t index = 0;  // chunk_index or step_id

  static BufferKey of(const BufferRef& ref) {
    if (ref.kind == BufferRef::Kind::kStepOutput) {
      return {true, 0, ref.step_id};
    }
    return {false, ref.stripe, ref.chunk_index};
  }
  friend auto operator<=>(const BufferKey&, const BufferKey&) = default;
};

std::string buffer_label(const BufferKey& key) {
  std::ostringstream os;
  if (key.is_step) {
    os << "output of step " << key.index;
  } else {
    os << "chunk (stripe " << key.stripe << ", index " << key.index << ')';
  }
  return os.str();
}

/// Grow-only ancestor bitsets over the dependency DAG, filled in topological
/// order: ancestors(s) = union over deps d of ancestors(d) ∪ {d}.
class AncestorSets {
 public:
  explicit AncestorSets(std::size_t n)
      : n_(n), words_((n + 63) / 64), bits_(n_ * words_, 0) {}

  void absorb(std::size_t step, std::size_t dep) {
    std::uint64_t* mine = row(step);
    const std::uint64_t* theirs = row(dep);
    for (std::size_t w = 0; w < words_; ++w) mine[w] |= theirs[w];
    mine[dep / 64] |= 1ULL << (dep % 64);
  }

  [[nodiscard]] bool contains(std::size_t step, std::size_t maybe_ancestor)
      const {
    return (row(step)[maybe_ancestor / 64] >>
            (maybe_ancestor % 64)) & 1ULL;
  }

 private:
  std::uint64_t* row(std::size_t step) { return bits_.data() + step * words_; }
  [[nodiscard]] const std::uint64_t* row(std::size_t step) const {
    return bits_.data() + step * words_;
  }

  std::size_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const auto& e : errors) os << "error: " << e << '\n';
  for (const auto& n : notes) os << "note: " << n << '\n';
  return os.str();
}

ValidationReport validate_plan(const RecoveryPlan& plan,
                               const cluster::Topology& topology,
                               const ValidateOptions& options) {
  ValidationReport report;
  auto error = [&report](const std::string& message) {
    report.errors.push_back(message);
  };

  const std::size_t n = plan.steps.size();
  if (n == 0) {
    if (!plan.outputs.empty()) {
      error("plan has outputs but no steps");
    }
    return report;
  }
  if (plan.chunk_size == 0) {
    error("chunk_size must be > 0 for a non-empty plan");
  }
  if (plan.replacement >= topology.num_nodes()) {
    error("replacement node id out of range");
  } else if (topology.rack_of(plan.replacement) != plan.replacement_rack) {
    error("replacement_rack does not match the replacement node's rack");
  }

  // --- per-step structural checks -----------------------------------------
  bool ids_dense = true;
  for (std::size_t i = 0; i < n; ++i) {
    const PlanStep& step = plan.steps[i];
    if (step.id != i) {
      error(step_label(step) + ": id does not equal its index " +
            std::to_string(i));
      ids_dense = false;
    }
  }
  if (!ids_dense) {
    // Dependency ids are meaningless without dense ids; stop here.
    return report;
  }

  bool deps_ok = true;
  for (const PlanStep& step : plan.steps) {
    for (const std::size_t dep : step.deps) {
      if (dep >= n) {
        error(step_label(step) + ": dangling dependency id " +
              std::to_string(dep));
        deps_ok = false;
      } else if (dep == step.id) {
        error(step_label(step) + ": depends on itself");
        deps_ok = false;
      }
    }
    if (step.kind == StepKind::kTransfer) {
      if (step.src >= topology.num_nodes() ||
          step.dst >= topology.num_nodes()) {
        error(step_label(step) + ": node id out of range");
        continue;
      }
      if (step.bytes != plan.chunk_size) {
        error(step_label(step) + ": transfer moves " +
              std::to_string(step.bytes) + " bytes, expected chunk_size " +
              std::to_string(plan.chunk_size));
      }
      const bool crosses =
          topology.rack_of(step.src) != topology.rack_of(step.dst);
      if (step.cross_rack != crosses) {
        error(step_label(step) + ": cross_rack flag is " +
              (step.cross_rack ? "true" : "false") +
              " but the endpoints say otherwise");
      }
    } else {
      if (step.node >= topology.num_nodes()) {
        error(step_label(step) + ": node id out of range");
        continue;
      }
      if (step.inputs.empty()) {
        error(step_label(step) + ": compute has no inputs");
        continue;
      }
      if (step.bytes != plan.chunk_size * step.inputs.size()) {
        error(step_label(step) + ": compute touches " +
              std::to_string(step.bytes) + " bytes, expected chunk_size * " +
              std::to_string(step.inputs.size()));
      }
      for (const ComputeInput& in : step.inputs) {
        if (in.buffer.kind != BufferRef::Kind::kStepOutput) continue;
        if (in.buffer.step_id >= n) {
          error(step_label(step) + ": input references unknown step " +
                std::to_string(in.buffer.step_id));
        } else if (plan.steps[in.buffer.step_id].kind != StepKind::kCompute) {
          error(step_label(step) + ": input references step " +
                std::to_string(in.buffer.step_id) +
                " which is not a compute step");
        }
      }
    }
  }

  // --- outputs ------------------------------------------------------------
  std::set<std::pair<cluster::StripeId, std::size_t>> seen_outputs;
  for (const RecoveryPlan::Output& out : plan.outputs) {
    if (out.step_id >= n) {
      error("output for stripe " + std::to_string(out.stripe) +
            " references unknown step " + std::to_string(out.step_id));
      continue;
    }
    if (plan.steps[out.step_id].kind != StepKind::kCompute) {
      error("output for stripe " + std::to_string(out.stripe) +
            " references step " + std::to_string(out.step_id) +
            " which is not a compute step");
    }
    if (!seen_outputs.emplace(out.stripe, out.chunk_index).second) {
      error("duplicate output for stripe " + std::to_string(out.stripe) +
            ", chunk " + std::to_string(out.chunk_index));
    }
  }

  // --- cycle detection (Kahn) ---------------------------------------------
  std::vector<std::size_t> topo_order;
  bool acyclic = false;
  if (deps_ok) {
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> dependents(n);
    for (const PlanStep& step : plan.steps) {
      indegree[step.id] = step.deps.size();
      for (const std::size_t dep : step.deps) {
        dependents[dep].push_back(step.id);
      }
    }
    std::queue<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] == 0) ready.push(i);
    }
    topo_order.reserve(n);
    while (!ready.empty()) {
      const std::size_t id = ready.front();
      ready.pop();
      topo_order.push_back(id);
      for (const std::size_t next : dependents[id]) {
        if (--indegree[next] == 0) ready.push(next);
      }
    }
    acyclic = topo_order.size() == n;
    if (!acyclic) {
      std::ostringstream os;
      os << "dependency cycle involving steps {";
      bool first = true;
      for (std::size_t i = 0; i < n && os.tellp() < 120; ++i) {
        if (indegree[i] == 0) continue;
        os << (first ? "" : ", ") << i;
        first = false;
      }
      os << '}';
      error(os.str());
    }
  }

  // --- data-flow analysis --------------------------------------------------
  // Walk steps in topological order; a buffer is usable by a step only when
  // the step that placed it on the node (a transfer in, a local compute, or
  // the initial placement for chunks) is a dependency ancestor — otherwise
  // the DAG permits an execution order where the step runs first.
  if (options.placement == nullptr) {
    report.notes.push_back(
        "data-flow checks skipped: no placement supplied");
  } else if (!acyclic || !deps_ok) {
    report.notes.push_back(
        "data-flow checks skipped: dependency graph is malformed");
  } else if (n > options.max_flow_analysis_steps) {
    report.notes.push_back(
        "data-flow checks skipped: plan exceeds max_flow_analysis_steps");
  } else {
    const cluster::Placement& placement = *options.placement;
    AncestorSets ancestors(n);
    // producers[(key, node)] -> steps that place the buffer on the node.
    std::map<std::pair<BufferKey, cluster::NodeId>, std::vector<std::size_t>>
        producers;

    auto initially_home = [&](const BufferKey& key,
                              cluster::NodeId node) -> bool {
      if (key.is_step) return false;
      if (key.stripe >= placement.num_stripes()) return false;
      const auto& stripe = placement.stripe(key.stripe);
      return key.index < stripe.size() && stripe[key.index] == node;
    };

    auto available = [&](std::size_t step_id, const BufferKey& key,
                         cluster::NodeId node) -> bool {
      if (initially_home(key, node)) return true;
      const auto it = producers.find({key, node});
      if (it == producers.end()) return false;
      return std::any_of(
          it->second.begin(), it->second.end(),
          [&](std::size_t p) { return ancestors.contains(step_id, p); });
    };

    for (const std::size_t id : topo_order) {
      const PlanStep& step = plan.steps[id];
      for (const std::size_t dep : step.deps) ancestors.absorb(id, dep);

      if (step.kind == StepKind::kTransfer) {
        const BufferKey key = BufferKey::of(step.payload);
        if (!key.is_step && key.stripe >= placement.num_stripes()) {
          error(step_label(step) + ": payload stripe out of range");
          continue;
        }
        if (!available(id, key, step.src)) {
          error(step_label(step) + ": payload " + buffer_label(key) +
                " is not on source node " + std::to_string(step.src) +
                " when the step may run");
        }
        producers[{key, step.dst}].push_back(id);
      } else {
        for (const ComputeInput& in : step.inputs) {
          const BufferKey key = BufferKey::of(in.buffer);
          if (!available(id, key, step.node)) {
            error(step_label(step) + ": input " + buffer_label(key) +
                  " is not on node " + std::to_string(step.node) +
                  " when the step may run");
          }
        }
        producers[{BufferKey{true, 0, id}, step.node}].push_back(id);
      }
    }

    // Every declared output must end up on the replacement node.
    for (const RecoveryPlan::Output& out : plan.outputs) {
      if (out.step_id >= n) continue;  // already reported
      const BufferKey key{true, 0, out.step_id};
      if (!initially_home(key, plan.replacement) &&
          producers.find({key, plan.replacement}) == producers.end()) {
        error("output for stripe " + std::to_string(out.stripe) + ", chunk " +
              std::to_string(out.chunk_index) + " (step " +
              std::to_string(out.step_id) +
              ") never reaches the replacement node");
      }
    }
  }

  // --- one aggregator per rack per stripe ---------------------------------
  // CAR's partial decoding funnels each contributing rack through a single
  // aggregator; two distinct non-replacement compute nodes in one rack for
  // the same stripe means the plan split a rack's partial sum.
  if (options.require_single_aggregator_per_rack) {
    std::map<std::pair<cluster::StripeId, cluster::RackId>,
             std::set<cluster::NodeId>>
        aggregators;
    for (const PlanStep& step : plan.steps) {
      if (step.kind != StepKind::kCompute) continue;
      if (step.node == plan.replacement) continue;
      if (step.node >= topology.num_nodes()) continue;  // already reported
      aggregators[{step.stripe, topology.rack_of(step.node)}].insert(
          step.node);
    }
    for (const auto& [key, nodes] : aggregators) {
      if (nodes.size() > 1) {
        error("stripe " + std::to_string(key.first) + ": rack " +
              std::to_string(key.second) + " has " +
              std::to_string(nodes.size()) +
              " aggregator nodes, expected exactly one");
      }
    }
  }

  // --- cross-rack traffic vs the planner's claim --------------------------
  if (options.expected_cross_rack_chunks.has_value() &&
      plan.chunk_size > 0) {
    const std::uint64_t expected =
        *options.expected_cross_rack_chunks * plan.chunk_size;
    const std::uint64_t actual = plan.cross_rack_bytes();
    if (actual != expected) {
      error("cross-rack bytes " + std::to_string(actual) +
            " do not match the planner's claim of " +
            std::to_string(*options.expected_cross_rack_chunks) +
            " chunk units (" + std::to_string(expected) + " bytes)");
    }
  }

  return report;
}

ValidationReport validate_sliced_plan(const SlicePlan& sliced,
                                      const RecoveryPlan& base,
                                      const cluster::Topology& topology) {
  ValidationReport report;
  auto error = [&report](std::string message) {
    report.errors.push_back(std::move(message));
  };

  // --- grid metadata -------------------------------------------------------
  if (sliced.replacement != base.replacement) {
    error("sliced plan replacement node differs from the base plan");
  }
  if (sliced.replacement_rack != base.replacement_rack) {
    error("sliced plan replacement rack differs from the base plan");
  }
  if (sliced.chunk_size != base.chunk_size) {
    error("sliced plan chunk_size differs from the base plan");
  }
  if (sliced.num_base_steps != base.steps.size()) {
    error("sliced plan records " + std::to_string(sliced.num_base_steps) +
          " base steps but the base plan has " +
          std::to_string(base.steps.size()));
  }
  if (sliced.num_slices == 0) {
    error("sliced plan has num_slices == 0");
    return report;  // the grid below is meaningless
  }
  if (!base.steps.empty()) {
    if (sliced.slice_size == 0 || sliced.slice_size > base.chunk_size) {
      error("slice_size must be in [1, chunk_size]");
      return report;
    }
    const auto expected_slices = static_cast<std::size_t>(
        (base.chunk_size + sliced.slice_size - 1) / sliced.slice_size);
    if (sliced.num_slices != expected_slices) {
      error("num_slices " + std::to_string(sliced.num_slices) +
            " does not match ceil(chunk_size / slice_size) = " +
            std::to_string(expected_slices));
      return report;
    }
  }
  if (sliced.steps.size() != base.steps.size() * sliced.num_slices) {
    error("sliced plan has " + std::to_string(sliced.steps.size()) +
          " steps; expected base steps * num_slices = " +
          std::to_string(base.steps.size() * sliced.num_slices));
    return report;
  }
  if (sliced.info.size() != sliced.steps.size()) {
    error("slice info table size does not match the sliced step count");
    return report;
  }

  // --- per-step fidelity, slice coverage, dependency image -----------------
  for (std::size_t id = 0; id < sliced.steps.size(); ++id) {
    const PlanStep& step = sliced.steps[id];
    const SliceInfo& info = sliced.info[id];
    const std::size_t base_id = id / sliced.num_slices;
    const std::size_t slice = id % sliced.num_slices;
    const auto prefix = [&] {
      return "sliced step " + std::to_string(id) + " (base " +
             std::to_string(base_id) + ", slice " + std::to_string(slice) +
             "): ";
    };
    if (step.id != id) {
      error(prefix() + "id is not dense");
      continue;
    }
    if (info.base_step != base_id || info.slice != slice) {
      error(prefix() + "slice info disagrees with the id grid");
      continue;
    }
    // Coverage: slice s covers [s * slice_size, ...), the final slice is
    // truncated at the chunk boundary, so the slices of one base step
    // partition [0, chunk_size) exactly.
    const std::uint64_t offset =
        static_cast<std::uint64_t>(slice) * sliced.slice_size;
    const std::uint64_t length =
        std::min(sliced.slice_size, sliced.chunk_size - offset);
    if (info.offset != offset || info.length != length || length == 0) {
      error(prefix() + "byte range [" + std::to_string(info.offset) + ", " +
            std::to_string(info.offset + info.length) +
            ") does not lie on the slice grid — coverage of the chunk is "
            "broken");
      continue;
    }

    const PlanStep& parent = base.steps[base_id];
    const bool fidelity =
        step.kind == parent.kind && step.stripe == parent.stripe &&
        step.src == parent.src && step.dst == parent.dst &&
        step.payload == parent.payload &&
        step.cross_rack == parent.cross_rack && step.node == parent.node &&
        step.inputs.size() == parent.inputs.size() &&
        std::equal(step.inputs.begin(), step.inputs.end(),
                   parent.inputs.begin(),
                   [](const ComputeInput& a, const ComputeInput& b) {
                     return a.buffer == b.buffer && a.coeff == b.coeff;
                   });
    if (!fidelity) {
      error(prefix() + "does not mirror its base step's kind, endpoints, "
            "payload, or inputs");
      continue;
    }

    const std::uint64_t expected_bytes =
        step.kind == StepKind::kTransfer
            ? length
            : length * static_cast<std::uint64_t>(step.inputs.size());
    if (step.bytes != expected_bytes) {
      error(prefix() + "declares " + std::to_string(step.bytes) +
            " bytes; the slice grid requires " +
            std::to_string(expected_bytes));
    }

    // Dependency image: deps of (base, s) = { (dep, s) : dep in base.deps },
    // same order.
    bool deps_ok = step.deps.size() == parent.deps.size();
    for (std::size_t d = 0; deps_ok && d < step.deps.size(); ++d) {
      deps_ok = step.deps[d] == sliced.sliced_id(parent.deps[d], slice);
    }
    if (!deps_ok) {
      error(prefix() + "dependencies are not the same-slice image of the "
            "base step's dependencies");
    }
  }

  // --- byte totals: slicing must not change what moves where ---------------
  if (sliced.cross_rack_bytes() != base.cross_rack_bytes()) {
    error("slicing changed cross-rack bytes: sliced " +
          std::to_string(sliced.cross_rack_bytes()) + " vs base " +
          std::to_string(base.cross_rack_bytes()));
  }
  if (sliced.intra_rack_bytes() != base.intra_rack_bytes()) {
    error("slicing changed intra-rack bytes: sliced " +
          std::to_string(sliced.intra_rack_bytes()) + " vs base " +
          std::to_string(base.intra_rack_bytes()));
  }
  if (sliced.compute_bytes() != base.compute_bytes()) {
    error("slicing changed compute bytes: sliced " +
          std::to_string(sliced.compute_bytes()) + " vs base " +
          std::to_string(base.compute_bytes()));
  }
  if (sliced.per_rack_cross_bytes(topology) !=
      base.per_rack_cross_bytes(topology)) {
    error("slicing changed the per-rack cross-core byte distribution");
  }

  // --- outputs -------------------------------------------------------------
  if (sliced.outputs.size() != base.outputs.size()) {
    error("sliced plan outputs differ in count from the base plan");
  } else {
    for (std::size_t i = 0; i < sliced.outputs.size(); ++i) {
      const auto& a = sliced.outputs[i];
      const auto& b = base.outputs[i];
      if (a.stripe != b.stripe || a.chunk_index != b.chunk_index ||
          a.step_id != b.step_id) {
        error("sliced plan output " + std::to_string(i) +
              " does not match the base plan output");
        break;
      }
    }
  }

  return report;
}

std::uint64_t claimed_cross_rack_chunks(
    std::span<const PerStripeSolution> solutions,
    cluster::RackId replacement_rack) {
  std::uint64_t total = 0;
  for (const PerStripeSolution& solution : solutions) {
    for (const cluster::RackId rack : solution.rack_set.racks) {
      total += rack != replacement_rack;
    }
  }
  return total;
}

std::uint64_t claimed_cross_rack_chunks(
    std::span<const MultiStripeSolution> solutions,
    cluster::RackId replacement_rack) {
  std::uint64_t total = 0;
  for (const MultiStripeSolution& solution : solutions) {
    std::uint64_t racks = 0;
    for (const cluster::RackId rack : solution.rack_set.racks) {
      racks += rack != replacement_rack;
    }
    total += racks * solution.lost_chunks.size();
  }
  return total;
}

}  // namespace car::recovery
