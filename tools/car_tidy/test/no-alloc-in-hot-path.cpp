// Fixture for car-no-alloc-in-hot-path.  Self-contained: mock declarations
// stand in for the repo headers so the fixture needs no include paths.
// `// EXPECT: <substring>` on a line asserts a diagnostic at that line whose
// message contains the substring; the runner also asserts there are no
// diagnostics anywhere else (the clean functions below are the non-finding
// half of the test).
#define CAR_HOT __attribute__((annotate("car_hot")))
#define CAR_CHECK(cond, msg) \
  do {                       \
    if (!(cond)) throw msg;  \
  } while (0)

namespace std {
template <typename T>
class vector {
 public:
  vector();
  vector(unsigned long n);
  void push_back(const T &);
  void reserve(unsigned long);
  unsigned long size() const;
  T *data();
};
template <typename T, unsigned long N>
struct array {
  T elems[N];
  T *data() { return elems; }
};
struct string {
  string(const char *);
  string operator+(const char *) const;
};
}  // namespace std

// ---- violations -----------------------------------------------------------

CAR_HOT void hot_new_expression(int n) {
  int *p = new int[n];  // EXPECT: heap allocation in a CAR_HOT function
  delete[] p;
}

CAR_HOT void hot_vector_growth(std::vector<int> &v) {
  v.push_back(1);  // EXPECT: container growth in a CAR_HOT function
}

CAR_HOT void hot_local_container() {
  std::vector<double> busy(4);  // EXPECT: allocating container in a CAR_HOT function
  (void)busy;
}

// ---- non-findings ---------------------------------------------------------

// Not tagged CAR_HOT: allocation is allowed in setup code.
void cold_setup() {
  std::vector<int> scratch;
  scratch.reserve(128);
}

// CAR_HOT with fixed-capacity storage: the approved pattern.
CAR_HOT void hot_stack_array(std::vector<double> &out) {
  std::array<double, 4> busy{};
  (void)busy.data();
  (void)out.size();
}

// Allocation confined to a CAR_CHECK message argument: only evaluated on
// the (cold) failure path, so the contract macro expansion is exempt.
CAR_HOT void hot_with_contract(unsigned long n) {
  CAR_CHECK(n > 0, std::string("bad n for ") + "hot_with_contract");
}
