#include "rs/partial.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace car::rs {
namespace {

std::vector<Chunk> random_data(std::size_t k, std::size_t size,
                               util::Rng& rng) {
  std::vector<Chunk> data(k, Chunk(size));
  for (auto& chunk : data) rng.fill_bytes(chunk);
  return data;
}

std::vector<ChunkView> views_of(const std::vector<Chunk>& chunks) {
  return {chunks.begin(), chunks.end()};
}

/// Random partition of positions [0, k) into 1..k groups.
std::vector<PartialGroup> random_partition(std::size_t k, util::Rng& rng) {
  const std::size_t groups = 1 + rng.next_below(k);
  std::vector<PartialGroup> partition(groups);
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < k; ++i) {
    // Guarantee each group gets at least one position, then spread randomly.
    const std::size_t g = i < groups ? i : rng.next_below(groups);
    partition[g].positions.push_back(order[i]);
  }
  return partition;
}

using Params = std::tuple<std::size_t, std::size_t>;

class PartialDecoding : public ::testing::TestWithParam<Params> {
 protected:
  std::size_t k_ = std::get<0>(GetParam());
  std::size_t m_ = std::get<1>(GetParam());
  Code code_{k_, m_};
  util::Rng rng_{k_ * 131 + m_};
};

TEST_P(PartialDecoding, GroupedReconstructionEqualsDirectForRandomPartitions) {
  const auto data = random_data(k_, 77, rng_);
  const auto stripe = code_.encode_stripe(views_of(data));
  const std::size_t n = k_ + m_;

  for (std::size_t lost = 0; lost < n; ++lost) {
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != lost) survivors.push_back(i);
    }
    rng_.shuffle(survivors);
    survivors.resize(k_);
    std::vector<ChunkView> chunks;
    for (std::size_t id : survivors) chunks.push_back(stripe[id]);

    const auto direct = code_.reconstruct(lost, survivors, chunks);
    for (int trial = 0; trial < 4; ++trial) {
      const auto partition = random_partition(k_, rng_);
      const auto grouped =
          reconstruct_grouped(code_, lost, survivors, chunks, partition);
      ASSERT_EQ(grouped, direct) << "lost=" << lost << " trial=" << trial;
      ASSERT_EQ(grouped, stripe[lost]);
    }
  }
}

TEST_P(PartialDecoding, SingleGroupEqualsDirectReconstruction) {
  const auto data = random_data(k_, 33, rng_);
  const auto stripe = code_.encode_stripe(views_of(data));
  std::vector<std::size_t> survivors;
  for (std::size_t i = 1; i <= k_; ++i) survivors.push_back(i);
  std::vector<ChunkView> chunks;
  for (std::size_t id : survivors) chunks.push_back(stripe[id]);

  PartialGroup all;
  for (std::size_t i = 0; i < k_; ++i) all.positions.push_back(i);
  const std::vector<PartialGroup> partition = {all};
  EXPECT_EQ(reconstruct_grouped(code_, 0, survivors, chunks, partition),
            stripe[0]);
}

INSTANTIATE_TEST_SUITE_P(Codes, PartialDecoding,
                         ::testing::Values(Params{2, 1}, Params{4, 2},
                                           Params{4, 3}, Params{6, 3},
                                           Params{10, 4}));

TEST(PartialDecode, PartialsSumToTheRepairCombination) {
  util::Rng rng(7);
  Code code(4, 3);
  const auto data = random_data(4, 50, rng);
  const auto stripe = code.encode_stripe(views_of(data));
  const std::vector<std::size_t> survivors = {1, 3, 5, 6};
  std::vector<ChunkView> chunks;
  for (auto id : survivors) chunks.push_back(stripe[id]);
  const auto y = code.repair_vector(0, survivors);

  const PartialGroup g1{{0, 2}};
  const PartialGroup g2{{1, 3}};
  const auto p1 = partial_decode(y, g1, chunks);
  const auto p2 = partial_decode(y, g2, chunks);
  std::vector<ChunkView> partials = {p1, p2};
  EXPECT_EQ(combine_partials(partials), stripe[0]);
}

TEST(PartialDecode, EmptyGroupYieldsZeroChunk) {
  util::Rng rng(8);
  Code code(3, 2);
  const auto data = random_data(3, 16, rng);
  const auto stripe = code.encode_stripe(views_of(data));
  const std::vector<std::size_t> survivors = {1, 2, 3};
  std::vector<ChunkView> chunks;
  for (auto id : survivors) chunks.push_back(stripe[id]);
  const auto y = code.repair_vector(0, survivors);
  const auto zero = partial_decode(y, PartialGroup{}, chunks);
  EXPECT_EQ(zero, Chunk(16, 0));
}

TEST(PartialDecode, Validation) {
  util::Rng rng(9);
  Code code(3, 2);
  const auto data = random_data(3, 16, rng);
  const auto stripe = code.encode_stripe(views_of(data));
  const std::vector<std::size_t> survivors = {1, 2, 3};
  std::vector<ChunkView> chunks;
  for (auto id : survivors) chunks.push_back(stripe[id]);
  const auto y = code.repair_vector(0, survivors);

  EXPECT_THROW(partial_decode(y, PartialGroup{{5}}, chunks),
               std::invalid_argument);
  const std::vector<ChunkView> empty;
  EXPECT_THROW(partial_decode(y, PartialGroup{{0}}, empty),
               std::invalid_argument);
  EXPECT_THROW(combine_partials(empty), std::invalid_argument);

  // Groups must partition positions: overlap and gaps both rejected.
  const std::vector<PartialGroup> overlapping = {PartialGroup{{0, 1}},
                                                 PartialGroup{{1, 2}}};
  EXPECT_THROW(
      reconstruct_grouped(code, 0, survivors, chunks, overlapping),
      std::invalid_argument);
  const std::vector<PartialGroup> gap = {PartialGroup{{0}}};
  EXPECT_THROW(reconstruct_grouped(code, 0, survivors, chunks, gap),
               std::invalid_argument);
}

}  // namespace
}  // namespace car::rs
