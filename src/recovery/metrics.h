// Cross-rack repair traffic accounting and the load-balancing rate λ
// (paper §III).
//
// t_{i,f} counts chunk-sized units sent from rack A_i across the core toward
// the replacement (which lives in the failed rack A_f):
//   * CAR: one partially decoded chunk per accessed intact rack per stripe;
//   * RR : one chunk per fetched survivor hosted outside A_f.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/planner.h"
#include "recovery/random_recovery.h"

namespace car::recovery {

/// Per-rack cross-rack traffic summary for one recovery.
struct TrafficSummary {
  cluster::RackId failed_rack = 0;
  std::vector<std::size_t> per_rack_chunks;  // t_{i,f} in chunk units; the
                                             // failed rack's entry is 0

  /// Total cross-rack repair traffic in chunk units.
  [[nodiscard]] std::size_t total_chunks() const noexcept;

  /// Total cross-rack repair traffic in bytes for a given chunk size.
  [[nodiscard]] std::uint64_t total_bytes(std::uint64_t chunk_size) const noexcept {
    return static_cast<std::uint64_t>(total_chunks()) * chunk_size;
  }

  /// Load-balancing rate λ = max_i t_{i,f} / (Σ t_{i,f} / (r-1)).
  /// Returns 1.0 when there is no cross-rack traffic at all.
  [[nodiscard]] double lambda() const noexcept;
};

/// Traffic of a CAR multi-stripe solution.
TrafficSummary car_traffic(const std::vector<PerStripeSolution>& solutions,
                           std::size_t num_racks,
                           cluster::RackId failed_rack);

/// Traffic of an RR multi-stripe solution.  Chunks are fetched from their
/// host nodes directly, so each chunk outside the failed rack counts once
/// against its host rack.
TrafficSummary rr_traffic(const cluster::Placement& placement,
                          const std::vector<RrSolution>& solutions,
                          cluster::RackId failed_rack);

}  // namespace car::recovery
