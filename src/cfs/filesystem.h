// A miniature clustered file system built on the CAR stack.
//
// FileSystem is the facade a downstream user programs against: it stripes
// files with (k, m) Reed–Solomon coding across the emulated cluster, places
// chunks with rack-level fault tolerance, serves reads (including degraded
// reads through CAR's partial decoding when a host is down), and repairs
// node failures with the cross-rack-aware recovery pipeline.
//
//   cfs::FileSystem fs({cluster::cfs2().topology(), 6, 3, 1 << 20});
//   fs.write_file("a.bin", bytes);
//   fs.fail_node(3);
//   auto data = fs.read_file("a.bin");   // degraded reads under the hood
//   auto report = fs.repair();           // CAR multi-stripe recovery
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "emul/cluster.h"
#include "recovery/plan.h"
#include "rs/code.h"
#include "util/rng.h"

namespace car::cfs {

struct FsConfig {
  cluster::Topology topology;
  std::size_t k = 6;
  std::size_t m = 3;
  std::uint64_t chunk_size = 1 << 20;
  std::uint64_t seed = 2026;            // drives placement randomness
  emul::EmulConfig emul;                // fabric of the backing cluster
};

struct FileMeta {
  std::string name;
  std::uint64_t size = 0;                     // logical bytes
  std::vector<cluster::StripeId> stripes;     // stripes storing the file
};

struct RepairReport {
  std::size_t chunks_rebuilt = 0;
  std::uint64_t cross_rack_bytes = 0;
  double wall_s = 0.0;
  double lambda = 1.0;                        // load-balancing rate achieved
  cluster::NodeId replacement = 0;
};

class FileSystem {
 public:
  explicit FileSystem(FsConfig config);

  [[nodiscard]] const cluster::Topology& topology() const noexcept {
    return config_.topology;
  }
  [[nodiscard]] const cluster::Placement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] const rs::Code& code() const noexcept { return code_; }
  [[nodiscard]] const std::set<cluster::NodeId>& failed_nodes() const noexcept {
    return failed_;
  }

  /// Stripe, encode, place, and store `data` under `name`.
  /// Throws std::invalid_argument on duplicate names or empty data.
  FileMeta write_file(const std::string& name,
                      std::span<const std::uint8_t> data);

  /// File metadata, or nullopt when unknown.
  [[nodiscard]] std::optional<FileMeta> stat(const std::string& name) const;

  /// Read a whole file back.  Chunks whose host is failed are reconstructed
  /// on the fly with CAR degraded reads (partial decoding, minimum racks).
  /// Throws std::out_of_range for unknown names and std::runtime_error when
  /// data is unrecoverable.
  [[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& name);

  /// Mark a node failed and erase its buffers.  Several nodes may be failed
  /// concurrently, up to the code's tolerance.
  void fail_node(cluster::NodeId node);

  /// Repair every failed node's chunks onto `replacement` (defaults to the
  /// first failed node, mirroring the paper's methodology) using the CAR
  /// pipeline: Theorem-1 rack selection, partial decoding, greedy
  /// balancing.  Clears the failed set and updates the placement.
  RepairReport repair(std::optional<cluster::NodeId> replacement = {});

  /// Total chunks stored across all files.
  [[nodiscard]] std::size_t total_chunks() const noexcept;

 private:
  FsConfig config_;
  rs::Code code_;
  cluster::Placement placement_;
  emul::Cluster cluster_;
  util::Rng rng_;
  std::map<std::string, FileMeta> files_;
  std::set<cluster::NodeId> failed_;
};

}  // namespace car::cfs
