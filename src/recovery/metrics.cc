#include "recovery/metrics.h"

#include <algorithm>

namespace car::recovery {

std::size_t TrafficSummary::total_chunks() const noexcept {
  std::size_t total = 0;
  for (std::size_t t : per_rack_chunks) total += t;
  return total;
}

double TrafficSummary::lambda() const noexcept {
  const std::size_t total = total_chunks();
  if (total == 0 || per_rack_chunks.size() < 2) return 1.0;
  std::size_t max = 0;
  for (cluster::RackId i = 0; i < per_rack_chunks.size(); ++i) {
    if (i == failed_rack) continue;
    max = std::max(max, per_rack_chunks[i]);
  }
  const double avg = static_cast<double>(total) /
                     static_cast<double>(per_rack_chunks.size() - 1);
  return static_cast<double>(max) / avg;
}

TrafficSummary car_traffic(const std::vector<PerStripeSolution>& solutions,
                           std::size_t num_racks,
                           cluster::RackId failed_rack) {
  TrafficSummary summary;
  summary.failed_rack = failed_rack;
  summary.per_rack_chunks.assign(num_racks, 0);
  for (const auto& solution : solutions) {
    // One partially decoded chunk crosses the core per accessed intact rack.
    for (cluster::RackId rack : solution.rack_set.racks) {
      ++summary.per_rack_chunks[rack];
    }
  }
  return summary;
}

TrafficSummary rr_traffic(const cluster::Placement& placement,
                          const std::vector<RrSolution>& solutions,
                          cluster::RackId failed_rack) {
  TrafficSummary summary;
  summary.failed_rack = failed_rack;
  summary.per_rack_chunks.assign(placement.topology().num_racks(), 0);
  for (const auto& solution : solutions) {
    for (std::size_t chunk : solution.chunk_indices) {
      const cluster::NodeId host = placement.node_of(solution.stripe, chunk);
      const cluster::RackId rack = placement.topology().rack_of(host);
      if (rack != failed_rack) ++summary.per_rack_chunks[rack];
    }
  }
  return summary;
}

}  // namespace car::recovery
