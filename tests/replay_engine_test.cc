// Replay-engine differentials: the calendar-queue replay, the sharded
// safe-window replay, and the streaming (overlapped build/execute) pipeline
// are pure performance choices — every observable (makespan, compute time,
// per-rack byte totals, recovered bytes) must be bit-identical to the
// sequential heap replay, and the two-phase streamed arena build must be
// bit-equal to the one-shot barrier build.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "cluster/configs.h"
#include "cluster/placement.h"
#include "emul/cluster.h"
#include "recovery/multi.h"
#include "recovery/plan_arena.h"
#include "recovery/plan_template.h"
#include "rs/code.h"
#include "util/rng.h"

namespace car {
namespace {

using recovery::MultiFailureScenario;
using recovery::MultiStripeCensus;
using recovery::PlanArena;
using recovery::PlanTemplateCache;

constexpr std::uint64_t kChunk = 48 * 1024 + 5;  // no slice size divides it

struct Fixture {
  cluster::Placement placement;
  rs::Code code;
  MultiFailureScenario scenario;
  std::vector<MultiStripeCensus> censuses;
};

/// A whole-rack failure (capped at the code's tolerance) on a paper config.
Fixture make_fixture(int cfg_index, std::uint64_t seed, std::size_t stripes) {
  const auto cfg = cluster::paper_configs()[cfg_index];
  util::Rng rng(seed);
  auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
  std::vector<cluster::NodeId> failed;
  for (const auto node : placement.topology().nodes_in_rack(0)) {
    failed.push_back(node);
    if (failed.size() >= cfg.m) break;
  }
  rs::Code code(cfg.k, cfg.m);
  auto scenario = recovery::make_multi_failure(placement, failed);
  auto censuses = recovery::build_multi_censuses(placement, scenario);
  return {std::move(placement), std::move(code), std::move(scenario),
          std::move(censuses)};
}

emul::EmulConfig emul_config() {
  emul::EmulConfig config;
  config.node_bps = 200e6;
  config.oversubscription = 4.0;
  config.page_bytes = 16 * 1024;
  config.clock_mode = emul::ClockMode::kVirtual;
  return config;
}

void expect_reports_identical(const emul::ExecutionReport& a,
                              const emul::ExecutionReport& b) {
  EXPECT_EQ(a.wall_s, b.wall_s);
  EXPECT_EQ(a.compute_s, b.compute_s);
  EXPECT_EQ(a.replacement_compute_s, b.replacement_compute_s);
  EXPECT_EQ(a.cross_rack_bytes, b.cross_rack_bytes);
  EXPECT_EQ(a.intra_rack_bytes, b.intra_rack_bytes);
  EXPECT_EQ(a.per_rack_cross_bytes, b.per_rack_cross_bytes);
}

/// Populate a fresh cluster (all stripes, seeded bytes), fail the scenario
/// nodes, and execute `arena` under `options`.  Every run starts from an
/// identical cluster, so any report divergence is the replay's fault.
emul::ExecutionReport run_barrier(const Fixture& fx, const PlanArena& arena,
                                  const emul::ArenaExecOptions& options) {
  emul::Cluster cluster(fx.placement.topology(), emul_config());
  std::vector<cluster::StripeId> all(fx.placement.num_stripes());
  std::iota(all.begin(), all.end(), cluster::StripeId{0});
  (void)cluster.populate_sampled(fx.placement, fx.code, kChunk, 7, all);
  for (const auto node : fx.scenario.failed_nodes) cluster.erase_node(node);
  return cluster.execute_arena(arena, options);
}

/// Same cluster setup, but through the streaming path: reserve the arena,
/// append stripes on a producer thread that publishes per-stripe
/// watermarks, and run the executor concurrently against the feed.
emul::ExecutionReport run_streamed(
    const Fixture& fx,
    const std::vector<recovery::MultiStripeSolution>& solutions,
    const emul::ArenaExecOptions& options, PlanArena* out_arena) {
  emul::Cluster cluster(fx.placement.topology(), emul_config());
  std::vector<cluster::StripeId> all(fx.placement.num_stripes());
  std::iota(all.begin(), all.end(), cluster::StripeId{0});
  (void)cluster.populate_sampled(fx.placement, fx.code, kChunk, 7, all);
  for (const auto node : fx.scenario.failed_nodes) cluster.erase_node(node);

  PlanTemplateCache cache;
  auto build = recovery::reserve_multi_car_arena(
      fx.placement, solutions, kChunk, 16 * 1024, fx.scenario.replacement,
      cache);
  emul::ArenaStreamFeed feed;
  std::exception_ptr produce_error;
  std::thread producer([&] {
    try {
      recovery::stream_multi_car_arena(
          build, fx.placement, fx.code, solutions, cache,
          [&feed](std::uint64_t rows) { feed.publish(rows); });
    } catch (...) {
      produce_error = std::current_exception();
    }
    feed.close();
  });
  emul::ExecutionReport report;
  try {
    report = cluster.execute_arena_streaming(build.arena, options, feed);
  } catch (...) {
    producer.join();
    if (produce_error) std::rethrow_exception(produce_error);
    throw;
  }
  producer.join();
  if (produce_error) std::rethrow_exception(produce_error);
  if (out_arena != nullptr) *out_arena = std::move(build.arena);
  return report;
}

void expect_slice_plans_equal(const PlanArena& a, const PlanArena& b) {
  ASSERT_EQ(a.num_base_steps(), b.num_base_steps());
  EXPECT_EQ(a.stripe_closed(), b.stripe_closed());
  const auto sa = a.to_slice_plan();
  const auto sb = b.to_slice_plan();
  ASSERT_EQ(sa.steps.size(), sb.steps.size());
  for (std::size_t i = 0; i < sa.steps.size(); ++i) {
    const auto& x = sa.steps[i];
    const auto& y = sb.steps[i];
    ASSERT_EQ(x.id, y.id) << "step " << i;
    ASSERT_EQ(x.kind, y.kind) << "step " << i;
    ASSERT_EQ(x.stripe, y.stripe) << "step " << i;
    ASSERT_EQ(x.deps, y.deps) << "step " << i;
    ASSERT_EQ(x.src, y.src) << "step " << i;
    ASSERT_EQ(x.dst, y.dst) << "step " << i;
    ASSERT_EQ(x.payload, y.payload) << "step " << i;
    ASSERT_EQ(x.bytes, y.bytes) << "step " << i;
    ASSERT_EQ(x.inputs.size(), y.inputs.size()) << "step " << i;
    for (std::size_t j = 0; j < x.inputs.size(); ++j) {
      ASSERT_EQ(x.inputs[j].buffer, y.inputs[j].buffer) << "step " << i;
      ASSERT_EQ(x.inputs[j].coeff, y.inputs[j].coeff) << "step " << i;
    }
  }
  const auto oa = a.outputs();
  const auto ob = b.outputs();
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    EXPECT_EQ(oa[i].stripe, ob[i].stripe);
    EXPECT_EQ(oa[i].chunk_index, ob[i].chunk_index);
    EXPECT_EQ(oa[i].step_id, ob[i].step_id);
  }
}

// --- engine equality -----------------------------------------------------

// Heap vs calendar, across replay shard counts: one timeline, bit for bit.
TEST(ReplayEngine, HeapAndCalendarBitIdenticalAcrossReplayShards) {
  const auto fx = make_fixture(0, 61, /*stripes=*/24);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);

  emul::ArenaExecOptions base;
  base.shards = 2;
  base.replay_shards = 1;
  base.replay_engine = emul::ReplayEngine::kHeap;
  const auto reference = run_barrier(fx, arena, base);
  ASSERT_GT(reference.wall_s, 0.0);

  for (const auto engine :
       {emul::ReplayEngine::kHeap, emul::ReplayEngine::kCalendar}) {
    for (const std::size_t replay_shards : {1u, 2u, 8u}) {
      auto options = base;
      options.replay_engine = engine;
      options.replay_shards = replay_shards;
      const auto report = run_barrier(fx, arena, options);
      expect_reports_identical(reference, report);
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "engine " << (engine == emul::ReplayEngine::kHeap ? "heap"
                                                               : "calendar")
          << " replay_shards " << replay_shards;
    }
  }
}

// The streamed pipeline (producer appends while the executor replays) must
// report the same timeline as the barrier build, and the arena it leaves
// behind must be bit-equal to the one-shot build.
TEST(ReplayEngine, StreamedPipelineMatchesBarrierBitExactly) {
  const auto fx = make_fixture(1, 17, /*stripes=*/30);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);

  emul::ArenaExecOptions options;
  options.shards = 2;
  options.replay_shards = 2;
  const auto reference = run_barrier(fx, arena, options);

  PlanArena streamed;
  const auto report =
      run_streamed(fx, balanced.solutions, options, &streamed);
  expect_reports_identical(reference, report);
  expect_slice_plans_equal(arena, streamed);
}

// Recovered bytes decode bit-exactly through the calendar-sharded replay.
TEST(ReplayEngine, CalendarShardedReplayDecodesBitExact) {
  const auto fx = make_fixture(0, 29, /*stripes=*/18);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);

  emul::Cluster cluster(fx.placement.topology(), emul_config());
  std::vector<cluster::StripeId> all(fx.placement.num_stripes());
  std::iota(all.begin(), all.end(), cluster::StripeId{0});
  const auto originals =
      cluster.populate_sampled(fx.placement, fx.code, kChunk, 7, all);
  for (const auto node : fx.scenario.failed_nodes) cluster.erase_node(node);

  emul::ArenaExecOptions options;
  options.shards = 2;
  options.replay_shards = 8;
  options.replay_engine = emul::ReplayEngine::kCalendar;
  (void)cluster.execute_arena(arena, options);

  std::size_t verified = 0;
  for (const auto& out : arena.outputs()) {
    const auto it = originals.find(out.stripe);
    ASSERT_NE(it, originals.end());
    const auto* rec = cluster.find_chunk(fx.scenario.replacement, out.stripe,
                                         out.chunk_index);
    ASSERT_NE(rec, nullptr) << "stripe " << out.stripe;
    EXPECT_EQ(*rec, it->second[out.chunk_index])
        << "stripe " << out.stripe << " chunk " << out.chunk_index;
    ++verified;
  }
  EXPECT_EQ(verified, arena.outputs().size());
  EXPECT_GT(verified, 0u);
}

// Regression for the calendar-queue rewindow gap in the streamed pipeline:
// with links slow enough that every dependent lands thousands of virtual
// seconds past t_start — far beyond the initial all-equal-times rung span
// (64 unit-width buckets) — a shard that drains its published t_start
// seeds before the feed closes rewindows onto those far-future dependents
// in the publish-step top(), and the NEXT ingestion batch then pushes
// (t_start, sid) seeds BELOW the rewindowed rung start.  Before the
// bucket_index fix the misroute made the shard's published frontier
// non-monotone (breaking the safe-window mutual exclusion) and diverged
// from the heap engine; the streamed run must stay bit-identical.  The
// producer is throttled so ingestion batches genuinely interleave with
// drains instead of arriving in one lump.
TEST(ReplayEngine, StreamedSlowLinksRewindowGapBitIdentical) {
  const auto fx = make_fixture(0, 53, /*stripes=*/16);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  // Evenly sliced on purpose (unlike kChunk): every sliced step moves the
  // same 16 KiB, so the depth-1 dependents a tick schedules all land in a
  // narrow far-future band.  A ragged remainder slice would drag the
  // band's minimum down to ~the remainder's duration, making the
  // rewindowed rung wide enough to swallow the sub-rung gap — and the
  // misroute this test guards against needs the gap to exceed one bucket.
  constexpr std::uint64_t kEvenChunk = 48 * 1024;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kEvenChunk, 16 * 1024,
      fx.scenario.replacement, cache);

  // Slow enough that every dependent — transfers and computes alike, one
  // 16 KiB slice ~327,680 virtual seconds — lands far beyond the 64-unit
  // rung the all-equal t_start rewindow spans, so the per-shard queues
  // genuinely go rung-empty between ticks.
  auto slow = emul_config();
  slow.node_bps = 0.05;
  slow.virtual_gf_bps = 0.05;

  auto make_cluster = [&] {
    auto cluster =
        std::make_unique<emul::Cluster>(fx.placement.topology(), slow);
    std::vector<cluster::StripeId> all(fx.placement.num_stripes());
    std::iota(all.begin(), all.end(), cluster::StripeId{0});
    (void)cluster->populate_sampled(fx.placement, fx.code, kEvenChunk, 7,
                                    all);
    for (const auto node : fx.scenario.failed_nodes) {
      cluster->erase_node(node);
    }
    return cluster;
  };

  emul::ExecutionReport reference;
  {
    emul::ArenaExecOptions heap_options;
    heap_options.shards = 2;
    heap_options.replay_shards = 1;
    heap_options.replay_engine = emul::ReplayEngine::kHeap;
    reference = make_cluster()->execute_arena(arena, heap_options);
    ASSERT_GT(reference.wall_s, 0.0);
  }

  // Hand-drive the feed over the fully built arena: publish one stripe per
  // tick, pausing long enough that the replay shards provably drain the
  // published t_start seeds — and the publish-step top() rewindows onto
  // the far-future dependents — before the next stripe's seeds land below
  // the rewindowed rung.  (A real producer builds rows between publishes;
  // pre-building the arena only makes the watermark more conservative.)
  std::vector<std::uint64_t> boundaries;  // end base id of each stripe
  const std::uint64_t n_base = arena.num_base_steps();
  for (std::uint64_t base = 1; base <= n_base; ++base) {
    if (base == n_base || arena.stripe(base) != arena.stripe(base - 1)) {
      boundaries.push_back(base);
    }
  }
  ASSERT_GE(boundaries.size(), 4u);
  emul::ArenaStreamFeed feed;
  std::thread producer([&] {
    for (const std::uint64_t rows : boundaries) {
      feed.publish(rows);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    feed.close();
  });
  emul::ArenaExecOptions options;
  options.shards = 2;
  options.replay_shards = 2;
  options.replay_engine = emul::ReplayEngine::kCalendar;
  emul::ExecutionReport report;
  auto cluster = make_cluster();
  try {
    report = cluster->execute_arena_streaming(arena, options, feed);
  } catch (...) {
    producer.join();
    throw;
  }
  producer.join();
  expect_reports_identical(reference, report);
}

// --- streamed build ------------------------------------------------------

// reserve + stream must be the same function as the one-shot barrier build,
// for both strategies, including the template-rdep release along the way.
TEST(ReplayEngine, ReserveStreamBuildBitEqualToBarrierBuild) {
  const auto fx = make_fixture(2, 43, /*stripes=*/40);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  {
    PlanTemplateCache barrier_cache;
    const auto barrier = recovery::build_multi_car_arena(
        fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
        fx.scenario.replacement, barrier_cache);
    PlanTemplateCache stream_cache;
    auto build = recovery::reserve_multi_car_arena(
        fx.placement, balanced.solutions, kChunk, 16 * 1024,
        fx.scenario.replacement, stream_cache);
    std::uint64_t last_watermark = 0;
    recovery::stream_multi_car_arena(build, fx.placement, fx.code,
                                     balanced.solutions, stream_cache,
                                     [&last_watermark](std::uint64_t rows) {
                                       EXPECT_GE(rows, last_watermark);
                                       last_watermark = rows;
                                     });
    EXPECT_EQ(last_watermark, build.arena.num_base_steps());
    expect_slice_plans_equal(barrier, build.arena);
  }
  {
    util::Rng rr_rng(43);
    const auto rr = recovery::plan_multi_rr(fx.placement, fx.censuses, rr_rng);
    PlanTemplateCache barrier_cache;
    const auto barrier = recovery::build_multi_rr_arena(
        fx.placement, fx.code, rr, kChunk, 16 * 1024,
        fx.scenario.replacement, barrier_cache);
    PlanTemplateCache stream_cache;
    auto build = recovery::reserve_multi_rr_arena(
        fx.placement, rr, kChunk, 16 * 1024, fx.scenario.replacement,
        stream_cache);
    recovery::stream_multi_rr_arena(build, fx.placement, fx.code, rr,
                                    stream_cache, {});
    expect_slice_plans_equal(barrier, build.arena);
  }
}

// Building twice from one cache exercises the release-then-reseal path:
// the first build frees each template's reverse-CSR copy at its last use,
// so the second build's cache hits must re-seal transparently and yield a
// bit-equal arena.
TEST(ReplayEngine, TemplateRdepReleaseResealsOnCacheReuse) {
  const auto fx = make_fixture(0, 83, /*stripes=*/32);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  const auto first = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);
  const auto hits_after_first = cache.stats().hits;
  const auto second = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);
  // Every template resolves from the cache the second time around.
  EXPECT_GT(cache.stats().hits, hits_after_first);
  expect_slice_plans_equal(first, second);
}

// --- safe-window stress --------------------------------------------------

// Metadata-only, many stripes, 8 replay shards with a skewed per-shard
// load: the lock-free safe-window slots see heavy contention (this is the
// TSan target in CI), and the timeline must still match the serial drain.
TEST(ReplayEngine, SafeWindowStressSkewedShardsBitIdentical) {
  const auto fx = make_fixture(0, 5, /*stripes=*/400);
  const auto balanced = recovery::balance_multi(fx.placement, fx.censuses);
  PlanTemplateCache cache;
  const auto arena = recovery::build_multi_car_arena(
      fx.placement, fx.code, balanced.solutions, kChunk, 16 * 1024,
      fx.scenario.replacement, cache);

  std::vector<cluster::StripeId> sampled;
  for (cluster::StripeId s = 0; s < 8; ++s) sampled.push_back(s);

  emul::ExecutionReport reference;
  for (const std::size_t replay_shards : {1u, 8u}) {
    emul::Cluster cluster(fx.placement.topology(), emul_config());
    (void)cluster.populate_sampled(fx.placement, fx.code, kChunk, 7,
                                   sampled);
    for (const auto node : fx.scenario.failed_nodes) {
      cluster.erase_node(node);
    }
    emul::ArenaExecOptions options;
    options.shards = 4;
    options.replay_shards = replay_shards;
    options.metadata_only = true;
    options.sampled_stripes = sampled;
    const auto report = cluster.execute_arena(arena, options);
    if (replay_shards == 1) {
      reference = report;
      ASSERT_GT(reference.wall_s, 0.0);
    } else {
      expect_reports_identical(reference, report);
    }
  }
}

}  // namespace
}  // namespace car
