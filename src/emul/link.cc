#include "emul/link.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/check.h"

namespace car::emul {

SerialLink::SerialLink(double bytes_per_second)
    : rate_(bytes_per_second), epoch_(std::chrono::steady_clock::now()) {
  CAR_CHECK(bytes_per_second > 0, "SerialLink: rate must be positive");
}

double SerialLink::reserve(double start, std::uint64_t bytes) {
  CAR_CHECK(std::isfinite(start) && start >= 0.0,
            "SerialLink::reserve: start must be a finite non-negative time");
  const double duration = static_cast<double>(bytes) / rate_;
  std::scoped_lock lock(mu_);
  const double previous_free = next_free_;
  next_free_ = std::max(next_free_, start) + duration;
  // Timeline monotonicity: the link frees strictly later with every
  // reservation (never travels back in time), and no earlier than the
  // requested start plus the transmission itself.
  CAR_DCHECK_GE(next_free_, previous_free, "SerialLink timeline regressed");
  CAR_DCHECK_GE(next_free_, start + duration, "SerialLink finish too early");
  total_bytes_ += bytes;
  return next_free_;
}

void SerialLink::transmit(std::uint64_t bytes) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - epoch_;
  const double finish = reserve(elapsed.count(), bytes);
  std::this_thread::sleep_until(
      epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(finish)));
}

std::uint64_t SerialLink::bytes_transmitted() const noexcept {
  std::scoped_lock lock(mu_);
  return total_bytes_;
}

}  // namespace car::emul
