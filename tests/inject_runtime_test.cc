// ResilientRuntime tests: fault-free execution, timeout/retry/backoff,
// at-most-once transfer accounting under retries, crash escalation through
// the recovery/multi re-plan, and byte-identical event logs across runs.
#include "inject/runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "cluster/failure.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "recovery/census.h"
#include "recovery/plan.h"
#include "util/check.h"
#include "util/rng.h"

namespace car::inject {
namespace {

constexpr std::uint64_t kChunk = 8 * 1024;
constexpr cluster::NodeId kFailed = 2;

/// A populated virtual-clock cluster with node 2 failed and a CAR plan to
/// recover it — the shared stage for every runtime test.
struct Env {
  cluster::Topology topology{std::vector<std::size_t>{4, 3, 3}};
  rs::Code code{4, 2};
  std::unique_ptr<emul::Cluster> cluster;
  std::optional<cluster::Placement> placement;
  std::vector<std::vector<rs::Chunk>> originals;
  cluster::FailureScenario failure;
  recovery::RecoveryPlan plan;

  explicit Env(std::uint64_t seed = 7,
               emul::ClockMode mode = emul::ClockMode::kVirtual) {
    emul::EmulConfig config;
    config.node_bps = 100e6;
    config.oversubscription = 5.0;
    config.page_bytes = 4 * 1024;
    config.clock_mode = mode;
    cluster = std::make_unique<emul::Cluster>(topology, config);
    util::Rng rng(seed);
    placement =
        cluster::Placement::random(topology, code.k(), code.m(), 8, rng);
    originals = cluster->populate(*placement, code, kChunk, rng);
    failure = cluster::inject_node_failure(*placement, kFailed);
    cluster->erase_node(kFailed);
    const auto censuses = recovery::build_censuses(*placement, failure);
    const auto balanced = recovery::balance_greedy(*placement, censuses, {50});
    plan = recovery::build_car_plan(*placement, code, balanced.solutions,
                                    kChunk, kFailed);
  }

  [[nodiscard]] ReplanContext context() const {
    ReplanContext ctx;
    ctx.placement = &*placement;
    ctx.code = &code;
    ctx.failed_nodes = {kFailed};
    return ctx;
  }

  /// Chunks recovered onto the replacement, verified byte-for-byte.
  [[nodiscard]] std::size_t verified(const recovery::RecoveryPlan& done) const {
    std::size_t ok = 0;
    for (const auto& out : done.outputs) {
      const rs::Chunk* rec =
          cluster->find_chunk(done.replacement, out.stripe, out.chunk_index);
      ok += rec != nullptr && *rec == originals[out.stripe][out.chunk_index];
    }
    return ok;
  }
};

TEST(ResilientRuntime, FaultFreeRunRecoversBitExactly) {
  Env env;
  ResilientRuntime runtime(*env.cluster, {}, {}, 7);
  const auto result = runtime.execute(env.plan, env.context());

  EXPECT_FALSE(result.replanned);
  EXPECT_EQ(env.verified(result.final_plan), env.plan.outputs.size());
  EXPECT_EQ(result.stats.retries, 0u);
  EXPECT_EQ(result.stats.timeouts, 0u);
  EXPECT_EQ(result.stats.wasted_wire_bytes, 0u);
  EXPECT_EQ(result.stats.attempts, env.plan.num_transfers());
  EXPECT_EQ(result.report.cross_rack_bytes, env.plan.cross_rack_bytes());
  EXPECT_GT(result.report.wall_s, 0.0);
  EXPECT_EQ(result.log.count(EventKind::kRunStart), 1u);
  EXPECT_EQ(result.log.count(EventKind::kRunComplete), 1u);
  EXPECT_EQ(result.log.count(EventKind::kComputeComplete),
            env.plan.num_computes());
}

TEST(ResilientRuntime, RefusesWallClockClusters) {
  Env env(7, emul::ClockMode::kReal);
  ResilientRuntime runtime(*env.cluster, {}, {}, 7);
  EXPECT_THROW(runtime.execute(env.plan, env.context()), util::StateError);
}

TEST(ResilientRuntime, DroppedFirstAttemptsAreRetriedAndCountedOnce) {
  Env env;
  FaultPlan faults;
  TransferFault drop;
  drop.kind = TransferFault::Kind::kDrop;
  drop.attempts = {1};  // every transfer's first try is lost
  faults.transfer_faults.push_back(drop);

  ResilientRuntime runtime(*env.cluster, faults, {}, 7);
  const auto result = runtime.execute(env.plan, env.context());

  EXPECT_EQ(env.verified(result.final_plan), env.plan.outputs.size());
  EXPECT_GT(result.stats.drops, 0u);
  EXPECT_EQ(result.stats.retries, result.stats.drops);
  EXPECT_GT(result.stats.wasted_wire_bytes, 0u);
  // The acceptance invariant: retried transfers are reported exactly once —
  // the payload totals match the plan, not the wire traffic.
  EXPECT_EQ(result.report.cross_rack_bytes, env.plan.cross_rack_bytes());
  EXPECT_EQ(result.log.count(EventKind::kRetryScheduled),
            result.stats.retries);
}

TEST(ResilientRuntime, CorruptedPayloadsAreDetectedAndRetried) {
  Env env;
  FaultPlan faults;
  TransferFault corrupt;
  corrupt.kind = TransferFault::Kind::kCorrupt;
  corrupt.attempts = {1};
  faults.transfer_faults.push_back(corrupt);

  ResilientRuntime runtime(*env.cluster, faults, {}, 7);
  const auto result = runtime.execute(env.plan, env.context());

  EXPECT_EQ(env.verified(result.final_plan), env.plan.outputs.size());
  EXPECT_GT(result.stats.corruptions, 0u);
  EXPECT_EQ(result.report.cross_rack_bytes, env.plan.cross_rack_bytes());
  // Corrupt deliveries never land in the destination's buffers: recovery
  // still decodes from clean retransmissions only.
  EXPECT_EQ(result.log.count(EventKind::kTransferCorrupt),
            result.stats.corruptions);
}

TEST(ResilientRuntime, BlackoutCausesTimeoutsThenRecovery) {
  Env env;
  FaultPlan faults;
  // Black out every rack uplink for 0.15 s; cross-rack transfers projected
  // past the 0.05 s deadline time out and retry after the window.
  for (std::size_t rack = 0; rack < 3; ++rack) {
    faults.link_faults.push_back({LinkSide::kRackUp, rack, 0.0, 0.15, 0.0});
  }
  RetryPolicy policy;
  policy.transfer_timeout_s = 0.05;
  policy.max_attempts = 10;

  ResilientRuntime runtime(*env.cluster, faults, policy, 7);
  const auto result = runtime.execute(env.plan, env.context());

  EXPECT_EQ(env.verified(result.final_plan), env.plan.outputs.size());
  EXPECT_GT(result.stats.timeouts, 0u);
  // Timed-out attempts never touched the wire.
  EXPECT_EQ(result.stats.wasted_wire_bytes, 0u);
  EXPECT_EQ(result.report.cross_rack_bytes, env.plan.cross_rack_bytes());
  EXPECT_GT(result.report.wall_s, 0.15);
}

TEST(ResilientRuntime, ExhaustedRetriesFailLoudly) {
  Env env;
  FaultPlan faults;
  TransferFault drop;  // every attempt of every transfer drops
  drop.kind = TransferFault::Kind::kDrop;
  faults.transfer_faults.push_back(drop);
  RetryPolicy policy;
  policy.max_attempts = 2;

  ResilientRuntime runtime(*env.cluster, faults, policy, 7);
  EXPECT_THROW(runtime.execute(env.plan, env.context()), util::StateError);
}

TEST(ResilientRuntime, MidRecoveryCrashReplansAndFinishes) {
  Env env;
  FaultPlan faults;
  NodeCrash crash;
  crash.node = 5;
  crash.at_fraction = 0.4;
  faults.node_crashes.push_back(crash);

  ResilientRuntime runtime(*env.cluster, faults, {}, 7);
  const auto result = runtime.execute(env.plan, env.context());

  ASSERT_TRUE(result.replanned);
  EXPECT_TRUE(result.replan_validation.ok());
  EXPECT_EQ(result.stats.replans, 1u);
  EXPECT_TRUE(env.cluster->is_dropped(5));

  // The re-plan rebuilds every chunk of BOTH failed nodes, bit-exactly.
  const auto crashed_loss =
      cluster::inject_node_failure(*env.placement, 5);
  EXPECT_EQ(result.final_plan.outputs.size(),
            env.failure.lost.size() + crashed_loss.lost.size());
  EXPECT_EQ(env.verified(result.final_plan),
            result.final_plan.outputs.size());

  // Escalation event order: crash -> cancel -> replan -> validate -> resume.
  std::vector<EventKind> order;
  for (const auto& event : result.log.events()) {
    switch (event.kind) {
      case EventKind::kNodeCrash:
      case EventKind::kStepsCancelled:
      case EventKind::kReplanStart:
      case EventKind::kReplanValidated:
      case EventKind::kResume:
        order.push_back(event.kind);
        break;
      default:
        break;
    }
  }
  const std::vector<EventKind> expected{
      EventKind::kNodeCrash, EventKind::kStepsCancelled,
      EventKind::kReplanStart, EventKind::kReplanValidated,
      EventKind::kResume};
  EXPECT_EQ(order, expected);
}

TEST(ResilientRuntime, TimeTriggeredCrashAlsoEscalates) {
  Env env;
  FaultPlan faults;
  NodeCrash crash;
  crash.node = 8;
  // Early in the run: the 8 KiB-chunk plan finishes in a few hundred
  // microseconds of virtual time, so trigger within the first transfers.
  crash.at_time_s = 0.0001;
  faults.node_crashes.push_back(crash);

  ResilientRuntime runtime(*env.cluster, faults, {}, 7);
  const auto result = runtime.execute(env.plan, env.context());
  ASSERT_TRUE(result.replanned);
  EXPECT_EQ(env.verified(result.final_plan),
            result.final_plan.outputs.size());
  EXPECT_GT(result.final_plan.outputs.size(), 0u);
}

TEST(ResilientRuntime, CrashTargetingReplacementIsRejected) {
  Env env;
  FaultPlan faults;
  NodeCrash crash;
  crash.node = kFailed;  // the replacement itself
  crash.at_fraction = 0.5;
  faults.node_crashes.push_back(crash);
  ResilientRuntime runtime(*env.cluster, faults, {}, 7);
  EXPECT_THROW(runtime.execute(env.plan, env.context()), util::CheckError);
}

TEST(ResilientRuntime, CrashWithoutReplanContextIsRejected) {
  Env env;
  FaultPlan faults;
  NodeCrash crash;
  crash.node = 5;
  crash.at_fraction = 0.5;
  faults.node_crashes.push_back(crash);
  ResilientRuntime runtime(*env.cluster, faults, {}, 7);
  ReplanContext empty;
  EXPECT_THROW(runtime.execute(env.plan, empty), util::CheckError);
}

TEST(ResilientRuntime, SameSeedRunsProduceByteIdenticalLogs) {
  FaultPlan faults;
  TransferFault drop;
  drop.kind = TransferFault::Kind::kDrop;
  drop.probability = 0.4;
  faults.transfer_faults.push_back(drop);
  faults.link_faults.push_back({LinkSide::kRackUp, 0, 0.0, 0.01, 0.0});
  NodeCrash crash;
  crash.node = 5;
  crash.at_fraction = 0.5;
  faults.node_crashes.push_back(crash);

  auto run_once = [&] {
    Env env(21);
    ResilientRuntime runtime(*env.cluster, faults, {}, 21);
    return runtime.execute(env.plan, env.context());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.log.to_json(), b.log.to_json());
  EXPECT_EQ(a.report.wall_s, b.report.wall_s);  // bit-equal, not just close
  EXPECT_EQ(a.stats.attempts, b.stats.attempts);
}

}  // namespace
}  // namespace car::inject
