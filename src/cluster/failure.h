// Single-node failure injection (paper §III: one lost chunk per stripe).
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "util/rng.h"

namespace car::cluster {

/// One lost chunk caused by a node failure.
struct LostChunk {
  StripeId stripe = 0;
  std::size_t chunk_index = 0;
};

/// A single-node failure: the failed node, its rack, and the chunks lost
/// (exactly one per affected stripe, by the distinct-nodes invariant).
struct FailureScenario {
  NodeId failed_node = 0;
  RackId failed_rack = 0;
  std::vector<LostChunk> lost;

  [[nodiscard]] std::size_t affected_stripes() const noexcept {
    return lost.size();
  }
};

/// Describe the failure of a specific node.
FailureScenario inject_node_failure(const Placement& placement, NodeId node);

/// Pick a uniformly random node that stores at least one chunk and fail it
/// (mirrors the paper's methodology of erasing a random node).
/// Throws std::logic_error when no node stores any chunk.
FailureScenario inject_random_failure(const Placement& placement,
                                      util::Rng& rng);

}  // namespace car::cluster
