#include "matrix/generator.h"

#include <vector>

#include "gf/gf256.h"
#include "util/check.h"

namespace car::matrix {

using gf::Gf256;

namespace {

void check_params(std::size_t k, std::size_t m) {
  CAR_CHECK_GE(k, std::size_t{1}, "generator: k must be >= 1");
  CAR_CHECK_LE(k + m, Gf256::kFieldSize,
               "generator: k + m must be <= 256 for GF(2^8)");
}

}  // namespace

Matrix systematic_vandermonde(std::size_t k, std::size_t m) {
  check_params(k, m);
  const auto& f = Gf256::instance();
  const std::size_t n = k + m;

  // Extended Vandermonde rows: row i = [x^0, x^1, ..., x^{k-1}] for x = i.
  // Any k rows have distinct x values, hence form an invertible Vandermonde
  // matrix.
  Matrix v(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    std::uint8_t p = 1;  // x^0 == 1 (also for x == 0 by convention)
    for (std::size_t j = 0; j < k; ++j) {
      v(i, j) = p;
      p = f.mul(p, x);
    }
  }

  // Right-multiply by the inverse of the top k rows: the top block becomes
  // the identity, and every k-row subset stays invertible (right
  // multiplication by an invertible matrix preserves row-subset rank).
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = i;
  const Matrix top_inv = v.select_rows(top).inverted();
  return v * top_inv;
}

Matrix systematic_cauchy(std::size_t k, std::size_t m) {
  check_params(k, m);
  const auto& f = Gf256::instance();
  Matrix g(k + m, k);
  for (std::size_t i = 0; i < k; ++i) g(i, i) = 1;
  // Cauchy block: C[i][j] = 1 / (x_i ^ y_j) with x_i = k + i, y_j = j.
  // All x_i and y_j are distinct field elements, so x_i ^ y_j != 0 and all
  // square submatrices of C are nonsingular — the stacked matrix is MDS.
  for (std::size_t i = 0; i < m; ++i) {
    const auto x = static_cast<std::uint8_t>(k + i);
    for (std::size_t j = 0; j < k; ++j) {
      const auto y = static_cast<std::uint8_t>(j);
      g(k + i, j) = f.inv(static_cast<std::uint8_t>(x ^ y));
    }
  }
  return g;
}

namespace {

bool mds_recurse(const Matrix& g, std::size_t k, std::vector<std::size_t>& pick,
                 std::size_t next) {
  if (pick.size() == k) {
    return g.select_rows(pick).invertible();
  }
  const std::size_t remaining = k - pick.size();
  for (std::size_t i = next; i + remaining <= g.rows(); ++i) {
    pick.push_back(i);
    const bool ok = mds_recurse(g, k, pick, i + 1);
    pick.pop_back();
    if (!ok) return false;
  }
  return true;
}

}  // namespace

bool verify_mds(const Matrix& generator, std::size_t k) {
  if (generator.cols() != k || generator.rows() < k) return false;
  std::vector<std::size_t> pick;
  pick.reserve(k);
  return mds_recurse(generator, k, pick, 0);
}

bool verify_systematic(const Matrix& generator, std::size_t k) {
  if (generator.cols() != k || generator.rows() < k) return false;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (generator(i, j) != (i == j ? 1 : 0)) return false;
    }
  }
  return true;
}

}  // namespace car::matrix
