#include "cluster/failure.h"

#include <stdexcept>

namespace car::cluster {

FailureScenario inject_node_failure(const Placement& placement, NodeId node) {
  FailureScenario scenario;
  scenario.failed_node = node;
  scenario.failed_rack = placement.topology().rack_of(node);
  for (const ChunkRef& ref : placement.chunks_on_node(node)) {
    scenario.lost.push_back({ref.stripe, ref.chunk_index});
  }
  return scenario;
}

FailureScenario inject_random_failure(const Placement& placement,
                                      util::Rng& rng) {
  const auto occupancy = placement.node_occupancy();
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < occupancy.size(); ++n) {
    if (occupancy[n] > 0) candidates.push_back(n);
  }
  if (candidates.empty()) {
    throw std::logic_error("inject_random_failure: no node stores any chunk");
  }
  const NodeId victim =
      candidates[static_cast<std::size_t>(rng.next_below(candidates.size()))];
  return inject_node_failure(placement, victim);
}

}  // namespace car::cluster
