// Deterministic pseudo-random number generation for experiments.
//
// Every source of randomness in this repository flows through util::Rng so
// that a single 64-bit seed makes an entire experiment reproducible.  The
// engine is SplitMix64 (Steele et al., "Fast splittable pseudorandom number
// generators") — tiny, fast, and statistically solid for simulation use.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.h"

namespace car::util {

/// Deterministic 64-bit PRNG (SplitMix64). Satisfies
/// std::uniform_random_bit_generator so it can also drive <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0; fails loudly (via
  /// CAR_CHECK) instead of wrapping.
  std::uint64_t next_below(std::uint64_t bound) {
    CAR_CHECK(bound > 0, "Rng::next_below: bound == 0");
    // Lemire's unbiased multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].  An empty range
  /// (lo > hi) fails loudly instead of silently wrapping the span width.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    CAR_CHECK_LE(lo, hi, "Rng::next_in: empty range");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Sample `count` distinct indices from [0, population) in random order.
  std::vector<std::size_t> sample_indices(std::size_t population,
                                          std::size_t count) {
    CAR_CHECK_LE(count, population, "Rng::sample_indices");
    std::vector<std::size_t> all(population);
    for (std::size_t i = 0; i < population; ++i) all[i] = i;
    // Partial Fisher–Yates: only the first `count` slots need to be drawn.
    for (std::size_t i = 0; i < count; ++i) {
      const auto j = i + static_cast<std::size_t>(next_below(population - i));
      std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
  }

  /// Fill a byte buffer with random data (chunk payloads in tests/emulator).
  void fill_bytes(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    for (; i + 8 <= out.size(); i += 8) {
      const std::uint64_t v = (*this)();
      for (std::size_t b = 0; b < 8; ++b) {
        out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
    if (i < out.size()) {
      const std::uint64_t v = (*this)();
      for (std::size_t b = 0; i < out.size(); ++i, ++b) {
        out[i] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }

  /// Derive an independent child stream (for parallel experiment arms).
  Rng split() noexcept { return Rng((*this)()); }

 private:
  std::uint64_t state_;
};

}  // namespace car::util
