// XOR-code (RDP) recovery vs CAR's rack-aware view (paper §II-C).
//
// The pre-CAR literature minimises the number of *symbols read* when a disk
// of an XOR code fails (Xiang et al.'s hybrid row/diagonal recovery for
// RDP, ~25% fewer reads).  The paper argues that in a CFS the scarce
// resource is cross-rack bandwidth, not reads.  This bench quantifies both
// claims on RDP stripes whose p+1 disks are spread round-robin across 4
// racks:
//   1) hybrid recovery does cut reads by ~25%  (reproduces the related work),
//   2) yet its *cross-rack* traffic barely drops — until CAR's intra-rack
//      aggregation (partial XOR sums per rack per group) is layered on top,
//      which works for XOR codes exactly as it does for Reed-Solomon.
#include <cstdio>
#include <set>

#include "util/table.h"
#include "xorcode/rdp.h"

namespace {

constexpr std::size_t kRacks = 4;

std::size_t rack_of_disk(std::size_t disk) { return disk % kRacks; }

}  // namespace

int main() {
  using namespace car;
  std::printf("== XOR-code hybrid recovery vs rack-aware aggregation ==\n");
  std::printf("RDP(p) disks dealt round-robin over %zu racks; failed disk 0 "
              "(rack 0);\nreads and cross-rack units in symbols\n\n", kRacks);

  util::TextTable table({"p", "conv reads", "hybrid reads", "read saving",
                         "conv x-rack", "hybrid x-rack",
                         "hybrid+aggregation x-rack"});
  for (const std::size_t p : {5u, 7u, 11u, 13u}) {
    const xorcode::Rdp code(p);
    constexpr std::size_t failed = 0;
    const std::size_t home = rack_of_disk(failed);

    // Conventional: all rows, read every other column of columns 0..p-1.
    const std::size_t conv_reads = code.rows() * (p - 1);
    std::size_t conv_cross = 0;
    for (std::size_t r = 0; r < code.rows(); ++r) {
      for (std::size_t j = 0; j < p; ++j) {
        if (j != failed && rack_of_disk(j) != home) ++conv_cross;
      }
    }

    // Hybrid (minimum reads).
    const auto plan = code.plan_hybrid_recovery(failed);
    std::size_t hybrid_cross = 0;
    for (const auto& [disk, row] : plan.reads) {
      if (rack_of_disk(disk) != home) ++hybrid_cross;
    }

    // Hybrid + CAR-style aggregation: per recovery group, each contributing
    // foreign rack ships one partial XOR instead of raw symbols.
    std::size_t aggregated_cross = 0;
    for (std::size_t r = 0; r < code.rows(); ++r) {
      std::set<std::size_t> foreign_racks;
      if (!plan.use_diagonal[r]) {
        for (std::size_t j = 0; j < p; ++j) {
          if (j != failed && rack_of_disk(j) != home) {
            foreign_racks.insert(rack_of_disk(j));
          }
        }
      } else {
        const std::size_t d = (r + failed) % p;
        for (std::size_t j = 0; j < p; ++j) {
          if (j == failed) continue;
          const std::size_t i = (d + p - j) % p;
          if (i < code.rows() && rack_of_disk(j) != home) {
            foreign_racks.insert(rack_of_disk(j));
          }
        }
        if (rack_of_disk(xorcode::Rdp::kDiagParity(p)) != home) {
          foreign_racks.insert(rack_of_disk(xorcode::Rdp::kDiagParity(p)));
        }
      }
      aggregated_cross += foreign_racks.size();
    }

    table.add_row({std::to_string(p), std::to_string(conv_reads),
                   std::to_string(plan.reads.size()),
                   util::fmt_percent(1.0 - static_cast<double>(
                                               plan.reads.size()) /
                                               static_cast<double>(conv_reads)),
                   std::to_string(conv_cross), std::to_string(hybrid_cross),
                   std::to_string(aggregated_cross)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading fewer symbols (the XOR-code literature's objective) barely "
      "moves the\ncross-rack column; intra-rack aggregation — CAR's second "
      "technique — is what\ncollapses it, and it applies to XOR parity "
      "groups exactly as to RS repair\nvectors.\n");
  return 0;
}
