#include "recovery/multi.h"

#include <algorithm>
#include <exception>
#include <iterator>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/spsc_queue.h"

namespace car::recovery {

bool MultiFailureScenario::is_failed(cluster::NodeId node) const noexcept {
  return std::find(failed_nodes.begin(), failed_nodes.end(), node) !=
         failed_nodes.end();
}

MultiFailureScenario make_multi_failure(const cluster::Placement& placement,
                                        std::vector<cluster::NodeId> nodes) {
  CAR_CHECK(!nodes.empty(), "make_multi_failure: no failed nodes");
  std::unordered_set<cluster::NodeId> seen;
  for (cluster::NodeId node : nodes) {
    CAR_CHECK_LT(node, placement.topology().num_nodes(),
                 "make_multi_failure: node id out of range");
    CAR_CHECK(seen.insert(node).second,
              "make_multi_failure: duplicate node id");
  }
  MultiFailureScenario scenario;
  scenario.replacement = nodes.front();
  scenario.replacement_rack = placement.topology().rack_of(nodes.front());
  scenario.failed_nodes = std::move(nodes);
  return scenario;
}

MultiFailureScenario make_multi_failure_onto(
    const cluster::Placement& placement, std::vector<cluster::NodeId> nodes,
    cluster::NodeId replacement) {
  CAR_CHECK_LT(replacement, placement.topology().num_nodes(),
               "make_multi_failure_onto: replacement node id out of range");
  auto scenario = make_multi_failure(placement, std::move(nodes));
  scenario.replacement = replacement;
  scenario.replacement_rack = placement.topology().rack_of(replacement);
  return scenario;
}

namespace {

/// Serial census core over one contiguous stripe range, appending to `out`.
void census_range(const cluster::Placement& placement,
                  const MultiFailureScenario& scenario,
                  const std::vector<char>& failed, cluster::StripeId begin,
                  cluster::StripeId end, std::vector<MultiStripeCensus>& out) {
  const auto& topology = placement.topology();
  for (cluster::StripeId s = begin; s < end; ++s) {
    MultiStripeCensus census;
    census.stripe = s;
    census.replacement_rack = scenario.replacement_rack;
    census.k = placement.k();
    census.surviving.assign(topology.num_racks(), 0);
    const auto hosts = placement.stripe(s);
    for (std::size_t c = 0; c < hosts.size(); ++c) {
      if (failed[hosts[c]] != 0) {
        census.lost_chunks.push_back(c);
      } else {
        ++census.surviving[topology.rack_of(hosts[c])];
      }
    }
    if (census.lost_chunks.empty()) continue;
    CAR_CHECK_LE(census.lost_chunks.size(), placement.m(),
                 "build_multi_censuses: stripe lost more than m chunks — "
                 "beyond the code's fault tolerance");
    out.push_back(std::move(census));
  }
}

}  // namespace

std::vector<MultiStripeCensus> build_multi_censuses(
    const cluster::Placement& placement, const MultiFailureScenario& scenario,
    std::size_t shards) {
  CAR_CHECK(shards >= 1, "build_multi_censuses: shards must be >= 1");
  const auto& topology = placement.topology();
  // Bitset lookup: is_failed() is a linear scan over failed_nodes, and this
  // loop asks it once per chunk — at datacenter scale (1M stripes, a full
  // rack of failed nodes) that linear scan dominates the census.
  std::vector<char> failed(topology.num_nodes(), 0);
  for (cluster::NodeId node : scenario.failed_nodes) {
    CAR_CHECK_LT(node, topology.num_nodes(),
                 "build_multi_censuses: failed node id out of range");
    failed[node] = 1;
  }
  const cluster::StripeId n = placement.num_stripes();
  if (shards <= 1 || n < 2) {
    std::vector<MultiStripeCensus> out;
    census_range(placement, scenario, failed, 0, n, out);
    return out;
  }
  // Contiguous ranges per shard; each worker streams fixed-size census
  // batches through a bounded SPSC ring (exactly one producer — the
  // worker — and one consumer — this thread), and the collector drains
  // the rings in shard order.  Concatenation therefore overlaps the tail
  // of the scan instead of waiting behind the slowest shard, peak memory
  // is bounded by the ring capacities instead of a full per-shard copy,
  // and the output is still the serial scan's verbatim for every shard
  // count (batches of one range concatenate to that range's output, and
  // ranges flush in range order).
  shards = std::min<std::size_t>(shards, n);
  constexpr cluster::StripeId kBatchStripes = 1 << 14;
  using Batch = std::vector<MultiStripeCensus>;
  std::vector<std::unique_ptr<util::SpscQueue<Batch>>> rings;
  rings.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    rings.push_back(std::make_unique<util::SpscQueue<Batch>>(64));
  }
  std::vector<std::thread> workers;
  workers.reserve(shards);
  std::mutex error_mu;
  std::exception_ptr error;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const cluster::StripeId begin = n * shard / shards;
    const cluster::StripeId end = n * (shard + 1) / shards;
    workers.emplace_back([&, shard, begin, end] {
      const util::SpscProducerToken<Batch> token(*rings[shard]);
      try {
        for (cluster::StripeId at = begin; at < end; at += kBatchStripes) {
          Batch batch;
          census_range(placement, scenario, failed, at,
                       std::min<cluster::StripeId>(end, at + kBatchStripes),
                       batch);
          if (!batch.empty()) rings[shard]->push(std::move(batch));
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      // Close even on error, or the collector's pop() spins forever.
      rings[shard]->close();
    });
  }
  std::vector<MultiStripeCensus> out;
  try {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const util::SpscConsumerToken<Batch> token(*rings[shard]);
      while (auto batch = rings[shard]->pop()) {
        std::move(batch->begin(), batch->end(), std::back_inserter(out));
      }
    }
  } catch (...) {
    // The collector died mid-drain (e.g. bad_alloc growing `out`).
    // Producers may be spinning in SpscQueue::push with no way to observe
    // consumer death, and destroying a joinable std::thread terminates the
    // process — so drain every ring dry (pop() past a closed, empty ring
    // is a cheap no-op) and join before letting the exception unwind.
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const util::SpscConsumerToken<Batch> token(*rings[shard]);
      while (rings[shard]->pop()) {
      }
    }
    for (auto& worker : workers) worker.join();
    throw;
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
  return out;
}

std::vector<std::size_t> MultiStripeSolution::all_chunk_indices() const {
  std::vector<std::size_t> out;
  for (const auto& pick : picks) {
    out.insert(out.end(), pick.chunk_indices.begin(),
               pick.chunk_indices.end());
  }
  return out;
}

namespace {

/// Chunk indices of `stripe` in `rack` that survived (not in lost_chunks).
std::vector<std::size_t> surviving_in_rack(const cluster::Placement& placement,
                                           const MultiStripeCensus& census,
                                           cluster::RackId rack) {
  auto indices = placement.chunk_indices_in_rack(census.stripe, rack);
  std::erase_if(indices, [&](std::size_t c) {
    return std::binary_search(census.lost_chunks.begin(),
                              census.lost_chunks.end(), c);
  });
  return indices;
}

}  // namespace

MultiStripeSolution materialize_multi(const cluster::Placement& placement,
                                      const MultiStripeCensus& census,
                                      const RackSet& set) {
  CAR_CHECK(is_valid_minimal_for(census.k, census.replacement_rack,
                                 census.surviving, set),
            "materialize_multi: rack set is not a valid minimal solution");

  MultiStripeSolution solution;
  solution.stripe = census.stripe;
  solution.lost_chunks = census.lost_chunks;
  solution.rack_set = set;
  std::sort(solution.rack_set.racks.begin(), solution.rack_set.racks.end());

  std::size_t needed = census.k;

  // Home rack survivors first (free at the rack level).
  {
    auto local =
        surviving_in_rack(placement, census, census.replacement_rack);
    if (!local.empty()) {
      const std::size_t take = std::min(local.size(), needed);
      local.resize(take);
      needed -= take;
      solution.picks.push_back({census.replacement_rack, std::move(local)});
    }
  }

  // Chosen racks, largest availability first, trimming the last.
  std::vector<cluster::RackId> order = set.racks;
  std::stable_sort(order.begin(), order.end(),
                   [&](cluster::RackId a, cluster::RackId b) {
                     return census.surviving[a] > census.surviving[b];
                   });
  for (cluster::RackId rack : order) {
    if (needed == 0) {
      throw std::logic_error(
          "materialize_multi: chosen rack contributes no chunk");
    }
    auto indices = surviving_in_rack(placement, census, rack);
    const std::size_t take = std::min(indices.size(), needed);
    indices.resize(take);
    needed -= take;
    solution.picks.push_back({rack, std::move(indices)});
  }
  if (needed != 0) {
    throw std::logic_error("materialize_multi: could not gather k chunks");
  }
  return solution;
}

namespace {

double lambda_of(const std::vector<std::size_t>& t, cluster::RackId home) {
  std::size_t total = 0;
  std::size_t max = 0;
  for (cluster::RackId i = 0; i < t.size(); ++i) {
    total += t[i];
    if (i != home) max = std::max(max, t[i]);
  }
  if (total == 0 || t.size() < 2) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(t.size() - 1);
  return static_cast<double>(max) / avg;
}

}  // namespace

MultiBalanceResult balance_multi(
    const cluster::Placement& placement,
    const std::vector<MultiStripeCensus>& censuses, std::size_t iterations) {
  CAR_CHECK(!censuses.empty(), "balance_multi: no stripes to recover");
  const cluster::RackId home = censuses.front().replacement_rack;
  const std::size_t num_racks = censuses.front().num_racks();

  std::vector<RackSet> chosen(censuses.size());
  std::vector<std::size_t> weight(censuses.size());
  std::vector<std::size_t> t(num_racks, 0);
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    chosen[j] = default_rack_set(censuses[j].k, home, censuses[j].surviving);
    weight[j] = censuses[j].lost_count();
    for (cluster::RackId rack : chosen[j].racks) t[rack] += weight[j];
  }

  MultiBalanceResult result;
  result.lambda_trace.push_back(lambda_of(t, home));

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    cluster::RackId heaviest = home;
    std::size_t heaviest_t = 0;
    for (cluster::RackId i = 0; i < num_racks; ++i) {
      if (i == home) continue;
      if (heaviest == home || t[i] > heaviest_t) {
        heaviest = i;
        heaviest_t = t[i];
      }
    }

    bool substituted = false;
    std::vector<cluster::RackId> lighter;
    for (cluster::RackId i = 0; i < num_racks; ++i) {
      if (i != home && i != heaviest && t[i] < heaviest_t) lighter.push_back(i);
    }
    std::stable_sort(lighter.begin(), lighter.end(),
                     [&](cluster::RackId a, cluster::RackId b) {
                       return t[a] < t[b];
                     });

    for (cluster::RackId target : lighter) {
      for (std::size_t j = 0; j < censuses.size() && !substituted; ++j) {
        // Moving weight[j] partials must not push the target above the
        // (reduced) source: t_l - t_i >= 2 * weight keeps max monotone.
        if (heaviest_t < t[target] + 2 * weight[j]) continue;
        if (!chosen[j].contains(heaviest) || chosen[j].contains(target)) {
          continue;
        }
        RackSet swapped = chosen[j];
        std::replace(swapped.racks.begin(), swapped.racks.end(), heaviest,
                     target);
        std::sort(swapped.racks.begin(), swapped.racks.end());
        // Validity is a direct predicate (size d, distinct non-home racks
        // with survivors, enough chunks) — exactly the membership test in
        // enumerate_rack_sets' output, without materialising the
        // combinatorial candidate list per stripe.
        if (!is_valid_minimal_for(censuses[j].k, home, censuses[j].surviving,
                                  swapped)) {
          continue;
        }
        chosen[j] = std::move(swapped);
        t[heaviest] -= weight[j];
        t[target] += weight[j];
        substituted = true;
      }
      if (substituted) break;
    }
    if (!substituted) break;
    ++result.substitutions;
    result.lambda_trace.push_back(lambda_of(t, home));
  }

  result.solutions.reserve(censuses.size());
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    result.solutions.push_back(
        materialize_multi(placement, censuses[j], chosen[j]));
  }
  return result;
}

TrafficSummary multi_traffic(const std::vector<MultiStripeSolution>& solutions,
                             std::size_t num_racks,
                             cluster::RackId replacement_rack) {
  TrafficSummary summary;
  summary.failed_rack = replacement_rack;
  summary.per_rack_chunks.assign(num_racks, 0);
  for (const auto& solution : solutions) {
    for (cluster::RackId rack : solution.rack_set.racks) {
      summary.per_rack_chunks[rack] += solution.lost_chunks.size();
    }
  }
  return summary;
}

std::span<const std::uint8_t> RepairMemo::coeffs(
    const rs::Code& code, std::size_t lost,
    std::span<const std::size_t> survivors) {
  CAR_CHECK_LT(lost, std::size_t{64},
               "RepairMemo: lost chunk index does not fit the packed key");
  std::uint64_t mask = 0;
  std::size_t max_chunk = 0;
  for (const std::size_t chunk : survivors) {
    CAR_CHECK_LT(chunk, std::size_t{58},
                 "RepairMemo: survivor chunk index does not fit the packed "
                 "key's 58-bit set");
    mask |= std::uint64_t{1} << chunk;
    max_chunk = std::max(max_chunk, chunk);
  }
  const std::uint64_t key = (mask << 6) | static_cast<std::uint64_t>(lost);
  if (memo_.empty()) memo_.reserve(256);
  const auto [it, inserted] = memo_.try_emplace(key);
  if (inserted) {
    const auto y = code.repair_vector(lost, survivors);
    it->second.assign(max_chunk + 1, 0);
    for (std::size_t pos = 0; pos < survivors.size(); ++pos) {
      it->second[survivors[pos]] = y[pos];
    }
  }
  return it->second;
}

RecoveryPlan build_multi_car_plan(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    cluster::NodeId replacement) {
  CAR_CHECK(chunk_size > 0, "build_multi_car_plan: chunk_size must be > 0");
  const auto& topology = placement.topology();
  RecoveryPlan plan;
  plan.replacement = replacement;
  plan.replacement_rack = topology.rack_of(replacement);
  plan.chunk_size = chunk_size;

  auto add_transfer = [&](cluster::StripeId stripe, cluster::NodeId src,
                          cluster::NodeId dst, BufferRef payload,
                          std::vector<std::size_t> deps) {
    PlanStep step;
    step.id = plan.steps.size();
    step.kind = StepKind::kTransfer;
    step.stripe = stripe;
    step.src = src;
    step.dst = dst;
    step.payload = payload;
    step.cross_rack = topology.rack_of(src) != topology.rack_of(dst);
    step.bytes = chunk_size;
    step.deps = std::move(deps);
    plan.steps.push_back(std::move(step));
    return plan.steps.back().id;
  };
  auto add_compute = [&](cluster::StripeId stripe, cluster::NodeId node,
                         std::vector<ComputeInput> inputs,
                         std::vector<std::size_t> deps) {
    PlanStep step;
    step.id = plan.steps.size();
    step.kind = StepKind::kCompute;
    step.stripe = stripe;
    step.node = node;
    step.bytes = chunk_size * inputs.size();
    step.inputs = std::move(inputs);
    step.deps = std::move(deps);
    plan.steps.push_back(std::move(step));
    return plan.steps.back().id;
  };

  // repair_vector solves a k x k system; at scale most stripes share the
  // same (lost chunk, survivor set) shape, so memoise on a packed integer
  // key and read coefficients canonically by chunk index.
  RepairMemo repair_memo;

  for (const auto& solution : solutions) {
    const auto survivors = solution.all_chunk_indices();
    // One canonical coefficient table per lost chunk; the spans survive
    // later coeffs() inserts because unordered_map rehashing never moves
    // mapped values.
    std::vector<std::span<const std::uint8_t>> ys;
    ys.reserve(solution.lost_chunks.size());
    for (std::size_t lost : solution.lost_chunks) {
      ys.push_back(repair_memo.coeffs(code, lost, survivors));
    }

    // final_inputs[l] / final_deps[l]: partials for lost chunk l.
    std::vector<std::vector<ComputeInput>> final_inputs(ys.size());
    std::vector<std::vector<std::size_t>> final_deps(ys.size());

    for (const auto& pick : solution.picks) {
      const cluster::NodeId aggregator =
          placement.node_of(solution.stripe, pick.chunk_indices.front());
      std::vector<std::size_t> gather_deps;
      for (std::size_t chunk : pick.chunk_indices) {
        const cluster::NodeId host = placement.node_of(solution.stripe, chunk);
        if (host != aggregator) {
          gather_deps.push_back(
              add_transfer(solution.stripe, host, aggregator,
                           BufferRef::chunk(solution.stripe, chunk), {}));
        }
      }
      for (std::size_t l = 0; l < ys.size(); ++l) {
        std::vector<ComputeInput> inputs;
        inputs.reserve(pick.chunk_indices.size());
        for (std::size_t chunk : pick.chunk_indices) {
          inputs.push_back(
              {BufferRef::chunk(solution.stripe, chunk), ys[l][chunk]});
        }
        const std::size_t partial = add_compute(solution.stripe, aggregator,
                                                std::move(inputs), gather_deps);
        const std::size_t ship =
            add_transfer(solution.stripe, aggregator, replacement,
                         BufferRef::step(partial), {partial});
        final_inputs[l].push_back({BufferRef::step(partial), 1});
        final_deps[l].push_back(ship);
      }
    }

    for (std::size_t l = 0; l < ys.size(); ++l) {
      const std::size_t final_step =
          add_compute(solution.stripe, replacement, std::move(final_inputs[l]),
                      std::move(final_deps[l]));
      plan.outputs.push_back(
          {solution.stripe, solution.lost_chunks[l], final_step});
    }
  }
  return plan;
}

std::vector<MultiRrSolution> plan_multi_rr(
    const cluster::Placement& placement,
    const std::vector<MultiStripeCensus>& censuses, util::Rng& rng) {
  std::vector<MultiRrSolution> out;
  out.reserve(censuses.size());
  for (const auto& census : censuses) {
    std::vector<std::size_t> survivors;
    for (std::size_t c = 0; c < placement.chunks_per_stripe(); ++c) {
      if (!std::binary_search(census.lost_chunks.begin(),
                              census.lost_chunks.end(), c)) {
        survivors.push_back(c);
      }
    }
    CAR_CHECK_GE(survivors.size(), census.k,
                 "plan_multi_rr: fewer than k survivors");
    rng.shuffle(survivors);
    survivors.resize(census.k);
    std::sort(survivors.begin(), survivors.end());
    out.push_back({census.stripe, census.lost_chunks, std::move(survivors)});
  }
  return out;
}

TrafficSummary multi_rr_traffic(const cluster::Placement& placement,
                                const std::vector<MultiRrSolution>& solutions,
                                cluster::RackId replacement_rack) {
  TrafficSummary summary;
  summary.failed_rack = replacement_rack;
  summary.per_rack_chunks.assign(placement.topology().num_racks(), 0);
  for (const auto& solution : solutions) {
    for (std::size_t chunk : solution.chunk_indices) {
      const auto host = placement.node_of(solution.stripe, chunk);
      const auto rack = placement.topology().rack_of(host);
      if (rack != replacement_rack) ++summary.per_rack_chunks[rack];
    }
  }
  return summary;
}

RecoveryPlan build_multi_rr_plan(const cluster::Placement& placement,
                                 const rs::Code& code,
                                 std::span<const MultiRrSolution> solutions,
                                 std::uint64_t chunk_size,
                                 cluster::NodeId replacement) {
  CAR_CHECK(chunk_size > 0, "build_multi_rr_plan: chunk_size must be > 0");
  const auto& topology = placement.topology();
  RecoveryPlan plan;
  plan.replacement = replacement;
  plan.replacement_rack = topology.rack_of(replacement);
  plan.chunk_size = chunk_size;

  RepairMemo repair_memo;
  for (const auto& solution : solutions) {
    std::vector<std::size_t> deps;
    for (std::size_t chunk : solution.chunk_indices) {
      const cluster::NodeId host = placement.node_of(solution.stripe, chunk);
      if (host == replacement) continue;
      PlanStep step;
      step.id = plan.steps.size();
      step.kind = StepKind::kTransfer;
      step.stripe = solution.stripe;
      step.src = host;
      step.dst = replacement;
      step.payload = BufferRef::chunk(solution.stripe, chunk);
      step.cross_rack =
          topology.rack_of(host) != topology.rack_of(replacement);
      step.bytes = chunk_size;
      plan.steps.push_back(std::move(step));
      deps.push_back(plan.steps.back().id);
    }
    for (std::size_t lost : solution.lost_chunks) {
      const auto y = repair_memo.coeffs(code, lost, solution.chunk_indices);
      PlanStep step;
      step.id = plan.steps.size();
      step.kind = StepKind::kCompute;
      step.stripe = solution.stripe;
      step.node = replacement;
      step.bytes = chunk_size * solution.chunk_indices.size();
      for (std::size_t chunk : solution.chunk_indices) {
        step.inputs.push_back(
            {BufferRef::chunk(solution.stripe, chunk), y[chunk]});
      }
      step.deps = deps;
      plan.steps.push_back(std::move(step));
      plan.outputs.push_back({solution.stripe, lost, plan.steps.back().id});
    }
  }
  return plan;
}

}  // namespace car::recovery
