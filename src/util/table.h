// Fixed-width text table and CSV reporters used by the benchmark harnesses to
// print paper-style result tables.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace car::util {

/// Accumulates rows of strings and renders an aligned, boxed text table.
/// Also renders the same content as CSV for machine consumption.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a row of heterogeneous cells already stringified.
  void add_row(std::initializer_list<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render as an aligned table with a header separator.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (RFC-4180-ish quoting for commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style double formatting helpers for table cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace car::util
