// Bounded worker-pool executor for plan-step dependency DAGs.
//
// The emulator used to spawn one OS thread per plan step, so a
// thousand-stripe recovery plan created tens of thousands of threads.  The
// Executor replaces that with a fixed pool: at most
// min(max_workers, hardware_concurrency, num_tasks) threads drain a ready
// queue, unlocking each task's dependents as it completes.
//
// Failure semantics: the first exception thrown by a task is captured, no
// further queued tasks are issued, in-flight tasks are allowed to finish
// (they never see torn state), every worker drains, and the captured
// exception is rethrown to the caller.  A DAG whose ready queue empties
// while tasks remain unfinished (a dependency cycle) raises
// std::invalid_argument instead of deadlocking.  An optional should_abort
// predicate adds cooperative cancellation with the same drain discipline:
// checked before each task is issued, and util::StateError is raised once
// the pool has drained (the emulator aborts a plan when a node it is
// recovering onto or from is dropped mid-execution).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/attributes.h"

namespace car::emul {

class Executor {
 public:
  /// `max_workers` caps the pool size; the effective pool is further capped
  /// by std::thread::hardware_concurrency() and by the task count.
  /// Throws std::invalid_argument when max_workers == 0.
  explicit Executor(std::size_t max_workers);

  /// Threads that run(num_tasks, ...) would create.
  [[nodiscard]] std::size_t planned_workers(std::size_t num_tasks) const;

  /// Execute tasks 0..num_tasks-1 respecting the dependency DAG described
  /// by `indegrees` (number of unfinished prerequisites per task) and
  /// `dependents` (tasks unblocked when task i finishes).  `fn(task)` runs
  /// on a pool thread; tasks whose indegree is 0 are eligible immediately.
  /// When `should_abort` is set it is polled (under the queue lock) before
  /// each task is issued; once it returns true no further tasks start,
  /// in-flight tasks drain, and util::StateError is thrown.  Returns when
  /// every task ran, or throws (see failure semantics above).
  void run(std::size_t num_tasks, std::vector<std::size_t> indegrees,
           const std::vector<std::vector<std::size_t>>& dependents,
           const std::function<void(std::size_t)>& fn,
           const std::function<bool()>& should_abort = {}) CAR_BOUNDARY;

 private:
  std::size_t max_workers_;
};

}  // namespace car::emul
