// Columnar (structure-of-arrays) arena form of a slice-lowered recovery
// plan.
//
// recovery::SlicePlan materialises one PlanStep per slice: each carries its
// own deps vector and inputs vector, so a million-step plan sliced a few
// ways costs millions of small heap allocations before a single byte moves
// — the wall the datacenter-scale experiments (ROADMAP item 2) hit first.
// PlanArena stores the same plan in flat 64-bit-indexed arrays instead:
//
//   * one row of columnar step state per BASE step (kind/stripe/endpoints/
//     payload), since every slice of a step shares them;
//   * dependencies and compute inputs in CSR form (one offsets array, one
//     flat entries array), again per base step — the slice dimension of the
//     lowering is pure index arithmetic (slice s of step x depends on slice
//     s of x's deps; its byte range is s * slice_size onward), so it is
//     *computed* on access rather than stored;
//   * 64-bit sliced ids on the same grid as SlicePlan::sliced_id
//     (base * num_slices + slice, overflow-checked).
//
// The arena is a drop-in source of truth for executors: step(id) /
// slice_info(id) materialise the exact PlanStep / SliceInfo the SlicePlan
// lowering would contain (to_slice_plan() materialises the whole thing,
// which is how the differential tests prove equivalence), and the byte
// accounting API mirrors SlicePlan's.  emul::Cluster::execute_arena walks
// the columns directly and never materialises per-step objects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/topology.h"
#include "cluster/types.h"
#include "recovery/plan.h"
#include "recovery/slice.h"
#include "util/default_init_allocator.h"

namespace car::cluster {
class Placement;
}  // namespace car::cluster

namespace car::recovery {

struct PlanTemplate;   // recovery/plan_template.h
struct StripeBinding;  // recovery/plan_template.h

class PlanArena {
 public:
  /// Build the arena from a chunk-granular plan on a slice grid of
  /// `slice_size` bytes (clamped to chunk_size, same grid as slice_plan).
  /// Validates the slice_plan contract (dense ids, transfer bytes ==
  /// chunk_size, compute bytes == chunk_size * |inputs|) and additionally
  /// requires forward dependencies (every dep id < step id — true of every
  /// plan the builders emit), which is what lets executors walk the arena
  /// in id order without a scheduling heap.  Throws util::CheckError on
  /// violations, and std::out_of_range when a node id does not fit the
  /// 32-bit endpoint columns.
  static PlanArena build(const RecoveryPlan& plan, std::uint64_t slice_size);

  // --- incremental template-instantiation construction ----------------
  //
  // The scale planner (recovery/plan_template.h) skips the chunk-granular
  // RecoveryPlan entirely: create() an empty arena, append_instantiated()
  // once per stripe (remapping a cached template's symbolic endpoints and
  // local step ids straight into the columns), then finalize() to build
  // the reverse-dependency CSR and check the id grid.  Reading an arena
  // before finalize() is undefined.

  /// Empty arena on the given slice grid, ready for append_instantiated.
  static PlanArena create(cluster::NodeId replacement,
                          cluster::RackId replacement_rack,
                          std::uint64_t chunk_size, std::uint64_t slice_size);

  /// Append one stripe's instantiation of `tmpl`: survivor-position
  /// symbols resolve through the binding and placement (or to the
  /// replacement), step refs and deps are offset by the current base-step
  /// count, chunk refs and the stripe column get stamped with the
  /// binding's stripe, coefficients come from the binding's canonical
  /// decode tables, and cross-rack flags are recomputed from the resolved
  /// endpoint racks.  Defined in plan_template.cc.
  void append_instantiated(const PlanTemplate& tmpl,
                           const StripeBinding& binding,
                           const cluster::Placement& placement);

  /// Size the columns for exactly `steps` base steps with `deps` total
  /// dependency edges, `inputs` total compute inputs, and `outputs`
  /// outputs.  Callers that know the totals up front (template
  /// instantiation sums them over its work list) get the fast append
  /// path: the columns are resized once and append_instantiated() writes
  /// through raw cursors instead of per-element push_back — no capacity
  /// checks, no growth reallocations of multi-hundred-MB columns.  Must
  /// run before the first append; finalize() verifies the appended
  /// extents landed exactly on these totals.  Appending without a
  /// reserve() pass still works (the columns grow geometrically).
  void reserve(std::uint64_t steps, std::uint64_t deps, std::uint64_t inputs,
               std::uint64_t outputs);

  /// Seal an incrementally built arena: reverse-dependency CSR plus the
  /// same sliced-id overflow check build() performs.
  void finalize();

  // --- grid -----------------------------------------------------------

  [[nodiscard]] std::uint64_t chunk_size() const noexcept {
    return chunk_size_;
  }
  [[nodiscard]] std::uint64_t slice_size() const noexcept {
    return slice_size_;
  }
  [[nodiscard]] std::uint64_t num_slices() const noexcept {
    return num_slices_;
  }
  [[nodiscard]] std::uint64_t num_base_steps() const noexcept {
    return static_cast<std::uint64_t>(flags_.size());
  }
  /// Base steps appended so far.  After reserve(), num_base_steps() is
  /// already the final extent while this cursor trails the appends — it is
  /// the streaming build's publish watermark (plan_template.h), and the
  /// two agree exactly once finalize() has checked the totals.
  [[nodiscard]] std::uint64_t appended_base_steps() const noexcept {
    return cur_steps_;
  }
  [[nodiscard]] std::uint64_t num_sliced_steps() const noexcept {
    return num_base_steps() * num_slices_;
  }

  /// Same id grid (and the same overflow check) as SlicePlan::sliced_id.
  [[nodiscard]] std::uint64_t sliced_id(std::uint64_t base,
                                        std::uint64_t slice) const;

  [[nodiscard]] std::uint64_t slice_offset(std::uint64_t slice) const noexcept {
    return slice * slice_size_;
  }
  [[nodiscard]] std::uint64_t slice_length(std::uint64_t slice) const noexcept {
    const std::uint64_t offset = slice_offset(slice);
    const std::uint64_t rest = chunk_size_ - offset;
    return rest < slice_size_ ? rest : slice_size_;
  }

  // --- per base-step columns ------------------------------------------

  [[nodiscard]] StepKind kind(std::uint64_t base) const noexcept {
    return (flags_[base] & kComputeFlag) != 0 ? StepKind::kCompute
                                              : StepKind::kTransfer;
  }
  [[nodiscard]] bool cross_rack(std::uint64_t base) const noexcept {
    return (flags_[base] & kCrossRackFlag) != 0;
  }
  [[nodiscard]] cluster::StripeId stripe(std::uint64_t base) const noexcept {
    return static_cast<cluster::StripeId>(stripe_[base]);
  }
  [[nodiscard]] cluster::NodeId src(std::uint64_t base) const noexcept {
    return static_cast<cluster::NodeId>(endpoint_a_[base]);
  }
  [[nodiscard]] cluster::NodeId dst(std::uint64_t base) const noexcept {
    return static_cast<cluster::NodeId>(endpoint_b_[base]);
  }
  [[nodiscard]] cluster::NodeId node(std::uint64_t base) const noexcept {
    return static_cast<cluster::NodeId>(endpoint_a_[base]);
  }
  [[nodiscard]] BufferRef payload(std::uint64_t base) const noexcept {
    return unpack_ref(payload_a_[base], payload_b_[base]);
  }

  /// Dependencies / dependents as BASE step ids; the sliced image of
  /// (base, s) is { sliced_id(d, s) : d in deps(base) }.
  [[nodiscard]] std::span<const std::uint64_t> deps(std::uint64_t base) const {
    return {dep_entries_.data() + dep_off_[base],
            dep_off_[base + 1] - dep_off_[base]};
  }
  [[nodiscard]] std::span<const std::uint64_t> dependents(
      std::uint64_t base) const {
    return {rdep_entries_.data() + rdep_off_[base],
            rdep_off_[base + 1] - rdep_off_[base]};
  }

  [[nodiscard]] std::size_t num_inputs(std::uint64_t base) const noexcept {
    return static_cast<std::size_t>(in_off_[base + 1] - in_off_[base]);
  }
  [[nodiscard]] ComputeInput input(std::uint64_t base, std::size_t i) const {
    const std::uint64_t at = in_off_[base] + i;
    return {unpack_ref(in_ref_a_[at], in_ref_b_[at]), in_coeff_[at]};
  }

  /// Declared bytes of the sliced step (base, slice): the slice length for
  /// transfers, length * |inputs| for computes — matching SlicePlan.
  [[nodiscard]] std::uint64_t step_bytes(std::uint64_t base,
                                         std::uint64_t slice) const noexcept {
    const std::uint64_t length = slice_length(slice);
    return kind(base) == StepKind::kTransfer
               ? length
               : length * static_cast<std::uint64_t>(num_inputs(base));
  }

  [[nodiscard]] cluster::NodeId replacement() const noexcept {
    return replacement_;
  }
  [[nodiscard]] cluster::RackId replacement_rack() const noexcept {
    return replacement_rack_;
  }
  [[nodiscard]] std::span<const RecoveryPlan::Output> outputs()
      const noexcept {
    return outputs_;
  }

  /// True when every dependency stays within its step's stripe — the
  /// property that makes stripes independent sub-DAGs, which the sharded
  /// executor requires.  Raw builder plans are stripe-closed; windowed
  /// schedules (recovery/scheduler.h) add cross-stripe lane deps and are
  /// not.
  [[nodiscard]] bool stripe_closed() const noexcept { return stripe_closed_; }

  // --- byte accounting (mirrors SlicePlan's API) ----------------------

  [[nodiscard]] std::uint64_t cross_rack_bytes() const noexcept;
  [[nodiscard]] std::uint64_t intra_rack_bytes() const noexcept;
  [[nodiscard]] std::uint64_t compute_bytes() const noexcept;
  [[nodiscard]] std::vector<std::uint64_t> per_rack_cross_bytes(
      const cluster::Topology& topology) const;

  // --- thin view onto the SlicePlan representation --------------------

  /// Materialise the PlanStep / SliceInfo for one sliced id, bit-equal to
  /// the corresponding entry of slice_plan(plan, slice_size).  Allocating —
  /// meant for tests and spot inspection, not the execution hot path.
  [[nodiscard]] PlanStep step(std::uint64_t sliced) const;
  [[nodiscard]] SliceInfo slice_info(std::uint64_t sliced) const;

  /// Materialise the full SlicePlan (steps, info, outputs) this arena
  /// represents.  The differential tests compare this against slice_plan()
  /// to prove the two lowerings are the same function.
  [[nodiscard]] SlicePlan to_slice_plan() const;

 private:
  void build_reverse_deps();

  static constexpr std::uint8_t kComputeFlag = 1;
  static constexpr std::uint8_t kCrossRackFlag = 2;
  /// Tag bit in the second ref word: set = step-output ref, clear = chunk.
  static constexpr std::uint32_t kStepRefBit = 1U << 31;

  static std::pair<std::uint64_t, std::uint32_t> pack_ref(
      const BufferRef& ref);
  static BufferRef unpack_ref(std::uint64_t a, std::uint32_t b) noexcept {
    if ((b & kStepRefBit) != 0) {
      return BufferRef::step(static_cast<std::size_t>(a));
    }
    return BufferRef::chunk(static_cast<cluster::StripeId>(a),
                            static_cast<std::size_t>(b));
  }

  cluster::NodeId replacement_ = 0;
  cluster::RackId replacement_rack_ = 0;
  std::uint64_t chunk_size_ = 0;
  std::uint64_t slice_size_ = 0;
  std::uint64_t num_slices_ = 1;
  bool stripe_closed_ = true;

  // Column storage default-initialises on resize (every element is
  // overwritten through exact-size cursors right after), so sizing the
  // columns never memsets hundreds of megabytes.
  template <typename T>
  using Column = std::vector<T, util::DefaultInitAllocator<T>>;

  // One entry per base step.
  Column<std::uint8_t> flags_;
  Column<std::uint64_t> stripe_;
  Column<std::uint32_t> endpoint_a_;  // transfer src / compute node
  Column<std::uint32_t> endpoint_b_;  // transfer dst / 0
  Column<std::uint64_t> payload_a_;   // chunk stripe / output step id
  Column<std::uint32_t> payload_b_;   // chunk index | kStepRefBit

  // CSR dependency structure over base steps (entries are base ids).
  Column<std::uint64_t> dep_off_;   // size num_base_steps + 1
  Column<std::uint64_t> dep_entries_;
  Column<std::uint64_t> rdep_off_;  // reverse edges (dependents)
  Column<std::uint64_t> rdep_entries_;

  // CSR compute inputs over base steps.
  Column<std::uint64_t> in_off_;    // size num_base_steps + 1
  Column<std::uint64_t> in_ref_a_;
  Column<std::uint32_t> in_ref_b_;
  Column<std::uint8_t> in_coeff_;

  std::vector<RecoveryPlan::Output> outputs_;

  // Incremental-append cursors: append_instantiated() writes the columns
  // through these offsets (the columns are pre-sized, either exactly by
  // reserve() or geometrically per append), so num_base_steps() is only
  // meaningful once finalize() has checked the cursors against the column
  // extents.
  std::uint64_t cur_steps_ = 0;
  std::uint64_t cur_deps_ = 0;
  std::uint64_t cur_inputs_ = 0;
  std::uint64_t cur_outputs_ = 0;
  bool sized_ = false;  // reserve() ran: extents are exact, not grown
};

}  // namespace car::recovery
