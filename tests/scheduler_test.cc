#include "recovery/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "simnet/flowsim.h"

namespace car::recovery {
namespace {

struct Fixture {
  cluster::CfsConfig cfg = cluster::cfs2();
  cluster::Placement placement;
  rs::Code code;
  cluster::FailureScenario scenario;
  RecoveryPlan plan;

  explicit Fixture(std::uint64_t seed, std::size_t stripes = 20)
      : placement(make(cfg, stripes, seed)), code(cfg.k, cfg.m) {
    util::Rng rng(seed + 1);
    scenario = cluster::inject_random_failure(placement, rng);
    const auto censuses = build_censuses(placement, scenario);
    const auto balanced = balance_greedy(placement, censuses, {50});
    plan = build_car_plan(placement, code, balanced.solutions, 1 << 20,
                          scenario.failed_node);
  }

  static cluster::Placement make(const cluster::CfsConfig& cfg,
                                 std::size_t stripes, std::uint64_t seed) {
    util::Rng rng(seed);
    return cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes,
                                      rng);
  }

  [[nodiscard]] std::size_t stripes_in_plan() const {
    std::set<cluster::StripeId> stripes;
    for (const auto& step : plan.steps) stripes.insert(step.stripe);
    return stripes.size();
  }
};

TEST(Scheduler, RawPlanHasAllStripesInFlight) {
  Fixture f(1);
  EXPECT_EQ(max_inflight_stripes(f.plan), f.stripes_in_plan());
}

class WindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowSweep, BoundsInflightStripesWithoutChangingTheWork) {
  const std::size_t window = GetParam();
  Fixture f(2);
  const auto scheduled = schedule_windowed(f.plan, window);

  // Same steps, same traffic — only dependencies differ.
  ASSERT_EQ(scheduled.steps.size(), f.plan.steps.size());
  EXPECT_EQ(scheduled.cross_rack_bytes(), f.plan.cross_rack_bytes());
  EXPECT_EQ(scheduled.intra_rack_bytes(), f.plan.intra_rack_bytes());
  EXPECT_EQ(scheduled.outputs.size(), f.plan.outputs.size());

  EXPECT_EQ(max_inflight_stripes(scheduled),
            std::min(window, f.stripes_in_plan()));

  // The scheduled plan still simulates to completion (no cycles).
  const simnet::NetConfig net;
  const auto result =
      simnet::simulate_plan(f.placement.topology(), scheduled, net);
  EXPECT_GT(result.makespan_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 100u));

TEST(Scheduler, SerialWindowIsSlowerButStillCorrect) {
  Fixture f(3);
  const simnet::NetConfig net;
  const auto parallel =
      simnet::simulate_plan(f.placement.topology(), f.plan, net);
  const auto serial = simnet::simulate_plan(
      f.placement.topology(), schedule_windowed(f.plan, 1), net);
  EXPECT_GT(serial.makespan_s, parallel.makespan_s);
}

TEST(Scheduler, MakespanIsMonotoneInWindowUpToFairnessNoise) {
  // Widening the window adds parallelism, so makespan should not grow —
  // except for small inversions caused by max-min fair sharing not being a
  // makespan-optimal schedule; allow 2% slack.
  Fixture f(4, 16);
  const simnet::NetConfig net;
  double previous = std::numeric_limits<double>::infinity();
  for (std::size_t window : {1u, 2u, 4u, 16u}) {
    const auto result = simnet::simulate_plan(
        f.placement.topology(), schedule_windowed(f.plan, window), net);
    EXPECT_LE(result.makespan_s, previous * 1.02) << "window " << window;
    previous = result.makespan_s;
  }
}

TEST(Scheduler, WindowLargerThanStripesIsIdentity) {
  Fixture f(5, 6);
  const auto scheduled = schedule_windowed(f.plan, 100);
  for (std::size_t i = 0; i < f.plan.steps.size(); ++i) {
    EXPECT_EQ(scheduled.steps[i].deps, f.plan.steps[i].deps);
  }
}

TEST(Scheduler, ZeroWindowRejected) {
  Fixture f(6, 4);
  EXPECT_THROW(schedule_windowed(f.plan, 0), std::invalid_argument);
}

TEST(Scheduler, EmptyPlanIsHandled) {
  RecoveryPlan plan;
  EXPECT_EQ(max_inflight_stripes(plan), 0u);
  const auto scheduled = schedule_windowed(plan, 3);
  EXPECT_TRUE(scheduled.steps.empty());
}

TEST(Scheduler, ReadinessSurfaceMatchesPlanDependencies) {
  Fixture f(7, 8);
  const auto indegrees = step_indegrees(f.plan);
  const auto dependents = step_dependents(f.plan);
  ASSERT_EQ(indegrees.size(), f.plan.steps.size());
  ASSERT_EQ(dependents.size(), f.plan.steps.size());

  std::size_t edges_forward = 0;
  std::size_t edges_backward = 0;
  for (const auto& step : f.plan.steps) {
    EXPECT_EQ(indegrees[step.id], step.deps.size());
    edges_forward += step.deps.size();
    for (const std::size_t dep : step.deps) {
      const auto& deps_of_dep = dependents[dep];
      EXPECT_NE(std::find(deps_of_dep.begin(), deps_of_dep.end(), step.id),
                deps_of_dep.end())
          << "step " << step.id << " missing from dependents of " << dep;
    }
  }
  for (const auto& d : dependents) edges_backward += d.size();
  EXPECT_EQ(edges_forward, edges_backward);

  // Builders emit steps in topological order, so indegree-0 steps exist.
  EXPECT_NE(std::count(indegrees.begin(), indegrees.end(), 0u), 0);
}

TEST(Scheduler, ReadinessSurfaceRejectsUnknownDependency) {
  Fixture f(8, 4);
  RecoveryPlan broken = f.plan;
  broken.steps.back().deps.push_back(broken.steps.size() + 7);
  EXPECT_THROW(step_indegrees(broken), std::invalid_argument);
  EXPECT_THROW(step_dependents(broken), std::invalid_argument);
}

}  // namespace
}  // namespace car::recovery
