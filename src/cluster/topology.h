// Physical cluster topology: racks of nodes behind top-of-rack switches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/types.h"

namespace car::cluster {

/// Immutable description of a CFS: how many nodes live in each rack.
/// Node ids are assigned rack-by-rack: rack 0 holds nodes [0, n0), rack 1
/// holds [n0, n0+n1), and so on.
class Topology {
 public:
  /// Requires at least one rack and at least one node per rack.
  explicit Topology(std::vector<std::size_t> nodes_per_rack);

  [[nodiscard]] std::size_t num_racks() const noexcept {
    return nodes_per_rack_.size();
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return total_nodes_; }
  [[nodiscard]] std::size_t nodes_in_rack_count(RackId rack) const;

  /// Rack that hosts `node`; throws std::out_of_range for bad ids.
  [[nodiscard]] RackId rack_of(NodeId node) const;

  /// Global node-id range [first, last) of a rack.
  [[nodiscard]] std::pair<NodeId, NodeId> rack_range(RackId rack) const;

  /// All node ids in a rack, ascending.
  [[nodiscard]] std::vector<NodeId> nodes_in_rack(RackId rack) const;

  [[nodiscard]] const std::vector<std::size_t>& nodes_per_rack() const noexcept {
    return nodes_per_rack_;
  }

  /// "{4,3,3}" style description for logs and table headers.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  std::vector<std::size_t> nodes_per_rack_;
  std::vector<NodeId> rack_first_node_;  // prefix sums; size num_racks()+1
  std::vector<RackId> rack_by_node_;     // direct node -> rack lookup
  std::size_t total_nodes_ = 0;
};

}  // namespace car::cluster
