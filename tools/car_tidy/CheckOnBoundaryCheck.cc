#include "CheckOnBoundaryCheck.h"

#include "CarTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::car {

namespace {

AST_MATCHER(FunctionDecl, isCarBoundary) {
  for (const auto *A : Node.specific_attrs<AnnotateAttr>()) {
    if (A->getAnnotation() == "car_boundary") return true;
  }
  return false;
}

/// Does this statement subtree bail out (return or throw)?
bool bailsOut(const Stmt *S) {
  if (S == nullptr) return false;
  if (isa<ReturnStmt>(S) || isa<CXXThrowExpr>(S)) return true;
  for (const Stmt *Child : S->children()) {
    if (bailsOut(Child)) return true;
  }
  return false;
}

/// A guard if: any branch bails out, so the straight-line continuation only
/// runs for arguments that passed the test.
bool isGuardIf(const Stmt *S) {
  const auto *If = dyn_cast<IfStmt>(S);
  if (If == nullptr) return false;
  return bailsOut(If->getThen()) || bailsOut(If->getElse());
}

}  // namespace

void CheckOnBoundaryCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(isCarBoundary(), isDefinition(), hasBody(compoundStmt()))
          .bind("fn"),
      this);
}

void CheckOnBoundaryCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  const auto *Body = dyn_cast<CompoundStmt>(Fn->getBody());
  if (Body == nullptr) return;

  for (const Stmt *S : Body->body()) {
    // A contract macro or a guard `if` validates: the boundary is covered.
    if (isInCarCheckMacro(S->getBeginLoc(), *Result.SourceManager,
                          getLangOpts())) {
      return;
    }
    if (isGuardIf(S)) return;
    // Leading declarations may materialise arguments before checking them.
    if (isa<DeclStmt>(S)) continue;
    break;  // first operative statement reached without any validation
  }
  diag(Fn->getLocation(),
       "CAR_BOUNDARY function %0 does not validate its arguments: the first "
       "operative statement must be a CAR_CHECK* contract or a guard if")
      << Fn;
}

}  // namespace clang::tidy::car
