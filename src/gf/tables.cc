#include "gf/tables.h"

#include <stdexcept>

#include "util/check.h"

namespace car::gf {

std::uint32_t primitive_polynomial(unsigned w) {
  // Conway-adjacent primitive polynomials commonly used by storage coding
  // libraries (same choices as Jerasure/ISA-L for w = 4, 8, 16).
  switch (w) {
    case 2:  return 0x7;       // x^2+x+1
    case 3:  return 0xB;       // x^3+x+1
    case 4:  return 0x13;      // x^4+x+1
    case 5:  return 0x25;      // x^5+x^2+1
    case 6:  return 0x43;      // x^6+x+1
    case 7:  return 0x89;      // x^7+x^3+1
    case 8:  return 0x11D;     // x^8+x^4+x^3+x^2+1
    case 9:  return 0x211;     // x^9+x^4+1
    case 10: return 0x409;     // x^10+x^3+1
    case 11: return 0x805;     // x^11+x^2+1
    case 12: return 0x1053;    // x^12+x^6+x^4+x+1
    case 13: return 0x201B;    // x^13+x^4+x^3+x+1
    case 14: return 0x4443;    // x^14+x^10+x^6+x+1
    case 15: return 0x8003;    // x^15+x+1
    case 16: return 0x1100B;   // x^16+x^12+x^3+x+1
    default:
      CAR_CHECK_FAIL("primitive_polynomial: unsupported field width");
  }
}

std::uint32_t slow_multiply(std::uint32_t a, std::uint32_t b, unsigned w,
                            std::uint32_t poly) {
  const std::uint32_t high_bit = 1u << w;
  std::uint32_t product = 0;
  while (b != 0) {
    if (b & 1u) product ^= a;
    b >>= 1;
    a <<= 1;
    if (a & high_bit) a ^= poly;
  }
  return product;
}

LogExpTables build_log_exp(unsigned w) {
  const std::uint32_t poly = primitive_polynomial(w);
  LogExpTables t;
  t.w = w;
  t.field_size = 1u << w;
  const std::uint32_t order = t.field_size - 1;  // multiplicative group order
  t.exp.assign(2 * static_cast<std::size_t>(order), 0);
  t.log.assign(t.field_size, 0);

  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order; ++i) {
    if (i != 0 && x == 1) {
      throw std::logic_error("build_log_exp: polynomial is not primitive");
    }
    t.exp[i] = x;
    t.exp[i + order] = x;  // duplicated so mul can skip the mod
    t.log[x] = i;
    x = slow_multiply(x, 2, w, poly);
  }
  if (x != 1) {
    throw std::logic_error("build_log_exp: alpha^order != 1");
  }
  t.log[0] = order;  // sentinel; callers must special-case zero
  return t;
}

}  // namespace car::gf
