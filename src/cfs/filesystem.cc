#include "cfs/filesystem.h"

#include <algorithm>
#include <stdexcept>

#include "recovery/degraded.h"
#include "recovery/multi.h"
#include "util/check.h"

namespace car::cfs {

FileSystem::FileSystem(FsConfig config)
    : config_(std::move(config)),
      code_(config_.k, config_.m),
      placement_(config_.topology, config_.k, config_.m),
      cluster_(config_.topology, config_.emul),
      rng_(config_.seed) {
  CAR_CHECK(config_.chunk_size > 0, "FileSystem: chunk_size must be > 0");
}

FileMeta FileSystem::write_file(const std::string& name,
                                std::span<const std::uint8_t> data) {
  CAR_CHECK(!files_.contains(name),
            "FileSystem::write_file: name already exists");
  CAR_CHECK(!data.empty(), "FileSystem::write_file: empty data");
  if (!failed_.empty()) {
    throw std::logic_error(
        "FileSystem::write_file: repair failed nodes before writing");
  }

  FileMeta meta;
  meta.name = name;
  meta.size = data.size();

  const std::uint64_t stripe_bytes = config_.chunk_size * config_.k;
  for (std::uint64_t offset = 0; offset < data.size();
       offset += stripe_bytes) {
    // Build k data chunks, zero-padding the tail.
    std::vector<rs::Chunk> chunks(config_.k,
                                  rs::Chunk(config_.chunk_size, 0));
    for (std::size_t c = 0; c < config_.k; ++c) {
      const std::uint64_t begin = offset + c * config_.chunk_size;
      if (begin >= data.size()) break;
      const std::uint64_t len =
          std::min<std::uint64_t>(config_.chunk_size, data.size() - begin);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(begin), len,
                  chunks[c].begin());
    }
    std::vector<rs::ChunkView> views(chunks.begin(), chunks.end());
    const auto stripe = code_.encode_stripe(views);

    const auto nodes = cluster::Placement::choose_stripe_nodes(
        config_.topology, config_.k, config_.m, rng_);
    const cluster::StripeId stripe_id = placement_.num_stripes();
    placement_.add_stripe(nodes);
    for (std::size_t c = 0; c < stripe.size(); ++c) {
      cluster_.store_chunk(nodes[c], stripe_id, c, stripe[c]);
    }
    meta.stripes.push_back(stripe_id);
  }

  files_[name] = meta;
  return meta;
}

std::optional<FileMeta> FileSystem::stat(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint8_t> FileSystem::read_file(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::out_of_range("FileSystem::read_file: unknown file");
  }
  const FileMeta& meta = it->second;

  std::vector<std::uint8_t> out;
  out.reserve(meta.size);
  for (const cluster::StripeId stripe : meta.stripes) {
    for (std::size_t c = 0; c < config_.k && out.size() < meta.size; ++c) {
      const cluster::NodeId host = placement_.node_of(stripe, c);
      const rs::Chunk* chunk = nullptr;
      recovery::RecoveryPlan degraded_plan;
      if (!failed_.contains(host)) {
        chunk = cluster_.find_chunk(host, stripe, c);
      }
      if (chunk == nullptr) {
        // Degraded read: reconstruct at any alive node via CAR.
        cluster::NodeId reader = config_.topology.num_nodes();
        for (cluster::NodeId n = 0; n < config_.topology.num_nodes(); ++n) {
          if (!failed_.contains(n)) {
            reader = n;
            break;
          }
        }
        CAR_CHECK_STATE(reader != config_.topology.num_nodes(),
                        "FileSystem::read_file: no node alive");
        degraded_plan = recovery::plan_degraded_read_car(
            placement_, code_, {stripe, c, reader}, config_.chunk_size);
        cluster_.execute(degraded_plan);
        chunk = cluster_.find_step_output(reader,
                                          degraded_plan.outputs[0].step_id);
        CAR_CHECK_STATE(chunk != nullptr,
                        "FileSystem::read_file: degraded read failed");
      }
      const std::uint64_t want =
          std::min<std::uint64_t>(config_.chunk_size, meta.size - out.size());
      out.insert(out.end(), chunk->begin(),
                 chunk->begin() + static_cast<std::ptrdiff_t>(want));
    }
  }
  return out;
}

void FileSystem::fail_node(cluster::NodeId node) {
  if (node >= config_.topology.num_nodes()) {
    throw std::out_of_range("FileSystem::fail_node: bad node id");
  }
  cluster_.erase_node(node);
  failed_.insert(node);
}

RepairReport FileSystem::repair(std::optional<cluster::NodeId> replacement) {
  if (failed_.empty()) {
    throw std::logic_error("FileSystem::repair: no failed node");
  }
  std::vector<cluster::NodeId> failed(failed_.begin(), failed_.end());
  const cluster::NodeId target = replacement.value_or(failed.front());
  CAR_CHECK(!failed_.contains(target) || target == failed.front(),
            "FileSystem::repair: replacement must be alive or the primary "
            "failed node");

  // Anchor the scenario at the chosen replacement.
  auto scenario = recovery::make_multi_failure(placement_, failed);
  scenario.replacement = target;
  scenario.replacement_rack = config_.topology.rack_of(target);

  RepairReport report;
  report.replacement = target;
  const auto censuses = recovery::build_multi_censuses(placement_, scenario);
  if (!censuses.empty()) {
    const auto balanced = recovery::balance_multi(placement_, censuses, 50);
    const auto plan = recovery::build_multi_car_plan(
        placement_, code_, balanced.solutions, config_.chunk_size, target);
    const auto exec = cluster_.execute(plan);
    report.wall_s = exec.wall_s;
    report.cross_rack_bytes = exec.cross_rack_bytes;
    report.chunks_rebuilt = plan.outputs.size();
    report.lambda = recovery::multi_traffic(balanced.solutions,
                                            config_.topology.num_racks(),
                                            scenario.replacement_rack)
                        .lambda();

    // Re-host every rebuilt chunk.  The replacement keeps what it can;
    // chunks that would violate the distinct-node or rack-quota invariants
    // there (possible when one stripe lost several chunks) are redistributed
    // to other alive nodes.
    failed_.erase(target);  // the replacement is alive from here on
    for (const auto& out : plan.outputs) {
      cluster::NodeId host = target;
      if (!placement_.can_host(out.stripe, out.chunk_index, host)) {
        host = config_.topology.num_nodes();
        for (cluster::NodeId n = 0; n < config_.topology.num_nodes(); ++n) {
          if (!failed_.contains(n) && n != target &&
              placement_.can_host(out.stripe, out.chunk_index, n)) {
            host = n;
            break;
          }
        }
        CAR_CHECK_STATE(host != config_.topology.num_nodes(),
                        "FileSystem::repair: no valid host for a rebuilt "
                        "chunk");
        const rs::Chunk* rebuilt =
            cluster_.find_chunk(target, out.stripe, out.chunk_index);
        CAR_CHECK_STATE(rebuilt != nullptr,
                        "FileSystem::repair: rebuilt chunk missing on "
                        "replacement");
        cluster_.store_chunk(host, out.stripe, out.chunk_index, *rebuilt);
      }
      placement_.set_host(out.stripe, out.chunk_index, host);
    }
  }

  failed_.clear();
  return report;
}

std::size_t FileSystem::total_chunks() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, meta] : files_) {
    total += meta.stripes.size() * (config_.k + config_.m);
  }
  return total;
}

}  // namespace car::cfs
