// Specialised GF(2^8) arithmetic with a full 256x256 multiplication table.
//
// This is the field the Reed–Solomon codec runs on.  A process-wide singleton
// owns the (64 KiB mul + 64 KiB div + log/exp) tables; element ops are
// branch-free table lookups, and region ops (gf/region.h) reuse the mul-table
// rows as per-coefficient lookup tables.
#pragma once

#include <cstdint>

namespace car::gf {

class Gf256 {
 public:
  static constexpr unsigned kWidth = 8;
  static constexpr std::uint32_t kFieldSize = 256;
  static constexpr std::uint32_t kOrder = 255;
  static constexpr std::uint32_t kPolynomial = 0x11D;

  /// Process-wide instance (tables built once, thread-safe).
  static const Gf256& instance();

  [[nodiscard]] static std::uint8_t add(std::uint8_t a,
                                        std::uint8_t b) noexcept {
    return a ^ b;
  }

  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const noexcept {
    return mul_[a][b];
  }

  /// a / b; throws std::domain_error when b == 0.
  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const;

  /// Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const;

  /// a^e for integer exponent e >= 0.
  [[nodiscard]] std::uint8_t pow(std::uint8_t a, std::uint64_t e) const noexcept;

  /// alpha^i (alpha = 2, the field generator).
  [[nodiscard]] std::uint8_t exp(std::uint32_t i) const noexcept {
    return exp_[i % kOrder];
  }

  /// Discrete log; throws std::domain_error on zero.
  [[nodiscard]] std::uint8_t log(std::uint8_t a) const;

  /// 256-byte row of the multiplication table for coefficient c:
  /// row[x] == c * x.  Region kernels use this as their lookup table.
  [[nodiscard]] const std::uint8_t* mul_row(std::uint8_t c) const noexcept {
    return mul_[c];
  }

  Gf256(const Gf256&) = delete;
  Gf256& operator=(const Gf256&) = delete;

 private:
  Gf256();

  std::uint8_t mul_[256][256];
  std::uint8_t inv_[256];
  std::uint8_t exp_[510];
  std::uint8_t log_[256];
};

}  // namespace car::gf
