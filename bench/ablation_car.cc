// Ablation study: how much does each CAR technique contribute?
//
// Not a paper figure — it quantifies the design claims of §IV by switching
// CAR's three techniques on one at a time:
//   RR                 : random k survivors, no aggregation (baseline)
//   MIN-RACK           : Theorem-1 rack selection, but chunks shipped raw
//   +AGGREGATION       : minimum racks + partial decoding (CAR w/o balancing)
//   +BALANCING (CAR)   : full CAR with Algorithm 2
//   OPTIMAL (small s)  : exhaustive branch-and-bound lambda, the ground
//                        truth the greedy pass approximates
#include <cstdio>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr int kRuns = 30;

}  // namespace

int main() {
  using namespace car;
  std::printf("== Ablation: contribution of each CAR technique ==\n");
  std::printf("%zu stripes, %d runs; traffic in chunk units\n\n", kStripes,
              kRuns);

  for (const auto& cfg : cluster::paper_configs()) {
    util::RunningStats rr_traffic_stat, minrack_traffic, car_traffic_stat;
    util::RunningStats rr_lambda, unbalanced_lambda, car_lambda;

    for (int run = 0; run < kRuns; ++run) {
      util::Rng rng(0xAB1A7E00ULL + run * 389);
      const auto placement = cluster::Placement::random(
          cfg.topology(), cfg.k, cfg.m, kStripes, rng);
      const auto scenario = cluster::inject_random_failure(placement, rng);
      const auto censuses = recovery::build_censuses(placement, scenario);
      const auto racks = placement.topology().num_racks();

      // RR.
      const auto rr = recovery::plan_rr(placement, censuses, rng);
      const auto rr_sum =
          recovery::rr_traffic(placement, rr, scenario.failed_rack);
      rr_traffic_stat.add(static_cast<double>(rr_sum.total_chunks()));
      rr_lambda.add(rr_sum.lambda());

      // MIN-RACK without aggregation: same rack choices as CAR's default,
      // but every picked chunk in an intact rack crosses the core raw.
      const auto initial = recovery::plan_car_initial(placement, censuses);
      std::size_t raw_cross = 0;
      for (const auto& solution : initial) {
        for (const auto& pick : solution.picks) {
          if (pick.rack != scenario.failed_rack) {
            raw_cross += pick.chunk_indices.size();
          }
        }
      }
      minrack_traffic.add(static_cast<double>(raw_cross));

      // +AGGREGATION (CAR without balancing).
      const auto unbalanced_sum =
          recovery::car_traffic(initial, racks, scenario.failed_rack);
      unbalanced_lambda.add(unbalanced_sum.lambda());

      // +BALANCING (full CAR).
      const auto balanced = recovery::balance_greedy(placement, censuses, {50});
      const auto car_sum = recovery::car_traffic(balanced.solutions, racks,
                                                 scenario.failed_rack);
      car_traffic_stat.add(static_cast<double>(car_sum.total_chunks()));
      car_lambda.add(car_sum.lambda());
    }

    util::TextTable table({"variant", "cross-rack chunks", "lambda"});
    table.add_row({"RR (baseline)",
                   util::fmt_double(rr_traffic_stat.mean(), 1),
                   util::fmt_double(rr_lambda.mean(), 3)});
    table.add_row({"MIN-RACK (no aggregation)",
                   util::fmt_double(minrack_traffic.mean(), 1), "-"});
    table.add_row({"+AGGREGATION (unbalanced CAR)",
                   util::fmt_double(car_traffic_stat.mean(), 1),
                   util::fmt_double(unbalanced_lambda.mean(), 3)});
    table.add_row({"+BALANCING (full CAR)",
                   util::fmt_double(car_traffic_stat.mean(), 1),
                   util::fmt_double(car_lambda.mean(), 3)});
    std::printf("-- %s, RS(%zu,%zu) --\n%s\n", cfg.name.c_str(), cfg.k, cfg.m,
                table.to_string().c_str());
  }

  // Greedy vs exhaustive-optimal lambda on small instances (CFS1, s = 8).
  std::printf("-- Greedy vs exhaustive-optimal lambda (CFS1, s = 8) --\n");
  util::TextTable opt({"seed", "greedy lambda", "optimal lambda"});
  const auto cfg = cluster::cfs1();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    const auto placement =
        cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 8, rng);
    const auto scenario = cluster::inject_random_failure(placement, rng);
    const auto censuses = recovery::build_censuses(placement, scenario);
    const auto greedy = recovery::balance_greedy(placement, censuses, {200});
    const auto exact = recovery::balance_exhaustive(censuses, 5'000'000);
    const auto summary = recovery::car_traffic(
        greedy.solutions, placement.topology().num_racks(),
        scenario.failed_rack);
    opt.add_row({std::to_string(seed),
                 util::fmt_double(summary.lambda(), 3),
                 exact ? util::fmt_double(exact->lambda, 3)
                       : std::string("(aborted)")});
  }
  std::printf("%s", opt.to_string().c_str());
  std::printf("\nAggregation, not rack selection alone, delivers the big "
              "traffic cut; balancing\nleaves total traffic untouched and "
              "only reshapes its distribution (lambda -> 1).\n");
  return 0;
}
