// Exposure census: per-stripe risk classification under rolling failures.
//
// The rebuild control plane (src/rebuild) schedules repairs by *exposure*:
// a stripe that has already lost m chunks is one failure away from data
// loss and must be rebuilt before a freshly degraded stripe that still has
// parity headroom (the Facebook warehouse-cluster study's prioritization,
// see PAPERS.md).  build_exposure_census scans the placement against the
// current failed-node set and classifies every affected stripe:
//
//   * exposed_chunks — chunks with no live replica anywhere (drives the
//     priority tier and the exposure-time metrics);
//   * plan_chunks    — chunks a re-plan must rebuild.  A chunk that was
//     already re-created on the replacement counts as *safe* (not exposed),
//     but unless its placement host IS the replacement the planner cannot
//     see the replica, so it stays in plan_chunks and is simply recomputed
//     — the same recompute-identical-bytes policy the crash-escalation
//     runtime uses (inject/runtime.cc).
//
// The census is a pure function of (placement, failed set, recovered set):
// no cluster state is read, so the control plane can re-scan on every
// membership change without touching payload bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"

namespace car::recovery {

/// Chunks whose bytes have been re-created on the replacement node, keyed
/// by (stripe, chunk index).  Maintained by the rebuild coordinator as
/// batches publish outputs.
class RecoveredSet {
 public:
  void mark(cluster::StripeId stripe, std::size_t chunk_index);
  [[nodiscard]] bool contains(cluster::StripeId stripe,
                              std::size_t chunk_index) const;
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

 private:
  std::unordered_set<std::uint64_t> keys_;
};

/// One affected stripe's risk state.
struct StripeExposure {
  cluster::StripeId stripe = 0;
  /// Chunk indices with no live replica (ascending).  empty() means the
  /// stripe is fully protected again (every lost chunk has a replacement
  /// replica) and needs no further work.
  std::vector<std::size_t> exposed_chunks;
  /// Chunk indices a re-plan must rebuild (ascending; superset of
  /// exposed_chunks — see the header comment).
  std::vector<std::size_t> plan_chunks;
  /// Placement hosts of plan_chunks, sorted ascending and deduplicated —
  /// the failure signature a recovery/multi scenario for this stripe needs.
  std::vector<cluster::NodeId> plan_hosts;
  /// Parity losses the stripe can still absorb: m - |exposed_chunks|.
  /// 0 = most exposed (one more failure loses data).
  std::size_t tolerance_left = 0;
  /// Theorem-1 lower bound on contributing racks for the re-plan, so the
  /// queue can tie-break by estimated cross-rack cost without planning.
  std::size_t min_racks = 0;

  /// Estimated cross-rack chunks shipped under CAR partial decoding: one
  /// partial per contributing rack per rebuilt chunk.
  [[nodiscard]] std::size_t cross_rack_cost() const noexcept {
    return min_racks * plan_chunks.size();
  }
};

/// Scan the placement against `failed_nodes` (the cumulative failed set;
/// the first entry's role as replacement is expressed via `replacement`)
/// and classify every stripe that still needs work.  Stripes whose plan set
/// is empty are omitted.  Throws util::CheckError when a stripe's exposed
/// count exceeds m (data loss — unrecoverable) or when a stripe's plan set
/// exceeds m (the planner cannot express reading a recovered replica from
/// the replacement for a chunk hosted elsewhere; see header comment).
///
/// `shards` > 1 splits the scan across that many worker threads over
/// contiguous stripe ranges; per-range outputs are concatenated in range
/// order, so the result is bit-identical to the serial scan for every
/// shard count.
std::vector<StripeExposure> build_exposure_census(
    const cluster::Placement& placement,
    const std::vector<cluster::NodeId>& failed_nodes,
    cluster::NodeId replacement, const RecoveredSet& recovered,
    std::size_t shards = 1);

}  // namespace car::recovery
