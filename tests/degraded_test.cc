#include "recovery/degraded.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "emul/cluster.h"

namespace car::recovery {
namespace {

using cluster::Placement;

Placement make_placement(const cluster::CfsConfig& cfg, std::size_t stripes,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  return Placement::random(cfg.topology(), cfg.k, cfg.m, stripes, rng);
}

TEST(DegradedRead, CensusAnchorsAtTheReaderRack) {
  const auto cfg = cluster::cfs1();
  const auto p = make_placement(cfg, 10, 1);
  const DegradedReadRequest request{3, 2, /*reader=*/9};
  const auto census = build_degraded_census(p, request);
  EXPECT_EQ(census.reader_rack, p.topology().rack_of(9));
  EXPECT_EQ(census.k, cfg.k);
  std::size_t total = 0;
  for (auto c : census.surviving) total += c;
  EXPECT_EQ(total, cfg.k + cfg.m - 1);  // all chunks except the read one
  EXPECT_THROW(build_degraded_census(p, {0, 99, 0}), std::invalid_argument);
}

class DegradedReadSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(DegradedReadSweep, CarReadNeverShipsMoreCrossRackBytesThanDirect) {
  const auto cfg = cluster::paper_configs()[std::get<0>(GetParam())];
  const auto p = make_placement(cfg, 20, std::get<1>(GetParam()));
  const rs::Code code(cfg.k, cfg.m);
  util::Rng rng(std::get<1>(GetParam()) + 7);
  constexpr std::uint64_t kChunk = 4096;

  for (cluster::StripeId s = 0; s < p.num_stripes(); s += 4) {
    const DegradedReadRequest request{
        s, static_cast<std::size_t>(rng.next_below(cfg.k + cfg.m)),
        static_cast<cluster::NodeId>(
            rng.next_below(p.topology().num_nodes()))};
    const auto car = plan_degraded_read_car(p, code, request, kChunk);
    const auto direct =
        plan_degraded_read_direct(p, code, request, kChunk, rng);
    EXPECT_LE(car.cross_rack_bytes(), direct.cross_rack_bytes())
        << "stripe " << s;
    ASSERT_EQ(car.outputs.size(), 1u);
    ASSERT_EQ(direct.outputs.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, DegradedReadSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(21u, 22u)));

TEST(DegradedRead, EmulatedReadDeliversTheExactChunkToTheReader) {
  const auto cfg = cluster::cfs2();
  const auto p = make_placement(cfg, 6, 31);
  const rs::Code code(cfg.k, cfg.m);
  constexpr std::uint64_t kChunk = 16 * 1024;

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 400e6;
  emul::Cluster cluster(cfg.topology(), emul_cfg);
  util::Rng data_rng(32);
  const auto originals = cluster.populate(p, code, kChunk, data_rng);

  util::Rng rng(33);
  for (cluster::StripeId s = 0; s < p.num_stripes(); ++s) {
    const std::size_t chunk = rng.next_below(cfg.k + cfg.m);
    // Reader is any node that does not host the chunk.
    cluster::NodeId reader = p.node_of(s, chunk);
    while (reader == p.node_of(s, chunk)) {
      reader = rng.next_below(p.topology().num_nodes());
    }
    const DegradedReadRequest request{s, chunk, reader};

    // The chunk's host is "unavailable": run the CAR degraded read and check
    // the reader ends up with the exact bytes.
    const auto plan = plan_degraded_read_car(p, code, request, kChunk);
    cluster.execute(plan);
    const auto* got = cluster.find_step_output(reader,
                                               plan.outputs[0].step_id);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, originals[s][chunk]) << "stripe " << s;
  }
}

TEST(DegradedRead, DirectReadAlsoReconstructsCorrectly) {
  const auto cfg = cluster::cfs1();
  const auto p = make_placement(cfg, 4, 41);
  const rs::Code code(cfg.k, cfg.m);
  constexpr std::uint64_t kChunk = 8 * 1024;

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 400e6;
  emul::Cluster cluster(cfg.topology(), emul_cfg);
  util::Rng data_rng(42);
  const auto originals = cluster.populate(p, code, kChunk, data_rng);

  util::Rng rng(43);
  const DegradedReadRequest request{1, 0, /*reader=*/8};
  const auto plan = plan_degraded_read_direct(p, code, request, kChunk, rng);
  cluster.execute(plan);
  const auto* got = cluster.find_step_output(8, plan.outputs[0].step_id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, originals[1][0]);
}

TEST(DegradedRead, ReaderInTheHostRackExploitsLocalSurvivors) {
  // Hand-built layout: reader shares a rack with several survivors, so the
  // CAR read should pull mostly local chunks and only ship partials from
  // the minimum number of remote racks.
  cluster::Placement p(cluster::Topology({3, 3, 3}), 4, 3);
  p.add_stripe({0, 1, 2, 3, 4, 5, 6});  // A1: 3 chunks, A2: 3, A3: 1
  const rs::Code code(4, 3);
  const DegradedReadRequest request{0, 0, /*reader=*/1};  // both in A1
  const auto plan = plan_degraded_read_car(p, code, request, 1024);
  // A1 offers 2 surviving chunks (1 and 2); k=4 needs 2 more, A2 has 3 ->
  // one remote rack, one partial chunk across racks.
  EXPECT_EQ(plan.cross_rack_bytes(), 1024u);
}

TEST(DegradedRead, ZeroChunkSizeRejected) {
  const auto cfg = cluster::cfs1();
  const auto p = make_placement(cfg, 2, 51);
  const rs::Code code(cfg.k, cfg.m);
  util::Rng rng(52);
  EXPECT_THROW(plan_degraded_read_car(p, code, {0, 0, 1}, 0),
               std::invalid_argument);
  EXPECT_THROW(plan_degraded_read_direct(p, code, {0, 0, 1}, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace car::recovery
