// Cross-backend consistency properties: the same RecoveryPlan flows through
// the counting, simulation, and emulation back-ends, so their outputs must
// obey tight mutual invariants on *randomized* scenarios — a property-test
// net over the whole stack.
#include <gtest/gtest.h>

#include "cluster/configs.h"
#include "emul/cluster.h"
#include "recovery/balancer.h"
#include "simnet/flowsim.h"

namespace car {
namespace {

struct Scenario {
  cluster::CfsConfig cfg;
  cluster::Placement placement;
  rs::Code code;
  cluster::FailureScenario failure;
  std::vector<recovery::StripeCensus> censuses;

  Scenario(int cfg_index, std::uint64_t seed, std::size_t stripes)
      : cfg(cluster::paper_configs()[cfg_index]),
        placement(make(cfg, stripes, seed)),
        code(cfg.k, cfg.m) {
    util::Rng rng(seed + 1);
    failure = cluster::inject_random_failure(placement, rng);
    censuses = recovery::build_censuses(placement, failure);
  }

  static cluster::Placement make(const cluster::CfsConfig& cfg,
                                 std::size_t stripes, std::uint64_t seed) {
    util::Rng rng(seed);
    return cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, stripes,
                                      rng);
  }
};

class CrossBackend
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CrossBackend, SimulatedMakespanRespectsBandwidthLowerBounds) {
  Scenario s(std::get<0>(GetParam()), std::get<1>(GetParam()), 40);
  constexpr std::uint64_t kChunk = 8ull << 20;
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses,
                                                 {50});
  const auto plan = recovery::build_car_plan(
      s.placement, s.code, balanced.solutions, kChunk, s.failure.failed_node);

  simnet::NetConfig net;
  const auto sim = simulate_plan(s.placement.topology(), plan, net);

  // Lower bound 1: every byte destined for the replacement crosses its
  // node downlink.
  std::uint64_t into_replacement = 0;
  for (const auto& step : plan.steps) {
    if (step.kind == recovery::StepKind::kTransfer &&
        step.dst == s.failure.failed_node) {
      into_replacement += step.bytes;
    }
  }
  const double bound1 =
      static_cast<double>(into_replacement) / net.node_bps;
  EXPECT_GE(sim.makespan_s, bound1 * (1.0 - 1e-9));

  // Lower bound 2: cross-rack bytes into the replacement rack drain through
  // its rack downlink.
  const double rack_down_bps =
      static_cast<double>(s.placement.topology().nodes_in_rack_count(
          s.failure.failed_rack)) *
      net.node_bps / net.oversubscription;
  std::uint64_t into_rack = 0;
  for (const auto& step : plan.steps) {
    if (step.kind == recovery::StepKind::kTransfer && step.cross_rack &&
        s.placement.topology().rack_of(step.dst) == s.failure.failed_rack) {
      into_rack += step.bytes;
    }
  }
  EXPECT_GE(sim.makespan_s,
            static_cast<double>(into_rack) / rack_down_bps * (1.0 - 1e-9));

  // Upper bound sanity: fully serial execution of all work on the slowest
  // link can't be beaten by more than numerical noise... but it must at
  // least finish: all steps have finish times.
  for (const auto& t : sim.finish_time_s) EXPECT_GE(t, 0.0);
  EXPECT_GE(sim.makespan_s, sim.last_transfer_s - 1e-12);
}

TEST_P(CrossBackend, CountingSimulationAndEmulationAgreeOnBytes) {
  Scenario s(std::get<0>(GetParam()), std::get<1>(GetParam()), 10);
  constexpr std::uint64_t kChunk = 16 * 1024;
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses,
                                                 {50});
  const auto plan = recovery::build_car_plan(
      s.placement, s.code, balanced.solutions, kChunk, s.failure.failed_node);

  // Counting back-end.
  const auto summary = recovery::car_traffic(
      balanced.solutions, s.placement.topology().num_racks(),
      s.failure.failed_rack);
  ASSERT_EQ(plan.cross_rack_bytes(), summary.total_bytes(kChunk));

  // Emulation back-end moves exactly the plan's bytes.
  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 500e6;
  emul::Cluster cluster(s.cfg.topology(), emul_cfg);
  util::Rng data_rng(std::get<1>(GetParam()) + 9);
  cluster.populate(s.placement, s.code, kChunk, data_rng);
  cluster.erase_node(s.failure.failed_node);
  const auto report = cluster.execute(plan);
  EXPECT_EQ(report.cross_rack_bytes, plan.cross_rack_bytes());
  EXPECT_EQ(report.intra_rack_bytes, plan.intra_rack_bytes());
  EXPECT_EQ(report.per_rack_cross_bytes,
            plan.per_rack_cross_bytes(s.placement.topology()));
}

TEST_P(CrossBackend, EmulatedRecoveryMatchesCodecGroundTruth) {
  Scenario s(std::get<0>(GetParam()), std::get<1>(GetParam()), 6);
  constexpr std::uint64_t kChunk = 8 * 1024;

  emul::EmulConfig emul_cfg;
  emul_cfg.node_bps = 500e6;
  emul::Cluster cluster(s.cfg.topology(), emul_cfg);
  util::Rng data_rng(std::get<1>(GetParam()) + 5);
  const auto originals = cluster.populate(s.placement, s.code, kChunk,
                                          data_rng);
  cluster.erase_node(s.failure.failed_node);

  const auto balanced = recovery::balance_greedy(s.placement, s.censuses,
                                                 {50});
  const auto plan = recovery::build_car_plan(
      s.placement, s.code, balanced.solutions, kChunk, s.failure.failed_node);
  cluster.execute(plan);

  // Ground truth via the codec directly, using each solution's survivors.
  for (const auto& solution : balanced.solutions) {
    const auto survivors = solution.all_chunk_indices();
    std::vector<rs::ChunkView> views;
    for (std::size_t c : survivors) {
      views.push_back(originals[solution.stripe][c]);
    }
    const auto expected =
        s.code.reconstruct(solution.lost_chunk, survivors, views);
    const auto* emulated = cluster.find_chunk(
        s.failure.failed_node, solution.stripe, solution.lost_chunk);
    ASSERT_NE(emulated, nullptr);
    EXPECT_EQ(*emulated, expected);
    EXPECT_EQ(expected, originals[solution.stripe][solution.lost_chunk]);
  }
}

TEST_P(CrossBackend, BackgroundLoadSlowsRecoveryProportionally) {
  Scenario s(std::get<0>(GetParam()), std::get<1>(GetParam()), 30);
  constexpr std::uint64_t kChunk = 4ull << 20;
  const auto balanced = recovery::balance_greedy(s.placement, s.censuses,
                                                 {50});
  const auto plan = recovery::build_car_plan(
      s.placement, s.code, balanced.solutions, kChunk, s.failure.failed_node);

  simnet::NetConfig idle;
  simnet::NetConfig busy;
  busy.background_load = 0.5;
  const auto t_idle =
      simnet::simulate_plan(s.placement.topology(), plan, idle);
  const auto t_busy =
      simnet::simulate_plan(s.placement.topology(), plan, busy);
  // Network-bound plan on a half-capacity fabric: ~2x slower (compute is a
  // small constant, so allow slack).
  EXPECT_GT(t_busy.makespan_s, 1.6 * t_idle.makespan_s);
  EXPECT_LT(t_busy.makespan_s, 2.4 * t_idle.makespan_s);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigsAndSeeds, CrossBackend,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(13u, 29u)));

}  // namespace
}  // namespace car
