// Rebuild control-plane tests: the exposure census, the prioritized queue,
// the rolling-failure spec grammar, coordinator input validation, and the
// end-to-end canned scenarios — including the priority-inversion
// regression (a second failure that exhausts a queued stripe's tolerance
// must be dispatched before any fresh-degraded work) and shard-count
// invariance of the event log.
#include "rebuild/scenario.h"

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/failure.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "emul/cluster.h"
#include "inject/event_log.h"
#include "inject/fault.h"
#include "inject/runtime.h"
#include "inject/scenario.h"
#include "rebuild/coordinator.h"
#include "rebuild/driver.h"
#include "rebuild/queue.h"
#include "recovery/balancer.h"
#include "recovery/census.h"
#include "recovery/exposure.h"
#include "recovery/plan.h"
#include "rs/code.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace car::rebuild {
namespace {

using inject::EventKind;

recovery::StripeExposure entry(cluster::StripeId stripe,
                               std::size_t tolerance,
                               std::size_t min_racks,
                               std::vector<std::size_t> plan_chunks,
                               std::vector<cluster::NodeId> plan_hosts) {
  recovery::StripeExposure e;
  e.stripe = stripe;
  e.tolerance_left = tolerance;
  e.min_racks = min_racks;
  e.plan_chunks = std::move(plan_chunks);
  e.plan_hosts = std::move(plan_hosts);
  e.exposed_chunks = e.plan_chunks;
  return e;
}

TEST(RebuildQueue, OrdersByTierThenCostThenStripe) {
  RebuildQueue queue;
  queue.reset({
      entry(7, 1, 2, {0}, {3}),       // tier 1
      entry(2, 0, 3, {0, 1}, {3}),    // tier 0, cost 6
      entry(9, 0, 2, {0, 1}, {3}),    // tier 0, cost 4 — first
      entry(4, 1, 1, {0}, {3}),       // tier 1, cheapest of its tier
  });
  ASSERT_EQ(queue.size(), 4u);
  const auto batch = queue.pop_batch(10);
  ASSERT_EQ(batch.size(), 4u);  // same signature, one batch
  EXPECT_EQ(batch[0].stripe, 9u);
  EXPECT_EQ(batch[1].stripe, 2u);
  EXPECT_EQ(batch[2].stripe, 4u);
  EXPECT_EQ(batch[3].stripe, 7u);
  EXPECT_TRUE(queue.empty());
}

TEST(RebuildQueue, BatchesShareOneFailureSignature) {
  RebuildQueue queue;
  queue.reset({
      entry(1, 0, 2, {0}, {3, 8}),
      entry(2, 0, 2, {0}, {3}),
      entry(3, 1, 2, {0}, {3, 8}),
      entry(4, 1, 2, {0}, {3}),
  });
  // Head is stripe 1 (signature {3,8}); only stripe 3 shares it.
  const auto first = queue.pop_batch(10);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].stripe, 1u);
  EXPECT_EQ(first[1].stripe, 3u);
  // The skipped signature kept its priority order.
  const auto second = queue.pop_batch(10);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].stripe, 2u);
  EXPECT_EQ(second[1].stripe, 4u);
  EXPECT_TRUE(queue.empty());
}

TEST(RebuildQueue, PopBatchHonoursMaxStripes) {
  RebuildQueue queue;
  queue.reset({
      entry(1, 0, 2, {0}, {3}),
      entry(2, 0, 2, {0}, {3}),
      entry(3, 0, 2, {0}, {3}),
  });
  EXPECT_EQ(queue.pop_batch(2).size(), 2u);
  EXPECT_EQ(queue.pop_batch(2).size(), 1u);
  EXPECT_TRUE(queue.pop_batch(2).empty());
}

TEST(ExposureCensus, ClassifiesAffectedStripesAgainstFailedSet) {
  const cluster::Topology topology({3, 3, 3});
  util::Rng rng(5);
  const auto placement =
      cluster::Placement::random(topology, 3, 2, 10, rng);
  const cluster::NodeId failed = 4;
  recovery::RecoveredSet recovered;
  const auto census =
      recovery::build_exposure_census(placement, {failed}, failed, recovered);
  EXPECT_EQ(census.size(), placement.chunks_on_node(failed).size());
  for (const auto& e : census) {
    ASSERT_EQ(e.plan_chunks.size(), 1u);
    EXPECT_EQ(placement.node_of(e.stripe, e.plan_chunks[0]), failed);
    EXPECT_EQ(e.exposed_chunks, e.plan_chunks);
    EXPECT_EQ(e.tolerance_left, 1u);  // m=2, one chunk exposed
    EXPECT_EQ(e.plan_hosts, std::vector<cluster::NodeId>{failed});
    EXPECT_GE(e.min_racks, 1u);
  }
}

TEST(ExposureCensus, RecoveredChunkOnReplacementLeavesThePlanSet) {
  const cluster::Topology topology({3, 3, 3});
  util::Rng rng(5);
  const auto placement =
      cluster::Placement::random(topology, 3, 2, 10, rng);
  const cluster::NodeId failed = 4;
  recovery::RecoveredSet recovered;
  for (const auto& ref : placement.chunks_on_node(failed)) {
    recovered.mark(ref.stripe, ref.chunk_index);
  }
  // Every lost chunk re-created on its own (replacement) host: no stripe
  // needs work any more.
  const auto census =
      recovery::build_exposure_census(placement, {failed}, failed, recovered);
  EXPECT_TRUE(census.empty());
}

TEST(ParseScenario, RollingCrashLinesAccumulateInOrder) {
  const auto scenario = inject::parse_scenario(R"(name rolling
racks 2,2,2
k 3
m 2
stripes 6
crash node=1 at=0
crash node=4 at=0.5
batch-stripes 3
concurrency 4
)");
  ASSERT_EQ(scenario.faults.node_crashes.size(), 2u);
  EXPECT_EQ(scenario.faults.node_crashes[0].node, 1u);
  EXPECT_DOUBLE_EQ(*scenario.faults.node_crashes[0].at_time_s, 0.0);
  EXPECT_EQ(scenario.faults.node_crashes[1].node, 4u);
  EXPECT_DOUBLE_EQ(*scenario.faults.node_crashes[1].at_time_s, 0.5);
  EXPECT_EQ(scenario.rebuild_batch_stripes, 3u);
  EXPECT_EQ(scenario.rebuild_concurrency, 4u);
}

TEST(ParseScenario, DuplicateCrashNodeNamesTheOffendingLine) {
  try {
    inject::parse_scenario("crash node=3 at=0\ncrash node=3 at=1\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate crash for node 3"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("crash node=3 at=1"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParseScenario, OutOfOrderCrashTimesRejected) {
  try {
    inject::parse_scenario("crash node=3 at=1\ncrash node=4 at=0.5\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-decreasing"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("crash node=4 at=0.5"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParseScenario, FailNodeConflictingWithCrashRejected) {
  EXPECT_THROW(
      inject::parse_scenario("crash node=3 at=1\nfail-node 3\n"),
      std::invalid_argument);
  EXPECT_THROW(
      inject::parse_scenario("fail-node 3\ncrash node=3 at=1\n"),
      std::invalid_argument);
}

TEST(Coordinator, RejectsMalformedFailureSchedules) {
  const cluster::Topology topology({3, 3, 3});
  const rs::Code code(3, 2);
  util::Rng rng(1);
  const auto placement = cluster::Placement::random(topology, 3, 2, 4, rng);
  emul::EmulConfig config;
  config.clock_mode = emul::ClockMode::kVirtual;

  const auto run_events = [&](std::vector<FailureEvent> events,
                              RebuildOptions options = {}) {
    emul::Cluster cluster(topology, config);
    options.data.metadata_only = true;  // no payload needed to hit the checks
    RebuildCoordinator coordinator(cluster, placement, code, options);
    coordinator.run(events);
  };

  EXPECT_THROW(run_events({}), util::CheckError);
  EXPECT_THROW(run_events({{99, 0.0}}), util::CheckError);
  EXPECT_THROW(run_events({{1, 1.0}, {4, 0.5}}), util::CheckError);
  // A node cannot fail twice — which also covers a later failure aimed at
  // the guarded replacement.
  EXPECT_THROW(run_events({{1, 0.0}, {1, 0.5}}), util::CheckError);
  RebuildOptions with_crash;
  with_crash.faults.node_crashes.push_back({2, std::nullopt, 0.1});
  EXPECT_THROW(run_events({{1, 0.0}}, with_crash), util::CheckError);
}

// Regression for the calendar-queue rewindow gap, at the control-plane
// level: batch 0's dense work drains, a dropped transfer leaves one lone
// retry far in the future, run_until's deadline check peeks the queue
// (rewindowing the rung onto the retry), and the coordinator-style admit()
// then seeds batch 1 at the paused `now` — BELOW the rewindowed rung
// start.  Those seeds must execute at ~now, not after the retry; before
// the bucket_index fix they were misrouted to the overflow rung and the
// driver's monotone clamp silently stamped batch 1's whole timeline at the
// retry's far-future time.
TEST(BatchDriver, AdmitAfterDeadlinePauseExecutesBeforeFarFutureRetry) {
  constexpr std::uint64_t kChunk = 8 * 1024;
  const cluster::Topology topology({4, 3, 3});
  const rs::Code code(4, 2);
  emul::EmulConfig config;
  config.node_bps = 100e6;
  config.oversubscription = 5.0;
  config.page_bytes = 4 * 1024;
  config.clock_mode = emul::ClockMode::kVirtual;
  emul::Cluster cluster(topology, config);
  util::Rng rng(7);
  const auto placement =
      cluster::Placement::random(topology, code.k(), code.m(), 8, rng);
  const auto originals = cluster.populate(placement, code, kChunk, rng);
  const cluster::NodeId failed = 2;
  const auto failure = cluster::inject_node_failure(placement, failed);
  cluster.erase_node(failed);
  const auto censuses = recovery::build_censuses(placement, failure);
  const auto balanced = recovery::balance_greedy(placement, censuses, {50});
  ASSERT_GE(balanced.solutions.size(), 2u);
  // Two batches over disjoint stripe subsets of the same failure: all but
  // one stripe in batch 0, the last stripe in batch 1.
  const std::span<const recovery::PerStripeSolution> all(balanced.solutions);
  const auto plan_a = recovery::build_car_plan(
      placement, code, all.subspan(0, all.size() - 1), kChunk, failed);
  const auto plan_b = recovery::build_car_plan(
      placement, code, all.subspan(all.size() - 1), kChunk, failed);

  // Drop the first attempt of one real transfer of batch 0, with a huge
  // deterministic backoff: the retry is the lone far-future event.  The
  // fault matches by plan-step id and both plans use dense ids from 0, so
  // pick an id batch 1's (smaller) plan does not have — the fault must not
  // also fire inside batch 1.
  ASSERT_GT(plan_a.steps.size(), plan_b.steps.size());
  inject::FaultPlan faults;
  inject::TransferFault drop;
  drop.kind = inject::TransferFault::Kind::kDrop;
  drop.attempts = {1};
  for (const auto& step : plan_a.steps) {
    if (step.id >= plan_b.steps.size() &&
        step.kind == recovery::StepKind::kTransfer && step.src != step.dst) {
      drop.step = step.id;
      break;
    }
  }
  ASSERT_TRUE(drop.step.has_value());
  faults.transfer_faults.push_back(drop);
  inject::RetryPolicy policy;
  constexpr double kRetryDelay = 5e5;
  policy.backoff = util::BackoffSchedule(kRetryDelay, 1.0, kRetryDelay, 0.0);

  inject::EventLog log;
  BatchDriver driver(cluster, faults, policy, 7, 0, {}, log);
  driver.admit(0, plan_a);
  const auto paused = driver.run_until(100.0);
  ASSERT_EQ(paused.stop, StopReason::kDeadline);
  ASSERT_LT(driver.now(), 100.0);
  driver.admit(1, plan_b);
  std::vector<std::size_t> finished;
  for (;;) {
    const auto outcome = driver.run_until(std::nullopt);
    if (outcome.stop == StopReason::kIdle) break;
    ASSERT_EQ(outcome.stop, StopReason::kBatchDone);
    finished.insert(finished.end(), outcome.finished.begin(),
                    outcome.finished.end());
  }
  EXPECT_EQ(finished, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(log.count(EventKind::kRetryScheduled), 1u);

  // Batch 1 was admitted at the pause (~1s): every one of its events must
  // land well before the retry fires at ~kRetryDelay.
  for (const auto& event : log.events()) {
    if (event.detail.find(", batch 1") == std::string::npos) continue;
    EXPECT_LT(event.t, 1000.0) << inject::to_string(event.kind) << " "
                               << event.detail;
  }
  // And both halves recover bit-exact despite the interleaving.
  for (const auto* plan : {&plan_a, &plan_b}) {
    for (const auto& out : plan->outputs) {
      const rs::Chunk* rec =
          cluster.find_chunk(failed, out.stripe, out.chunk_index);
      ASSERT_NE(rec, nullptr) << "stripe " << out.stripe;
      EXPECT_EQ(*rec, originals[out.stripe][out.chunk_index])
          << "stripe " << out.stripe << " chunk " << out.chunk_index;
    }
  }
}

TEST(RebuildScenario, RollingTwoRackRecoversBitExact) {
  const auto outcome =
      run_rebuild_scenario(canned_rebuild_scenario("rolling-two-rack"));
  EXPECT_TRUE(outcome.bit_exact);
  EXPECT_GT(outcome.chunks_expected, 0u);
  EXPECT_EQ(outcome.chunks_verified, outcome.chunks_expected);
  EXPECT_EQ(outcome.result.failed_nodes,
            (std::vector<cluster::NodeId>{1, 5}));
  EXPECT_EQ(outcome.result.replacement, 1u);
  EXPECT_EQ(outcome.result.metrics.scans, 2u);
  EXPECT_GT(outcome.result.metrics.batches_dispatched, 0u);
  EXPECT_GT(outcome.result.metrics.makespan_s, 0.0);
  EXPECT_GT(outcome.result.metrics.total_exposure_s, 0.0);
  EXPECT_EQ(outcome.result.log.count(EventKind::kMembershipChange), 2u);
  EXPECT_EQ(outcome.result.log.count(EventKind::kScanComplete), 2u);
}

// The priority-inversion regression: the second failure lands mid-rebuild,
// some stripes lose a second chunk (tolerance exhausted — tier 0), and the
// re-scan must dispatch every tier-0 batch before any fresh-degraded
// (tier 1) batch.
TEST(RebuildScenario, SecondFailurePreemptsFreshDegradedWork) {
  const auto outcome =
      run_rebuild_scenario(canned_rebuild_scenario("rolling-two-rack"));
  // The mid-rebuild failure must actually cancel in-flight work.
  EXPECT_GT(outcome.result.metrics.batches_cancelled, 0u);
  EXPECT_GT(outcome.result.metrics.stripes_requeued, 0u);
  EXPECT_GT(outcome.result.metrics.total_at_risk_s, 0.0);

  // Walk the log: after the second membership change, batch tiers must be
  // non-decreasing and must start at tier 0.
  std::size_t membership_seen = 0;
  std::vector<std::size_t> epoch2_tiers;
  for (const auto& event : outcome.result.log.events()) {
    if (event.kind == EventKind::kMembershipChange) ++membership_seen;
    if (membership_seen < 2 ||
        event.kind != EventKind::kBatchDispatched) {
      continue;
    }
    const auto pos = event.detail.find("tier ");
    ASSERT_NE(pos, std::string::npos) << event.detail;
    epoch2_tiers.push_back(
        static_cast<std::size_t>(event.detail[pos + 5] - '0'));
  }
  ASSERT_GE(epoch2_tiers.size(), 2u);
  EXPECT_EQ(epoch2_tiers.front(), 0u);
  EXPECT_TRUE(std::is_sorted(epoch2_tiers.begin(), epoch2_tiers.end()));
  // Both tiers must be present: most-exposed work preempted queued
  // fresh-degraded work, it did not replace it.
  EXPECT_EQ(epoch2_tiers.back(), 1u);
}

TEST(RebuildScenario, RollingTripleConsumesFullToleranceBitExact) {
  const auto outcome =
      run_rebuild_scenario(canned_rebuild_scenario("rolling-triple"));
  EXPECT_TRUE(outcome.bit_exact);
  EXPECT_GT(outcome.chunks_expected, 0u);
  EXPECT_EQ(outcome.result.failed_nodes,
            (std::vector<cluster::NodeId>{2, 6, 10}));
  EXPECT_EQ(outcome.result.metrics.scans, 3u);
  EXPECT_EQ(outcome.result.log.count(EventKind::kMembershipChange), 3u);
}

TEST(RebuildScenario, EventLogIsInvariantUnderPopulateShardCount) {
  const auto scenario = canned_rebuild_scenario("rolling-two-rack");
  const auto one = run_rebuild_scenario(scenario, 1);
  const auto four = run_rebuild_scenario(scenario, 4);
  EXPECT_TRUE(one.bit_exact);
  EXPECT_TRUE(four.bit_exact);
  EXPECT_EQ(one.result.log.to_json(), four.result.log.to_json());
}

TEST(RebuildScenario, MetadataModeSamplesAndVerifiesAffectedStripes) {
  auto scenario = canned_rebuild_scenario("rolling-two-rack");
  scenario.data_mode = "metadata";
  scenario.sample_stripes = 4;
  const auto outcome = run_rebuild_scenario(scenario);
  EXPECT_TRUE(outcome.bit_exact);
  EXPECT_EQ(outcome.stripes_materialised, 4u);
  EXPECT_GT(outcome.chunks_expected, 0u);
  // Full-byte and metadata runs recover the same chunk set.
  const auto full =
      run_rebuild_scenario(canned_rebuild_scenario("rolling-two-rack"));
  ASSERT_EQ(outcome.result.recovered.size(), full.result.recovered.size());
  for (std::size_t i = 0; i < full.result.recovered.size(); ++i) {
    EXPECT_EQ(outcome.result.recovered[i].stripe,
              full.result.recovered[i].stripe);
    EXPECT_EQ(outcome.result.recovered[i].chunk_index,
              full.result.recovered[i].chunk_index);
  }
}

TEST(RebuildScenario, SameSeedRunsProduceByteIdenticalLogs) {
  for (const auto& name : canned_rebuild_scenario_names()) {
    const auto scenario = canned_rebuild_scenario(name);
    const auto a = run_rebuild_scenario(scenario);
    const auto b = run_rebuild_scenario(scenario);
    EXPECT_EQ(a.result.log.to_json(), b.result.log.to_json()) << name;
  }
}

}  // namespace
}  // namespace car::rebuild
