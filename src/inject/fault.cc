#include "inject/fault.h"

#include <algorithm>
#include <cmath>

#include "emul/cluster.h"
#include "util/check.h"
#include "util/rng.h"

namespace car::inject {

const char* to_string(LinkSide side) noexcept {
  switch (side) {
    case LinkSide::kNodeUp:
      return "node-up";
    case LinkSide::kNodeDown:
      return "node-down";
    case LinkSide::kRackUp:
      return "rack-up";
    case LinkSide::kRackDown:
      return "rack-down";
  }
  return "?";
}

const char* to_string(TransferFault::Kind kind) noexcept {
  return kind == TransferFault::Kind::kDrop ? "drop" : "corrupt";
}

void FaultPlan::validate(const cluster::Topology& topology) const {
  for (const auto& fault : link_faults) {
    const bool node_side =
        fault.side == LinkSide::kNodeUp || fault.side == LinkSide::kNodeDown;
    const std::size_t bound =
        node_side ? topology.num_nodes() : topology.num_racks();
    CAR_CHECK_LT(fault.id, bound, "LinkFault: link id out of range");
    CAR_CHECK(std::isfinite(fault.start_s) && std::isfinite(fault.end_s),
              "LinkFault: window bounds must be finite");
    CAR_CHECK(fault.start_s >= 0.0 && fault.start_s < fault.end_s,
              "LinkFault: requires 0 <= start < end");
    CAR_CHECK(fault.factor >= 0.0, "LinkFault: factor must be >= 0");
  }
  for (const auto& fault : transfer_faults) {
    CAR_CHECK(fault.probability > 0.0 && fault.probability <= 1.0,
              "TransferFault: probability must be in (0, 1]");
    for (const std::size_t attempt : fault.attempts) {
      CAR_CHECK(attempt > 0, "TransferFault: attempts are 1-based");
    }
  }
  for (const auto& crash : node_crashes) {
    CAR_CHECK_LT(crash.node, topology.num_nodes(),
                 "NodeCrash: node id out of range");
    CAR_CHECK(crash.at_fraction.has_value() != crash.at_time_s.has_value(),
              "NodeCrash: exactly one of at_fraction / at_time_s must be "
              "set");
    if (crash.at_fraction) {
      CAR_CHECK(*crash.at_fraction >= 0.0 && *crash.at_fraction <= 1.0,
                "NodeCrash: at_fraction must be in [0, 1]");
    }
    if (crash.at_time_s) {
      CAR_CHECK(std::isfinite(*crash.at_time_s) && *crash.at_time_s >= 0.0,
                "NodeCrash: at_time_s must be finite and non-negative");
    }
  }
}

void arm_link_faults(emul::Cluster& cluster, const FaultPlan& plan,
                     double t0) {
  plan.validate(cluster.topology());
  for (const auto& fault : plan.link_faults) {
    emul::SerialLink* link = nullptr;
    switch (fault.side) {
      case LinkSide::kNodeUp:
        link = &cluster.node_up_link(fault.id);
        break;
      case LinkSide::kNodeDown:
        link = &cluster.node_down_link(fault.id);
        break;
      case LinkSide::kRackUp:
        link = &cluster.rack_up_link(fault.id);
        break;
      case LinkSide::kRackDown:
        link = &cluster.rack_down_link(fault.id);
        break;
    }
    link->add_rate_window(t0 + fault.start_s, t0 + fault.end_s, fault.factor);
  }
}

bool transfer_fault_applies(const TransferFault& fault,
                            std::size_t fault_index, std::size_t step_id,
                            std::size_t attempt, std::uint64_t seed) {
  if (fault.step && *fault.step != step_id) return false;
  if (!fault.attempts.empty() &&
      std::find(fault.attempts.begin(), fault.attempts.end(), attempt) ==
          fault.attempts.end()) {
    return false;
  }
  if (fault.probability >= 1.0) return true;
  // Order-independent determinism: the coin flip is a pure function of
  // (seed, fault, step, attempt), so it does not matter when — or on which
  // thread — the attempt happens to run.
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (fault_index + 1)) ^
                (0xc2b2ae3d27d4eb4fULL * (step_id + 1)) ^
                (0x165667b19e3779f9ULL * (attempt + 1)));
  return rng.next_double() < fault.probability;
}

}  // namespace car::inject
