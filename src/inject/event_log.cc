#include "inject/event_log.h"

#include <array>
#include <cstdio>
#include <utility>

namespace car::inject {

namespace {

constexpr std::array<const char*, 22> kKindNames = {
    "run-start",         "link-fault-armed", "transfer-attempt",
    "transfer-complete", "transfer-timeout", "transfer-drop",
    "transfer-corrupt",  "retry-scheduled",  "compute-complete",
    "node-crash",        "steps-cancelled",  "replan-start",
    "replan-validated",  "resume",           "outputs-published",
    "run-complete",      "membership-change", "scan-complete",
    "batch-dispatched",  "batch-complete",   "batch-cancelled",
    "stripes-requeued",
};

/// Fixed-precision timestamp: virtual times are exact doubles from
/// deterministic arithmetic, and %.9f (nanosecond grain) renders them
/// identically on every run and platform.
std::string format_time(double t) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9f", t);
  return {buf.data()};
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> hex{};
          std::snprintf(hex.data(), hex.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "?";
}

void EventLog::record(double t, EventKind kind, std::int64_t step,
                      std::int64_t attempt, std::int64_t node,
                      std::uint64_t bytes, std::string detail) {
  Event event;
  event.seq = events_.size();
  event.t = t;
  event.kind = kind;
  event.step = step;
  event.attempt = attempt;
  event.node = node;
  event.bytes = bytes;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
}

std::size_t EventLog::count(EventKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

std::string EventLog::to_json() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    out += "  {\"seq\":" + std::to_string(e.seq) + ",\"t\":\"" +
           format_time(e.t) + "\",\"kind\":\"" + to_string(e.kind) +
           "\",\"step\":" + std::to_string(e.step) +
           ",\"attempt\":" + std::to_string(e.attempt) +
           ",\"node\":" + std::to_string(e.node) +
           ",\"bytes\":" + std::to_string(e.bytes) + ",\"detail\":\"" +
           escape(e.detail) + "\"}";
    if (i + 1 < events_.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

std::string EventLog::summary() const {
  std::array<std::size_t, kKindNames.size()> counts{};
  for (const auto& event : events_) {
    ++counts[static_cast<std::size_t>(event.kind)];
  }
  std::string out;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    if (!out.empty()) out += ", ";
    out += std::string(kKindNames[k]) + " x" + std::to_string(counts[k]);
  }
  return out;
}

}  // namespace car::inject
