// Placement-policy ablation: how the chunk layout shapes CAR's advantage.
//
// CAR's cross-rack traffic per stripe equals the number of intact racks it
// must touch (d_j), which is a property of the *placement*:
//   compact — racks filled to the quota m; d_j is smallest, CAR shines;
//   random  — the paper's methodology;
//   spread  — chunks dispersed evenly across racks; d_j is largest, the
//             adversarial case for rack-count minimisation.
// RR's traffic is nearly layout-independent (k chunks, mostly remote), so
// the CAR/RR saving is the placement-sensitive quantity.
#include <cstdio>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kStripes = 100;
constexpr int kRuns = 30;

using PlacementFactory = car::cluster::Placement (*)(
    car::cluster::Topology, std::size_t, std::size_t, std::size_t,
    car::util::Rng&);

}  // namespace

int main() {
  using namespace car;
  std::printf("== Ablation: placement policy vs CAR traffic ==\n");
  std::printf("%zu stripes, %d runs; traffic in chunk units\n\n", kStripes,
              kRuns);

  const std::pair<const char*, PlacementFactory> policies[] = {
      {"compact", &cluster::Placement::compact},
      {"random", &cluster::Placement::random},
      {"spread", &cluster::Placement::spread},
  };

  for (const auto& cfg : cluster::paper_configs()) {
    util::TextTable table({"placement", "CAR x-rack", "RR x-rack", "saving",
                           "avg racks/stripe (d)"});
    for (const auto& [name, factory] : policies) {
      util::RunningStats car_chunks, rr_chunks, racks_per_stripe;
      for (int run = 0; run < kRuns; ++run) {
        util::Rng rng(0x71ACE000ULL + run * 271);
        const auto placement =
            factory(cfg.topology(), cfg.k, cfg.m, kStripes, rng);
        const auto scenario = cluster::inject_random_failure(placement, rng);
        const auto censuses = recovery::build_censuses(placement, scenario);

        const auto rr = recovery::plan_rr(placement, censuses, rng);
        rr_chunks.add(static_cast<double>(
            recovery::rr_traffic(placement, rr, scenario.failed_rack)
                .total_chunks()));

        const auto car = recovery::balance_greedy(placement, censuses, {50});
        const auto summary = recovery::car_traffic(
            car.solutions, placement.topology().num_racks(),
            scenario.failed_rack);
        car_chunks.add(static_cast<double>(summary.total_chunks()));
        racks_per_stripe.add(static_cast<double>(summary.total_chunks()) /
                             static_cast<double>(censuses.size()));
      }
      table.add_row(
          {name, util::fmt_double(car_chunks.mean(), 1),
           util::fmt_double(rr_chunks.mean(), 1),
           util::fmt_percent(1.0 - car_chunks.mean() / rr_chunks.mean()),
           util::fmt_double(racks_per_stripe.mean(), 2)});
    }
    std::printf("-- %s, RS(%zu,%zu) --\n%s\n", cfg.name.c_str(), cfg.k, cfg.m,
                table.to_string().c_str());
  }
  std::printf(
      "Takeaway: with wide stripes (CFS3) the packing density decides how "
      "many racks\nCAR must touch — compact cuts ~1 rack per stripe vs "
      "spread.  With narrow\nstripes the minimum d is already 1-2 "
      "everywhere, so the layouts converge; and\neven the adversarial "
      "spread layout never makes CAR worse than RR.\n");
  return 0;
}
