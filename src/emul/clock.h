// Time source abstraction for the cluster emulator.
//
// The emulator expresses all link occupancy and step completion times as
// seconds on a single monotonic *timeline*.  An EmulClock maps that timeline
// onto one of two modes:
//
//   * kReal    — timeline second t is wall-clock `epoch + t`; sleep_until
//                really blocks.  Recovery time is *measured*, including the
//                genuine GF(2^8) compute on real buffers.
//   * kVirtual — the timeline is a simulated clock held in memory;
//                sleep_until merely advances it.  Nothing blocks, so a
//                thousand-stripe recovery "takes" milliseconds of host time,
//                and — because the timing pass that drives it is
//                deterministic — the reported times are bit-identical across
//                runs.
//
// The clock is shared by every link and step of one emul::Cluster and
// persists across execute() calls, so back-to-back plans on one cluster see
// a continuous timeline in both modes.
#pragma once

#include <chrono>

#include "util/attributes.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace car::emul {

enum class ClockMode { kReal, kVirtual };

class EmulClock {
 public:
  explicit EmulClock(ClockMode mode);

  [[nodiscard]] ClockMode mode() const noexcept { return mode_; }

  /// Current time in timeline seconds.  Real mode: wall seconds elapsed
  /// since construction.  Virtual mode: the simulated clock's position.
  [[nodiscard]] double now() const CAR_EXCLUDES(mu_);

  /// Block until timeline second `t` (real mode) or advance the simulated
  /// clock to `t` (virtual mode).  Times in the past are a no-op.
  void sleep_until(double t) CAR_EXCLUDES(mu_);

  /// Raise the simulated clock to at least `t`.  No-op in real mode (the
  /// wall clock advances itself) and for `t` in the past.
  void advance_to(double t) CAR_EXCLUDES(mu_);

  /// Contract helper for deterministic consumers (the fault-injection
  /// runtime): throws util::StateError naming `who` unless the clock is
  /// virtual.  Wall-clock timelines cannot reproduce an EventLog
  /// byte-for-byte, so such consumers refuse them up front.
  void require_virtual(const char* who) const CAR_BOUNDARY;

 private:
  ClockMode mode_;
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;
  double virtual_now_ CAR_GUARDED_BY(mu_) = 0.0;
};

}  // namespace car::emul
