// Serial link emulation for the in-process cluster emulator.
//
// A SerialLink models a store-and-forward network link of a fixed base rate.
// Each transmission *reserves* link occupancy on an abstract timeline
// (seconds since the owning cluster's epoch), so concurrent transfers
// through a shared (e.g. oversubscribed rack) link really contend with each
// other.  Reservations are non-blocking and clock-agnostic: the caller
// supplies the earliest start time and decides what the returned finish time
// means — the real-time executor sleeps until it on the wall clock, the
// virtual-clock timing pass simply advances the simulated clock (see
// emul/clock.h).  Either way a multi-hop transfer pipelines across its
// links: it completes when the slowest hop drains, not after the sum of
// hops.
//
// Fault windows (inject/): a link may carry *rate windows* — intervals
// during which its effective rate is scaled by a factor (0 = blackout,
// 0.5 = half speed).  Reservations integrate the piecewise rate profile, so
// a transfer that straddles a blackout stalls until the window closes.
// Overlapping windows multiply.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/attributes.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace car::emul {

class SerialLink {
 public:
  /// rate in bytes/second; must be positive.
  explicit SerialLink(double bytes_per_second);

  /// Scale the link's rate by `factor` during [start, end) timeline seconds.
  /// factor == 0 blacks the link out for the window; factors of overlapping
  /// windows multiply.  Requires 0 <= start < end, both finite, and
  /// factor >= 0 (CheckError otherwise).  Thread-safe.
  void add_rate_window(double start, double end, double factor)
      CAR_EXCLUDES(mu_) CAR_BOUNDARY;

  /// Effective rate at timeline second `t` (base rate times the factors of
  /// every window containing `t`).
  [[nodiscard]] double rate_at(double t) const CAR_EXCLUDES(mu_) CAR_HOT;

  /// Reserve link occupancy for `bytes`, starting no earlier than timeline
  /// second `start` and no earlier than the link is free.  Returns the
  /// timeline second at which the last byte leaves the link, honouring any
  /// rate windows.  Does not block; thread-safe.
  double reserve(double start, std::uint64_t bytes) CAR_EXCLUDES(mu_)
      CAR_BOUNDARY CAR_HOT;

  /// Page-wise reservation under a single lock acquisition: exactly the
  /// sequence reserve(start, page) for each page_bytes-sized page of
  /// `bytes`, returning the last page's finish (== `start` when bytes is 0,
  /// matching a zero-iteration paging loop).  Bit-identical to the caller
  /// paging by hand — the per-page math is the same code — but one
  /// lock/unlock instead of ceil(bytes / page_bytes).  The timing replay's
  /// hot path (emul/cluster.cc) uses this; it is safe there because replay
  /// commits reservations in a globally serialised order, so batching a
  /// transfer's pages cannot change how concurrent flows interleave.
  double reserve_pages(double start, std::uint64_t bytes,
                       std::uint64_t page_bytes) CAR_EXCLUDES(mu_)
      CAR_BOUNDARY CAR_HOT;

  /// Finish time reserve(start, bytes) *would* return right now, without
  /// committing anything.  Thread-safe.
  [[nodiscard]] double preview(double start, std::uint64_t bytes) const
      CAR_EXCLUDES(mu_) CAR_BOUNDARY CAR_HOT;

  /// Pure timing helper for shadow (what-if) reservations: the finish time
  /// of `bytes` entering the link no earlier than `start` on a link that is
  /// busy until `busy_until`, honouring rate windows.  Used by LinkPath's
  /// preview; does not touch the link's own occupancy.
  [[nodiscard]] double drain_from(double busy_until, double start,
                                  std::uint64_t bytes) const CAR_EXCLUDES(mu_)
      CAR_HOT;

  /// Wall-clock convenience for standalone use (tests, demos): reserve
  /// against real elapsed time since construction and block until the bytes
  /// have traversed.
  void transmit(std::uint64_t bytes);

  [[nodiscard]] double rate() const noexcept { return rate_; }

  /// Timeline second at which the link is next free (for shadow previews).
  [[nodiscard]] double next_free() const CAR_EXCLUDES(mu_);

  /// Total bytes ever reserved on this link (for accounting/tests).
  [[nodiscard]] std::uint64_t bytes_transmitted() const noexcept
      CAR_EXCLUDES(mu_);

 private:
  struct RateWindow {
    double start = 0.0;
    double end = 0.0;
    double factor = 1.0;
  };

  [[nodiscard]] double drain_locked(double begin, std::uint64_t bytes) const
      CAR_REQUIRES(mu_);

  double rate_;
  std::chrono::steady_clock::time_point epoch_;  // transmit() only
  mutable util::Mutex mu_;
  double next_free_ CAR_GUARDED_BY(mu_) = 0.0;  // timeline seconds
  std::uint64_t total_bytes_ CAR_GUARDED_BY(mu_) = 0;
  std::vector<RateWindow> windows_ CAR_GUARDED_BY(mu_);
};

/// The ordered hop list of one transfer path (src access link, core links
/// when crossing racks, dst access link).  An empty path is a loopback:
/// reservations are no-ops completing instantly.  reserve/preview page the
/// transfer so concurrent flows interleave fairly on shared links while the
/// hops of one transfer pipeline (finish = slowest hop, not sum of hops).
class LinkPath {
 public:
  /// Longest physical path the topology can produce: src access link, up to
  /// two core hops, dst access link.  Cluster::path builds every LinkPath;
  /// the constructor enforces the bound so preview() can shadow hop state on
  /// the stack instead of allocating per call.
  static constexpr std::size_t kMaxHops = 4;

  LinkPath() = default;
  explicit LinkPath(std::vector<SerialLink*> hops);

  /// Commit page-wise reservations on every hop starting no earlier than
  /// `start`; returns the finish time of the last page on the slowest hop.
  double reserve(double start, std::uint64_t bytes, std::uint64_t page_bytes)
      CAR_BOUNDARY CAR_HOT;

  /// Finish time reserve would return right now, committing nothing.  Exact
  /// only while no concurrent reservations land on the hops (the
  /// fault-injection runtime is single-threaded, which is the point).
  [[nodiscard]] double preview(double start, std::uint64_t bytes,
                               std::uint64_t page_bytes) const CAR_BOUNDARY
      CAR_HOT;

  [[nodiscard]] bool loopback() const noexcept { return hops_.empty(); }
  [[nodiscard]] const std::vector<SerialLink*>& hops() const noexcept {
    return hops_;
  }

 private:
  std::vector<SerialLink*> hops_;
};

}  // namespace car::emul
