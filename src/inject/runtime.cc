#include "inject/runtime.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "emul/calendar_queue.h"
#include "recovery/compute.h"
#include "recovery/multi.h"
#include "recovery/scheduler.h"
#include "recovery/slice.h"
#include "util/buffer_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace car::inject {

namespace {

using recovery::BufferRef;
using recovery::PlanStep;
using recovery::RecoveryPlan;
using recovery::SliceInfo;
using recovery::SlicePlan;
using recovery::StepKind;

std::string fmt_s(double t) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9f", t);
  return {buf.data()};
}

std::string fmt_hex(std::uint64_t v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx",
                static_cast<unsigned long long>(v));
  return {buf.data()};
}

/// FNV-1a over a (slice of a) payload — the emulated transfer checksum.
/// Only used to produce a deterministic, human-checkable mismatch in
/// corrupt events.
std::uint64_t fnv64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string describe(const BufferRef& ref) {
  if (ref.kind == BufferRef::Kind::kChunk) {
    return "chunk s" + std::to_string(ref.stripe) + "#" +
           std::to_string(ref.chunk_index);
  }
  return "step-output #" + std::to_string(ref.step_id);
}

std::string describe_nodes(const std::vector<cluster::NodeId>& nodes) {
  std::string out = "{";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(nodes[i]);
  }
  return out + "}";
}

/// Releases the cluster's replacement guard no matter how execute() exits.
/// Guards are counted per node (emul::Cluster::add_replacement_guard), so
/// this composes with guards held by outer runtimes or other generations.
class GuardScope {
 public:
  GuardScope(emul::Cluster& cluster, cluster::NodeId replacement)
      : cluster_(cluster), replacement_(replacement) {
    cluster_.add_replacement_guard(replacement_);
  }
  ~GuardScope() { cluster_.remove_replacement_guard(replacement_); }
  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

 private:
  emul::Cluster& cluster_;
  cluster::NodeId replacement_;
};

/// The sequential virtual-time engine behind ResilientRuntime::execute.
/// One instance spans the whole run, including crash escalations: the
/// timeline (`now`), stats, and log carry across re-plans.
class Engine {
 public:
  Engine(emul::Cluster& cluster, const FaultPlan& faults,
         const RetryPolicy& policy, std::uint64_t seed,
         std::uint64_t slice_bytes, const ReplanContext& ctx,
         DataPolicy data)
      : cluster_(cluster),
        faults_(faults),
        policy_(policy),
        seed_(seed),
        slice_bytes_(slice_bytes),
        ctx_(ctx),
        data_(std::move(data)),
        backoff_rng_(seed ^ 0x8badf00ddeadbeefULL),
        replan_rng_(seed ^ 0x5bd1e9955bd1e995ULL),
        crash_fired_(faults.node_crashes.size(), false),
        t0_(cluster.clock().now()),
        now_(t0_) {
    std::sort(data_.sampled_stripes.begin(), data_.sampled_stripes.end());
    result_.report.per_rack_cross_bytes.assign(
        cluster_.topology().num_racks(), 0);
  }

  RunResult run(const RecoveryPlan& plan) {
    // Lower onto the slice grid up front (degenerate when slice_bytes_
    // covers the chunk — one slice per step with identical ids and bytes,
    // so a chunk-granular run and its log are reproduced byte for byte).
    SlicePlan sliced = recovery::slice_plan(plan, slice_bytes_);
    std::string start_detail = std::to_string(plan.steps.size()) +
                               " steps, " +
                               std::to_string(plan.outputs.size()) +
                               " outputs, seed " + std::to_string(seed_);
    if (sliced.num_slices > 1) {
      start_detail += ", sliced " + std::to_string(sliced.slice_size) +
                      " B x" + std::to_string(sliced.num_slices) + " (" +
                      std::to_string(sliced.steps.size()) + " slice steps)";
    }
    result_.log.record(now_, EventKind::kRunStart, -1, -1, plan.replacement,
                       0, start_detail);
    arm_link_faults(cluster_, faults_, t0_);
    for (const auto& fault : faults_.link_faults) {
      result_.log.record(
          now_, EventKind::kLinkFaultArmed, -1, -1,
          static_cast<std::int64_t>(fault.id), 0,
          std::string(to_string(fault.side)) + " #" +
              std::to_string(fault.id) + " x" + fmt_s(fault.factor) + " [" +
              fmt_s(fault.start_s) + ", " + fmt_s(fault.end_s) + ")");
    }

    RecoveryPlan current = plan;
    for (;;) {
      auto next = run_plan(current, sliced);
      if (!next) break;
      current = std::move(*next);
      // Crash escalations re-plan at chunk granularity; re-lower the fresh
      // plan onto the same slice grid before resuming.
      sliced = recovery::slice_plan(current, slice_bytes_);
    }
    publish_outputs(current, nullptr, sliced.num_slices);
    result_.report.wall_s = now_ - t0_;
    result_.log.record(now_, EventKind::kRunComplete, -1, -1, -1, 0,
                       "wall " + fmt_s(result_.report.wall_s) + "s, " +
                           std::to_string(result_.stats.attempts) +
                           " transfer attempts, " +
                           std::to_string(result_.stats.replans) +
                           " re-plans");
    result_.final_plan = std::move(current);
    return std::move(result_);
  }

 private:
  // (ready time, step id, 1-based attempt) — ties break on the lowest step
  // id, then attempt, so the pop order is a pure function of the plan.
  // The id/attempt pair packs into a calendar-queue key as
  // id(48) | attempt(16), so (time, key) lexicographic order is exactly
  // the old tuple order; pushes honour the queue's monotone-insertion
  // discipline (dependents finish no earlier than their producer and have
  // larger ids; retries back off to a later time or a larger attempt).
  static std::uint64_t pack_event(std::size_t id, std::size_t attempt) {
    CAR_CHECK_LT(id, std::size_t{1} << 48,
                 "inject: slice step id exceeds the 48-bit event key field");
    CAR_CHECK_LT(attempt, std::size_t{1} << 16,
                 "inject: attempt exceeds the 16-bit event key field");
    return (static_cast<std::uint64_t>(id) << 16) |
           static_cast<std::uint64_t>(attempt);
  }

  /// Execute one slice-lowered plan until it completes (returns nullopt) or
  /// a node crash escalates into a re-plan (returns the validated next
  /// *chunk-granular* plan; the caller re-lowers it).  `plan` is the base
  /// plan `sliced` was lowered from — the re-plan needs its metadata.
  std::optional<RecoveryPlan> run_plan(const RecoveryPlan& plan,
                                       const SlicePlan& sliced) {
    const std::size_t n = sliced.steps.size();
    auto indegrees = recovery::step_indegrees(
        std::span<const PlanStep>(sliced.steps));
    const auto dependents = recovery::step_dependents(
        std::span<const PlanStep>(sliced.steps));
    std::vector<char> done(n, 0);
    std::vector<double> ready_at(n, now_);
    std::size_t completed = 0;

    emul::CalendarQueue heap(n);
    for (std::size_t id = 0; id < n; ++id) {
      if (indegrees[id] == 0) heap.push(now_, pack_event(id, 1));
    }

    // A fraction trigger can already be satisfied at plan start (e.g.
    // at_fraction == 0, or a re-plan entered with the trigger pending).
    if (const auto crash = pending_fraction_crash(completed, n)) {
      return escalate(*crash, now_, plan, sliced, done, completed);
    }

    while (!heap.empty()) {
      const emul::CalendarQueue::Entry event = heap.pop();
      const double t = event.time;
      const auto id = static_cast<std::size_t>(event.key >> 16);
      const auto attempt = static_cast<std::size_t>(event.key & 0xFFFFull);

      // Time-triggered crashes fire the moment the timeline would pass
      // them, before the event that exposed them runs.
      if (const auto crash = pending_time_crash(t)) {
        const double tc =
            t0_ + *faults_.node_crashes[*crash].at_time_s;
        return escalate(*crash, std::max(tc, now_), plan, sliced, done,
                        completed);
      }

      advance(t);
      const PlanStep& step = sliced.steps[id];
      const SliceInfo& slice = sliced.info[id];
      double finish = 0.0;
      if (step.kind == StepKind::kCompute) {
        finish = run_compute(sliced, step, slice, t);
      } else {
        const auto attempt_finish =
            run_transfer_attempt(sliced, step, slice, t, attempt, heap);
        if (!attempt_finish) continue;  // failed; retry already queued
        finish = *attempt_finish;
      }

      done[id] = 1;
      ++completed;
      advance(finish);
      for (const std::size_t dep : dependents[id]) {
        ready_at[dep] = std::max(ready_at[dep], finish);
        if (--indegrees[dep] == 0) {
          heap.push(ready_at[dep], pack_event(dep, 1));
        }
      }
      if (const auto crash = pending_fraction_crash(completed, n)) {
        return escalate(*crash, finish, plan, sliced, done, completed);
      }
    }
    return std::nullopt;
  }

  /// True when this stripe's payload actually moves (every stripe in a
  /// real-byte run; only the sampled ones in a metadata-only run).
  [[nodiscard]] bool is_real(cluster::StripeId stripe) const {
    return !data_.metadata_only ||
           std::binary_search(data_.sampled_stripes.begin(),
                              data_.sampled_stripes.end(), stripe);
  }

  /// Log-detail suffix identifying the slice; empty for degenerate
  /// lowerings so chunk-granular logs stay byte-identical to the
  /// pre-slicing engine's.
  static std::string slice_suffix(const SlicePlan& sp, const SliceInfo& sl) {
    if (sp.num_slices <= 1) return {};
    return ", slice " + std::to_string(sl.slice + 1) + "/" +
           std::to_string(sp.num_slices) + " @" + std::to_string(sl.offset);
  }

  /// Compute steps run the real GF kernels immediately; only their *timing*
  /// is modelled (step.bytes / virtual_gf_bps, same charge as the
  /// emulator's virtual timing pass — slice charges sum to the base
  /// step's).  The output slice is staged in a pooled lease and assembled
  /// into the base step's output buffer in place.
  double run_compute(const SlicePlan& sliced, const PlanStep& step,
                     const SliceInfo& slice, double t) {
    if (is_real(step.stripe)) {
      std::vector<const rs::Chunk*> inputs;
      inputs.reserve(step.inputs.size());
      for (const auto& in : step.inputs) {
        const rs::Chunk* buf = cluster_.find_buffer(step.node, in.buffer);
        CAR_CHECK_STATE(buf != nullptr,
                        "inject: compute input " + describe(in.buffer) +
                            " missing on node " + std::to_string(step.node));
        inputs.push_back(buf);
      }
      // Step contract checks and the fused GF combine are shared with the
      // emulator (recovery/compute.h), so both runtimes execute compute
      // steps bit-identically.
      util::BufferLease out = cluster_.buffer_pool().acquire(
          static_cast<std::size_t>(slice.length));
      recovery::execute_compute_slice(step, inputs, sliced.chunk_size,
                                      slice.offset, {out.data(), out.size()},
                                      "inject");
      cluster_.write_buffer_range(step.node, BufferRef::step(slice.base_step),
                                  sliced.chunk_size, slice.offset,
                                  {out.data(), out.size()});
    }

    const double dt =
        static_cast<double>(step.bytes) / cluster_.config().virtual_gf_bps;
    const double finish = t + dt;
    result_.report.compute_s += dt;
    if (step.node == sliced.replacement) {
      result_.report.replacement_compute_s += dt;
    }
    result_.log.record(finish, EventKind::kComputeComplete,
                       static_cast<std::int64_t>(step.id), -1,
                       static_cast<std::int64_t>(step.node), step.bytes,
                       std::to_string(step.inputs.size()) + " inputs" +
                           slice_suffix(sliced, slice));
    return finish;
  }

  /// One transfer attempt of one slice.  Returns the delivery time on
  /// success; on timeout/drop/corruption returns nullopt after queueing the
  /// retry (or throws once the attempt budget is spent).
  std::optional<double> run_transfer_attempt(const SlicePlan& sliced,
                                             const PlanStep& step,
                                             const SliceInfo& slice, double t,
                                             std::size_t attempt,
                                             emul::CalendarQueue& heap) {
    ++result_.stats.attempts;
    if (attempt > 1) ++result_.stats.retries;

    const bool real = is_real(step.stripe);
    std::span<const std::uint8_t> wire;
    if (real) {
      const rs::Chunk* payload = cluster_.find_buffer(step.src, step.payload);
      CAR_CHECK_STATE(payload != nullptr,
                      "inject: transfer payload " + describe(step.payload) +
                          " missing on node " + std::to_string(step.src));
      CAR_CHECK_STATE(payload->size() == sliced.chunk_size,
                      "inject: transfer bytes do not match stored payload");
      wire = {payload->data() + slice.offset,
              static_cast<std::size_t>(slice.length)};
    }

    result_.log.record(t, EventKind::kTransferAttempt,
                       static_cast<std::int64_t>(step.id),
                       static_cast<std::int64_t>(attempt),
                       static_cast<std::int64_t>(step.src), step.bytes,
                       "-> " + std::to_string(step.dst) + ", " +
                           describe(step.payload) +
                           slice_suffix(sliced, slice));

    if (step.src == step.dst) {
      // Loopback never touches a link or a fault.  Stage the slice through
      // a pooled lease so the (self-)write is well-defined.
      if (real) {
        util::BufferLease staged =
            cluster_.buffer_pool().acquire(wire.size());
        std::memcpy(staged.data(), wire.data(), wire.size());
        cluster_.write_buffer_range(step.dst, step.payload, sliced.chunk_size,
                                    slice.offset,
                                    {staged.data(), staged.size()});
      }
      result_.log.record(t, EventKind::kTransferComplete,
                         static_cast<std::int64_t>(step.id),
                         static_cast<std::int64_t>(attempt),
                         static_cast<std::int64_t>(step.dst), 0,
                         "loopback" + slice_suffix(sliced, slice));
      return t;
    }

    // The first declared fault that matches this (step, attempt) decides
    // its fate; the decision is order-independent (see fault.h).
    const TransferFault* fault = nullptr;
    std::size_t fault_index = 0;
    for (std::size_t i = 0; i < faults_.transfer_faults.size(); ++i) {
      if (transfer_fault_applies(faults_.transfer_faults[i], i, step.id,
                                 attempt, seed_)) {
        fault = &faults_.transfer_faults[i];
        fault_index = i;
        break;
      }
    }

    const std::uint64_t page = cluster_.config().page_bytes;
    emul::LinkPath path = cluster_.path(step.src, step.dst);
    const double deadline = t + policy_.transfer_timeout_s;
    const double projected = path.preview(t, step.bytes, page);

    double failed_at = 0.0;
    if (projected > deadline) {
      // The sender gives up at the deadline without committing the link:
      // an abandoned attempt occupies no wire in this model.
      ++result_.stats.timeouts;
      failed_at = deadline;
      result_.log.record(deadline, EventKind::kTransferTimeout,
                         static_cast<std::int64_t>(step.id),
                         static_cast<std::int64_t>(attempt),
                         static_cast<std::int64_t>(step.src), step.bytes,
                         "projected finish " + fmt_s(projected) +
                             " past deadline " + fmt_s(deadline));
    } else if (fault != nullptr &&
               fault->kind == TransferFault::Kind::kDrop) {
      // The bytes burn wire all the way, the receiver never sees them, and
      // the sender only learns at the ack deadline.
      const double finish = path.reserve(t, step.bytes, page);
      ++result_.stats.drops;
      result_.stats.wasted_wire_bytes += step.bytes;
      failed_at = deadline;
      result_.log.record(finish, EventKind::kTransferDrop,
                         static_cast<std::int64_t>(step.id),
                         static_cast<std::int64_t>(attempt),
                         static_cast<std::int64_t>(step.src), step.bytes,
                         "fault #" + std::to_string(fault_index) +
                             ", ack deadline " + fmt_s(deadline));
    } else if (fault != nullptr) {  // kCorrupt
      const double finish = path.reserve(t, step.bytes, page);
      std::string checksums;
      if (real) {
        // Garble one byte of the slice in a pooled staging copy — the
        // stored payload stays pristine for the retry.  For a degenerate
        // lowering the staged slice is the whole chunk and the garbled
        // index matches the chunk-granular engine's, so logs stay
        // byte-identical.
        util::BufferLease staged =
            cluster_.buffer_pool().acquire(wire.size());
        std::memcpy(staged.data(), wire.data(), wire.size());
        staged.data()[(step.id * 1315423911ULL + attempt) % staged.size()] ^=
            0xA5;
        checksums = ", checksum sent=" + fmt_hex(fnv64(wire)) + " got=" +
                    fmt_hex(fnv64({staged.data(), staged.size()}));
      } else {
        // No payload to checksum — see DataPolicy's corrupt caveat.
        checksums = ", checksum unavailable (metadata-only stripe)";
      }
      ++result_.stats.corruptions;
      result_.stats.wasted_wire_bytes += step.bytes;
      failed_at = finish;  // checksum mismatch is detected on delivery
      result_.log.record(finish, EventKind::kTransferCorrupt,
                         static_cast<std::int64_t>(step.id),
                         static_cast<std::int64_t>(attempt),
                         static_cast<std::int64_t>(step.dst), step.bytes,
                         "fault #" + std::to_string(fault_index) + checksums +
                             slice_suffix(sliced, slice));
    } else {
      const double finish = path.reserve(t, step.bytes, page);
      if (real) {
        cluster_.write_buffer_range(step.dst, step.payload, sliced.chunk_size,
                                    slice.offset, wire);
      }
      // At-most-once accounting: slice bytes land in the report here and
      // only here — failed attempts never reach this branch.  A transfer's
      // slices partition the chunk, so the delivered total per base step is
      // exactly chunk_size no matter the grid.
      if (step.cross_rack) {
        result_.report.cross_rack_bytes += step.bytes;
        result_.report
            .per_rack_cross_bytes[cluster_.topology().rack_of(step.src)] +=
            step.bytes;
      } else {
        result_.report.intra_rack_bytes += step.bytes;
      }
      result_.log.record(finish, EventKind::kTransferComplete,
                         static_cast<std::int64_t>(step.id),
                         static_cast<std::int64_t>(attempt),
                         static_cast<std::int64_t>(step.dst), step.bytes,
                         (step.cross_rack ? std::string("cross-rack")
                                          : std::string("intra-rack")) +
                             slice_suffix(sliced, slice));
      return finish;
    }

    CAR_CHECK_STATE(attempt < policy_.max_attempts,
                    "inject: transfer step " + std::to_string(step.id) +
                        " permanently failed after " +
                        std::to_string(attempt) + " attempts");
    const double delay = policy_.backoff.delay(attempt, backoff_rng_);
    const double retry_at = failed_at + delay;
    result_.log.record(failed_at, EventKind::kRetryScheduled,
                       static_cast<std::int64_t>(step.id),
                       static_cast<std::int64_t>(attempt + 1),
                       static_cast<std::int64_t>(step.src), 0,
                       "backoff " + fmt_s(delay) + "s, retry at " +
                           fmt_s(retry_at));
    heap.push(retry_at, pack_event(step.id, attempt + 1));
    return std::nullopt;
  }

  /// First unfired fraction-triggered crash satisfied by the completion
  /// ratio, if any.
  std::optional<std::size_t> pending_fraction_crash(std::size_t completed,
                                                    std::size_t total) const {
    for (std::size_t i = 0; i < faults_.node_crashes.size(); ++i) {
      const auto& crash = faults_.node_crashes[i];
      if (crash_fired_[i] || !crash.at_fraction) continue;
      const double ratio =
          total == 0 ? 1.0
                     : static_cast<double>(completed) /
                           static_cast<double>(total);
      if (ratio >= *crash.at_fraction) return i;
    }
    return std::nullopt;
  }

  /// First unfired time-triggered crash whose deadline the timeline would
  /// pass by processing an event at `t`, if any.
  std::optional<std::size_t> pending_time_crash(double t) const {
    for (std::size_t i = 0; i < faults_.node_crashes.size(); ++i) {
      const auto& crash = faults_.node_crashes[i];
      if (crash_fired_[i] || !crash.at_time_s) continue;
      if (t0_ + *crash.at_time_s <= t) return i;
    }
    return std::nullopt;
  }

  /// Crash escalation: publish what finished, cancel the rest, drop the
  /// node, re-plan the (now multi-)failure, validate, and hand back the
  /// plan to resume with.  `done` and `completed` are at slice granularity;
  /// an output counts as finished only when *every* slice of its producing
  /// step delivered.
  RecoveryPlan escalate(std::size_t crash_index, double tc,
                        const RecoveryPlan& plan, const SlicePlan& sliced,
                        const std::vector<char>& done,
                        std::size_t completed) {
    const NodeCrash& crash = faults_.node_crashes[crash_index];
    crash_fired_[crash_index] = true;
    advance(tc);

    CAR_CHECK_STATE(ctx_.placement != nullptr && ctx_.code != nullptr,
                    "inject: node crash fired but ReplanContext has no "
                    "placement/code to re-plan with");

    result_.log.record(
        now_, EventKind::kNodeCrash, -1, -1,
        static_cast<std::int64_t>(crash.node), 0,
        crash.at_fraction
            ? "at completion fraction " + fmt_s(*crash.at_fraction)
            : "at scheduled time " + fmt_s(*crash.at_time_s));
    const std::size_t cancelled = sliced.steps.size() - completed;
    result_.stats.cancelled_steps += cancelled;
    result_.log.record(now_, EventKind::kStepsCancelled, -1, -1, -1, 0,
                       std::to_string(cancelled) + " of " +
                           std::to_string(sliced.steps.size()) + " steps");

    // Durability first: recovered chunks whose final step completed are
    // already correct — promote them to regular replicas before the step
    // outputs are wiped.  (The re-plan recomputes every lost chunk anyway;
    // published replicas are simply overwritten with identical bytes.)
    publish_outputs(plan, &done, sliced.num_slices);

    cluster_.drop_node(crash.node);  // CheckError if it is the replacement
    cluster_.clear_step_outputs();
    crashed_nodes_.push_back(crash.node);

    recovery::MultiFailureScenario scenario;
    scenario.failed_nodes = ctx_.failed_nodes;
    for (const cluster::NodeId node : crashed_nodes_) {
      scenario.failed_nodes.push_back(node);
    }
    scenario.replacement = plan.replacement;
    scenario.replacement_rack =
        cluster_.topology().rack_of(plan.replacement);

    const bool car = ctx_.strategy == ReplanStrategy::kCar;
    result_.log.record(now_, EventKind::kReplanStart, -1, -1,
                       static_cast<std::int64_t>(crash.node), 0,
                       std::string("multi-failure re-plan (") +
                           (car ? "car" : "rr") + "), failed nodes " +
                           describe_nodes(scenario.failed_nodes));

    const auto censuses =
        recovery::build_multi_censuses(*ctx_.placement, scenario);
    RecoveryPlan next;
    recovery::ValidateOptions options;
    options.placement = ctx_.placement;
    if (car) {
      const auto balanced =
          recovery::balance_multi(*ctx_.placement, censuses);
      next = recovery::build_multi_car_plan(*ctx_.placement, *ctx_.code,
                                            balanced.solutions,
                                            plan.chunk_size,
                                            plan.replacement);
      options.expected_cross_rack_chunks = recovery::claimed_cross_rack_chunks(
          balanced.solutions, scenario.replacement_rack);
    } else {
      const auto solutions =
          recovery::plan_multi_rr(*ctx_.placement, censuses, replan_rng_);
      next = recovery::build_multi_rr_plan(*ctx_.placement, *ctx_.code,
                                           solutions, plan.chunk_size,
                                           plan.replacement);
    }

    auto report = recovery::validate_plan(next, cluster_.topology(), options);
    CAR_CHECK_STATE(report.ok(), "inject: re-plan failed validation:\n" +
                                     report.to_string());
    result_.log.record(now_, EventKind::kReplanValidated, -1, -1, -1, 0,
                       std::to_string(next.steps.size()) + " steps, " +
                           std::to_string(next.outputs.size()) +
                           " outputs, 0 errors");
    result_.log.record(now_, EventKind::kResume, -1, -1,
                       static_cast<std::int64_t>(plan.replacement), 0,
                       "resuming recovery on the re-planned DAG");

    ++result_.stats.replans;
    result_.replanned = true;
    result_.replan_validation = std::move(report);
    return next;
  }

  /// Promote recovered chunks to regular replicas on the replacement.
  /// `done` (slice-granular, over the `num_slices` grid) restricts to
  /// outputs whose producing step delivered *every* slice; nullptr
  /// publishes all.
  void publish_outputs(const RecoveryPlan& plan,
                       const std::vector<char>* done,
                       std::uint64_t num_slices) {
    std::size_t published = 0;
    for (const auto& out : plan.outputs) {
      if (done != nullptr) {
        bool whole = true;
        for (std::uint64_t s = 0; s < num_slices; ++s) {
          if ((*done)[recovery::sliced_id(out.step_id, num_slices, s)] == 0) {
            whole = false;
            break;
          }
        }
        if (!whole) continue;
      }
      // Metadata-only stripes count as published (their recovery is
      // accounted, and the log must stay byte-identical to a real run)
      // but have no bytes to store.
      if (is_real(out.stripe)) {
        const rs::Chunk* buf =
            cluster_.find_step_output(plan.replacement, out.step_id);
        CAR_CHECK_STATE(buf != nullptr,
                        "inject: completed output of step " +
                            std::to_string(out.step_id) +
                            " missing on the replacement");
        cluster_.store_chunk(plan.replacement, out.stripe, out.chunk_index,
                             *buf);
      }
      ++published;
    }
    if (published > 0 || done == nullptr) {
      result_.log.record(now_, EventKind::kOutputsPublished, -1, -1,
                         static_cast<std::int64_t>(plan.replacement),
                         static_cast<std::uint64_t>(published) *
                             plan.chunk_size,
                         std::to_string(published) + " of " +
                             std::to_string(plan.outputs.size()) +
                             " recovered chunks");
    }
  }

  void advance(double t) {
    now_ = std::max(now_, t);
    cluster_.clock().advance_to(now_);
  }

  emul::Cluster& cluster_;
  const FaultPlan& faults_;
  const RetryPolicy& policy_;
  std::uint64_t seed_;
  std::uint64_t slice_bytes_;
  const ReplanContext& ctx_;
  DataPolicy data_;
  util::Rng backoff_rng_;
  util::Rng replan_rng_;
  std::vector<bool> crash_fired_;
  std::vector<cluster::NodeId> crashed_nodes_;
  double t0_;
  double now_;
  RunResult result_;
};

}  // namespace

ResilientRuntime::ResilientRuntime(emul::Cluster& cluster, FaultPlan faults,
                                   RetryPolicy policy, std::uint64_t seed)
    : cluster_(cluster),
      faults_(std::move(faults)),
      policy_(std::move(policy)),
      seed_(seed) {}

RunResult ResilientRuntime::execute(const recovery::RecoveryPlan& plan,
                                    const ReplanContext& context) {
  // Degenerate lowering: one slice per step reproduces the chunk-granular
  // engine's events, bytes, and timeline exactly.
  return execute_sliced(plan, std::max<std::uint64_t>(plan.chunk_size, 1),
                        context);
}

RunResult ResilientRuntime::execute_sliced(const recovery::RecoveryPlan& plan,
                                           std::uint64_t slice_bytes,
                                           const ReplanContext& context) {
  return execute_sliced(plan, slice_bytes, context, DataPolicy{});
}

RunResult ResilientRuntime::execute_sliced(const recovery::RecoveryPlan& plan,
                                           std::uint64_t slice_bytes,
                                           const ReplanContext& context,
                                           const DataPolicy& data) {
  cluster_.clock().require_virtual("inject::ResilientRuntime");
  CAR_CHECK(slice_bytes > 0, "inject: slice_bytes must be positive");
  faults_.validate(cluster_.topology());
  for (const auto& crash : faults_.node_crashes) {
    CAR_CHECK(crash.node != plan.replacement,
              "inject: a NodeCrash targets the replacement node — that is "
              "not a recoverable scenario");
  }
  if (!faults_.node_crashes.empty()) {
    CAR_CHECK(context.placement != nullptr && context.code != nullptr,
              "inject: FaultPlan contains node crashes; ReplanContext needs "
              "placement and code");
  }

  GuardScope guard(cluster_, plan.replacement);
  Engine engine(cluster_, faults_, policy_, seed_, slice_bytes, context,
                data);
  return engine.run(plan);
}

}  // namespace car::inject
