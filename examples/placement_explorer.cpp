// Placement explorer: visualises how CAR reasons about a failure.
//
// Reconstructs the paper's Figure 4 scenario — five racks, RS(8,6), a stripe
// with rack census (4,1,3,2,4), failure of the first node — then walks
// through Theorem 1, the valid minimal solutions, and the greedy balancing
// pass on a random multi-stripe layout, narrating each step.
//
// Build & run:  ./build/examples/placement_explorer
#include <cstdio>

#include "cluster/configs.h"
#include "recovery/balancer.h"
#include "util/table.h"

int main() {
  using namespace car;

  // --- Part 1: the paper's Figure 4 stripe -------------------------------
  std::printf("== Figure 4: Theorem 1 on a hand-built stripe ==\n");
  cluster::Placement fig4(cluster::Topology({4, 4, 4, 4, 4}), 8, 6);
  fig4.add_stripe({0, 1, 2, 3, 4, 8, 9, 10, 12, 13, 16, 17, 18, 19});
  const auto scenario = cluster::inject_node_failure(fig4, 0);
  const auto census =
      recovery::build_census(fig4, scenario, scenario.lost[0]);

  std::printf("rack census c_i:      ");
  for (auto c : census.chunks) std::printf("%zu ", c);
  std::printf("\nsurviving census c'_i: ");
  for (auto c : census.surviving) std::printf("%zu ", c);
  std::printf("\nfailed rack A%zu keeps %zu survivors; k = %zu\n",
              census.failed_rack + 1, census.surviving_in_failed_rack(),
              census.k);

  const auto d = recovery::min_intact_racks(census);
  std::printf("Theorem 1: minimum intact racks d = %zu\n", d);

  std::printf("valid minimal solutions (racks are 1-indexed like the paper):\n");
  for (const auto& set : recovery::enumerate_minimal_solutions(census)) {
    std::printf("  {");
    for (std::size_t i = 0; i < set.racks.size(); ++i) {
      std::printf("%sA%zu", i ? ", " : "", set.racks[i] + 1);
    }
    std::printf("}\n");
  }

  const auto chosen = recovery::default_solution(census);
  const auto solution = recovery::materialize(fig4, census, chosen);
  std::printf("default pick reads %zu chunks:\n", census.k);
  for (const auto& pick : solution.picks) {
    std::printf("  rack A%zu -> %zu chunk(s)%s\n", pick.rack + 1,
                pick.chunk_indices.size(),
                pick.rack == census.failed_rack ? "  (intra-rack, free)" : "");
  }
  std::printf("cross-rack traffic with aggregation: %zu chunks\n\n",
              solution.cross_rack_chunks());

  // --- Part 2: greedy balancing across 100 stripes -----------------------
  std::printf("== Algorithm 2: balancing cross-rack traffic on CFS3 ==\n");
  const auto cfg = cluster::cfs3();
  util::Rng rng(2026);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 100, rng);
  const auto fail = cluster::inject_random_failure(placement, rng);
  const auto censuses = recovery::build_censuses(placement, fail);
  const auto result = recovery::balance_greedy(placement, censuses, {50});

  std::printf("failed node %zu in rack A%zu, %zu stripes affected\n",
              fail.failed_node, fail.failed_rack + 1, fail.lost.size());
  std::printf("lambda trace (iteration -> lambda):\n");
  for (std::size_t i = 0; i < result.lambda_trace.size(); ++i) {
    if (i % 5 == 0 || i + 1 == result.lambda_trace.size()) {
      std::printf("  %2zu: %.4f\n", i, result.lambda_trace[i]);
    }
  }
  std::printf("substitutions applied: %zu\n", result.substitutions);

  const auto traffic = recovery::car_traffic(
      result.solutions, placement.topology().num_racks(), fail.failed_rack);
  util::TextTable table({"rack", "cross-rack chunks"});
  for (cluster::RackId r = 0; r < traffic.per_rack_chunks.size(); ++r) {
    table.add_row({"A" + std::to_string(r + 1) +
                       (r == fail.failed_rack ? " (failed)" : ""),
                   std::to_string(traffic.per_rack_chunks[r])});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("final lambda = %.4f (1.0 is perfectly balanced)\n",
              traffic.lambda());
  return 0;
}
