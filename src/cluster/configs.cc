#include "cluster/configs.h"

namespace car::cluster {

CfsConfig cfs1() { return {"CFS1", {4, 3, 3}, 4, 3}; }
CfsConfig cfs2() { return {"CFS2", {4, 3, 3, 3}, 6, 3}; }
CfsConfig cfs3() { return {"CFS3", {6, 4, 5, 3, 2}, 10, 4}; }

std::vector<CfsConfig> paper_configs() { return {cfs1(), cfs2(), cfs3()}; }

}  // namespace car::cluster
