#include "recovery/balancer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace car::recovery {

namespace {

/// λ from per-rack chunk counts.
double lambda_of(const std::vector<std::size_t>& t,
                 cluster::RackId failed_rack) {
  std::size_t total = 0;
  std::size_t max = 0;
  for (cluster::RackId i = 0; i < t.size(); ++i) {
    total += t[i];
    if (i != failed_rack) max = std::max(max, t[i]);
  }
  if (total == 0 || t.size() < 2) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(t.size() - 1);
  return static_cast<double>(max) / avg;
}

}  // namespace

BalanceResult balance_greedy(const cluster::Placement& placement,
                             const std::vector<StripeCensus>& censuses,
                             const BalanceOptions& options) {
  CAR_CHECK(!censuses.empty(), "balance_greedy: no stripes to recover");
  const cluster::RackId failed_rack = censuses.front().failed_rack;
  const std::size_t num_racks = censuses.front().num_racks();

  // Precompute all valid minimal rack sets per stripe (candidates for
  // substitution) and pick the paper's default as the starting point.
  std::vector<std::vector<RackSet>> candidates(censuses.size());
  std::vector<RackSet> chosen(censuses.size());
  std::vector<std::size_t> t(num_racks, 0);
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    candidates[j] = enumerate_minimal_solutions(censuses[j]);
    chosen[j] = default_solution(censuses[j]);
    for (cluster::RackId rack : chosen[j].racks) ++t[rack];
  }

  BalanceResult result;
  result.lambda_trace.push_back(lambda_of(t, failed_rack));

  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    // Step 5: the intact rack with the highest cross-rack traffic.
    cluster::RackId heaviest = failed_rack;
    std::size_t heaviest_t = 0;
    for (cluster::RackId i = 0; i < num_racks; ++i) {
      if (i == failed_rack) continue;
      if (heaviest == failed_rack || t[i] > heaviest_t) {
        heaviest = i;
        heaviest_t = t[i];
      }
    }

    // Steps 6-11: scan lighter racks (lightest first for fastest descent)
    // and look for a stripe whose solution can swap heaviest -> lighter.
    bool substituted = false;
    std::vector<cluster::RackId> lighter;
    for (cluster::RackId i = 0; i < num_racks; ++i) {
      if (i != failed_rack && i != heaviest && heaviest_t >= t[i] + 2) {
        lighter.push_back(i);
      }
    }
    std::stable_sort(lighter.begin(), lighter.end(),
                     [&](cluster::RackId a, cluster::RackId b) {
                       return t[a] < t[b];
                     });

    for (cluster::RackId target : lighter) {
      for (std::size_t j = 0; j < censuses.size() && !substituted; ++j) {
        if (!chosen[j].contains(heaviest) || chosen[j].contains(target)) {
          continue;
        }
        RackSet swapped = chosen[j];
        std::replace(swapped.racks.begin(), swapped.racks.end(), heaviest,
                     target);
        std::sort(swapped.racks.begin(), swapped.racks.end());
        const bool valid =
            std::find(candidates[j].begin(), candidates[j].end(), swapped) !=
            candidates[j].end();
        if (!valid) continue;
        chosen[j] = std::move(swapped);
        --t[heaviest];
        ++t[target];
        substituted = true;
      }
      if (substituted) break;
    }

    if (!substituted) break;  // step 12: converged
    ++result.substitutions;
    ++result.iterations_run;
    result.lambda_trace.push_back(lambda_of(t, failed_rack));
  }

  result.solutions.reserve(censuses.size());
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    result.solutions.push_back(materialize(placement, censuses[j], chosen[j]));
  }
  return result;
}

std::optional<ExhaustiveResult> balance_exhaustive(
    const std::vector<StripeCensus>& censuses, std::uint64_t max_nodes) {
  CAR_CHECK(!censuses.empty(), "balance_exhaustive: no stripes");
  const cluster::RackId failed_rack = censuses.front().failed_rack;
  const std::size_t num_racks = censuses.front().num_racks();

  std::vector<std::vector<RackSet>> candidates(censuses.size());
  std::size_t total_traffic = 0;
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    candidates[j] = enumerate_minimal_solutions(censuses[j]);
    total_traffic += candidates[j].front().racks.size();
  }

  ExhaustiveResult best;
  best.max_rack_chunks = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> t(num_racks, 0);
  std::vector<std::size_t> pick(censuses.size(), 0);
  std::uint64_t explored = 0;
  bool aborted = false;

  auto dfs = [&](auto&& self, std::size_t j, std::size_t running_max) -> void {
    if (aborted) return;
    if (++explored > max_nodes) {
      aborted = true;
      return;
    }
    if (running_max >= best.max_rack_chunks) return;  // bound: max only grows
    if (j == censuses.size()) {
      best.max_rack_chunks = running_max;
      best.chosen.clear();
      for (std::size_t s = 0; s < censuses.size(); ++s) {
        best.chosen.push_back(candidates[s][pick[s]]);
      }
      return;
    }
    for (std::size_t c = 0; c < candidates[j].size(); ++c) {
      std::size_t new_max = running_max;
      for (cluster::RackId rack : candidates[j][c].racks) {
        new_max = std::max(new_max, ++t[rack]);
      }
      pick[j] = c;
      self(self, j + 1, new_max);
      for (cluster::RackId rack : candidates[j][c].racks) --t[rack];
      if (aborted) return;
    }
  };
  dfs(dfs, 0, 0);

  if (aborted) return std::nullopt;
  best.nodes_explored = explored;
  if (total_traffic == 0 || num_racks < 2) {
    best.lambda = 1.0;
  } else {
    const double avg = static_cast<double>(total_traffic) /
                       static_cast<double>(num_racks - 1);
    best.lambda = static_cast<double>(best.max_rack_chunks) / avg;
  }
  (void)failed_rack;
  return best;
}

}  // namespace car::recovery
