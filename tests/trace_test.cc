#include "workload/trace.h"

#include <gtest/gtest.h>

#include "cluster/configs.h"

namespace car::workload {
namespace {

TEST(FailureTrace, EventsAreOrderedAndInRange) {
  const auto topo = cluster::cfs2().topology();
  util::Rng rng(1);
  const auto events = generate_failure_trace(topo, {50, 3600.0}, rng);
  ASSERT_EQ(events.size(), 50u);
  double prev = 0.0;
  for (const auto& event : events) {
    EXPECT_GT(event.time_s, prev);
    prev = event.time_s;
    EXPECT_LT(event.node, topo.num_nodes());
  }
}

TEST(FailureTrace, MeanInterarrivalIsRoughlyRespected) {
  const auto topo = cluster::cfs1().topology();
  util::Rng rng(2);
  constexpr double kMean = 100.0;
  const auto events = generate_failure_trace(topo, {2000, kMean}, rng);
  const double observed = events.back().time_s / 2000.0;
  EXPECT_NEAR(observed, kMean, kMean * 0.15);
}

TEST(FailureTrace, IsDeterministicPerSeed) {
  const auto topo = cluster::cfs1().topology();
  util::Rng a(3), b(3);
  const auto ea = generate_failure_trace(topo, {20, 60.0}, a);
  const auto eb = generate_failure_trace(topo, {20, 60.0}, b);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_DOUBLE_EQ(ea[i].time_s, eb[i].time_s);
  }
}

TEST(FailureTrace, Validation) {
  const auto topo = cluster::cfs1().topology();
  util::Rng rng(4);
  EXPECT_THROW(generate_failure_trace(topo, {5, 0.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_failure_trace(topo, {5, -2.0}, rng),
               std::invalid_argument);
}

class TraceReplay : public ::testing::TestWithParam<int> {};

TEST_P(TraceReplay, CarNeverLosesToRrOverAWholeTrace) {
  const auto cfg = cluster::paper_configs()[GetParam()];
  util::Rng rng(10 + GetParam());
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 60, rng);
  const auto events =
      generate_failure_trace(placement.topology(), {12, 3600.0}, rng);

  const simnet::NetConfig net;
  constexpr std::uint64_t kChunk = 4ull << 20;
  util::Rng rng_car = rng.split();
  util::Rng rng_rr = rng.split();
  const auto car = run_failure_trace(placement, events, Strategy::kCar,
                                     kChunk, net, rng_car);
  const auto rr = run_failure_trace(placement, events, Strategy::kRr, kChunk,
                                    net, rng_rr);

  EXPECT_EQ(car.failures_processed, rr.failures_processed);
  EXPECT_EQ(car.chunks_rebuilt, rr.chunks_rebuilt);
  EXPECT_LE(car.cross_rack_bytes, rr.cross_rack_bytes);
  EXPECT_LT(car.total_recovery_s, rr.total_recovery_s);
  EXPECT_GE(car.aggregate_lambda, 1.0 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, TraceReplay,
                         ::testing::Values(0, 1, 2));

TEST(TraceReplay, SkipsEventsOnEmptyNodes) {
  // A placement with a single stripe leaves most nodes empty; events on
  // empty nodes must not count as processed failures.
  const auto cfg = cluster::cfs3();
  util::Rng rng(20);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 1, rng);
  std::vector<FailureEvent> events;
  for (cluster::NodeId n = 0; n < placement.topology().num_nodes(); ++n) {
    events.push_back({static_cast<double>(n + 1), n});
  }
  util::Rng replay_rng(21);
  const auto report =
      run_failure_trace(placement, events, Strategy::kCar, 1 << 20,
                        simnet::NetConfig{}, replay_rng);
  EXPECT_EQ(report.failures_processed, cfg.k + cfg.m);
  EXPECT_EQ(report.chunks_rebuilt, cfg.k + cfg.m);
  EXPECT_GT(report.max_recovery_s, 0.0);
  EXPECT_LE(report.max_recovery_s, report.total_recovery_s);
}

TEST(TraceReplay, Validation) {
  const auto cfg = cluster::cfs1();
  util::Rng rng(30);
  const auto placement =
      cluster::Placement::random(cfg.topology(), cfg.k, cfg.m, 5, rng);
  EXPECT_THROW(run_failure_trace(placement, {}, Strategy::kCar, 0,
                                 simnet::NetConfig{}, rng),
               std::invalid_argument);
  // Empty trace is a no-op.
  const auto report = run_failure_trace(placement, {}, Strategy::kCar, 1024,
                                        simnet::NetConfig{}, rng);
  EXPECT_EQ(report.failures_processed, 0u);
  EXPECT_EQ(report.aggregate_lambda, 1.0);
}

}  // namespace
}  // namespace car::workload
