// Stripe-to-node chunk placement with rack-level fault tolerance.
//
// Placement invariants (checked by validate()):
//   * every chunk of a stripe is on a distinct node;
//   * no rack holds more than m chunks of any single stripe, so a full rack
//     failure still leaves >= k chunks (paper §IV-B, single-rack tolerance).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/topology.h"
#include "cluster/types.h"
#include "util/rng.h"

namespace car::cluster {

class Placement {
 public:
  /// Builds an empty placement; stripes are added via the factories below or
  /// set_stripe for hand-crafted layouts (tests, paper figures).
  Placement(Topology topology, std::size_t k, std::size_t m);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t chunks_per_stripe() const noexcept {
    return k_ + m_;
  }
  [[nodiscard]] std::size_t num_stripes() const noexcept {
    return stripes_.size();
  }

  /// Node hosting chunk `chunk_index` of `stripe`.
  [[nodiscard]] NodeId node_of(StripeId stripe, std::size_t chunk_index) const;

  /// All chunk hosts of one stripe, indexed by chunk index.
  [[nodiscard]] std::span<const NodeId> stripe(StripeId id) const;

  /// Append a stripe given its chunk->node map (must have k+m entries).
  /// Throws std::invalid_argument when the layout breaks an invariant.
  void add_stripe(std::vector<NodeId> chunk_nodes);

  /// Chunks of `stripe` hosted in `rack` — the census c_{i,j} of the paper.
  [[nodiscard]] std::size_t chunks_in_rack(StripeId stripe, RackId rack) const;

  /// Per-rack census vector for one stripe (size num_racks()).
  [[nodiscard]] std::vector<std::size_t> rack_census(StripeId stripe) const;

  /// Chunk indices of `stripe` hosted in `rack`.
  [[nodiscard]] std::vector<std::size_t> chunk_indices_in_rack(
      StripeId stripe, RackId rack) const;

  /// Every chunk stored on `node` across all stripes.
  [[nodiscard]] std::vector<ChunkRef> chunks_on_node(NodeId node) const;

  /// Total chunks stored per node (occupancy histogram).
  [[nodiscard]] std::vector<std::size_t> node_occupancy() const;

  /// Re-checks all invariants (distinct nodes, rack quota <= m).
  [[nodiscard]] bool validate() const noexcept;

  /// Move every chunk hosted on `from` to `to` (after a repair onto a new
  /// replacement node).  Throws std::invalid_argument when the move would
  /// break an invariant (duplicate node in a stripe or rack quota).
  void move_chunks(NodeId from, NodeId to);

  /// Re-host a single chunk.  Throws std::invalid_argument when the new
  /// host would break an invariant; std::out_of_range on bad ids.
  void set_host(StripeId stripe, std::size_t chunk_index, NodeId node);

  /// True when `node` may host chunk `chunk_index` of `stripe` without
  /// breaking the distinct-node or rack-quota invariants.
  [[nodiscard]] bool can_host(StripeId stripe, std::size_t chunk_index,
                              NodeId node) const;

  /// Uniformly choose k+m distinct nodes for one stripe under the rack
  /// quota — the selection primitive behind random(); exposed so callers
  /// that grow a placement incrementally (e.g. a filesystem layer) use the
  /// same distribution.
  static std::vector<NodeId> choose_stripe_nodes(const Topology& topology,
                                                 std::size_t k, std::size_t m,
                                                 util::Rng& rng);

  /// Allocation-free core of choose_stripe_nodes: scans a lazily
  /// materialised random permutation (`pool`, any permutation of all node
  /// ids) and writes k+m quota-respecting picks into `chosen`.  `per_rack`
  /// must be all-zero of size num_racks() and is restored to zero before
  /// returning.  Exposed for bulk generators (random()) that amortise the
  /// scratch buffers across millions of stripes.
  static void choose_stripe_nodes_into(const Topology& topology, std::size_t k,
                                       std::size_t m, util::Rng& rng,
                                       std::vector<NodeId>& pool,
                                       std::vector<std::size_t>& per_rack,
                                       std::vector<NodeId>& chosen);

  /// Random placement: for each stripe choose k+m distinct nodes uniformly
  /// subject to the per-rack quota (<= m chunks per rack per stripe), as in
  /// the paper's methodology.  Throws std::invalid_argument when the
  /// topology cannot host a stripe under the quota.
  static Placement random(Topology topology, std::size_t k, std::size_t m,
                          std::size_t num_stripes, util::Rng& rng);

  /// Deterministic round-robin placement (chunk c of stripe s goes to node
  /// (s + c*stride) mod N, skipping quota violations).  Useful as a
  /// contrasting layout in tests/ablations.
  static Placement round_robin(Topology topology, std::size_t k, std::size_t m,
                               std::size_t num_stripes);

  /// Spread placement: chunks of a stripe are dealt across racks
  /// round-robin so every rack holds either floor or ceil of (k+m)/r chunks
  /// of the stripe (nodes within a rack chosen uniformly).  Maximises rack
  /// dispersion — the adversarial layout for CAR's rack-count minimisation,
  /// used by the placement ablation.  Requires ceil((k+m)/r) <= m.
  static Placement spread(Topology topology, std::size_t k, std::size_t m,
                          std::size_t num_stripes, util::Rng& rng);

  /// Compact placement: stripes fill racks with m chunks each (the rack
  /// quota) before moving on, minimising the racks a stripe touches — the
  /// friendliest layout for CAR.  Rack fill order rotates per stripe.
  static Placement compact(Topology topology, std::size_t k, std::size_t m,
                           std::size_t num_stripes, util::Rng& rng);

 private:
  void check_stripe(std::span<const NodeId> chunk_nodes) const;

  Topology topology_;
  std::size_t k_;
  std::size_t m_;
  std::vector<std::vector<NodeId>> stripes_;  // stripe -> chunk -> node
};

}  // namespace car::cluster
