#include "emul/link.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace car::emul {

SerialLink::SerialLink(double bytes_per_second)
    : rate_(bytes_per_second), epoch_(std::chrono::steady_clock::now()) {
  if (bytes_per_second <= 0) {
    throw std::invalid_argument("SerialLink: rate must be positive");
  }
}

double SerialLink::reserve(double start, std::uint64_t bytes) {
  const double duration = static_cast<double>(bytes) / rate_;
  std::scoped_lock lock(mu_);
  next_free_ = std::max(next_free_, start) + duration;
  total_bytes_ += bytes;
  return next_free_;
}

void SerialLink::transmit(std::uint64_t bytes) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - epoch_;
  const double finish = reserve(elapsed.count(), bytes);
  std::this_thread::sleep_until(
      epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(finish)));
}

std::uint64_t SerialLink::bytes_transmitted() const noexcept {
  std::scoped_lock lock(mu_);
  return total_bytes_;
}

}  // namespace car::emul
