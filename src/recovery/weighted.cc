#include "recovery/weighted.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace car::recovery {

namespace {

double bottleneck_of(const std::vector<std::size_t>& t,
                     const std::vector<double>& bandwidth,
                     cluster::RackId failed_rack) {
  double worst = 0.0;
  for (cluster::RackId i = 0; i < t.size(); ++i) {
    if (i == failed_rack) continue;
    worst = std::max(worst, static_cast<double>(t[i]) / bandwidth[i]);
  }
  return worst;
}

}  // namespace

double bottleneck_drain(const std::vector<PerStripeSolution>& solutions,
                        const std::vector<double>& rack_bandwidth,
                        cluster::RackId failed_rack) {
  std::vector<std::size_t> t(rack_bandwidth.size(), 0);
  for (const auto& solution : solutions) {
    for (cluster::RackId rack : solution.rack_set.racks) ++t[rack];
  }
  return bottleneck_of(t, rack_bandwidth, failed_rack);
}

WeightedBalanceResult balance_weighted(
    const cluster::Placement& placement,
    const std::vector<StripeCensus>& censuses,
    const std::vector<double>& rack_bandwidth, std::size_t iterations) {
  CAR_CHECK(!censuses.empty(), "balance_weighted: no stripes to recover");
  const cluster::RackId failed_rack = censuses.front().failed_rack;
  const std::size_t num_racks = censuses.front().num_racks();
  CAR_CHECK_EQ(rack_bandwidth.size(), num_racks,
               "balance_weighted: bandwidth arity mismatch");
  for (double b : rack_bandwidth) {
    CAR_CHECK(b > 0, "balance_weighted: bandwidths must be positive");
  }

  std::vector<std::vector<RackSet>> candidates(censuses.size());
  std::vector<RackSet> chosen(censuses.size());
  std::vector<std::size_t> t(num_racks, 0);
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    candidates[j] = enumerate_minimal_solutions(censuses[j]);
    chosen[j] = default_solution(censuses[j]);
    for (cluster::RackId rack : chosen[j].racks) ++t[rack];
  }

  WeightedBalanceResult result;
  result.bottleneck_trace.push_back(
      bottleneck_of(t, rack_bandwidth, failed_rack));

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // The rack whose estimated drain time bounds the recovery.
    cluster::RackId heaviest = failed_rack;
    double heaviest_cost = -1.0;
    for (cluster::RackId i = 0; i < num_racks; ++i) {
      if (i == failed_rack) continue;
      const double cost = static_cast<double>(t[i]) / rack_bandwidth[i];
      if (cost > heaviest_cost) {
        heaviest_cost = cost;
        heaviest = i;
      }
    }
    if (heaviest == failed_rack || t[heaviest] == 0) break;

    // Candidate targets, cheapest post-move drain time first.  Accepting a
    // target requires its new drain time to stay strictly below the current
    // bottleneck, so the bottleneck never increases and ties cannot cycle.
    std::vector<cluster::RackId> targets;
    for (cluster::RackId i = 0; i < num_racks; ++i) {
      if (i == failed_rack || i == heaviest) continue;
      const double post = static_cast<double>(t[i] + 1) / rack_bandwidth[i];
      if (post < heaviest_cost) targets.push_back(i);
    }
    std::stable_sort(targets.begin(), targets.end(),
                     [&](cluster::RackId a, cluster::RackId b) {
                       return static_cast<double>(t[a] + 1) / rack_bandwidth[a] <
                              static_cast<double>(t[b] + 1) / rack_bandwidth[b];
                     });

    bool substituted = false;
    for (cluster::RackId target : targets) {
      for (std::size_t j = 0; j < censuses.size() && !substituted; ++j) {
        if (!chosen[j].contains(heaviest) || chosen[j].contains(target)) {
          continue;
        }
        RackSet swapped = chosen[j];
        std::replace(swapped.racks.begin(), swapped.racks.end(), heaviest,
                     target);
        std::sort(swapped.racks.begin(), swapped.racks.end());
        if (std::find(candidates[j].begin(), candidates[j].end(), swapped) ==
            candidates[j].end()) {
          continue;
        }
        chosen[j] = std::move(swapped);
        --t[heaviest];
        ++t[target];
        substituted = true;
      }
      if (substituted) break;
    }
    if (!substituted) break;
    ++result.substitutions;
    result.bottleneck_trace.push_back(
        bottleneck_of(t, rack_bandwidth, failed_rack));
  }

  result.solutions.reserve(censuses.size());
  for (std::size_t j = 0; j < censuses.size(); ++j) {
    result.solutions.push_back(
        materialize(placement, censuses[j], chosen[j]));
  }
  return result;
}

}  // namespace car::recovery
