// Plan-template cache: plan each structural signature once, instantiate
// per stripe.
//
// At fleet scale a full-rack rebuild touches hundreds of thousands of
// stripes, but the *shape* of a stripe's repair plan is a pure function of
// a tiny structural signature — how many chunks were lost and how the
// chosen survivor picks group by size (recovery/multi.h).  Two stripes
// sharing that signature get plans that differ only in concrete node ids
// (resolved through the placement), the stripe id stamped on buffer refs,
// the concrete chunk indices behind each survivor position, the decode
// coefficients, and step-id offsets.  The step topology, dependency
// structure, and byte contract are identical, because:
//
//   * every pick's aggregator is the host of its first chunk and all
//     chunks of a stripe live on distinct nodes, so gather transfers are
//     exactly "every pick position but the first, to the first" regardless
//     of which chunks or nodes those are;
//   * decode coefficients depend only on (lost chunk index, survivor chunk
//     index set) and are memoised canonically by chunk index in a
//     RepairMemo, so they resolve per stripe with two array lookups — they
//     do not need to be baked into the template;
//   * cross-rack flags are recomputed from the resolved endpoints at
//     instantiation time, so signatures encode neither rack identity nor
//     node identity (the home pick of one stripe may be a remote pick of
//     another, and recovered-onto-replacement chunks in the rebuild
//     control plane's batches resolve to the replacement node without a
//     cache miss).
//
// The CAR signature is therefore just (lost count, pick size sequence) —
// a few dozen distinct values at datacenter scale — and the RR signature
// (lost count, fetch count, skip-position mask).  A PlanTemplateCache runs
// the structural planner once per signature and instantiates every other
// stripe by remapping ids — either straight into the columnar PlanArena
// (PlanArena::append_instantiated, zero per-stripe heap RecoveryPlan
// objects: the scale path) or into a RecoveryPlan (the rebuild control
// plane's per-batch path, which still validates and executes
// chunk-granular plans).
//
// When must a stripe MISS the cache?  Exactly when its signature differs:
// a different lost-chunk count, a different pick-size profile (e.g.
// partial salvage after a prior batch recovered some chunks, which
// regroups survivors), or — RR only — a different set of fetch positions
// already hosted on the replacement (those skip their transfer entirely,
// changing the step topology, so the RR signature includes that mask).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/placement.h"
#include "cluster/types.h"
#include "recovery/multi.h"
#include "recovery/plan.h"
#include "recovery/plan_arena.h"
#include "rs/code.h"

namespace car::recovery {

/// One symbolic step of a plan template.  Endpoints name either "the host
/// of the survivor at position p of the instantiated stripe's solution"
/// or "the replacement node"; buffer refs name either "the chunk at
/// survivor position p" or "the output of local step i of this template".
struct TemplateStep {
  /// Endpoint symbol: survivor position, or kReplacementSym.
  static constexpr std::uint32_t kReplacementSym = 0xFFFFFFFFu;
  /// coeff_lost value for steps whose inputs are all unit-coefficient.
  static constexpr std::uint32_t kNoCoeff = 0xFFFFFFFFu;

  StepKind kind = StepKind::kTransfer;
  std::uint32_t src_sym = 0;  // transfer src / compute node
  std::uint32_t dst_sym = 0;  // transfer dst / unused
  bool payload_is_step = false;
  std::uint32_t payload_ref = 0;  // survivor position / local step id
  /// Lost position whose decode coefficients weight this step's chunk
  /// inputs (partial and final decodes), or kNoCoeff (unit coefficients).
  std::uint32_t coeff_lost = kNoCoeff;
  std::vector<std::uint32_t> deps;  // local step ids, forward (dep < step)
  struct Input {
    bool is_step = false;
    std::uint32_t ref = 0;  // survivor position / local step id
  };
  std::vector<Input> inputs;
};

/// A structural plan signature's worth of steps plus its outputs.
struct PlanTemplate {
  std::vector<TemplateStep> steps;
  struct Output {
    std::uint32_t lost_pos = 0;    // index into the stripe's lost_chunks
    std::uint32_t final_step = 0;  // local step id
  };
  std::vector<Output> outputs;
  /// Totals for arena pre-reservation.
  std::size_t num_deps = 0;
  std::size_t num_inputs = 0;
  /// Template-local reverse-dependency CSR (dependents by local step id),
  /// computed once per signature by the template builders.  Deps are
  /// stripe-local, so the arena's reverse CSR is just each stripe's copy
  /// offset by its base step — instantiation writes it directly and
  /// finalize() skips the counting sort over the forward edges.
  std::vector<std::uint32_t> rdep_off;      // size steps + 1
  std::vector<std::uint32_t> rdep_entries;  // size num_deps
};

/// Everything stripe-specific a template instantiation needs: which
/// stripe, the concrete chunk index behind each survivor position, the
/// concrete lost chunks, and one canonical coefficient table (indexed by
/// chunk index — RepairMemo::coeffs) per lost position.
struct StripeBinding {
  cluster::StripeId stripe = 0;
  std::span<const std::size_t> survivors;
  std::span<const std::size_t> lost_chunks;
  std::span<const std::span<const std::uint8_t>> coeffs;
};

struct TemplateStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Signature-keyed cache of plan templates plus the shared decode-
/// coefficient memo.  One cache serves both strategies (keys are
/// strategy-tagged) and is reusable across batches/epochs: the rebuild
/// control plane keeps one per run so re-plans after rolling failures hit
/// the warm cache.
class PlanTemplateCache {
 public:
  /// Template for a CAR multi-failure solution's signature
  /// (lost count, pick size sequence), built on miss.  The reference is
  /// mutable so arena builders can release_template_rdeps() after a
  /// signature's last instantiation; a hit on a released template re-seals
  /// it transparently.
  PlanTemplate& car(const MultiStripeSolution& solution);

  /// Template for an RR signature.  `skip_position_mask` is a bitmask (by
  /// fetch POSITION, not chunk index) of survivors already hosted on the
  /// replacement — they skip their transfer, so they are part of the
  /// signature.
  PlanTemplate& rr(std::size_t num_lost, std::size_t num_chunks,
                   std::uint64_t skip_position_mask);

  /// Decode-coefficient memo shared by every instantiation off this cache.
  [[nodiscard]] RepairMemo& repair_memo() noexcept { return repair_memo_; }

  [[nodiscard]] const TemplateStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, PlanTemplate, StringHash, std::equal_to<>>
      cache_;
  std::string scratch_;  // key bytes, reused across lookups
  RepairMemo repair_memo_;
  TemplateStats stats_;
};

/// Append one instantiated template to a chunk-granular RecoveryPlan —
/// the exact steps build_multi_car_plan/build_multi_rr_plan would emit for
/// this stripe (proven by the differential suite).
void append_instantiated(RecoveryPlan& plan, const PlanTemplate& tmpl,
                         const StripeBinding& binding,
                         const cluster::Placement& placement,
                         cluster::NodeId replacement);

/// Template-cached equivalents of the recovery/multi plan builders: same
/// RecoveryPlan, bit for bit, with the structural planner run once per
/// signature.
RecoveryPlan build_multi_car_plan_cached(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    cluster::NodeId replacement, PlanTemplateCache& cache);
RecoveryPlan build_multi_rr_plan_cached(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiRrSolution> solutions, std::uint64_t chunk_size,
    cluster::NodeId replacement, PlanTemplateCache& cache);

/// Template-direct arena builders: lower every solution straight into a
/// columnar PlanArena without materialising a single per-stripe PlanStep.
/// Bit-identical to PlanArena::build(build_multi_*_plan(...), slice_size)
/// — the scale path's planner.
PlanArena build_multi_car_arena(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache);
PlanArena build_multi_rr_arena(
    const cluster::Placement& placement, const rs::Code& code,
    std::span<const MultiRrSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache);

/// Drop a sealed template's local reverse-CSR copy.  The arena builders
/// call this the moment a signature's last stripe is instantiated —
/// at fleet scale the copies are pure dead weight from then on — and the
/// cache re-seals lazily on the next hit, so cross-build reuse (the
/// rebuild control plane's warm cache) keeps working.
void release_template_rdeps(PlanTemplate& tmpl);

/// Two-phase streaming form of the arena builders, for overlapping
/// lowering with the virtual-clock replay (Cluster::
/// execute_arena_streaming):
///
///   1. reserve_multi_*_arena resolves every solution's template and sizes
///      the arena columns to their exact final extents — after it returns,
///      num_base_steps() is final and no column ever reallocates, so the
///      executor may attach to `arena` before a single stripe lands;
///   2. stream_multi_*_arena appends in solution order, invoking
///      `publish(rows)` with the monotone count of fully appended base
///      steps after each stripe (every published prefix is stripe-closed),
///      releases each template's reverse-CSR copy after its last use, and
///      finalizes the arena.
///
/// build_multi_*_arena is exactly phase 1 + phase 2 with no publisher, so
/// the streamed arena is the barrier build's bit for bit.
struct ArenaStreamBuild {
  PlanArena arena;
  /// Cache-owned template per solution, resolved by the reserve pass.
  std::vector<PlanTemplate*> templates;
};
ArenaStreamBuild reserve_multi_car_arena(
    const cluster::Placement& placement,
    std::span<const MultiStripeSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache);
ArenaStreamBuild reserve_multi_rr_arena(
    const cluster::Placement& placement,
    std::span<const MultiRrSolution> solutions, std::uint64_t chunk_size,
    std::uint64_t slice_size, cluster::NodeId replacement,
    PlanTemplateCache& cache);
void stream_multi_car_arena(
    ArenaStreamBuild& build, const cluster::Placement& placement,
    const rs::Code& code, std::span<const MultiStripeSolution> solutions,
    PlanTemplateCache& cache,
    const std::function<void(std::uint64_t)>& publish);
void stream_multi_rr_arena(
    ArenaStreamBuild& build, const cluster::Placement& placement,
    const rs::Code& code, std::span<const MultiRrSolution> solutions,
    PlanTemplateCache& cache,
    const std::function<void(std::uint64_t)>& publish);

}  // namespace car::recovery
