// CAR_EXCLUDES violation: a function that requires a capability calls one
// that excludes the same capability — the caller provably holds what the
// callee forbids.  -Wthread-safety must reject this translation unit.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Cache {
 public:
  void compact_locked() CAR_REQUIRES(mu_) {
    evict_all();  // BAD: evict_all() excludes mu_, which we hold.
  }

  void evict_all() CAR_EXCLUDES(mu_) {
    car::util::MutexLock lock(mu_);
    entries_ = 0;
  }

  car::util::Mutex mu_;

 private:
  int entries_ CAR_GUARDED_BY(mu_) = 0;
};

[[maybe_unused]] void use() {
  Cache c;
  car::util::MutexLock lock(c.mu_);
  c.compact_locked();
}

}  // namespace
