#include "recovery/degraded.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace car::recovery {

DegradedReadCensus build_degraded_census(const cluster::Placement& placement,
                                         const DegradedReadRequest& request) {
  CAR_CHECK_LT(request.chunk_index, placement.chunks_per_stripe(),
               "degraded read: chunk index out of range");
  const auto& topology = placement.topology();
  DegradedReadCensus census;
  census.stripe = request.stripe;
  census.chunk_index = request.chunk_index;
  census.reader_rack = topology.rack_of(request.reader);
  census.k = placement.k();
  census.surviving = placement.rack_census(request.stripe);
  // The read chunk itself is unavailable.
  const auto host = placement.node_of(request.stripe, request.chunk_index);
  --census.surviving[topology.rack_of(host)];
  return census;
}

namespace {

/// Shared plan assembly: given the k survivor chunk indices grouped by rack
/// (reader's rack first when present), emit aggregate+ship steps, or direct
/// fetches when `aggregate` is false.
RecoveryPlan assemble(const cluster::Placement& placement, const rs::Code& code,
                      const DegradedReadRequest& request,
                      std::uint64_t chunk_size,
                      const std::vector<RackPick>& picks, bool aggregate) {
  const auto& topology = placement.topology();
  RecoveryPlan plan;
  plan.replacement = request.reader;
  plan.replacement_rack = topology.rack_of(request.reader);
  plan.chunk_size = chunk_size;

  auto add_transfer = [&](cluster::NodeId src, cluster::NodeId dst,
                          BufferRef payload, std::vector<std::size_t> deps) {
    PlanStep step;
    step.id = plan.steps.size();
    step.kind = StepKind::kTransfer;
    step.stripe = request.stripe;
    step.src = src;
    step.dst = dst;
    step.payload = payload;
    step.cross_rack = topology.rack_of(src) != topology.rack_of(dst);
    step.bytes = chunk_size;
    step.deps = std::move(deps);
    plan.steps.push_back(std::move(step));
    return plan.steps.back().id;
  };
  auto add_compute = [&](cluster::NodeId node, std::vector<ComputeInput> inputs,
                         std::vector<std::size_t> deps) {
    PlanStep step;
    step.id = plan.steps.size();
    step.kind = StepKind::kCompute;
    step.stripe = request.stripe;
    step.node = node;
    step.bytes = chunk_size * inputs.size();
    step.inputs = std::move(inputs);
    step.deps = std::move(deps);
    plan.steps.push_back(std::move(step));
    return plan.steps.back().id;
  };

  std::vector<std::size_t> survivors;
  for (const auto& pick : picks) {
    survivors.insert(survivors.end(), pick.chunk_indices.begin(),
                     pick.chunk_indices.end());
  }
  const auto y = code.repair_vector(request.chunk_index, survivors);

  std::size_t position = 0;
  std::vector<ComputeInput> final_inputs;
  std::vector<std::size_t> final_deps;
  for (const auto& pick : picks) {
    if (aggregate) {
      const cluster::NodeId aggregator =
          placement.node_of(request.stripe, pick.chunk_indices.front());
      std::vector<std::size_t> deps;
      std::vector<ComputeInput> inputs;
      for (std::size_t chunk : pick.chunk_indices) {
        const auto host = placement.node_of(request.stripe, chunk);
        const auto buf = BufferRef::chunk(request.stripe, chunk);
        if (host != aggregator) {
          deps.push_back(add_transfer(host, aggregator, buf, {}));
        }
        inputs.push_back({buf, y[position++]});
      }
      const std::size_t partial =
          add_compute(aggregator, std::move(inputs), std::move(deps));
      if (aggregator == request.reader) {
        // The reader itself aggregates its rack — no shipment needed.
        final_deps.push_back(partial);
      } else {
        final_deps.push_back(add_transfer(aggregator, request.reader,
                                          BufferRef::step(partial),
                                          {partial}));
      }
      final_inputs.push_back({BufferRef::step(partial), 1});
    } else {
      for (std::size_t chunk : pick.chunk_indices) {
        const auto host = placement.node_of(request.stripe, chunk);
        const auto buf = BufferRef::chunk(request.stripe, chunk);
        if (host != request.reader) {
          final_deps.push_back(add_transfer(host, request.reader, buf, {}));
        }
        final_inputs.push_back({buf, y[position++]});
      }
    }
  }
  const std::size_t final_step = add_compute(
      request.reader, std::move(final_inputs), std::move(final_deps));
  plan.outputs.push_back({request.stripe, request.chunk_index, final_step});
  return plan;
}

}  // namespace

RecoveryPlan plan_degraded_read_car(const cluster::Placement& placement,
                                    const rs::Code& code,
                                    const DegradedReadRequest& request,
                                    std::uint64_t chunk_size) {
  CAR_CHECK(chunk_size > 0, "degraded read: chunk_size must be > 0");
  const auto census = build_degraded_census(placement, request);
  const auto set =
      default_rack_set(census.k, census.reader_rack, census.surviving);

  // Materialise: reader-rack survivors first, then chosen racks largest
  // first, trimming the last (mirrors recovery/planner.cc).
  std::vector<RackPick> picks;
  std::size_t needed = census.k;
  auto take_from = [&](cluster::RackId rack) {
    auto indices = placement.chunk_indices_in_rack(request.stripe, rack);
    std::erase(indices, request.chunk_index);
    if (indices.empty() || needed == 0) return;
    const std::size_t take = std::min(indices.size(), needed);
    indices.resize(take);
    needed -= take;
    picks.push_back({rack, std::move(indices)});
  };
  take_from(census.reader_rack);
  std::vector<cluster::RackId> order = set.racks;
  std::stable_sort(order.begin(), order.end(),
                   [&](cluster::RackId a, cluster::RackId b) {
                     return census.surviving[a] > census.surviving[b];
                   });
  for (cluster::RackId rack : order) take_from(rack);
  if (needed != 0) {
    throw std::logic_error("degraded read: could not gather k survivors");
  }
  return assemble(placement, code, request, chunk_size, picks,
                  /*aggregate=*/true);
}

RecoveryPlan plan_degraded_read_direct(const cluster::Placement& placement,
                                       const rs::Code& code,
                                       const DegradedReadRequest& request,
                                       std::uint64_t chunk_size,
                                       util::Rng& rng) {
  CAR_CHECK(chunk_size > 0, "degraded read: chunk_size must be > 0");
  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < placement.chunks_per_stripe(); ++c) {
    if (c != request.chunk_index) survivors.push_back(c);
  }
  rng.shuffle(survivors);
  survivors.resize(placement.k());
  std::sort(survivors.begin(), survivors.end());
  // One flat pick per chunk keeps assemble() in direct-fetch mode simple.
  std::vector<RackPick> picks;
  const auto& topology = placement.topology();
  for (std::size_t chunk : survivors) {
    const auto rack =
        topology.rack_of(placement.node_of(request.stripe, chunk));
    picks.push_back({rack, {chunk}});
  }
  return assemble(placement, code, request, chunk_size, picks,
                  /*aggregate=*/false);
}

}  // namespace car::recovery
