// car-no-alloc-in-hot-path
//
// Functions tagged CAR_HOT (util/attributes.h) are the per-slice / per-region
// kernels of the data plane — BufferPool exists precisely so they never touch
// the heap.  This check rejects, anywhere in a CAR_HOT function's body:
//
//   * operator new / new[] expressions
//   * malloc-family calls (malloc, calloc, realloc, aligned_alloc, strdup)
//   * growth calls on std::vector / std::string / std::deque /
//     std::unordered_map / std::map (push_back, emplace_back, resize,
//     reserve, insert, append, assign, emplace, operator+=)
//   * declaring a local allocating container (std::vector, std::string,
//     std::deque) — use std::array or a pool lease instead
//
// Expansions of CAR_CHECK* contract macros are exempt: their message
// arguments are evaluated only on the (cold) failure path.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::car {

class NoAllocInHotPathCheck : public ClangTidyCheck {
 public:
  NoAllocInHotPathCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::car
