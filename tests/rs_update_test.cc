#include "rs/update.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace car::rs {
namespace {

std::vector<Chunk> random_data(std::size_t k, std::size_t size,
                               util::Rng& rng) {
  std::vector<Chunk> data(k, Chunk(size));
  for (auto& chunk : data) rng.fill_bytes(chunk);
  return data;
}

std::vector<ChunkView> views_of(const std::vector<Chunk>& chunks) {
  return {chunks.begin(), chunks.end()};
}

using Params = std::tuple<std::size_t, std::size_t>;

class ParityUpdateSweep : public ::testing::TestWithParam<Params> {
 protected:
  std::size_t k_ = std::get<0>(GetParam());
  std::size_t m_ = std::get<1>(GetParam());
  Code code_{k_, m_};
  util::Rng rng_{k_ * 17 + m_};
};

TEST_P(ParityUpdateSweep, DeltaUpdateMatchesFullReencode) {
  constexpr std::size_t kSize = 257;
  auto data = random_data(k_, kSize, rng_);
  auto parity = code_.encode(views_of(data));

  // Overwrite each data chunk in turn and patch parities incrementally.
  for (std::size_t i = 0; i < k_; ++i) {
    Chunk updated(kSize);
    rng_.fill_bytes(updated);
    const auto delta = data_delta(data[i], updated);
    const auto updates = parity_deltas(code_, i, delta);
    ASSERT_EQ(updates.size(), m_);
    for (std::size_t j = 0; j < m_; ++j) {
      apply_parity_delta(updates[j], parity[j]);
    }
    data[i] = updated;

    const auto expected = code_.encode(views_of(data));
    for (std::size_t j = 0; j < m_; ++j) {
      ASSERT_EQ(parity[j], expected[j])
          << "parity " << j << " after updating data chunk " << i;
    }
  }
}

TEST_P(ParityUpdateSweep, NoOpUpdateLeavesParityUntouched) {
  constexpr std::size_t kSize = 64;
  const auto data = random_data(k_, kSize, rng_);
  auto parity = code_.encode(views_of(data));
  const auto before = parity;
  const auto delta = data_delta(data[0], data[0]);  // zero delta
  for (std::size_t j = 0; j < m_; ++j) {
    const auto update = parity_delta(code_, 0, j, delta);
    apply_parity_delta(update, parity[j]);
  }
  EXPECT_EQ(parity, before);
}

INSTANTIATE_TEST_SUITE_P(Codes, ParityUpdateSweep,
                         ::testing::Values(Params{2, 1}, Params{4, 2},
                                           Params{4, 3}, Params{6, 3},
                                           Params{10, 4}));

TEST(ParityUpdate, Validation) {
  Code code(4, 2);
  util::Rng rng(1);
  Chunk a(16), b(8);
  EXPECT_THROW(data_delta(a, b), std::invalid_argument);
  Chunk delta(16);
  EXPECT_THROW(parity_delta(code, 4, 0, delta), std::invalid_argument);
  EXPECT_THROW(parity_delta(code, 0, 2, delta), std::invalid_argument);
}

TEST(ParityUpdate, DeltaIsXorOfVersions) {
  util::Rng rng(2);
  Chunk old_data(32), new_data(32);
  rng.fill_bytes(old_data);
  rng.fill_bytes(new_data);
  const auto delta = data_delta(old_data, new_data);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(delta[i], static_cast<std::uint8_t>(old_data[i] ^ new_data[i]));
  }
}

}  // namespace
}  // namespace car::rs
